// Tests of the padico::check analysis layer (osal/checked.hpp). This
// binary is ALWAYS compiled with PADICO_CHECK_ENABLED — it deliberately
// seeds violations and asserts on the reports — and links only header-only
// padico code plus padico_util: the check flag changes fabric::Packet's
// layout, so mixing this TU with the flag-off libraries would be an ODR
// violation.
//
// Every test that seeds a violation consumes it with clear_violations();
// the layer's atexit hook turns any leftover violation into exit code 82,
// which is itself the enforcement that "green under PADICO_CHECK=ON" means
// zero violations.

#ifndef PADICO_CHECK_ENABLED
#error "test_check must be built with PADICO_CHECK_ENABLED"
#endif

#include <gtest/gtest.h>

#include <thread>

#include "fabric/busylist.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "osal/queue.hpp"

using namespace padico;
using osal::check::Kind;

namespace {

/// Number of stored violations of the given kind.
std::size_t count_kind(Kind k) {
    std::size_t n = 0;
    for (const auto& v : osal::check::violations())
        if (v.kind == k) ++n;
    return n;
}

/// First stored message of the given kind ("" if none).
std::string first_message(Kind k) {
    for (const auto& v : osal::check::violations())
        if (v.kind == k) return v.message;
    return {};
}

class CheckTest : public ::testing::Test {
protected:
    void SetUp() override {
        osal::check::clear_violations();
        osal::check::clear_order_graph(); // hermetic even when several
                                          // tests share one process
    }
    void TearDown() override { osal::check::clear_violations(); }
};

TEST_F(CheckTest, OrderedAcquisitionIsClean) {
    osal::CheckedMutex lo(lockrank::kFabricRoute, "test.lo");
    osal::CheckedMutex hi(lockrank::kFabricTime, "test.hi");
    {
        osal::CheckedLock a(lo);
        osal::CheckedLock b(hi); // strictly increasing rank: fine
        EXPECT_EQ(osal::check::held_count(), 2u);
    }
    EXPECT_EQ(osal::check::held_count(), 0u);
    EXPECT_EQ(osal::check::violation_count(), 0u);
}

TEST_F(CheckTest, RankInversionIsReportedWithBothSites) {
    osal::CheckedMutex lo(lockrank::kFabricRoute, "test.inv.lo");
    osal::CheckedMutex hi(lockrank::kFabricTime, "test.inv.hi");
    {
        osal::CheckedLock a(hi);
        osal::CheckedLock b(lo); // descending rank: inversion
    }
    ASSERT_EQ(count_kind(Kind::kRankInversion), 1u);
    const std::string msg = first_message(Kind::kRankInversion);
    // Usable witness: both mutexes by name and both acquisition sites.
    EXPECT_NE(msg.find("test.inv.lo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test.inv.hi"), std::string::npos) << msg;
    EXPECT_NE(msg.find("while holding"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_check.cpp"), std::string::npos) << msg;
}

TEST_F(CheckTest, EqualRankReacquisitionIsAnInversion) {
    // Two locks of the SAME rank held together: the discipline demands
    // strictly increasing ranks, which also catches self-recursion.
    osal::CheckedMutex a(lockrank::kFabricRoute, "test.eq.a");
    osal::CheckedMutex b(lockrank::kFabricRoute, "test.eq.b");
    {
        osal::CheckedLock l1(a);
        osal::CheckedLock l2(b);
    }
    EXPECT_EQ(count_kind(Kind::kRankInversion), 1u);
}

TEST_F(CheckTest, SeededAbbaCycleIsDetectedAcrossThreads) {
    // The canonical two-thread ABBA: thread 1 takes A then B, thread 2
    // takes B then A. Run SEQUENTIALLY (join t1 before t2 starts) so the
    // test cannot actually deadlock — the order graph still accumulates
    // A->B from t1 and detects the cycle at t2's second acquisition.
    osal::CheckedMutex a; // unranked: exercises the order graph,
    osal::CheckedMutex b; // not the rank discipline
    std::thread t1([&] {
        osal::CheckedLock la(a);
        osal::CheckedLock lb(b);
    });
    t1.join();
    EXPECT_EQ(osal::check::violation_count(), 0u);
    std::thread t2([&] {
        osal::CheckedLock lb(b);
        osal::CheckedLock la(a);
    });
    t2.join();
    ASSERT_EQ(count_kind(Kind::kOrderCycle), 1u);
    const std::string msg = first_message(Kind::kOrderCycle);
    EXPECT_NE(msg.find("potential ABBA deadlock"), std::string::npos) << msg;
    // Witness lists each edge of the cycle with its acquisition sites.
    EXPECT_NE(msg.find("closing edge"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_check.cpp"), std::string::npos) << msg;
}

TEST_F(CheckTest, RankedCyclesCollapsePerClassNotPerInstance) {
    // Ranked mutexes share one graph node per rank: the discipline is a
    // class property (any route lock before any time lock), so an ABBA
    // between two INSTANCE PAIRS of the same two classes is still a cycle.
    osal::CheckedMutex r1(lockrank::kFabricRoute, "test.route");
    osal::CheckedMutex t1m(lockrank::kFabricTime, "test.time");
    std::thread t1([&] {
        osal::CheckedLock a(r1);
        osal::CheckedLock b(t1m);
    });
    t1.join();
    osal::CheckedMutex r2(lockrank::kFabricRoute, "test.route");
    osal::CheckedMutex t2m(lockrank::kFabricTime, "test.time");
    std::thread t2([&] {
        osal::CheckedLock b(t2m);
        osal::CheckedLock a(r2); // inversion AND closes route<->time cycle
    });
    t2.join();
    EXPECT_EQ(count_kind(Kind::kRankInversion), 1u);
    EXPECT_EQ(count_kind(Kind::kOrderCycle), 1u);
}

TEST_F(CheckTest, TryLockDoesNotFeedTheOrderGraph) {
    osal::CheckedMutex a;
    osal::CheckedMutex b;
    {
        osal::CheckedLock la(a);
        ASSERT_TRUE(b.try_lock()); // non-blocking: cannot deadlock
        b.unlock();
    }
    std::thread t([&] {
        osal::CheckedLock lb(b);
        osal::CheckedLock la(a); // no a->b edge was recorded: no cycle
    });
    t.join();
    EXPECT_EQ(osal::check::violation_count(), 0u);
}

TEST_F(CheckTest, SeededBusyListOverlapIsAuditedOnReserve) {
    fabric::BusyList bl;
    bl.debug_inject_span(10, 20);
    bl.debug_inject_span(15, 25); // overlaps the first span
    EXPECT_EQ(osal::check::violation_count(), 0u); // raw seam: no audit yet
    bl.reserve(30, 5); // audit runs after every reserve
    ASSERT_GE(count_kind(Kind::kInvariant), 1u);
    const std::string msg = first_message(Kind::kInvariant);
    // Usable witness: the two offending spans, verbatim.
    EXPECT_NE(msg.find("overlapping"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[10,20)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[15,25)"), std::string::npos) << msg;
}

TEST_F(CheckTest, HealthyBusyListAuditsClean) {
    fabric::BusyList bl;
    for (int i = 0; i < 64; ++i) bl.reserve(i * 3, 2);
    bl.prune(100);
    bl.reserve(100, 5);
    EXPECT_EQ(osal::check::violation_count(), 0u);
}

TEST_F(CheckTest, AuditMacroRecordsInvariantViolations) {
    PADICO_AUDIT(1 + 1 == 2, "arithmetic still works");
    EXPECT_EQ(osal::check::violation_count(), 0u);
    PADICO_AUDIT(false, std::string("seeded failure"));
    ASSERT_EQ(count_kind(Kind::kInvariant), 1u);
    EXPECT_NE(first_message(Kind::kInvariant).find("seeded failure"),
              std::string::npos);
}

TEST_F(CheckTest, WaiterSnapshotFromWrongWaiterIsAProtocolViolation) {
    osal::Waiter w;
    w.notify(); // live sequence: 1
    w.wait_changed(0); // stale snapshot: returns immediately, no violation
    EXPECT_EQ(osal::check::violation_count(), 0u);
    w.wait_changed(5); // snapshot AHEAD of the live sequence: impossible
                       // unless it came from a different Waiter
    ASSERT_EQ(count_kind(Kind::kProtocol), 1u);
    EXPECT_NE(first_message(Kind::kProtocol).find("different Waiter"),
              std::string::npos);
}

TEST_F(CheckTest, StealingAQueueWaiterIsAProtocolViolation) {
    osal::BlockingQueue<int> q;
    auto w1 = std::make_shared<osal::Waiter>();
    auto w2 = std::make_shared<osal::Waiter>();
    q.set_waiter(w1);
    q.set_waiter(w1); // re-attach of the same waiter: fine
    EXPECT_EQ(osal::check::violation_count(), 0u);
    q.set_waiter(w2); // silent steal: starves w1's wait loop
    EXPECT_EQ(count_kind(Kind::kProtocol), 1u);
    q.clear_waiter();
    q.set_waiter(w2); // attach after detach: fine
    EXPECT_EQ(count_kind(Kind::kProtocol), 1u);
}

TEST_F(CheckTest, ShardRankBandSitsAboveEveryStaticRank) {
    // The dynamic per-NIC band must be strictly innermost, and tx/rx of
    // one adapter must differ so the fixed acquisition order totals.
    EXPECT_GT(lockrank::shard_rank(0, false), lockrank::kFabricNames);
    EXPECT_NE(lockrank::shard_rank(3, false), lockrank::shard_rank(3, true));
    osal::CheckedMutex m;
    m.set_rank(lockrank::shard_rank(2, true), "test.shard");
    EXPECT_EQ(m.rank(), lockrank::kFabricShardBase + 5);
}

} // namespace
