// Tests for GridCCM, the paper's primary contribution: distributions and
// redistribution plans (property sweeps), the parallelism descriptor,
// the stub/skeleton interception layer under all three redistribution
// strategies, parallel-to-parallel and sequential-to-parallel invocation,
// and full deployment of parallel components.

#include <gtest/gtest.h>

#include <numeric>

#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::gridccm;

// ---------------------------------------------------------------------------
// Distributions: property sweeps

struct DistCase {
    Distribution dist;
    int nranks;
    std::size_t len;
};

class DistProps : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistProps, IntervalsPartitionTheSequence) {
    const auto& p = GetParam();
    std::vector<int> owner_of(p.len, -1);
    std::size_t total = 0;
    for (int r = 0; r < p.nranks; ++r) {
        std::size_t local = 0;
        for (const auto& iv : p.dist.intervals(r, p.nranks, p.len)) {
            ASSERT_LT(iv.lo, iv.hi);
            ASSERT_LE(iv.hi, p.len);
            for (std::size_t g = iv.lo; g < iv.hi; ++g) {
                ASSERT_EQ(owner_of[g], -1) << "double ownership at " << g;
                owner_of[g] = r;
            }
            local += iv.size();
        }
        ASSERT_EQ(local, p.dist.local_size(r, p.nranks, p.len));
        total += local;
    }
    ASSERT_EQ(total, p.len); // full coverage
    // owner() agrees with the interval walk.
    for (std::size_t g = 0; g < p.len; ++g)
        ASSERT_EQ(p.dist.owner(g, p.nranks, p.len), owner_of[g]);
}

TEST_P(DistProps, GlobalToLocalRoundTrip) {
    const auto& p = GetParam();
    for (int r = 0; r < p.nranks; ++r) {
        std::size_t local = 0;
        for (const auto& iv : p.dist.intervals(r, p.nranks, p.len)) {
            for (std::size_t g = iv.lo; g < iv.hi; ++g) {
                ASSERT_EQ(p.dist.global_to_local(g, r, p.nranks, p.len),
                          local);
                ++local;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistProps,
    ::testing::Values(
        DistCase{Distribution::block(), 1, 10},
        DistCase{Distribution::block(), 4, 1024},
        DistCase{Distribution::block(), 4, 1027}, // uneven
        DistCase{Distribution::block(), 7, 3},    // more ranks than items
        DistCase{Distribution::cyclic(), 3, 100},
        DistCase{Distribution::cyclic(), 5, 7},
        DistCase{Distribution::block_cyclic(4), 3, 100},
        DistCase{Distribution::block_cyclic(16), 4, 1000},
        DistCase{Distribution::block_cyclic(32), 2, 31},
        DistCase{Distribution::block_rows(10), 3, 120},   // 12 rows of 10
        DistCase{Distribution::block_rows(7), 4, 7 * 9},  // 9 rows of 7
        DistCase{Distribution::block_rows(5), 6, 5 * 4}), // rows < ranks
    [](const ::testing::TestParamInfo<DistCase>& info) {
        std::string name = info.param.dist.str() + "_n" +
                           std::to_string(info.param.nranks) + "_L" +
                           std::to_string(info.param.len);
        for (auto& c : name)
            if (c == '-' || c == ':') c = '_';
        return name;
    });

TEST(Distribution, ParseAndStr) {
    EXPECT_EQ(Distribution::parse("block"), Distribution::block());
    EXPECT_EQ(Distribution::parse("cyclic"), Distribution::cyclic());
    EXPECT_EQ(Distribution::parse("block-cyclic:8"),
              Distribution::block_cyclic(8));
    EXPECT_EQ(Distribution::block_cyclic(8).str(), "block-cyclic:8");
    EXPECT_EQ(Distribution::parse("block-rows:32"),
              Distribution::block_rows(32));
    EXPECT_EQ(Distribution::block_rows(32).str(), "block-rows:32");
    EXPECT_THROW(Distribution::parse("diagonal"), UsageError);
    EXPECT_THROW(Distribution::block_cyclic(0), UsageError);
    EXPECT_THROW(Distribution::block_rows(0), UsageError);
}

TEST(Distribution, BlockRowsKeepsRowsWhole) {
    // 10 rows of width 8 over 3 ranks: 4/3/3 rows, element ranges
    // row-aligned and contiguous.
    const Distribution d = Distribution::block_rows(8);
    const std::size_t len = 80;
    auto iv0 = d.intervals(0, 3, len);
    ASSERT_EQ(iv0.size(), 1u);
    EXPECT_EQ(iv0[0], (Interval{0, 32}));
    auto iv2 = d.intervals(2, 3, len);
    EXPECT_EQ(iv2[0], (Interval{56, 80}));
    for (std::size_t g = 0; g < len; ++g)
        EXPECT_EQ(d.owner(g, 3, len), d.owner(g - g % 8, 3, len))
            << "row straddles ranks at element " << g;
    // Ragged lengths are rejected.
    EXPECT_THROW(d.intervals(0, 3, 81), UsageError);
}

// ---------------------------------------------------------------------------
// Redistribution plans

struct PlanCase {
    Distribution src;
    int n_src;
    Distribution dst;
    int n_dst;
    std::size_t len;
};

class PlanProps : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanProps, PlanMovesEveryElementExactlyOnce) {
    const auto& p = GetParam();
    const RedistPlan plan =
        compute_plan(p.src, p.n_src, p.dst, p.n_dst, p.len);
    EXPECT_EQ(plan.total(), p.len);

    // Simulate the move on integer payloads and check the result layout.
    std::vector<std::vector<int>> src_data(
        static_cast<std::size_t>(p.n_src));
    for (int r = 0; r < p.n_src; ++r) {
        std::size_t local = 0;
        src_data[static_cast<std::size_t>(r)].resize(
            p.src.local_size(r, p.n_src, p.len));
        for (const auto& iv : p.src.intervals(r, p.n_src, p.len))
            for (std::size_t g = iv.lo; g < iv.hi; ++g)
                src_data[static_cast<std::size_t>(r)][local++] =
                    static_cast<int>(g);
    }
    std::vector<std::vector<int>> dst_data(
        static_cast<std::size_t>(p.n_dst));
    for (int r = 0; r < p.n_dst; ++r)
        dst_data[static_cast<std::size_t>(r)].assign(
            p.dst.local_size(r, p.n_dst, p.len), -1);

    for (const auto& f : plan.fragments) {
        for (std::size_t i = 0; i < f.len; ++i) {
            int& slot = dst_data[static_cast<std::size_t>(f.dst)]
                                [f.dst_off + i];
            ASSERT_EQ(slot, -1) << "double write";
            slot = src_data[static_cast<std::size_t>(f.src)][f.src_off + i];
        }
    }
    for (int r = 0; r < p.n_dst; ++r) {
        std::size_t local = 0;
        for (const auto& iv : p.dst.intervals(r, p.n_dst, p.len))
            for (std::size_t g = iv.lo; g < iv.hi; ++g)
                ASSERT_EQ(dst_data[static_cast<std::size_t>(r)][local++],
                          static_cast<int>(g));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanProps,
    ::testing::Values(
        PlanCase{Distribution::block(), 1, Distribution::block(), 4, 1000},
        PlanCase{Distribution::block(), 4, Distribution::block(), 1, 1000},
        PlanCase{Distribution::block(), 4, Distribution::block(), 4, 1024},
        PlanCase{Distribution::block(), 2, Distribution::block(), 3, 17},
        PlanCase{Distribution::block(), 3, Distribution::block(), 5, 0},
        PlanCase{Distribution::cyclic(), 2, Distribution::block(), 3, 101},
        PlanCase{Distribution::block(), 3, Distribution::cyclic(), 2, 64},
        PlanCase{Distribution::block_cyclic(4), 3,
                 Distribution::block_cyclic(6), 2, 200},
        PlanCase{Distribution::cyclic(), 4, Distribution::cyclic(), 4, 37},
        // 2D: a 20x16 row-major matrix moving from 4 row-blocks to 2, and
        // a row-block to flat-block relayout.
        PlanCase{Distribution::block_rows(16), 4,
                 Distribution::block_rows(16), 2, 320},
        PlanCase{Distribution::block_rows(16), 3, Distribution::block(), 5,
                 320}),
    [](const ::testing::TestParamInfo<PlanCase>& info) {
        return "c" + std::to_string(info.index);
    });

TEST(Plan, IdentityIsOneFragmentPerRank) {
    const RedistPlan plan = compute_plan(Distribution::block(), 4,
                                         Distribution::block(), 4, 1000);
    EXPECT_EQ(plan.fragments.size(), 4u);
    for (const auto& f : plan.fragments) {
        EXPECT_EQ(f.src, f.dst);
        EXPECT_EQ(f.src_off, 0u);
        EXPECT_EQ(f.dst_off, 0u);
    }
    EXPECT_EQ(plan.targets_of(2), std::vector<int>{2});
    EXPECT_EQ(plan.from(1).size(), 1u);
    EXPECT_EQ(plan.to(3).size(), 1u);
}

// ---------------------------------------------------------------------------
// Descriptor

TEST(Descriptor, ParseAndCdrRoundTrip) {
    ParallelFacetDesc d = ParallelFacetDesc::parse(R"(
      <parallel-interface component="Chemistry" facet="sim"
                          distribution="block-cyclic:8">
        <operation name="setField" argument="block" result="distributed"/>
        <operation name="advance" argument="cyclic"/>
      </parallel-interface>)");
    EXPECT_EQ(d.component, "Chemistry");
    EXPECT_EQ(d.server_dist, Distribution::block_cyclic(8));
    EXPECT_TRUE(d.op("setField").result_distributed);
    EXPECT_FALSE(d.op("advance").result_distributed);
    EXPECT_EQ(d.op("advance").arg_dist, Distribution::cyclic());
    EXPECT_THROW(d.op("nope"), LookupError);

    d.members = 3;
    d.member_refs = {corba::IOR{"e0", 1, "t"}, corba::IOR{"e1", 2, "t"},
                     corba::IOR{"e2", 3, "t"}};
    corba::cdr::Encoder e(true);
    cdr_put(e, d);
    corba::cdr::Decoder dec(e.take());
    ParallelFacetDesc back;
    cdr_get(dec, back);
    EXPECT_EQ(back.component, "Chemistry");
    EXPECT_EQ(back.member_refs.size(), 3u);
    EXPECT_EQ(back.member_refs[2].key, 3u);
    EXPECT_EQ(back.ops.size(), 2u);
}

TEST(Descriptor, ParseErrors) {
    EXPECT_THROW(ParallelFacetDesc::parse("<wrong/>"), ProtocolError);
    EXPECT_THROW(ParallelFacetDesc::parse(
                     R"(<parallel-interface component="C" facet="f"/>)"),
                 ProtocolError); // no operations
    EXPECT_THROW(ParallelFacetDesc::parse(R"(
      <parallel-interface component="C" facet="f">
        <operation name="op"/><operation name="op"/>
      </parallel-interface>)"),
                 ProtocolError); // duplicate op
}

// ---------------------------------------------------------------------------
// End-to-end stub/skeleton through full deployment

namespace {

/// Parallel test component: "Scaler" doubles a distributed vector of
/// int64, and "probe" checks that member collectives work inside an op.
class Scaler : public ParallelComponent {
public:
    Scaler() {
        declare_parallel_facet(
            R"(<parallel-interface component="Scaler" facet="vec"
                                   distribution="block">
                 <operation name="scale" argument="block"
                            result="distributed"/>
                 <operation name="probe" argument="block"
                            collective="true"/>
               </parallel-interface>)",
            {
                {"scale",
                 [](const OpContext& ctx, util::Message arg) {
                     std::vector<std::int64_t> xs(ctx.local_len);
                     arg.copy_out(0, xs.data(), arg.size());
                     for (auto& x : xs) x *= 2;
                     util::ByteBuf out(xs.data(),
                                       xs.size() * sizeof(std::int64_t));
                     return util::to_message(std::move(out));
                 }},
                {"probe",
                 [](const OpContext& ctx, util::Message) {
                     // The paper's Fig. 8 workload runs an MPI_Barrier in
                     // the invoked operation.
                     if (ctx.comm != nullptr) ctx.comm->barrier();
                     return util::Message();
                 }},
            });
    }
    std::string type() const override { return "Scaler"; }
};

/// Client-side parallel component invoking the Scaler.
class Driver : public ParallelComponent {
public:
    Driver() {
        use_receptacle("vec");
    }
    std::string type() const override { return "Driver"; }
    using ParallelComponent::bind_parallel;
};

void install_parallel_components() {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type(
            "Scaler", [] { return std::make_unique<Scaler>(); });
        ccm::ComponentRegistry::register_type(
            "Driver", [] { return std::make_unique<Driver>(); });
    });
}

/// Myrinet cluster with component servers on n machines + a frontend.
struct PGrid {
    Grid grid;
    std::vector<Machine*> nodes;
    Machine* front;

    explicit PGrid(int n) {
        auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("node" + std::to_string(i));
            m.set_attr("pool", "cluster");
            grid.attach(m, myri);
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
        front = &grid.add_machine("front");
        grid.attach(*front, eth);
    }

    void start_servers() {
        for (auto* m : nodes)
            grid.spawn(*m, [](Process& proc) {
                ccm::component_server_main(proc, corba::profile_mico());
            });
    }
    void stop_servers(corba::Orb& orb) {
        for (auto* m : nodes)
            ccm::connect_component_server(orb, m->name()).shutdown();
    }
};

/// Expected scaled block of rank r under block distribution.
std::vector<std::int64_t> expected_block(int r, int n, std::size_t len) {
    const Distribution d = Distribution::block();
    std::vector<std::int64_t> out;
    for (const auto& iv : d.intervals(r, n, len))
        for (std::size_t g = iv.lo; g < iv.hi; ++g)
            out.push_back(static_cast<std::int64_t>(g) * 2);
    return out;
}

std::vector<std::int64_t> input_block(int r, int n, std::size_t len) {
    const Distribution d = Distribution::block();
    std::vector<std::int64_t> out;
    for (const auto& iv : d.intervals(r, n, len))
        for (std::size_t g = iv.lo; g < iv.hi; ++g)
            out.push_back(static_cast<std::int64_t>(g));
    return out;
}

} // namespace

class GridccmE2e : public ::testing::TestWithParam<Strategy> {};

TEST_P(GridccmE2e, ParallelToParallelScale) {
    const Strategy strategy = GetParam();
    install_parallel_components();
    PGrid g(5); // 3 servers + 2 clients
    g.start_servers();
    g.grid.spawn(*g.front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_mico());
        ccm::Deployer deployer(orb);
        auto dep = deployer.deploy(ccm::Assembly::parse(R"(
          <assembly name="e2e">
            <component id="scaler" type="Scaler" parallel="3"/>
            <component id="driver" type="Driver" parallel="2"/>
            <connection from="driver:vec" to="scaler:vec"/>
          </assembly>)"));

        // Drive the invocation from inside the Driver members: ask each
        // member container for its instance and run the stub collectively.
        // (Test shortcut: reach into the containers via a facet-less path
        // is not available remotely, so drive through a parallel stub
        // owned by this test over an ad-hoc group of 1 per driver member
        // is not collective. Instead: sequential stub here, parallel stub
        // exercised below through the Driver component's own facet in the
        // coupling example. Here we validate strategies with a group of 1.)
        corba::IOR home =
            deployer.facet_of(dep, ccm::PortAddr{"scaler", "vec"});
        ParallelStub stub(orb, home);
        EXPECT_EQ(stub.desc().members, 3);

        constexpr std::size_t kLen = 1003;
        auto in = input_block(0, 1, kLen);
        auto out = stub.invoke<std::int64_t>(
            "scale", std::span<const std::int64_t>(in), kLen, strategy);
        EXPECT_EQ(out, expected_block(0, 1, kLen));

        // Void op with a member barrier inside.
        auto none = stub.invoke<std::int64_t>(
            "probe", std::span<const std::int64_t>(in), kLen, strategy);
        EXPECT_TRUE(none.empty());

        deployer.teardown(dep);
        g.stop_servers(orb);
    });
    g.grid.join_all();
}

INSTANTIATE_TEST_SUITE_P(Strategies, GridccmE2e,
                         ::testing::Values(Strategy::InFlight,
                                           Strategy::ServerSide,
                                           Strategy::Auto),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                             std::string n = strategy_name(info.param);
                             for (auto& c : n)
                                 if (c == '-') c = '_';
                             return n;
                         });

TEST(Gridccm, CollectiveOpReachesMembersWithoutData) {
    // A collective="true" operation must be observed by EVERY member even
    // when the data layout leaves some without a fragment (here: a 1-element
    // sequence over 3 members, whose op body runs a member barrier). Without
    // the flag, members 1..2 would never be invoked and the barrier would
    // deadlock.
    install_parallel_components();
    PGrid g(3);
    g.start_servers();
    g.grid.spawn(*g.front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        auto dep = deployer.deploy(ccm::Assembly::parse(R"(
          <assembly name="coll">
            <component id="scaler" type="Scaler" parallel="3"/>
          </assembly>)"));
        ParallelStub stub(orb, deployer.facet_of(
                                   dep, ccm::PortAddr{"scaler", "vec"}));
        // "probe" is declared collective="true" and its body is a barrier.
        std::vector<std::int64_t> one(1, 5);
        auto out = stub.invoke<std::int64_t>(
            "probe", std::span<const std::int64_t>(one), 1);
        EXPECT_TRUE(out.empty());
        deployer.teardown(dep);
        g.stop_servers(orb);
    });
    g.grid.join_all();
}

TEST(Gridccm, StrategyChooser) {
    // Identity: in-flight. Fragmented cyclic->block with more clients:
    // client-side. Fragmented with fewer clients: server-side.
    ParallelFacetDesc d;
    d.component = "X";
    d.facet = "f";
    d.server_dist = Distribution::block();
    d.members = 2;
    OpDesc op;
    op.name = "op";
    d.ops.push_back(op);
    // choose_strategy is a method of a live stub; cover it through the
    // contact-set helper instead (pure logic):
    auto contacts = gridccm_contacted_servers(
        Strategy::InFlight, Distribution::block(), 2, 0,
        Distribution::block(), 2, 100, false);
    EXPECT_EQ(contacts, std::vector<int>{0});
    contacts = gridccm_contacted_servers(Strategy::ServerSide,
                                         Distribution::block(), 2, 1,
                                         Distribution::block(), 3, 100,
                                         false);
    EXPECT_EQ(contacts.size(), 3u); // raw mode touches every server
    // Result-only contacts appear when the result is distributed.
    contacts = gridccm_contacted_servers(Strategy::InFlight,
                                         Distribution::block(), 4, 3,
                                         Distribution::block(), 1, 100,
                                         true);
    EXPECT_EQ(contacts, std::vector<int>{0});
}

// ---------------------------------------------------------------------------
// Parallel client group -> parallel server through deployed components

TEST(Gridccm, GroupedClientInvocation) {
    install_parallel_components();
    PGrid g(4); // 2 servers + 2 clients share the pool
    g.start_servers();

    // An MPI group of 2 "application" processes acting as the client side
    // of GridCCM, outside any container (the library-level API).
    auto& grid = g.grid;
    std::vector<Machine*> client_hosts{g.nodes[0], g.nodes[1]};
    // note: component servers already run there; app processes coexist.
    osal::Barrier sync(2);
    corba::IOR home_ior;
    std::mutex home_mu;
    osal::Event home_ready;

    g.grid.spawn(*g.front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        auto dep = deployer.deploy(ccm::Assembly::parse(R"(
          <assembly name="grp">
            <component id="scaler" type="Scaler" parallel="2">
              <constraint attr="pool" value="cluster"/>
            </component>
          </assembly>)"));
        {
            std::lock_guard<std::mutex> lk(home_mu);
            home_ior = deployer.facet_of(dep, ccm::PortAddr{"scaler",
                                                            "vec"});
        }
        home_ready.set();
        // Keep the deployment alive until clients are done.
        proc.grid().wait_service("clients-done");
        deployer.teardown(dep);
        g.stop_servers(orb);
    });

    constexpr std::size_t kLen = 2048;
    for (int r = 0; r < 2; ++r) {
        grid.spawn(*client_hosts[static_cast<std::size_t>(r)],
                   [&, r](Process& proc) {
                       ptm::Runtime rt(proc);
                       corba::Orb orb(rt, corba::profile_omniorb4());
                       home_ready.wait();
                       // Build the client group collectively.
                       proc.grid().register_service(
                           "grpclient/" + std::to_string(r), proc.id());
                       std::vector<ProcessId> members(2);
                       for (int i = 0; i < 2; ++i)
                           members[static_cast<std::size_t>(i)] =
                               proc.grid().wait_service(
                                   "grpclient/" + std::to_string(i));
                       auto world =
                           mpi::World::create(rt, "grpclients", members);
                       mpi::Comm& comm = world->world();

                       corba::IOR home;
                       {
                           std::lock_guard<std::mutex> lk(home_mu);
                           home = home_ior;
                       }
                       ParallelStub stub(orb, comm, home);
                       auto in = input_block(r, 2, kLen);
                       for (Strategy s :
                            {Strategy::InFlight, Strategy::ClientSide,
                             Strategy::ServerSide}) {
                           auto out = stub.invoke<std::int64_t>(
                               "scale", std::span<const std::int64_t>(in),
                               kLen, s);
                           EXPECT_EQ(out, expected_block(r, 2, kLen))
                               << strategy_name(s);
                       }
                       comm.barrier();
                       if (r == 0)
                           proc.grid().register_service("clients-done",
                                                        proc.id());
                   });
    }
    g.grid.join_all();
}
