// Cross-stack integration and failure-injection tests: several middleware
// systems interleaving over one runtime, protocol robustness against
// malformed wire data, redeployment, randomized messaging against an
// oracle, and virtual-time sanity properties.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "ccm/deployer.hpp"
#include "corba/naming.hpp"
#include "mpi/mpi.hpp"
#include "osal/sync.hpp"
#include "soap/soap.hpp"
#include "util/rng.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

struct DualNet {
    Grid grid;
    std::vector<Machine*> nodes;
    explicit DualNet(int n) {
        auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("n" + std::to_string(i));
            grid.attach(m, myri);
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
    }
};

class EchoServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "echo") throw RemoteError("BAD_OPERATION");
        corba::skel::ret(out, corba::skel::arg<std::string>(in));
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Middleware cohabitation

TEST(Integration, MpiAndCorbaInterleaveWithoutCorruption) {
    DualNet g(2);
    osal::Event up, done;
    g.grid.spawn(*g.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("ix-ep");
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("ix/key",
                                     static_cast<ProcessId>(ior.key));
        auto world = mpi::World::create(rt, "ix", {0, 1});
        up.set();
        mpi::Comm& comm = world->world();
        // Echo MPI messages back with a transformation.
        for (int i = 0; i < 50; ++i) {
            const auto v = comm.recv_value<std::int64_t>(1, 7);
            comm.send_value<std::int64_t>(v * 2, 1, 8);
        }
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        auto world = mpi::World::create(rt, "ix", {0, 1});
        up.wait();
        corba::IOR ior{"ix-ep", proc.grid().wait_service("ix/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        mpi::Comm& comm = world->world();
        util::Rng rng(42);
        for (int i = 0; i < 50; ++i) {
            const std::int64_t x = static_cast<std::int64_t>(rng.below(1u << 30));
            comm.send_value<std::int64_t>(x, 0, 7);
            // Interleave a CORBA call between MPI send and recv.
            const std::string s = "msg" + std::to_string(i);
            ASSERT_EQ(corba::call<std::string>(ref, "echo", s), s);
            ASSERT_EQ(comm.recv_value<std::int64_t>(0, 8), x * 2);
        }
        done.set();
    });
    g.grid.join_all();
}

TEST(Integration, ThreeMiddlewareModulesCoexist) {
    mpi::install();
    corba::install();
    soap::install();
    DualNet g(1);
    g.grid.spawn(*g.nodes[0], [](Process& proc) {
        ptm::Runtime rt(proc);
        rt.modules().load("mpi");
        rt.modules().load("corba/Mico-2.3.7");
        rt.modules().load("corba/omniORB-4.0.0");
        rt.modules().load("gsoap");
        EXPECT_EQ(rt.modules().loaded().size(), 4u);
        rt.modules().unload("corba/Mico-2.3.7");
        EXPECT_EQ(rt.modules().loaded().size(), 3u);
    });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Failure injection

TEST(Integration, GarbageOnGiopConnectionDoesNotKillServer) {
    DualNet g(2);
    osal::Event up, done;
    g.grid.spawn(*g.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("rob-ep");
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("rob/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        up.wait();
        // Connection 1: raw garbage instead of GIOP.
        {
            ptm::VLink bad = ptm::VLink::connect(rt, "rob-ep");
            util::ByteBuf junk(64);
            for (std::size_t i = 0; i < junk.size(); ++i)
                junk.data()[i] = static_cast<util::byte>(i * 13 + 1);
            bad.write(util::to_message(std::move(junk)));
            bad.close();
        }
        // Connection 2: a legitimate client still works afterwards.
        corba::IOR ior{"rob-ep", proc.grid().wait_service("rob/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        EXPECT_EQ(corba::call<std::string>(ref, "echo",
                                           std::string("alive")),
                  "alive");
        done.set();
    });
    g.grid.join_all();
}

TEST(Integration, TruncatedCdrPayloadYieldsSystemException) {
    DualNet g(2);
    osal::Event up, done;
    g.grid.spawn(*g.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("trunc-ep");
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("trunc/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        up.wait();
        corba::IOR ior{"trunc-ep", proc.grid().wait_service("trunc/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        // Args claim a 100-byte string but carry 4 bytes.
        corba::cdr::Encoder e(true);
        e.put_u32(100);
        e.put_bytes("abcd", 4);
        EXPECT_THROW(ref.invoke("echo", e.take()), RemoteError);
        // The connection survives the decode failure.
        EXPECT_EQ(corba::call<std::string>(ref, "echo", std::string("ok")),
                  "ok");
        done.set();
    });
    g.grid.join_all();
}

TEST(Integration, RedeployAfterTeardownReusesContainers) {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type("EchoComp", [] {
            class EchoComp : public ccm::Component {
            public:
                EchoComp() {
                    provide_facet("echo",
                                  std::make_shared<EchoServant>());
                }
                std::string type() const override { return "EchoComp"; }
            };
            return std::unique_ptr<ccm::Component>(new EchoComp());
        });
    });
    DualNet g(2);
    g.grid.spawn(*g.nodes[0], [](Process& proc) {
        ccm::component_server_main(proc, corba::profile_omniorb4());
    });
    g.grid.spawn(*g.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        const auto assembly = ccm::Assembly::parse(R"(
            <assembly name="re"><component id="e" type="EchoComp"/>
            </assembly>)");
        for (int round = 0; round < 3; ++round) {
            auto dep = deployer.deploy(assembly);
            corba::ObjectRef ref = orb.resolve(
                deployer.facet_of(dep, ccm::PortAddr{"e", "echo"}));
            EXPECT_EQ(corba::call<std::string>(
                          ref, "echo", "round" + std::to_string(round)),
                      "round" + std::to_string(round));
            deployer.teardown(dep);
        }
        ccm::connect_component_server(orb, g.nodes[0]->name()).shutdown();
    });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Randomized messaging against an oracle

TEST(Integration, RandomizedTagTrafficMatchesOracle) {
    DualNet g(2);
    constexpr int kMsgs = 200;
    run_spmd(g.grid, {g.nodes[0], g.nodes[1]},
             [&](Process& proc, int rank, int) {
                 ptm::Runtime rt(proc);
                 auto world = mpi::World::create(rt, "rand", {0, 1});
                 mpi::Comm& comm = world->world();
                 util::Rng rng(7);
                 if (rank == 0) {
                     for (int i = 0; i < kMsgs; ++i) {
                         const int tag = static_cast<int>(rng.below(5));
                         std::int64_t payload =
                             (static_cast<std::int64_t>(tag) << 32) | i;
                         comm.send_value(payload, 1, tag);
                     }
                 } else {
                     // Drain by tag in a different order than sent; FIFO
                     // must hold per tag.
                     std::map<int, int> next_per_tag;
                     util::Rng pick(99);
                     int received = 0;
                     while (received < kMsgs) {
                         const int tag = static_cast<int>(pick.below(5));
                         auto got = comm.try_recv_msg(0, tag);
                         if (!got) {
                             // Fall back to wildcard to keep draining.
                             mpi::Status st;
                             got = comm.try_recv_msg(mpi::kAnySource,
                                                     mpi::kAnyTag, &st);
                             if (!got) {
                                 std::this_thread::yield();
                                 continue;
                             }
                             std::int64_t v;
                             got->copy_out(0, &v, sizeof v);
                             EXPECT_EQ(v >> 32, st.tag);
                             ++received;
                             continue;
                         }
                         std::int64_t v;
                         got->copy_out(0, &v, sizeof v);
                         EXPECT_EQ(v >> 32, tag);
                         ++received;
                     }
                 }
             });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Virtual-time properties

TEST(Integration, ClocksAreMonotoneAcrossCommunication) {
    DualNet g(3);
    run_spmd(g.grid, {g.nodes[0], g.nodes[1], g.nodes[2]},
             [&](Process& proc, int rank, int size) {
                 ptm::Runtime rt(proc);
                 auto world =
                     mpi::World::create(rt, "mono", {0, 1, 2});
                 mpi::Comm& comm = world->world();
                 SimTime last = proc.now();
                 util::Rng rng(static_cast<std::uint64_t>(rank) + 1);
                 for (int i = 0; i < 30; ++i) {
                     const int peer = (rank + 1) % size;
                     const int from = (rank + size - 1) % size;
                     util::ByteBuf b(rng.below(5000) + 1);
                     comm.send_msg(util::to_message(std::move(b)), peer, 0);
                     comm.recv_msg(from, 0);
                     proc.compute(static_cast<SimTime>(rng.below(10000)));
                     ASSERT_GE(proc.now(), last);
                     last = proc.now();
                 }
                 // A barrier leaves everyone at >= the max of all clocks.
                 const SimTime before = proc.now();
                 comm.barrier();
                 ASSERT_GE(proc.now(), before);
             });
    g.grid.join_all();
}

TEST(Integration, BandwidthNeverExceedsLinkCapacity) {
    // Saturate one Myrinet link from two concurrent middleware systems and
    // check the aggregate stays within the modeled hardware capacity.
    DualNet g(2);
    constexpr std::size_t kLen = 1 << 20;
    constexpr int kIters = 10;
    std::atomic<std::int64_t> total_ns{0};
    run_spmd(g.grid, {g.nodes[0], g.nodes[1]},
             [&](Process& proc, int rank, int) {
                 ptm::Runtime rt(proc);
                 auto world = mpi::World::create(rt, "cap", {0, 1});
                 mpi::Comm& comm = world->world();
                 if (rank == 0) {
                     const SimTime t0 = proc.now();
                     for (int i = 0; i < kIters; ++i)
                         comm.send_msg(
                             util::to_message(util::ByteBuf(kLen)), 1, 0);
                     char ack;
                     comm.recv_bytes(&ack, 1, 1, 1);
                     total_ns = proc.now() - t0;
                 } else {
                     for (int i = 0; i < kIters; ++i) comm.recv_msg(0, 0);
                     comm.send_bytes("k", 1, 0, 1);
                 }
             });
    g.grid.join_all();
    const double bw =
        mb_per_s(static_cast<std::uint64_t>(kIters) * kLen, total_ns.load());
    EXPECT_LE(bw, 240.0 + 1e-6); // attainable Myrinet-2000 bandwidth
    EXPECT_GT(bw, 230.0);
}
