// Tests for the PadicoTM runtime: arbitration engine, module manager,
// automatic network selection, Circuit, VLink, personalities and the
// security personality.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "madeleine/madeleine.hpp"
#include "padicotm/circuit.hpp"
#include "padicotm/personality.hpp"
#include "padicotm/runtime.hpp"
#include "padicotm/vlink.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::ptm;

namespace {

util::Message text_msg(const std::string& s) {
    return util::to_message(util::ByteBuf(s.data(), s.size()));
}

std::string msg_text(const util::Message& m) {
    auto flat = m.gather();
    return std::string(reinterpret_cast<const char*>(flat.data()),
                       flat.size());
}

/// Two machines with both a Myrinet SAN and a Fast-Ethernet LAN.
struct DualNetPair {
    Grid grid;
    Machine* a;
    Machine* b;
    NetworkSegment* myri;
    NetworkSegment* eth;
    DualNetPair() {
        myri = &grid.add_segment("myri0", NetTech::Myrinet2000);
        eth = &grid.add_segment("eth0", NetTech::FastEthernet);
        a = &grid.add_machine("ma");
        b = &grid.add_machine("mb");
        for (auto* m : {a, b}) {
            grid.attach(*m, *myri);
            grid.attach(*m, *eth);
        }
    }
};

class NullModule : public Module {
public:
    std::string name() const override { return "null"; }
};

} // namespace

// ---------------------------------------------------------------------------
// Engine / arbitration

TEST(Engine, OpensAllAdaptersOnce) {
    DualNetPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        EXPECT_EQ(rt.engine().segments().size(), 2u);
        EXPECT_NE(rt.engine().port_on(*p.myri), nullptr);
        EXPECT_NE(rt.engine().port_on(*p.eth), nullptr);
        EXPECT_EQ(proc.machine().adapter_on(*p.myri)->owner_tag(), "padicotm");
    });
    p.grid.join_all();
}

TEST(Engine, DegradesWhenSanAlreadyOwned) {
    // Competitive-access failure mode: raw MPI grabbed the Myrinet NIC
    // first; PadicoTM degrades to the LAN instead of crashing.
    DualNetPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        mad::Endpoint raw(proc, *p.myri, "mpich/bip");
        Runtime rt(proc);
        EXPECT_EQ(rt.engine().port_on(*p.myri), nullptr);
        EXPECT_NE(rt.engine().port_on(*p.eth), nullptr);
    });
    p.grid.join_all();
}

TEST(Engine, DemuxBuffersEarlyPackets) {
    Demux demux;
    Packet pkt;
    pkt.channel = 42;
    pkt.src = 7;
    pkt.deliver_time = usec(5.0);
    pkt.payload = text_msg("early");
    demux.route(std::move(pkt), nsec(300));
    // Subscribe after arrival: the packet must be replayed.
    auto box = demux.subscribe(42);
    auto d = box->try_pop();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->src, 7u);
    EXPECT_EQ(d->deliver_time, usec(5.0) + nsec(300));
    EXPECT_EQ(msg_text(d->payload), "early");
}

// ---------------------------------------------------------------------------
// Module manager

TEST(Modules, RegisterLoadUnload) {
    ModuleManager::register_type(
        "null", [](Runtime&) { return std::make_shared<NullModule>(); });
    EXPECT_TRUE(ModuleManager::has_type("null"));
    EXPECT_FALSE(ModuleManager::has_type("bogus"));

    Grid g;
    auto& eth = g.add_segment("eth", NetTech::FastEthernet);
    auto& m = g.add_machine("h");
    g.attach(m, eth);
    g.spawn(m, [&](Process& proc) {
        Runtime rt(proc);
        EXPECT_THROW(rt.modules().load("bogus"), LookupError);
        auto mod = rt.modules().load("null");
        EXPECT_EQ(mod->name(), "null");
        EXPECT_EQ(rt.modules().load("null"), mod); // idempotent
        EXPECT_TRUE(rt.modules().is_loaded("null"));
        EXPECT_EQ(rt.modules().loaded().size(), 1u);
        rt.modules().unload("null");
        EXPECT_FALSE(rt.modules().is_loaded("null"));
        EXPECT_THROW(rt.modules().unload("null"), LookupError);
    });
    g.join_all();
}

// ---------------------------------------------------------------------------
// Network selection

TEST(Selection, PrefersSanOverLan) {
    DualNetPair p;
    osal::Barrier up(2);
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        NetworkSegment* seg = rt.select_segment(1);
        ASSERT_NE(seg, nullptr);
        EXPECT_EQ(seg, p.myri);
        up.arrive_and_wait();
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    p.grid.join_all();
}

TEST(Selection, FallsBackWhenPeerNotOnSan) {
    // Peer machine has no Myrinet: the pair maps onto the LAN.
    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, myri);
    grid.attach(a, eth);
    grid.attach(b, eth);
    osal::Barrier up(2);
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        EXPECT_EQ(rt.select_segment(1), &eth);
        up.arrive_and_wait();
    });
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    grid.join_all();
}

TEST(Selection, UnreachablePeerIsNull) {
    Grid grid;
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& wan = grid.add_segment("wan0", NetTech::Wan);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, eth);
    grid.attach(b, wan);
    osal::Barrier up(2);
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        EXPECT_EQ(rt.select_segment(1), nullptr);
        EXPECT_THROW(rt.post(1, 5, text_msg("x")), LookupError);
        up.arrive_and_wait();
    });
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    grid.join_all();
}

// ---------------------------------------------------------------------------
// Circuit

TEST(Circuit, CollectiveCreationRanks) {
    DualNetPair p;
    run_spmd(p.grid, {p.a, p.b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "ranks", {0, 1});
        EXPECT_EQ(c.rank(), rank);
        EXPECT_EQ(c.size(), 2);
    });
    p.grid.join_all();
}

TEST(Circuit, TagAndSourceMatchingWithWildcards) {
    DualNetPair p;
    run_spmd(p.grid, {p.a, p.b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "match", {0, 1});
        if (rank == 0) {
            c.send(1, 7, text_msg("seven"));
            c.send(1, 9, text_msg("nine"));
            c.send(1, 7, text_msg("seven2"));
        } else {
            // Specific tag out of arrival order:
            EXPECT_EQ(msg_text(c.recv(0, 9)), "nine");
            int src = -2, tag = -2;
            EXPECT_EQ(msg_text(c.recv(kAnyRank, kAnyTag, &src, &tag)),
                      "seven");
            EXPECT_EQ(src, 0);
            EXPECT_EQ(tag, 7);
            EXPECT_EQ(msg_text(c.recv(0, 7)), "seven2");
            EXPECT_FALSE(c.try_recv(kAnyRank, kAnyTag).has_value());
        }
    });
    p.grid.join_all();
}

TEST(Circuit, MapsOntoSanAndReachesMyrinetLatency) {
    DualNetPair p;
    run_spmd(p.grid, {p.a, p.b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "lat", {0, 1});
        constexpr int kIters = 10;
        if (rank == 0) {
            const SimTime t0 = proc.now();
            for (int i = 0; i < kIters; ++i) {
                c.send(1, 0, text_msg("x"));
                c.recv(1, 0);
            }
            const double half_rtt =
                to_usec(proc.now() - t0) / (2.0 * kIters);
            // Madeleine-level one-way: ~7 hw + 2*1.2 sw + demux 0.3 ~ 9.7us
            EXPECT_NEAR(half_rtt, 9.7, 0.5);
        } else {
            for (int i = 0; i < kIters; ++i) {
                c.recv(0, 0);
                c.send(0, 0, text_msg("x"));
            }
        }
    });
    p.grid.join_all();
}

TEST(Circuit, CrossParadigmOnLanWorks) {
    // Same Circuit code, but the only common network is a LAN: the
    // abstraction layer maps the parallel interface onto the TCP driver.
    Grid grid;
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, eth);
    grid.attach(b, eth);
    run_spmd(grid, {&a, &b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "lan", {0, 1});
        if (rank == 0) {
            c.send(1, 3, text_msg("over-tcp"));
        } else {
            EXPECT_EQ(msg_text(c.recv(0, 3)), "over-tcp");
            // TCP path: latency dominated by the 50us LAN hop.
            EXPECT_GT(proc.now(), usec(50.0));
        }
    });
    grid.join_all();
}

TEST(Circuit, MemberListDisagreementFails) {
    DualNetPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        EXPECT_THROW(Circuit(rt, "solo", {1}), UsageError); // not a member
    });
    p.grid.join_all();
}

// ---------------------------------------------------------------------------
// VLink

TEST(VLink, ConnectAcceptEchoOnSan) {
    DualNetPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "echo");
        VLink s = listener.accept();
        ASSERT_TRUE(s.valid());
        // The stream must have been mapped cross-paradigm onto Myrinet.
        // (Checked while the peer is still alive: the mapping is resolved
        // against the peer's currently open ports.)
        EXPECT_EQ(s.mapped_segment(), p.myri);
        char buf[5];
        s.read(buf, 5);
        EXPECT_EQ(std::string(buf, 5), "hello");
        s.write("world", 5);
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        VLink s = VLink::connect(rt, "echo");
        s.write("hello", 5);
        char buf[5];
        s.read(buf, 5);
        EXPECT_EQ(std::string(buf, 5), "world");
    });
    p.grid.join_all();
}

TEST(VLink, CloseDeliversEof) {
    DualNetPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "eof");
        VLink s = listener.accept();
        auto m = s.read_msg_opt(3);
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(msg_text(*m), "bye");
        EXPECT_FALSE(s.read_msg_opt(1).has_value()); // EOF after close
        EXPECT_THROW(s.read_msg(1), ProtocolError);
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        VLink s = VLink::connect(rt, "eof");
        s.write("bye", 3);
        s.close();
        EXPECT_THROW(s.write("x", 1), UsageError);
    });
    p.grid.join_all();
}

TEST(VLink, ListenerShutdownUnblocksAccept) {
    DualNetPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "never");
        std::atomic<bool> unblocked{false};
        std::thread t([&] {
            VLink v = listener.accept();
            EXPECT_FALSE(v.valid());
            unblocked = true;
        });
        listener.shutdown();
        t.join();
        EXPECT_TRUE(unblocked.load());
    });
    p.grid.join_all();
}

// ---------------------------------------------------------------------------
// Readiness/teardown races (the event-driven server core leans on these)

TEST(Engine, DemuxReplaysPendingInOrderUnderConcurrentSubscribe) {
    // Send-before-subscribe race: a producer routes a stream of packets
    // while the consumer subscribes mid-stream. Every packet must arrive
    // exactly once and in order, whether it was replayed from the pending
    // buffer or delivered straight to the mailbox.
    for (int round = 0; round < 20; ++round) {
        Demux demux;
        constexpr int kMsgs = 64;
        std::thread producer([&] {
            for (int i = 0; i < kMsgs; ++i) {
                Packet pkt;
                pkt.channel = 7;
                pkt.src = 1;
                pkt.payload = text_msg(std::to_string(i));
                demux.route(std::move(pkt), 0);
            }
        });
        auto box = demux.subscribe(7);
        producer.join();
        for (int i = 0; i < kMsgs; ++i) {
            auto d = box->pop();
            ASSERT_TRUE(d.has_value());
            EXPECT_EQ(msg_text(d->payload), std::to_string(i));
        }
        EXPECT_FALSE(box->try_pop().has_value());
        EXPECT_EQ(demux.dropped_pending(), 0u);
    }
}

TEST(Engine, DroppedPendingCountedOnUnsubscribeAndCloseAll) {
    Demux demux;
    auto orphan = [&](ChannelId ch) {
        Packet pkt;
        pkt.channel = ch;
        pkt.src = 2;
        pkt.payload = text_msg("orphan");
        demux.route(std::move(pkt), 0);
    };
    orphan(5);
    orphan(5);
    orphan(9);
    EXPECT_EQ(demux.dropped_pending(), 0u); // still buffered, not dropped
    demux.unsubscribe(5); // never-subscribed channel holding 2 deliveries
    EXPECT_EQ(demux.dropped_pending(), 2u);
    demux.close_all(); // channel 9 still orphaned
    EXPECT_EQ(demux.dropped_pending(), 3u);

    // Delivered traffic is never counted, even when discarded unread.
    Demux clean;
    auto box = clean.subscribe(4);
    Packet pkt;
    pkt.channel = 4;
    pkt.src = 3;
    pkt.payload = text_msg("read-me-not");
    clean.route(std::move(pkt), 0);
    clean.unsubscribe(4);
    clean.close_all();
    EXPECT_EQ(clean.dropped_pending(), 0u);
    EXPECT_TRUE(box->try_pop().has_value()); // it reached the mailbox
}

TEST(VLink, ShutdownRacesSecondAccept) {
    // shutdown() concurrent with another thread (re-)entering accept():
    // the racing accept must return an invalid link — never hang — and
    // the already-accepted stream must stay usable.
    for (int round = 0; round < 5; ++round) {
        DualNetPair p;
        const std::string service = "race" + std::to_string(round);
        osal::Event first_served;
        p.grid.spawn(*p.a, [&](Process& proc) {
            Runtime rt(proc);
            VLinkListener listener(rt, service);
            std::atomic<bool> second_returned{false};
            std::thread acceptor([&] {
                VLink s = listener.accept();
                ASSERT_TRUE(s.valid());
                char b;
                s.read(&b, 1);
                s.write(&b, 1);
                first_served.set();
                VLink s2 = listener.accept(); // races shutdown() below
                EXPECT_FALSE(s2.valid());
                second_returned = true;
            });
            first_served.wait();
            listener.shutdown();
            acceptor.join();
            EXPECT_TRUE(second_returned.load());
            EXPECT_TRUE(listener.closed());
        });
        p.grid.spawn(*p.b, [&](Process& proc) {
            Runtime rt(proc);
            VLink c = VLink::connect(rt, service);
            char b = 'x';
            c.write(&b, 1);
            c.read(&b, 1);
            EXPECT_EQ(b, 'x');
            c.close();
        });
        p.grid.join_all();
    }
}

TEST(VLink, AbortUnblocksConcurrentReader) {
    DualNetPair p;
    osal::Event done;
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "abort-race");
        VLink s = listener.accept();
        ASSERT_TRUE(s.valid());
        std::atomic<bool> unblocked{false};
        std::thread reader([&] {
            auto m = s.read_msg_opt(16); // blocks: the peer never writes
            EXPECT_FALSE(m.has_value());
            EXPECT_TRUE(s.at_eof());
            unblocked = true;
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_FALSE(unblocked.load());
        s.abort(); // from another thread, while the reader is parked
        reader.join();
        EXPECT_TRUE(unblocked.load());
        done.set();
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        VLink c = VLink::connect(rt, "abort-race");
        done.wait();
        c.close();
    });
    p.grid.join_all();
}

TEST(VLink, ThroughputOnSanBeatsLanByOrderOfMagnitude) {
    // The core PadicoTM claim: the same distributed-paradigm stream runs at
    // SAN speed when a SAN is available.
    for (bool with_san : {true, false}) {
        Grid grid;
        auto* myri = with_san
                         ? &grid.add_segment("myri0", NetTech::Myrinet2000)
                         : nullptr;
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        auto& a = grid.add_machine("ma");
        auto& b = grid.add_machine("mb");
        for (auto* m : {&a, &b}) {
            if (myri) grid.attach(*m, *myri);
            grid.attach(*m, eth);
        }
        constexpr std::size_t kLen = 4 * 1024 * 1024;
        grid.spawn(b, [&](Process& proc) {
            Runtime rt(proc);
            VLinkListener listener(rt, "bulk");
            VLink s = listener.accept();
            auto m = s.read_msg(kLen);
            s.write("k", 1);
        });
        grid.spawn(a, [&](Process& proc) {
            Runtime rt(proc);
            VLink s = VLink::connect(rt, "bulk");
            const SimTime t0 = proc.now();
            util::ByteBuf data(kLen);
            s.write(util::to_message(std::move(data)));
            char ack;
            s.read(&ack, 1);
            const double bw = mb_per_s(kLen, proc.now() - t0);
            if (with_san) {
                EXPECT_GT(bw, 200.0);
                EXPECT_LE(bw, 240.0);
            } else {
                EXPECT_GT(bw, 10.0);
                EXPECT_LT(bw, 11.3);
            }
        });
        grid.join_all();
    }
}

// ---------------------------------------------------------------------------
// Security personality

TEST(Security, EncryptsOnInsecureWanOnly) {
    Grid grid;
    auto& wan = grid.add_segment("wan0", NetTech::Wan);
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, wan);
    grid.attach(b, wan);
    grid.attach(a, eth);
    grid.attach(b, eth);
    osal::Barrier up(2);
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        EXPECT_FALSE(rt.would_encrypt(eth)); // secure LAN: skip crypto
        EXPECT_TRUE(rt.would_encrypt(wan));  // untrusted WAN: encrypt
        up.arrive_and_wait();
    });
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    grid.join_all();
}

TEST(Security, WanStreamIsScrambledOnTheWireAndDecrypted) {
    Grid grid;
    auto& wan = grid.add_segment("wan0", NetTech::Wan);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, wan);
    grid.attach(b, wan);
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "sec");
        VLink s = listener.accept();
        char buf[6];
        s.read(buf, 6);
        EXPECT_EQ(std::string(buf, 6), "secret"); // decrypted transparently
    });
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        VLink s = VLink::connect(rt, "sec");
        const SimTime t0 = proc.now();
        s.write("secret", 6);
        // crypto cost charged (tiny but non-zero beyond wire costs)
        EXPECT_GT(proc.now(), t0);
    });
    grid.join_all();
}

TEST(Security, CryptRoundTripsAndActuallyScrambles) {
    util::Message m = text_msg("the quick brown fox");
    util::Message enc = ptm::crypt(m);
    EXPECT_NE(msg_text(enc), msg_text(m));
    EXPECT_EQ(msg_text(ptm::crypt(enc)), msg_text(m));
}

TEST(Security, CryptMatchesByteSerialReference) {
    // crypt() generates the keystream 8 bytes at a time through precomputed
    // LCG jumps; it must stay byte-exact with the original one-step-per-byte
    // generator, or peers built from different revisions could not decrypt
    // each other. The reference below IS that original loop.
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1021u}) {
        util::ByteBuf plain(n);
        for (std::size_t i = 0; i < n; ++i)
            plain.data()[i] = static_cast<util::byte>(i * 131 + 7);

        util::ByteBuf expect(plain.data(), plain.size());
        std::uint32_t key = 0x9d2c5680u;
        for (std::size_t i = 0; i < n; ++i) {
            key = key * 1664525u + 1013904223u;
            expect.data()[i] ^= static_cast<util::byte>(key >> 24);
        }

        const util::ByteBuf got =
            ptm::crypt(util::to_message(
                           util::ByteBuf(plain.data(), plain.size())))
                .gather();
        EXPECT_EQ(got, expect) << "length " << n;
    }
}

TEST(Security, EncryptAlwaysCoversSecureSegments) {
    DualNetPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        RuntimeOptions opts;
        opts.encrypt_always = true;
        Runtime rt(proc, opts);
        EXPECT_TRUE(rt.would_encrypt(*p.myri));
        EXPECT_TRUE(rt.would_encrypt(*p.eth));
    });
    p.grid.join_all();
}

// ---------------------------------------------------------------------------
// Traffic accounting

TEST(Stats, CountsMessagesBytesAndEncryptionPerSegment) {
    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& wan = grid.add_segment("wan0", NetTech::Wan);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    for (auto* m : {&a, &b}) {
        grid.attach(*m, myri);
        grid.attach(*m, wan);
    }
    osal::Barrier up(2);
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        const ChannelId ch = proc.grid().channel_id("stats");
        rt.post(1, ch, text_msg("0123456789")); // SAN, clear
        rt.post(1, ch, text_msg("0123456789"));
        const auto stats = rt.stats();
        ASSERT_EQ(stats.by_segment.count("myri0"), 1u);
        EXPECT_EQ(stats.by_segment.at("myri0").messages, 2u);
        EXPECT_EQ(stats.by_segment.at("myri0").bytes, 20u);
        EXPECT_EQ(stats.by_segment.at("myri0").encrypted_messages, 0u);
        EXPECT_EQ(stats.total_bytes(), 20u);
        EXPECT_NE(stats.to_string().find("myri0: 2 msgs"),
                  std::string::npos);
        up.arrive_and_wait();
    });
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    grid.join_all();
}

TEST(Stats, EncryptedWanTrafficIsFlagged) {
    Grid grid;
    auto& wan = grid.add_segment("wan0", NetTech::Wan);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, wan);
    grid.attach(b, wan);
    osal::Barrier up(2);
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        rt.post(1, proc.grid().channel_id("sec-stats"), text_msg("secret"));
        const auto stats = rt.stats();
        EXPECT_EQ(stats.by_segment.at("wan0").encrypted_messages, 1u);
        up.arrive_and_wait();
    });
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc);
        up.arrive_and_wait();
        up.arrive_and_wait();
    });
    grid.join_all();
}

// ---------------------------------------------------------------------------
// Personalities

TEST(Personality, BsdSocketsRoundTrip) {
    DualNetPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        BsdSocketApi api(rt);
        const int lfd = api.pad_listen("bsd");
        const int fd = api.pad_accept(lfd);
        char buf[4];
        EXPECT_EQ(api.pad_recv(fd, buf, 4), 4);
        EXPECT_EQ(std::string(buf, 4), "ping");
        EXPECT_EQ(api.pad_send(fd, "pong", 4), 4);
        EXPECT_EQ(api.pad_recv(fd, buf, 1), 0); // EOF after client close
        api.pad_close(fd);
        EXPECT_THROW(api.pad_send(fd, "x", 1), UsageError);
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        BsdSocketApi api(rt);
        const int fd = api.pad_connect("bsd");
        EXPECT_EQ(api.pad_send(fd, "ping", 4), 4);
        char buf[4];
        EXPECT_EQ(api.pad_recv(fd, buf, 4), 4);
        EXPECT_EQ(std::string(buf, 4), "pong");
        api.pad_close(fd);
    });
    p.grid.join_all();
}

TEST(Personality, AioReadWrite) {
    DualNetPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "aio");
        VLink s = listener.accept();
        AioApi aio(rt);
        char buf[5] = {};
        auto rd = aio.aio_read(s, buf, 5);
        EXPECT_EQ(aio.aio_suspend(rd), 5);
        EXPECT_TRUE(aio.aio_done(rd));
        EXPECT_EQ(std::string(buf, 5), "async");
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        Runtime rt(proc);
        VLink s = VLink::connect(rt, "aio");
        AioApi aio(rt);
        auto wr = aio.aio_write(s, "async", 5);
        EXPECT_EQ(aio.aio_suspend(wr), 5);
    });
    p.grid.join_all();
}

TEST(Personality, MadeleinePackUnpack) {
    DualNetPair p;
    run_spmd(p.grid, {p.a, p.b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "madapi", {0, 1});
        MadApi api(c);
        if (rank == 0) {
            auto conn = api.begin_packing(1);
            const std::int32_t x = 42;
            const double y = 2.5;
            conn.pack(&x, sizeof x);
            conn.pack(&y, sizeof y);
            conn.end_packing();
        } else {
            auto conn = api.begin_unpacking(0);
            std::int32_t x = 0;
            double y = 0;
            conn.unpack(&x, sizeof x);
            conn.unpack(&y, sizeof y);
            EXPECT_EQ(x, 42);
            EXPECT_DOUBLE_EQ(y, 2.5);
            conn.end_unpacking();
        }
    });
    p.grid.join_all();
}

TEST(Personality, FastMessagesHandlers) {
    DualNetPair p;
    run_spmd(p.grid, {p.a, p.b}, [&](Process& proc, int rank, int) {
        Runtime rt(proc);
        Circuit c(rt, "fmapi", {0, 1});
        FmApi api(c);
        if (rank == 0) {
            const std::uint64_t payload = 0xdeadbeefULL;
            api.fm_send(1, 5, &payload, sizeof payload);
        } else {
            std::uint64_t got = 0;
            int src = -1;
            EXPECT_EQ(api.fm_extract(5, &got, sizeof got, &src),
                      sizeof(std::uint64_t));
            EXPECT_EQ(got, 0xdeadbeefULL);
            EXPECT_EQ(src, 0);
        }
    });
    p.grid.join_all();
}
