// Fabric stress scenario compiled wholesale under ThreadSanitizer and run
// as part of tier-1 (see tests/CMakeLists.txt: every translation unit it
// touches — fabric AND util — is recompiled with -fsanitize=thread, so
// races in the sharded data plane itself are visible, not just in this
// file). Standalone main instead of gtest so no uninstrumented library
// code runs on the hot threads.
//
// Scenario: disjoint streaming pairs, a shared incast sink (rx-shard
// contention on one NIC), and a process churning its port open/closed to
// republish the lock-free route table while traffic flows.
//
// A second phase runs the same recompile-everything treatment over the
// zone layer: two clusters under a WAN, gateway relays forwarding wrapped
// frames in both directions while a member churns its port to republish
// the per-zone tables the relays read lock-free.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fabric/grid.hpp"
#include "fabric/topology.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {
int failures = 0;
void check(bool ok, const char* what) {
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    }
}
// Cross-zone traffic under the sanitizers: two clusters, relays on both
// gateways, opposing streams crossing the backbone while a bystander
// churns its LAN port (zone-scoped republish during relay reads).
void zoned_phase() {
    constexpr int kMsgs = 200;
    constexpr std::size_t kBytes = 512;

    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 4;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    WanZone& wan = topo.add_wan("wan", NetTech::Wan);
    wan.link(c0);
    wan.link(c1);
    const ChannelId ch = g.channel_id("zstress");

    std::atomic<bool> relay_stop{false};
    std::atomic<bool> churn_stop{false};
    std::atomic<int> rx_done{0};
    for (ClusterZone* c : {&c0, &c1})
        g.spawn(c->gateway(), [&topo, &relay_stop](Process& p) {
            relay_loop(topo, p, relay_stop);
        });

    ProcessId rx_ids[2] = {kNoProcess, kNoProcess};
    osal::Event rx_up[2];
    ClusterZone* zones[2] = {&c0, &c1};
    for (int side = 0; side < 2; ++side) {
        ClusterZone& mine = *zones[side];
        NetworkSegment& lan = *mine.segments().front();
        Process& rx = g.spawn(*mine.members()[2], [&, side](Process& proc) {
            auto port = proc.machine()
                            .adapter_on(*zones[side]->segments().front())
                            ->open(proc, "app");
            rx_up[side].set();
            for (int m = 0; m < kMsgs; ++m) {
                auto pkt = port->recv();
                check(pkt.has_value(), "zoned receiver starved");
                if (!pkt) break;
                proc.clock().merge(pkt->deliver_time);
            }
            ++rx_done;
        });
        rx_ids[side] = rx.id();
        // Sender on the OTHER side streams at this receiver through the
        // gateways.
        ClusterZone& far = *zones[1 - side];
        g.spawn(*far.members()[1], [&, side](Process& proc) {
            auto port = proc.machine()
                            .adapter_on(*zones[1 - side]->segments().front())
                            ->open(proc, "app");
            rx_up[side].wait();
            for (int m = 0; m < kMsgs; ++m) {
                proc.compute(usec(2.0));
                proc.clock().set(send_routed(
                    topo, proc, *port, rx_ids[side], ch,
                    util::to_message(util::ByteBuf(kBytes))));
            }
        });
        (void)lan;
    }
    g.spawn(*c0.members()[3], [&](Process& proc) { // zone-table churn
        Adapter* nic = proc.machine().adapter_on(*c0.segments().front());
        while (!churn_stop.load()) {
            auto port = nic->open(proc, "churn");
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        relay_stop.store(true, std::memory_order_release);
    });
    g.spawn(*c1.members()[3], [&](Process& proc) { // watches for the end
        while (rx_done.load() < 2)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        churn_stop.store(true, std::memory_order_release);
    });
    g.join_all();

    check(rx_done.load() == 2, "zoned receivers incomplete");
    std::uint64_t retired = 0;
    for (const NetworkSegment* s : {c0.segments().front(),
                                    c1.segments().front()})
        retired += s->route_tables_retired();
    check(retired > 0, "churn retired no superseded route tables");
}

} // namespace

int main() {
    constexpr int kPairs = 4;
    constexpr int kMsgs = 300;
    constexpr std::size_t kBytes = 1024;
    constexpr int kIncastEvery = 8;

    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    std::vector<Machine*> ms;
    for (int i = 0; i < 2 * kPairs + 2; ++i) {
        ms.push_back(&g.add_machine("s" + std::to_string(i)));
        g.attach(*ms.back(), seg);
    }
    const ChannelId ch = g.channel_id("stress");
    const ProcessId sink_pid = 2 * kPairs;
    std::atomic<bool> stop_churn{false};
    osal::Barrier start(2 * kPairs + 1);

    for (int i = 0; i < kPairs; ++i) {
        const ProcessId rx_pid = static_cast<ProcessId>(2 * i + 1);
        g.spawn(*ms[static_cast<std::size_t>(2 * i)],
                [&, rx_pid](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "st");
            start.arrive_and_wait();
            for (int m = 0; m < kMsgs; ++m) {
                proc.compute(usec(5.0));
                const ProcessId dst =
                    m % kIncastEvery == 0 ? sink_pid : rx_pid;
                proc.clock().set(port->send(
                    dst, ch, util::to_message(util::ByteBuf(kBytes)),
                    proc.now()));
            }
        });
        g.spawn(*ms[static_cast<std::size_t>(2 * i + 1)],
                [&](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "st");
            start.arrive_and_wait();
            const int expect =
                kMsgs - (kMsgs + kIncastEvery - 1) / kIncastEvery;
            for (int m = 0; m < expect; ++m) {
                auto pkt = port->recv();
                check(pkt.has_value(), "pair receiver starved");
                if (!pkt) return;
                proc.clock().merge(pkt->deliver_time);
            }
        });
    }
    g.spawn(*ms[static_cast<std::size_t>(2 * kPairs)],
            [&](Process& proc) { // incast sink
        auto port = proc.machine().adapter_on(seg)->open(proc, "st");
        start.arrive_and_wait();
        const int expect =
            kPairs * ((kMsgs + kIncastEvery - 1) / kIncastEvery);
        for (int m = 0; m < expect; ++m) {
            auto pkt = port->recv();
            check(pkt.has_value(), "incast sink starved");
            if (!pkt) break;
            proc.clock().merge(pkt->deliver_time);
        }
        stop_churn.store(true);
    });
    g.spawn(*ms[static_cast<std::size_t>(2 * kPairs + 1)],
            [&](Process& proc) { // route churn
        Adapter* nic = proc.machine().adapter_on(seg);
        while (!stop_churn.load()) {
            auto port = nic->open(proc, "churn");
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    });
    g.join_all();

    std::uint64_t tx_total = 0, rx_total = 0;
    for (Machine* m : ms) {
        const AdapterCounters c = m->adapters()[0]->counters();
        tx_total += c.tx_packets;
        rx_total += c.rx_packets;
    }
    check(tx_total == static_cast<std::uint64_t>(kPairs) * kMsgs,
          "tx packet count off");
    check(rx_total == tx_total, "rx packet count off");

    zoned_phase();

    if (failures == 0) std::puts("stress_fabric_tsan: OK");
    return failures == 0 ? 0 : 1;
}
