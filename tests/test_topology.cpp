/// \file test_topology.cpp
/// Hierarchical routing zones: zone-tree construction, shared-prefix
/// (ancestor-walk) route resolution, gateway hop composition across WANs,
/// generated fat-tree/dragonfly wiring determinism, the topology DSL and
/// its error reporting, flat-XML compatibility, zone-scoped route-cache
/// invalidation and superseded route-table retirement.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "fabric/registry.hpp"
#include "fabric/topology.hpp"
#include "osal/sync.hpp"
#include "padicotm/runtime.hpp"
#include "util/cache.hpp"

namespace padico {
namespace {

using namespace padico::fabric;

/// Restore the process-wide fast-lane toggle on scope exit (tests share
/// one binary).
struct LanesGuard {
    explicit LanesGuard(bool on) : prev(util::caches_enabled()) {
        util::set_caches_enabled(on);
    }
    ~LanesGuard() { util::set_caches_enabled(prev); }
    bool prev;
};

/// Every hop must ride a segment both endpoints of the hop are attached
/// to, and the chain must lead from \p a to \p b.
void expect_valid_path(Machine& a, Machine& b, const Path& p) {
    if (&a == &b) {
        EXPECT_TRUE(p.empty());
        return;
    }
    ASSERT_FALSE(p.empty());
    const Machine* at = &a;
    for (const Hop& h : p) {
        ASSERT_NE(h.seg, nullptr);
        ASSERT_NE(h.to, nullptr);
        EXPECT_NE(at->adapter_on(*h.seg), nullptr)
            << at->name() << " not attached to " << h.seg->name();
        EXPECT_NE(h.to->adapter_on(*h.seg), nullptr)
            << h.to->name() << " not attached to " << h.seg->name();
        at = h.to;
    }
    EXPECT_EQ(at, &b) << "path ends at " << at->name() << ", want "
                      << b.name();
}

std::string hop_names(const Path& p) {
    std::string s;
    for (const Hop& h : p) s += h.seg->name() + ">" + h.to->name() + ";";
    return s;
}

util::Message text_message(const std::string& text) {
    util::ByteBuf b;
    b.append(text.data(), text.size());
    return util::to_message(std::move(b));
}

std::string message_text(const util::Message& m) {
    std::string s(m.size(), '\0');
    m.copy_out(0, s.data(), s.size());
    return s;
}

// ---------------------------------------------------------------------------
// Zone construction and ancestor-walk resolution

TEST(Zones, FullClusterResolvesSingleHop) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 4;
    ClusterZone& c = topo.add_cluster("c", spec);
    ASSERT_EQ(c.members().size(), 4u);
    ASSERT_EQ(c.segments().size(), 1u);

    Machine& a = *c.members()[1];
    Machine& b = *c.members()[3];
    const Path p = topo.resolve(a, b);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.front().seg, c.segments().front());
    EXPECT_EQ(p.front().to, &b);
    expect_valid_path(a, b, p);
    EXPECT_TRUE(topo.resolve(a, a).empty());
    // Generated segments carry the zone's id, not the flat zone 0.
    EXPECT_NE(c.segments().front()->zone_id(), 0u);
}

TEST(Zones, StarClusterRoutesViaHub) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 3;
    spec.wiring = ClusterWiring::kStar;
    ClusterZone& c = topo.add_cluster("star", spec);

    Machine& a = *c.members()[0];
    Machine& b = *c.members()[2];
    Machine& hub = c.gateway();
    const Path p = topo.resolve(a, b);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.front().to, &hub);
    expect_valid_path(a, b, p);
    // Hub endpoints collapse to one spoke hop.
    EXPECT_EQ(topo.resolve(a, hub).size(), 1u);
    EXPECT_EQ(topo.resolve(hub, b).size(), 1u);
}

TEST(Zones, AncestorWalkAcrossWan) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 3;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    WanZone& wan = topo.add_wan("wan", NetTech::Wan);
    wan.link(c0);
    wan.link(c1);
    EXPECT_EQ(&topo.root(), &wan);
    EXPECT_EQ(c0.parent(), &wan);

    // Non-gateway to non-gateway: LAN to own gateway, backbone between
    // gateways, LAN to the destination — the gateway hop composition.
    Machine& a = *c0.members()[2];
    Machine& b = *c1.members()[1];
    const Path p = topo.resolve(a, b);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].to, &c0.gateway());
    EXPECT_EQ(p[1].to, &c1.gateway());
    EXPECT_EQ(p[2].to, &b);
    expect_valid_path(a, b, p);

    // The source being its cluster's gateway trims the intra-zone prefix.
    const Path q = topo.resolve(c0.gateway(), b);
    ASSERT_EQ(q.size(), 2u);
    expect_valid_path(c0.gateway(), b, q);

    // Same-zone traffic never touches the backbone.
    const Path r = topo.resolve(a, *c0.members()[0]);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.front().seg, c0.segments().front());
}

TEST(Zones, GatewayHopsComposeAcrossNestedWans) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 2;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    ClusterZone& c2 = topo.add_cluster("c2", spec);
    WanZone& site0 = topo.add_wan("s0", NetTech::Wan);
    WanZone& site1 = topo.add_wan("s1", NetTech::Wan);
    site0.link(c0);
    site0.link(c1);
    site1.link(c2);
    WanZone& core = topo.add_wan("core", NetTech::Wan);
    core.link(site0);
    core.link(site1);
    EXPECT_EQ(&topo.root(), &core);
    EXPECT_EQ(topo.zone_count(), 6u);

    // c1 → c2 crosses: c1 LAN, site0 backbone (to site0's gateway = c0's
    // gateway), core backbone, then down into c2. Verify hop-by-hop
    // validity rather than a memorized shape.
    Machine& a = *c1.members()[1];
    Machine& b = *c2.members()[1];
    const Path p = topo.resolve(a, b);
    expect_valid_path(a, b, p);
    EXPECT_GE(p.size(), 3u);
    bool rode_core = false;
    for (const Hop& h : p) rode_core |= h.seg == c0.segments().front();
    // The path must not detour through an unrelated sibling's LAN.
    EXPECT_FALSE(rode_core);

    // Siblings under the same site never ride the core backbone.
    const Path q = topo.resolve(*c0.members()[1], a);
    expect_valid_path(*c0.members()[1], a, q);
    for (const Hop& h : q)
        EXPECT_EQ(h.seg->name().find("core"), std::string::npos)
            << hop_names(q);
}

// ---------------------------------------------------------------------------
// Generated wirings: determinism and validity

TEST(Zones, FatTreeWiringIsDeterministic) {
    FatTreeSpec spec;
    spec.down = {2, 2};
    spec.up = {2, 1};

    auto build = [&](Grid& g, Topology& t) -> FatTreeZone& {
        return t.add_fattree("ft", spec);
    };
    Grid g1, g2;
    Topology t1(g1), t2(g2);
    FatTreeZone& f1 = build(g1, t1);
    FatTreeZone& f2 = build(g2, t2);

    ASSERT_EQ(f1.members().size(), 4u); // prod(down)
    ASSERT_EQ(g1.machines().size(), g2.machines().size());
    for (std::size_t i = 0; i < g1.machines().size(); ++i)
        EXPECT_EQ(g1.machines()[i]->name(), g2.machines()[i]->name());
    ASSERT_EQ(g1.segments().size(), g2.segments().size());
    for (std::size_t i = 0; i < g1.segments().size(); ++i)
        EXPECT_EQ(g1.segments()[i]->name(), g2.segments()[i]->name());

    // Same host pair resolves to the same hop sequence in both builds.
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            const Path p1 = t1.resolve(*f1.members()[i], *f1.members()[j]);
            const Path p2 = t2.resolve(*f2.members()[i], *f2.members()[j]);
            expect_valid_path(*f1.members()[i], *f1.members()[j], p1);
            EXPECT_EQ(hop_names(p1), hop_names(p2));
        }

    // Leaf-mates cross at their shared edge switch; the far pair climbs
    // to the single top switch and back down.
    EXPECT_LT(t1.resolve(*f1.members()[0], *f1.members()[1]).size(),
              t1.resolve(*f1.members()[0], *f1.members()[3]).size());
}

TEST(Zones, DragonflyWiringIsDeterministic) {
    DragonflySpec spec;
    spec.groups = 3;
    spec.routers = 2;
    spec.hosts = 2;

    Grid g1, g2;
    Topology t1(g1), t2(g2);
    DragonflyZone& d1 = t1.add_dragonfly("df", spec);
    DragonflyZone& d2 = t2.add_dragonfly("df", spec);

    ASSERT_EQ(d1.members().size(), 3u * 2u * 2u);
    ASSERT_EQ(g1.machines().size(), g2.machines().size());
    for (std::size_t i = 0; i < g1.machines().size(); ++i)
        EXPECT_EQ(g1.machines()[i]->name(), g2.machines()[i]->name());

    for (std::size_t i = 0; i < d1.members().size(); i += 3)
        for (std::size_t j = 0; j < d1.members().size(); j += 5) {
            const Path p1 = t1.resolve(*d1.members()[i], *d1.members()[j]);
            const Path p2 = t2.resolve(*d2.members()[i], *d2.members()[j]);
            expect_valid_path(*d1.members()[i], *d1.members()[j], p1);
            EXPECT_EQ(hop_names(p1), hop_names(p2));
        }

    // Same-group stays local; cross-group rides exactly one global link.
    Machine& h0 = *d1.members()[0];  // group 0
    Machine& h1 = *d1.members()[1];  // group 0
    Machine& hx = *d1.members()[8];  // group 2
    for (const Hop& h : t1.resolve(h0, h1))
        EXPECT_EQ(h.seg->name().find("gl"), std::string::npos);
    int globals = 0;
    for (const Hop& h : t1.resolve(h0, hx))
        if (h.seg->name().find("gl") != std::string::npos) ++globals;
    EXPECT_EQ(globals, 1);
}

// ---------------------------------------------------------------------------
// DSL and XML builders

TEST(Dsl, BuildsNestedTopology) {
    Grid g;
    auto topo = build_topology_from_dsl(g,
                                        "# two sites under one core\n"
                                        "cluster name=a kind=full size=3\n"
                                        "cluster name=b kind=star size=2\n"
                                        "wan name=core tech=wan link=a,b\n");
    EXPECT_EQ(topo->zone_count(), 3u);
    Zone& a = topo->zone("a");
    Zone& b = topo->zone("b");
    EXPECT_EQ(a.kind(), ZoneKind::Cluster);
    Machine& ma = *a.members()[2];
    Machine& mb = *b.members()[1];
    expect_valid_path(ma, mb, topo->resolve(ma, mb));
    EXPECT_EQ(topo->zone_of(ma), &a);
    EXPECT_EQ(topo->zone_of(mb), &b);
}

TEST(Dsl, ErrorsCarryLineAndDirectiveContext) {
    auto build = [](const std::string& text) {
        Grid g;
        return build_topology_from_dsl(g, text);
    };
    // Unknown key, with the line number.
    try {
        build("cluster name=a kind=full size=2 sizes=4\n");
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("sizes"), std::string::npos);
    }
    // Unknown zone in a wan link, on its line.
    try {
        build("cluster name=a kind=full size=2\n"
              "wan name=w link=a,ghost\n");
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
    }
    // Duplicate zone name surfaces as a dsl error, not a bare conflict.
    EXPECT_THROW(build("cluster name=a kind=full size=2\n"
                       "cluster name=a kind=full size=2\n"),
                 UsageError);
    // Two roots left after linking.
    try {
        build("cluster name=a kind=full size=2\n"
              "cluster name=b kind=full size=2\n");
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("root"), std::string::npos);
    }
    EXPECT_THROW(build("cluster name=a kind=full size=banana\n"),
                 UsageError);
    EXPECT_THROW(build("cluster name=a kind=moebius size=2\n"), UsageError);
    EXPECT_THROW(build("teleport name=a\n"), UsageError);
    EXPECT_THROW(build("# only comments\n"), UsageError);
}

TEST(Xml, ErrorsCarryElementContext) {
    auto build = [](const std::string& xml) {
        Grid g;
        build_grid_from_xml(g, xml);
    };
    // Missing required attribute names the element.
    try {
        build("<grid><segment tech=\"sci\"/></grid>");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_NE(std::string(e.what()).find("<segment>"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("'name'"), std::string::npos);
    }
    // Duplicate segment and machine names are conflicts, with the name.
    try {
        build("<grid><segment name=\"s\" tech=\"sci\"/>"
              "<segment name=\"s\" tech=\"sci\"/></grid>");
        FAIL() << "expected ResourceConflict";
    } catch (const ResourceConflict& e) {
        EXPECT_NE(std::string(e.what()).find("\"s\""), std::string::npos);
    }
    EXPECT_THROW(build("<grid><machine name=\"m\"/>"
                       "<machine name=\"m\"/></grid>"),
                 ResourceConflict);
    // Attaching to an unknown segment names both machine and segment.
    try {
        build("<grid><machine name=\"m\">"
              "<attach segment=\"nope\"/></machine></grid>");
        FAIL() << "expected LookupError";
    } catch (const LookupError& e) {
        EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("\"m\""), std::string::npos);
    }
    // A bad technology is reported against its segment.
    try {
        build("<grid><segment name=\"s\" tech=\"warp\"/></grid>");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_NE(std::string(e.what()).find("\"s\""), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("warp"), std::string::npos);
    }
}

TEST(Xml, FlatCompatRoutesIdenticallyToPreZoneGrid) {
    const std::string xml =
        "<grid>"
        "<segment name=\"eth\" tech=\"fast-ethernet\"/>"
        "<segment name=\"myri\" tech=\"myrinet2000\"/>"
        "<machine name=\"n0\"><attach segment=\"eth\"/>"
        "<attach segment=\"myri\"/></machine>"
        "<machine name=\"n1\"><attach segment=\"eth\"/>"
        "<attach segment=\"myri\"/></machine>"
        "</grid>";

    auto exchange = [](Grid& g) {
        Machine& m0 = *g.find_machine("n0");
        Machine& m1 = *g.find_machine("n1");
        NetworkSegment& eth = *g.find_segment("eth");
        const ChannelId ch = g.channel_id("t");
        std::vector<SimTime> times;
        osal::Event ready, done;
        Process& rx = g.spawn(m1, [&](Process& proc) {
            auto port = m1.adapter_on(eth)->open(proc, "t");
            ready.set();
            for (int i = 0; i < 3; ++i) {
                auto pkt = port->recv();
                ASSERT_TRUE(pkt.has_value());
                times.push_back(pkt->deliver_time);
            }
            done.wait();
        });
        g.spawn(m0, [&](Process& proc) {
            auto port = m0.adapter_on(eth)->open(proc, "t");
            ready.wait();
            for (int i = 0; i < 3; ++i) {
                proc.clock().set(
                    port->send(rx.id(), ch, text_message("x"), proc.now()));
            }
            done.set();
        });
        g.join_all();
        return times;
    };

    Grid flat;
    build_grid_from_xml(flat, xml);
    const auto t_flat = exchange(flat);

    Grid zoned;
    auto topo = build_topology_from_xml(zoned, xml);
    EXPECT_EQ(topo->root().kind(), ZoneKind::Flat);
    const auto t_zoned = exchange(zoned);
    EXPECT_EQ(t_flat, t_zoned);

    // Compat grids keep every segment in zone 0 and resolve over the best
    // (highest-bandwidth) common segment, exactly like the pre-zone code.
    Machine& n0 = *zoned.find_machine("n0");
    Machine& n1 = *zoned.find_machine("n1");
    EXPECT_EQ(zoned.find_segment("eth")->zone_id(), 0u);
    const Path p = topo->resolve(n0, n1);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.front().seg, zoned.common_segments(n0, n1).front());
}

// ---------------------------------------------------------------------------
// Zone-scoped generations and the Runtime route cache

TEST(ZoneStamps, ChurnInUnrelatedZoneLeavesStampUntouched) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 2;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    WanZone& wan = topo.add_wan("wan", NetTech::Wan);
    wan.link(c0);
    wan.link(c1);

    // Open+release one port on \p m's NIC on \p seg: two generation bumps
    // in that segment's zone, none anywhere else.
    auto churn = [&](Machine& m, NetworkSegment& seg) {
        g.spawn(m, [&m, &seg](Process& proc) {
            PortRef port = m.adapter_on(seg)->open(proc, "churn");
        });
        g.join_all();
    };

    Machine& peer = *c0.members()[1]; // attached to c0's LAN only
    Machine& gw = c0.gateway();
    const std::uint64_t before = g.machine_route_stamp(peer);
    const std::uint64_t gw_before = g.machine_route_stamp(gw);

    churn(*c1.members()[1], *c1.segments().front());
    EXPECT_EQ(g.machine_route_stamp(peer), before);

    churn(*c0.members()[0], *c0.segments().front());
    EXPECT_GT(g.machine_route_stamp(peer), before);

    // A gateway straddles LAN and backbone: both zones feed its stamp,
    // so backbone churn (from the far gateway) moves it while the
    // LAN-only peer's stamp stays where the last LAN churn left it.
    const std::uint64_t peer_mid = g.machine_route_stamp(peer);
    const std::uint64_t gw_mid = g.machine_route_stamp(gw);
    EXPECT_GT(gw_mid, gw_before); // the LAN churn above reached it too
    churn(c1.gateway(), *g.find_segment("wan.backbone"));
    EXPECT_GT(g.machine_route_stamp(gw), gw_mid);
    EXPECT_EQ(g.machine_route_stamp(peer), peer_mid);
}

TEST(RouteCache, ZoneScopedInvalidation) {
    LanesGuard lanes(true);
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 3;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    WanZone& wan = topo.add_wan("wan", NetTech::Wan);
    wan.link(c0);
    wan.link(c1);
    NetworkSegment& lan0 = *c0.segments().front();
    Machine& ma = *c0.members()[0];
    Machine& mb = *c0.members()[1];
    Machine& mc = *c0.members()[2]; // churn source in the peer's zone
    Machine& mf = *c1.members()[1]; // churn source in the far zone

    osal::Event peer_up, go_near, far_churned, near_churned, done;

    Process& pb = g.spawn(mb, [&](Process& proc) {
        PortRef port = mb.adapter_on(lan0)->open(proc, "peer");
        peer_up.set();
        done.wait();
    });
    g.spawn(mf, [&](Process& proc) {
        peer_up.wait();
        { PortRef p = mf.adapter_on(*c1.segments().front())
                          ->open(proc, "churn"); }
        far_churned.set();
        done.wait();
    });
    g.spawn(mc, [&](Process& proc) {
        go_near.wait();
        { PortRef p = mc.adapter_on(lan0)->open(proc, "churn"); }
        near_churned.set();
        done.wait();
    });
    g.spawn(ma, [&](Process& proc) {
        ptm::Runtime rt(proc);
        peer_up.wait();
        EXPECT_EQ(rt.select_segment(pb.id()), &lan0);
        EXPECT_EQ(rt.select_segment(pb.id()), &lan0);
        auto rc = rt.stats().route_cache;
        EXPECT_EQ(rc.misses, 1u);
        EXPECT_EQ(rc.hits, 1u);

        // Open+close in the OTHER cluster: global churn, but the peer's
        // zone-scoped stamp is untouched — the entry stays a pure hit.
        far_churned.wait();
        EXPECT_EQ(rt.select_segment(pb.id()), &lan0);
        rc = rt.stats().route_cache;
        EXPECT_EQ(rc.hits, 2u);
        EXPECT_EQ(rc.invalidations, 0u);

        // Churn in the peer's own zone invalidates and re-derives.
        go_near.set();
        near_churned.wait();
        EXPECT_EQ(rt.select_segment(pb.id()), &lan0);
        rc = rt.stats().route_cache;
        EXPECT_EQ(rc.invalidations, 1u);
        EXPECT_EQ(rc.misses, 2u);
        done.set();
    });
    g.join_all();
}

// ---------------------------------------------------------------------------
// Superseded route-table retirement (bounded snapshot retention)

TEST(Retirement, SupersededTablesRetireUnderChurn) {
    LanesGuard lanes(true);
    Grid g;
    NetworkSegment& eth = g.add_segment("eth", NetTech::FastEthernet);
    Machine& m0 = g.add_machine("n0");
    Machine& m1 = g.add_machine("n1");
    g.attach(m0, eth);
    g.attach(m1, eth);

    osal::Event done;
    Process& rx = g.spawn(m1, [&](Process& proc) {
        PortRef port = m1.adapter_on(eth)->open(proc, "rx");
        done.wait();
    });
    g.spawn(m0, [&](Process& proc) {
        // Each open/release publishes a fresh table and supersedes the
        // previous one; with no in-flight readers they must retire at the
        // quiescent point instead of accumulating for the segment's life.
        for (int i = 0; i < 32; ++i) {
            PortRef port = m0.adapter_on(eth)->open(proc, "churn");
            (void)eth.lookup_port(rx.id());
        }
        done.set();
    });
    g.join_all();

    EXPECT_GT(eth.route_tables_retired(), 0u);
    // Retention stays bounded: the live table plus at most a small
    // transient tail, not one table per publish.
    EXPECT_LE(eth.route_tables_retained(), 4u);
}

// ---------------------------------------------------------------------------
// Cross-zone store-and-forward relays

TEST(Relay, DeliversAcrossZonesAndToGatewayResidents) {
    Grid g;
    Topology topo(g);
    ClusterSpec spec;
    spec.size = 2;
    ClusterZone& c0 = topo.add_cluster("c0", spec);
    ClusterZone& c1 = topo.add_cluster("c1", spec);
    WanZone& wan = topo.add_wan("wan", NetTech::Wan);
    wan.link(c0);
    wan.link(c1);
    const ChannelId ch = g.channel_id("relay-test");

    std::atomic<bool> relay_stop{false};
    for (ClusterZone* c : {&c0, &c1})
        g.spawn(c->gateway(), [&topo, &relay_stop](Process& p) {
            relay_loop(topo, p, relay_stop);
        });

    NetworkSegment& lan1 = *c1.segments().front();
    osal::Event rx_done, gw_done;
    SimTime sent_at = 0;

    // Plain member of the far cluster.
    Process& rx = g.spawn(*c1.members()[1], [&](Process& proc) {
        auto port = c1.members()[1]->adapter_on(lan1)->open(proc, "app");
        auto pkt = port->recv();
        ASSERT_TRUE(pkt.has_value());
        EXPECT_EQ(message_text(pkt->payload), "to-member");
        proc.clock().merge(pkt->deliver_time);
        rx_done.set();
    });
    // Endpoint living ON the far gateway: its frames arrive over the
    // backbone addressed to a machine whose app port is on the LAN — the
    // terminal relay must finish the delivery locally.
    Process& gw_rx = g.spawn(*c1.members()[0], [&](Process& proc) {
        auto port = c1.members()[0]->adapter_on(lan1)->open(proc, "app");
        auto pkt = port->recv();
        ASSERT_TRUE(pkt.has_value());
        EXPECT_EQ(message_text(pkt->payload), "to-gateway");
        gw_done.set();
    });

    g.spawn(*c0.members()[1], [&](Process& proc) {
        auto port = c0.members()[1]
                        ->adapter_on(*c0.segments().front())
                        ->open(proc, "app");
        sent_at = send_routed(topo, proc, *port, rx.id(), ch,
                              text_message("to-member"));
        EXPECT_GT(sent_at, 0u);
        send_routed(topo, proc, *port, gw_rx.id(), ch,
                    text_message("to-gateway"));
        rx_done.wait();
        gw_done.wait();
        relay_stop.store(true, std::memory_order_release);
    });
    g.join_all();

    // Delivery happened strictly after the wrapped frame left the sender.
    EXPECT_GE(rx.clock().now(), sent_at);
}

// ---------------------------------------------------------------------------
// Per-zone route-table sizing

TEST(Scale, RouteEntryBoundGrowsSubLinearly) {
    auto max_entries = [](std::size_t n) {
        Grid g;
        std::string dsl;
        const std::size_t clusters = n / 16;
        for (std::size_t c = 0; c < clusters; ++c)
            dsl += "cluster name=c" + std::to_string(c) + " kind=full size=16\n";
        dsl += "wan name=w link=";
        for (std::size_t c = 0; c < clusters; ++c)
            dsl += (c != 0 ? "," : "") + ("c" + std::to_string(c));
        dsl += "\n";
        auto topo = build_topology_from_dsl(g, dsl);
        std::size_t worst = 0;
        for (const auto& m : g.machines())
            worst = std::max(worst, Topology::route_entries_upper_bound(*m));
        return worst;
    };
    const std::size_t small = max_entries(64);
    const std::size_t big = max_entries(256);
    // The grid grew 4x; the per-machine bound must not follow (a flat
    // single-segment grid would sit at exactly n).
    EXPECT_LT(big, 256u / 2);
    EXPECT_LE(big, small * 2);
}

} // namespace
} // namespace padico
