// Exhaustive schedule exploration of a two-pair fabric configuration
// (DESIGN.md §14): two sender/receiver pairs sharing one FastEthernet
// segment, every interleaving the DPOR-lite explorer considers
// non-equivalent executed once. Every complete schedule must deliver the
// same messages, keep the padico::check invariants clean, and land every
// process on the identical final virtual clock — the link model promises
// virtual time is a function of the traffic, not of the thread schedule.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "explore_util.hpp"
#include "fabric/grid.hpp"
#include "fabric/netmodel.hpp"
#include "util/bytes.hpp"

using namespace padico;
namespace sched = osal::sched;
namespace check = osal::check;

namespace {

constexpr int kMsgs = 2;       ///< messages per pair
constexpr std::size_t kBytes = 1000;

struct FabricOutcome {
    sched::Controller::Result res;
    std::array<SimTime, 4> finals{}; ///< final virtual clock, per process
    std::uint64_t signature = 0;     ///< clocks + adapter counters, FNV-1a
    int received = 0;                ///< messages actually delivered
};

/// Build the two-pair grid, run one schedule under \p c, digest the
/// virtual state. The grid and all bodies live inside this call: each run
/// explores a fresh configuration.
FabricOutcome two_pair_run(sched::Controller& c) {
    FabricOutcome out;
    fabric::Grid g;
    auto& seg = g.add_segment("eth0", fabric::NetTech::FastEthernet);
    std::array<fabric::Machine*, 4> ms{};
    for (int i = 0; i < 4; ++i) {
        ms[static_cast<std::size_t>(i)] =
            &g.add_machine("m" + std::to_string(i));
        g.attach(*ms[static_cast<std::size_t>(i)], seg);
    }
    const fabric::ChannelId ch = g.channel_id("explore");
    std::atomic<int> received{0};

    for (int i = 0; i < 2; ++i) {
        const auto rx_pid = static_cast<fabric::ProcessId>(2 * i + 1);
        g.spawn(*ms[static_cast<std::size_t>(2 * i)],
                [&, rx_pid](fabric::Process& proc) {
                    auto port =
                        proc.machine().adapter_on(seg)->open(proc, "ex");
                    for (int m = 0; m < kMsgs; ++m) {
                        proc.compute(usec(5.0));
                        proc.clock().set(port->send(
                            rx_pid, ch,
                            util::to_message(util::ByteBuf(kBytes)),
                            proc.now()));
                    }
                    out.finals[proc.id()] = proc.now();
                });
        g.spawn(*ms[static_cast<std::size_t>(2 * i + 1)],
                [&](fabric::Process& proc) {
                    auto port =
                        proc.machine().adapter_on(seg)->open(proc, "ex");
                    for (int m = 0; m < kMsgs; ++m) {
                        auto pkt = port->recv();
                        if (!pkt.has_value()) return;
                        proc.clock().merge(pkt->deliver_time);
                        received.fetch_add(1);
                    }
                    out.finals[proc.id()] = proc.now();
                });
    }
    out.res = c.run();
    g.join_all();
    out.received = received.load();

    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const SimTime t : out.finals) mix(static_cast<std::uint64_t>(t));
    for (const auto* m : ms) {
        const auto cnt = m->adapter_on(seg)->counters();
        mix(cnt.tx_packets);
        mix(cnt.tx_bytes);
        mix(cnt.rx_packets);
        mix(cnt.rx_bytes);
    }
    out.signature = h;
    return out;
}

} // namespace

TEST(ExploreFabric, TwoPairExhaustiveVirtualTimeIdentity) {
    // Replay workflow: PADICO_SCHED_REPLAY runs one recorded schedule
    // instead of exploring.
    if (auto t = explore::replay_from_env()) {
        explore::reset_check();
        auto err = std::make_shared<std::string>();
        sched::Controller c(sched::replay_picker(*t, err), 1u << 20,
                            t->config);
        const auto o = two_pair_run(c);
        EXPECT_EQ(*err, "") << "replay diverged";
        std::fprintf(stderr, "replayed %s: status=%s signature=%016llx\n",
                     t->config.c_str(), o.res.status_name(),
                     static_cast<unsigned long long>(o.signature));
        return;
    }

    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(50000);
    // Message/queue/waiter granularity: lock order inside the fabric is
    // covered by the check layer and the explore_sched micro-suites;
    // branching on every contended grid lock would make the space
    // factorially large.
    opts.branch_mutexes = false;
    opts.config_name = "fabric-2x2";
    sched::Explorer ex(opts);
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    std::string mismatch;
    while (ex.next()) {
        explore::reset_check();
        sched::Controller c = ex.make_controller();
        const auto o = two_pair_run(c);
        bool ok = true;
        if (o.res.status == sched::Controller::Result::Status::kCompleted) {
            ok = o.received == 2 * kMsgs && check::violation_count() == 0;
            if (ok) {
                if (!have_baseline) {
                    baseline = o.signature;
                    have_baseline = true;
                } else if (o.signature != baseline) {
                    ok = false;
                    mismatch = "virtual-time signature diverged across "
                               "schedules";
                }
            }
        }
        ex.finish(o.res, ok);
    }
    if (ex.failure_found())
        explore::dump_failure(ex, "explore_fabric",
                              "TwoPairExhaustiveVirtualTimeIdentity");
    EXPECT_FALSE(ex.failure_found())
        << ex.failure_reason() << " " << mismatch;
    if (!explore::budget_overridden())
        EXPECT_TRUE(ex.stats().exhausted)
            << "budget too small: " << ex.stats().runs << " runs";
    EXPECT_TRUE(have_baseline);
    std::fprintf(stderr,
                 "fabric-2x2: %llu schedules (%llu completed, %llu "
                 "redundant), max depth %llu, exhausted=%d\n",
                 static_cast<unsigned long long>(ex.stats().runs),
                 static_cast<unsigned long long>(ex.stats().completed),
                 static_cast<unsigned long long>(ex.stats().redundant),
                 static_cast<unsigned long long>(ex.stats().max_depth),
                 ex.stats().exhausted ? 1 : 0);
    RecordProperty("schedules", static_cast<int>(ex.stats().runs));
    RecordProperty("completed", static_cast<int>(ex.stats().completed));
}

TEST(ExploreFabric, ReplayReproducesBitIdenticalVirtualTime) {
    explore::reset_check();
    sched::Controller rec(sched::default_picker(), 1u << 20, "fabric-2x2");
    const auto first = two_pair_run(rec);
    ASSERT_EQ(first.res.status,
              sched::Controller::Result::Status::kCompleted);

    explore::reset_check();
    auto err = std::make_shared<std::string>();
    sched::Controller rep(sched::replay_picker(first.res.trace, err),
                          1u << 20, "fabric-2x2");
    const auto second = two_pair_run(rep);
    EXPECT_EQ(*err, "") << "replay diverged";
    ASSERT_EQ(second.res.status,
              sched::Controller::Result::Status::kCompleted);
    EXPECT_TRUE(explore::traces_equal(first.res.trace, second.res.trace));
    EXPECT_EQ(first.finals, second.finals);
    EXPECT_EQ(first.signature, second.signature)
        << "replay must reproduce bit-identical virtual time";
}
