// Exhaustive schedule exploration of a two-pair fabric configuration
// (DESIGN.md §14): two sender/receiver pairs sharing one FastEthernet
// segment, every interleaving the DPOR-lite explorer considers
// non-equivalent executed once. Every complete schedule must deliver the
// same messages, keep the padico::check invariants clean, and land every
// process on the identical final virtual clock — the link model promises
// virtual time is a function of the traffic, not of the thread schedule.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "explore_util.hpp"
#include "fabric/grid.hpp"
#include "fabric/netmodel.hpp"
#include "fabric/topology.hpp"
#include "util/bytes.hpp"

using namespace padico;
namespace sched = osal::sched;
namespace check = osal::check;

namespace {

constexpr int kMsgs = 2;       ///< messages per pair
constexpr std::size_t kBytes = 1000;

struct FabricOutcome {
    sched::Controller::Result res;
    std::array<SimTime, 4> finals{}; ///< final virtual clock, per process
    std::uint64_t signature = 0;     ///< clocks + adapter counters, FNV-1a
    int received = 0;                ///< messages actually delivered
};

/// Build the two-pair grid, run one schedule under \p c, digest the
/// virtual state. The grid and all bodies live inside this call: each run
/// explores a fresh configuration.
FabricOutcome two_pair_run(sched::Controller& c) {
    FabricOutcome out;
    fabric::Grid g;
    auto& seg = g.add_segment("eth0", fabric::NetTech::FastEthernet);
    std::array<fabric::Machine*, 4> ms{};
    for (int i = 0; i < 4; ++i) {
        ms[static_cast<std::size_t>(i)] =
            &g.add_machine("m" + std::to_string(i));
        g.attach(*ms[static_cast<std::size_t>(i)], seg);
    }
    const fabric::ChannelId ch = g.channel_id("explore");
    std::atomic<int> received{0};

    for (int i = 0; i < 2; ++i) {
        const auto rx_pid = static_cast<fabric::ProcessId>(2 * i + 1);
        g.spawn(*ms[static_cast<std::size_t>(2 * i)],
                [&, rx_pid](fabric::Process& proc) {
                    auto port =
                        proc.machine().adapter_on(seg)->open(proc, "ex");
                    for (int m = 0; m < kMsgs; ++m) {
                        proc.compute(usec(5.0));
                        proc.clock().set(port->send(
                            rx_pid, ch,
                            util::to_message(util::ByteBuf(kBytes)),
                            proc.now()));
                    }
                    out.finals[proc.id()] = proc.now();
                });
        g.spawn(*ms[static_cast<std::size_t>(2 * i + 1)],
                [&](fabric::Process& proc) {
                    auto port =
                        proc.machine().adapter_on(seg)->open(proc, "ex");
                    for (int m = 0; m < kMsgs; ++m) {
                        auto pkt = port->recv();
                        if (!pkt.has_value()) return;
                        proc.clock().merge(pkt->deliver_time);
                        received.fetch_add(1);
                    }
                    out.finals[proc.id()] = proc.now();
                });
    }
    out.res = c.run();
    g.join_all();
    out.received = received.load();

    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const SimTime t : out.finals) mix(static_cast<std::uint64_t>(t));
    for (const auto* m : ms) {
        const auto cnt = m->adapter_on(seg)->counters();
        mix(cnt.tx_packets);
        mix(cnt.tx_bytes);
        mix(cnt.rx_packets);
        mix(cnt.rx_bytes);
    }
    out.signature = h;
    return out;
}

} // namespace

TEST(ExploreFabric, TwoPairExhaustiveVirtualTimeIdentity) {
    // Replay workflow: PADICO_SCHED_REPLAY runs one recorded schedule
    // instead of exploring.
    if (auto t = explore::replay_from_env()) {
        explore::reset_check();
        auto err = std::make_shared<std::string>();
        sched::Controller c(sched::replay_picker(*t, err), 1u << 20,
                            t->config);
        const auto o = two_pair_run(c);
        EXPECT_EQ(*err, "") << "replay diverged";
        std::fprintf(stderr, "replayed %s: status=%s signature=%016llx\n",
                     t->config.c_str(), o.res.status_name(),
                     static_cast<unsigned long long>(o.signature));
        return;
    }

    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(50000);
    // Message/queue/waiter granularity: lock order inside the fabric is
    // covered by the check layer and the explore_sched micro-suites;
    // branching on every contended grid lock would make the space
    // factorially large.
    opts.branch_mutexes = false;
    opts.config_name = "fabric-2x2";
    sched::Explorer ex(opts);
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    std::string mismatch;
    while (ex.next()) {
        explore::reset_check();
        sched::Controller c = ex.make_controller();
        const auto o = two_pair_run(c);
        bool ok = true;
        if (o.res.status == sched::Controller::Result::Status::kCompleted) {
            ok = o.received == 2 * kMsgs && check::violation_count() == 0;
            if (ok) {
                if (!have_baseline) {
                    baseline = o.signature;
                    have_baseline = true;
                } else if (o.signature != baseline) {
                    ok = false;
                    mismatch = "virtual-time signature diverged across "
                               "schedules";
                }
            }
        }
        ex.finish(o.res, ok);
    }
    if (ex.failure_found())
        explore::dump_failure(ex, "explore_fabric",
                              "TwoPairExhaustiveVirtualTimeIdentity");
    EXPECT_FALSE(ex.failure_found())
        << ex.failure_reason() << " " << mismatch;
    if (!explore::budget_overridden())
        EXPECT_TRUE(ex.stats().exhausted)
            << "budget too small: " << ex.stats().runs << " runs";
    EXPECT_TRUE(have_baseline);
    std::fprintf(stderr,
                 "fabric-2x2: %llu schedules (%llu completed, %llu "
                 "redundant), max depth %llu, exhausted=%d\n",
                 static_cast<unsigned long long>(ex.stats().runs),
                 static_cast<unsigned long long>(ex.stats().completed),
                 static_cast<unsigned long long>(ex.stats().redundant),
                 static_cast<unsigned long long>(ex.stats().max_depth),
                 ex.stats().exhausted ? 1 : 0);
    RecordProperty("schedules", static_cast<int>(ex.stats().runs));
    RecordProperty("completed", static_cast<int>(ex.stats().completed));
}

// ---------------------------------------------------------------------------
// Leader-relay broadcast across one gateway hop: the wire pattern of the
// hierarchical collectives' WAN phase. A root in cluster a sends one
// routed frame to each of two receivers in cluster b; both frames
// store-and-forward through the two gateway relays. Every non-equivalent
// schedule must deliver both frames, keep padico::check clean, and land on
// the identical virtual-time signature — gateway relaying must not make
// virtual time schedule-dependent.

namespace {

constexpr int kRelayFrames = 2; ///< frames through each gateway relay
constexpr std::size_t kRelayBytes = 600;

struct RelayOutcome {
    sched::Controller::Result res;
    std::array<SimTime, 5> finals{}; ///< relay a, relay b, rx1, rx2, root
    std::uint64_t signature = 0;
    int received = 0;
};

RelayOutcome relay_bcast_run(sched::Controller& c) {
    RelayOutcome out;
    fabric::Grid g;
    fabric::Topology topo(g);
    fabric::ClusterSpec spec;
    spec.size = 2;
    auto& ca = topo.add_cluster("a", spec);
    auto& cb = topo.add_cluster("b", spec);
    auto& wan = topo.add_wan("core", fabric::NetTech::Wan);
    wan.link(ca);
    wan.link(cb);
    const fabric::ChannelId ch = g.channel_id("relay-bcast");
    fabric::NetworkSegment& lan_a = *ca.segments().front();
    fabric::NetworkSegment& lan_b = *cb.segments().front();
    std::atomic<int> received{0};

    // Bounded gateway relays: the production open/forward path, driven by
    // a blocking recv of the exact frame count so every run terminates.
    auto spawn_relay = [&](fabric::ClusterZone& cz,
                           fabric::NetworkSegment& in_seg) {
        g.spawn(cz.gateway(), [&topo, &in_seg, &out](fabric::Process& p) {
            std::vector<fabric::PortRef> ports =
                fabric::open_relay_ports(topo, p);
            fabric::Port* in = nullptr;
            for (auto& pr : ports)
                if (&pr->adapter().segment() == &in_seg) in = pr.get();
            ASSERT_NE(in, nullptr);
            for (int f = 0; f < kRelayFrames; ++f) {
                auto pkt = in->recv();
                if (!pkt.has_value()) return;
                fabric::relay_forward(topo, p, ports, std::move(*pkt));
            }
            out.finals[p.id()] = p.now();
        });
    };
    spawn_relay(ca, lan_a);         // inbound from the root's LAN
    spawn_relay(cb, wan.backbone()); // inbound from the backbone

    auto spawn_rx = [&](const char* name) -> fabric::Process& {
        return g.spawn(*cb.members()[1],
                       [&, name](fabric::Process& proc) {
                           auto port = proc.machine()
                                           .adapter_on(lan_b)
                                           ->open(proc, name);
                           auto pkt = port->recv();
                           if (!pkt.has_value()) return;
                           proc.clock().merge(pkt->deliver_time);
                           received.fetch_add(1);
                           out.finals[proc.id()] = proc.now();
                       });
    };
    fabric::Process& rx1 = spawn_rx("rx1");
    fabric::Process& rx2 = spawn_rx("rx2");

    g.spawn(*ca.members()[1], [&](fabric::Process& proc) {
        auto port = proc.machine().adapter_on(lan_a)->open(proc, "root");
        proc.compute(usec(5.0));
        fabric::send_routed(topo, proc, *port, rx1.id(), ch,
                            util::to_message(util::ByteBuf(kRelayBytes)));
        fabric::send_routed(topo, proc, *port, rx2.id(), ch,
                            util::to_message(util::ByteBuf(kRelayBytes)));
        out.finals[proc.id()] = proc.now();
    });

    out.res = c.run();
    g.join_all();
    out.received = received.load();

    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const SimTime t : out.finals) mix(static_cast<std::uint64_t>(t));
    for (const auto& m : g.machines())
        for (const fabric::Adapter* a : m->adapters()) {
            const auto cnt = a->counters();
            mix(cnt.tx_packets);
            mix(cnt.tx_bytes);
            mix(cnt.rx_packets);
            mix(cnt.rx_bytes);
        }
    out.signature = h;
    return out;
}

} // namespace

TEST(ExploreFabric, RelayBcastExhaustiveVirtualTimeIdentity) {
    if (auto t = explore::replay_from_env()) {
        explore::reset_check();
        auto err = std::make_shared<std::string>();
        sched::Controller c(sched::replay_picker(*t, err), 1u << 20,
                            t->config);
        const auto o = relay_bcast_run(c);
        EXPECT_EQ(*err, "") << "replay diverged";
        std::fprintf(stderr, "replayed %s: status=%s signature=%016llx\n",
                     t->config.c_str(), o.res.status_name(),
                     static_cast<unsigned long long>(o.signature));
        return;
    }

    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(50000);
    opts.branch_mutexes = false;
    opts.config_name = "relay-bcast";
    sched::Explorer ex(opts);
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    std::string mismatch;
    while (ex.next()) {
        explore::reset_check();
        sched::Controller c = ex.make_controller();
        const auto o = relay_bcast_run(c);
        bool ok = true;
        if (o.res.status == sched::Controller::Result::Status::kCompleted) {
            ok = o.received == 2 && check::violation_count() == 0;
            if (ok) {
                if (!have_baseline) {
                    baseline = o.signature;
                    have_baseline = true;
                } else if (o.signature != baseline) {
                    ok = false;
                    mismatch = "virtual-time signature diverged across "
                               "schedules";
                }
            }
        }
        ex.finish(o.res, ok);
    }
    if (ex.failure_found())
        explore::dump_failure(ex, "explore_fabric",
                              "RelayBcastExhaustiveVirtualTimeIdentity");
    EXPECT_FALSE(ex.failure_found())
        << ex.failure_reason() << " " << mismatch;
    if (!explore::budget_overridden())
        EXPECT_TRUE(ex.stats().exhausted)
            << "budget too small: " << ex.stats().runs << " runs";
    EXPECT_TRUE(have_baseline);
    std::fprintf(stderr,
                 "relay-bcast: %llu schedules (%llu completed, %llu "
                 "redundant), max depth %llu, exhausted=%d\n",
                 static_cast<unsigned long long>(ex.stats().runs),
                 static_cast<unsigned long long>(ex.stats().completed),
                 static_cast<unsigned long long>(ex.stats().redundant),
                 static_cast<unsigned long long>(ex.stats().max_depth),
                 ex.stats().exhausted ? 1 : 0);
    RecordProperty("schedules", static_cast<int>(ex.stats().runs));
    RecordProperty("completed", static_cast<int>(ex.stats().completed));
}

TEST(ExploreFabric, ReplayReproducesBitIdenticalVirtualTime) {
    explore::reset_check();
    sched::Controller rec(sched::default_picker(), 1u << 20, "fabric-2x2");
    const auto first = two_pair_run(rec);
    ASSERT_EQ(first.res.status,
              sched::Controller::Result::Status::kCompleted);

    explore::reset_check();
    auto err = std::make_shared<std::string>();
    sched::Controller rep(sched::replay_picker(first.res.trace, err),
                          1u << 20, "fabric-2x2");
    const auto second = two_pair_run(rep);
    EXPECT_EQ(*err, "") << "replay diverged";
    ASSERT_EQ(second.res.status,
              sched::Controller::Result::Status::kCompleted);
    EXPECT_TRUE(explore::traces_equal(first.res.trace, second.res.trace));
    EXPECT_EQ(first.finals, second.finals);
    EXPECT_EQ(first.signature, second.signature)
        << "replay must reproduce bit-identical virtual time";
}
