// Tests for the two raw low-level libraries: madeleine (parallel paradigm,
// SAN) and sockets (distributed paradigm, LAN/WAN).

#include <gtest/gtest.h>

#include <atomic>

#include "madeleine/madeleine.hpp"
#include "osal/queue.hpp"
#include "osal/sync.hpp"
#include "sockets/sockets.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

util::Message text_msg(const std::string& s) {
    return util::to_message(util::ByteBuf(s.data(), s.size()));
}

std::string msg_text(const util::Message& m) {
    auto flat = m.gather();
    return std::string(reinterpret_cast<const char*>(flat.data()),
                       flat.size());
}

struct SanPair {
    Grid grid;
    Machine* a;
    Machine* b;
    NetworkSegment* seg;
    SanPair() {
        seg = &grid.add_segment("myri0", NetTech::Myrinet2000);
        a = &grid.add_machine("ma");
        b = &grid.add_machine("mb");
        grid.attach(*a, *seg);
        grid.attach(*b, *seg);
    }
};

struct LanPair {
    Grid grid;
    Machine* a;
    Machine* b;
    NetworkSegment* seg;
    LanPair() {
        seg = &grid.add_segment("eth0", NetTech::FastEthernet);
        a = &grid.add_machine("ma");
        b = &grid.add_machine("mb");
        grid.attach(*a, *seg);
        grid.attach(*b, *seg);
    }
};

} // namespace

// ---------------------------------------------------------------------------
// osal

TEST(Osal, QueueMatchingAndClose) {
    osal::BlockingQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    auto two = q.pop_matching([](int v) { return v == 2; });
    ASSERT_TRUE(two.has_value());
    EXPECT_EQ(*two, 2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(*q.pop(), 1);
    EXPECT_FALSE(q.try_pop_matching([](int v) { return v == 9; }));
    q.close();
    EXPECT_EQ(*q.pop(), 3); // drains before reporting closed
    EXPECT_FALSE(q.pop().has_value());
}

TEST(Osal, LatchAndBarrier) {
    osal::Latch latch(2);
    osal::Barrier barrier(3);
    std::atomic<int> phase{0};
    osal::ThreadGroup tg;
    for (int i = 0; i < 2; ++i)
        tg.spawn([&] {
            latch.count_down();
            barrier.arrive_and_wait();
            ++phase;
            barrier.arrive_and_wait();
        });
    latch.wait();
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    EXPECT_EQ(phase.load(), 2);
    tg.join_all();
}

// ---------------------------------------------------------------------------
// madeleine

TEST(Madeleine, PingPongDataAndTiming) {
    SanPair p;
    const ChannelId ch = p.grid.channel_id("mad/pp");
    p.grid.spawn(*p.a, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        ep.send(1, ch, text_msg("ping"));
        EXPECT_EQ(msg_text(ep.recv(1, ch)), "pong");
        // RTT/2 for a tiny message: hw latency + 2x madeleine overhead.
        // 4 half-trips happened on this clock? No: send+recv = one RTT.
        const SimTime rtt = proc.now();
        const SimTime expect_half = usec(7.0) + usec(1.2) + usec(1.2);
        EXPECT_NEAR(to_usec(rtt) / 2.0, to_usec(expect_half), 0.2);
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        EXPECT_EQ(msg_text(ep.recv(0, ch)), "ping");
        ep.send(0, ch, text_msg("pong"));
    });
    p.grid.join_all();
}

TEST(Madeleine, RendezvousChargesRoundTrip) {
    SanPair p;
    const ChannelId ch = p.grid.channel_id("mad/rdv");
    p.grid.spawn(*p.a, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        util::ByteBuf big(64 * 1024); // above the 32 KB threshold
        ep.send(1, ch, util::to_message(std::move(big)));
        // sender time = per_msg + rdv RTT + wire submission
        const SimTime wire = transfer_time(64 * 1024, 240.0);
        const SimTime expect = usec(1.2) + 2 * usec(7.0) + usec(0.5) + wire;
        EXPECT_EQ(proc.now(), expect);
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        EXPECT_EQ(ep.recv(0, ch).size(), 64u * 1024u);
    });
    p.grid.join_all();
}

TEST(Madeleine, OrderingPerChannelAndRecvAny) {
    SanPair p;
    const ChannelId ch = p.grid.channel_id("mad/ord");
    constexpr int kN = 32;
    p.grid.spawn(*p.a, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        for (int i = 0; i < kN; ++i) {
            util::ByteBuf b(&i, sizeof i);
            ep.send(1, ch, util::to_message(std::move(b)));
        }
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        mad::Endpoint ep(proc, *p.seg);
        for (int i = 0; i < kN; ++i) {
            ProcessId src = kNoProcess;
            auto m = ep.recv_any(ch, &src);
            EXPECT_EQ(src, 0u);
            int got = -1;
            m.copy_out(0, &got, sizeof got);
            EXPECT_EQ(got, i); // FIFO per (src, channel)
        }
    });
    p.grid.join_all();
}

TEST(Madeleine, MissingAdapterThrows) {
    Grid g;
    auto& seg = g.add_segment("myri", NetTech::Myrinet2000);
    auto& off = g.add_machine("offnet");
    (void)seg;
    g.spawn(off, [&](Process& proc) {
        EXPECT_THROW(mad::Endpoint(proc, g.segment("myri")), LookupError);
    });
    g.join_all();
}

TEST(Madeleine, RawConflictOnExclusiveNic) {
    // The scenario from paper §4.3.1: two middleware systems each bring
    // their own raw communication library to the same Myrinet NIC.
    SanPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        mad::Endpoint mpi_raw(proc, *p.seg, "mpich/bip");
        EXPECT_THROW(mad::Endpoint(proc, *p.seg, "omniorb/raw"),
                     ResourceConflict);
    });
    p.grid.join_all();
}

// ---------------------------------------------------------------------------
// sockets

TEST(Sockets, ConnectAcceptEcho) {
    LanPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto listener = stack.listen("echo");
        auto s = listener.accept();
        char buf[5] = {};
        s.read(buf, 5);
        EXPECT_EQ(std::string(buf, 5), "hello");
        s.write("world", 5);
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s = stack.connect("echo");
        s.write("hello", 5);
        char buf[5] = {};
        s.read(buf, 5);
        EXPECT_EQ(std::string(buf, 5), "world");
        // Handshake + 1 data RTT happened: clock advanced beyond 2 RTT.
        EXPECT_GT(proc.now(), 4 * usec(60.0));
    });
    p.grid.join_all();
}

TEST(Sockets, StreamReassemblyAcrossChunks) {
    LanPair p;
    constexpr std::size_t kLen = 300 * 1024; // several 64 KB chunks
    p.grid.spawn(*p.b, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s = stack.listen("bulk").accept();
        // Read in odd-sized pieces to exercise buffering.
        std::vector<std::uint8_t> got;
        std::size_t remaining = kLen;
        std::size_t piece = 7;
        while (remaining > 0) {
            const std::size_t n = std::min(piece, remaining);
            std::vector<std::uint8_t> tmp(n);
            s.read(tmp.data(), n);
            got.insert(got.end(), tmp.begin(), tmp.end());
            remaining -= n;
            piece = piece * 3 + 1;
        }
        for (std::size_t i = 0; i < kLen; ++i)
            ASSERT_EQ(got[i], static_cast<std::uint8_t>(i * 31 + 7));
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s = stack.connect("bulk");
        util::ByteBuf data(kLen);
        for (std::size_t i = 0; i < kLen; ++i)
            data.data()[i] = static_cast<std::uint8_t>(i * 31 + 7);
        s.write(util::to_message(std::move(data)));
    });
    p.grid.join_all();
}

TEST(Sockets, TwoConcurrentStreamsKeepDataSeparate) {
    LanPair p;
    p.grid.spawn(*p.b, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto listener = stack.listen("multi");
        auto s1 = listener.accept();
        auto s2 = listener.accept();
        char b1[2] = {}, b2[2] = {};
        s1.read(b1, 2);
        s2.read(b2, 2);
        // Order of accept matches order of SYN arrival (same client).
        EXPECT_EQ(std::string(b1, 2), "s1");
        EXPECT_EQ(std::string(b2, 2), "s2");
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s1 = stack.connect("multi");
        auto s2 = stack.connect("multi");
        s2.write("s2", 2);
        s1.write("s1", 2);
    });
    p.grid.join_all();
}

TEST(Sockets, RefusesParallelOnlyNetwork) {
    SanPair p;
    p.grid.spawn(*p.a, [&](Process& proc) {
        EXPECT_THROW(sock::SocketStack(proc, *p.seg), UsageError);
    });
    p.grid.join_all();
}

TEST(Sockets, ThroughputMatchesTcpModel) {
    // Reference curve of Fig. 7: TCP on Fast-Ethernet peaks near 11 MB/s.
    LanPair p;
    constexpr std::size_t kLen = 2 * 1024 * 1024;
    p.grid.spawn(*p.b, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s = stack.listen("tput").accept();
        auto m = s.read_msg(kLen);
        s.write("k", 1);
        (void)m;
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        sock::SocketStack stack(proc, *p.seg);
        auto s = stack.connect("tput");
        const SimTime t0 = proc.now();
        util::ByteBuf data(kLen);
        s.write(util::to_message(std::move(data)));
        char ack;
        s.read(&ack, 1);
        const double bw = mb_per_s(kLen, proc.now() - t0);
        EXPECT_GT(bw, 10.0);
        EXPECT_LT(bw, 11.3);
    });
    p.grid.join_all();
}
