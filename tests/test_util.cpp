// Unit tests for the util module: bytes/messages, XML, stats, strings,
// simtime and the error helpers.

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/xml.hpp"

namespace pu = padico::util;
using padico::SimTime;

// ---------------------------------------------------------------------------
// bytes

TEST(ByteBuf, AppendAndView) {
    pu::ByteBuf b;
    b.append("abc", 3);
    b.pad(2);
    b.append("z", 1);
    ASSERT_EQ(b.size(), 6u);
    EXPECT_EQ(b.data()[0], 'a');
    EXPECT_EQ(b.data()[3], 0);
    EXPECT_EQ(b.data()[5], 'z');
}

TEST(Segment, SliceBounds) {
    pu::ByteBuf b("hello world", 11);
    pu::Segment s(pu::make_buf(std::move(b)));
    auto mid = s.slice(6, 5);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(mid.data()), 5),
              "world");
    EXPECT_THROW(s.slice(7, 5), padico::UsageError);
}

TEST(Message, GatherAcrossSegments) {
    pu::Message m;
    m.append(pu::Segment(pu::make_buf("foo", 3)));
    m.append(pu::Segment(pu::make_buf("barbaz", 6)));
    EXPECT_EQ(m.size(), 9u);
    EXPECT_EQ(m.segment_count(), 2u);
    auto flat = m.gather();
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(flat.data()), 9),
              "foobarbaz");
}

TEST(Message, CopyOutStraddlesSegments) {
    pu::Message m;
    m.append(pu::Segment(pu::make_buf("abcd", 4)));
    m.append(pu::Segment(pu::make_buf("efgh", 4)));
    char out[4];
    m.copy_out(2, out, 4);
    EXPECT_EQ(std::string(out, 4), "cdef");
    EXPECT_THROW(m.copy_out(6, out, 4), padico::UsageError);
}

TEST(Message, SliceIsZeroCopy) {
    pu::ByteBuf big(1 << 20);
    pu::Message m = pu::to_message(std::move(big));
    auto part = m.slice(100, 500);
    EXPECT_EQ(part.size(), 500u);
    EXPECT_EQ(part.segment_count(), 1u);
    // Same underlying storage: pointer arithmetic holds.
    EXPECT_EQ(part.segments()[0].data(), m.segments()[0].data() + 100);
}

TEST(Message, SliceEmptyAndFull) {
    pu::Message m;
    m.append(pu::Segment(pu::make_buf("xy", 2)));
    EXPECT_EQ(m.slice(0, 0).size(), 0u);
    EXPECT_EQ(m.slice(0, 2).gather().size(), 2u);
}

// ---------------------------------------------------------------------------
// xml

TEST(Xml, ParsesElementsAttrsText) {
    auto root = pu::xml_parse(R"(<?xml version="1.0"?>
      <!-- top comment -->
      <assembly name="coupling">
        <component id="chem" type="Chemistry" parallel="4"/>
        <component id="trans" type="Transport"/>
        <connection from="chem.out" to="trans.in">note &amp; text</connection>
      </assembly>)");
    EXPECT_EQ(root->name(), "assembly");
    EXPECT_EQ(root->attr("name"), "coupling");
    auto comps = root->children_named("component");
    ASSERT_EQ(comps.size(), 2u);
    EXPECT_EQ(comps[0]->attr("parallel"), "4");
    EXPECT_EQ(comps[1]->attr_or("parallel", "1"), "1");
    EXPECT_EQ(root->require_child("connection")->text(), "note & text");
}

TEST(Xml, RoundTripThroughToString) {
    auto root = pu::xml_parse("<a x=\"1\"><b/><c y='q&quot;z'>t</c></a>");
    auto again = pu::xml_parse(root->to_string());
    EXPECT_EQ(again->attr("x"), "1");
    EXPECT_EQ(again->require_child("c")->attr("y"), "q\"z");
    EXPECT_EQ(again->require_child("c")->text(), "t");
}

TEST(Xml, RejectsMalformed) {
    EXPECT_THROW(pu::xml_parse("<a><b></a>"), padico::ProtocolError);
    EXPECT_THROW(pu::xml_parse("<a x=1/>"), padico::ProtocolError);
    EXPECT_THROW(pu::xml_parse("<a/>junk"), padico::ProtocolError);
    EXPECT_THROW(pu::xml_parse("<a>&bogus;</a>"), padico::ProtocolError);
    EXPECT_THROW(pu::xml_parse(""), padico::ProtocolError);
}

TEST(Xml, MissingAttrAndChildThrow) {
    auto root = pu::xml_parse("<a/>");
    EXPECT_THROW(root->attr("nope"), padico::ProtocolError);
    EXPECT_THROW(root->require_child("nope"), padico::ProtocolError);
}

// ---------------------------------------------------------------------------
// simtime

TEST(SimTime, UnitsAndFormat) {
    EXPECT_EQ(padico::usec(1.0), 1000);
    EXPECT_EQ(padico::msec(1.0), 1000000);
    EXPECT_DOUBLE_EQ(padico::to_usec(padico::usec(12.5)), 12.5);
    EXPECT_EQ(padico::format_simtime(padico::usec(12.0)), "12.00 us");
}

TEST(SimTime, TransferTimeAndBandwidth) {
    // 1 MB at 250 MB/s = 4 ms... in bytes: 1e6 B at 250 MB/s = 4000 us.
    const SimTime t = padico::transfer_time(1000000, 250.0);
    EXPECT_EQ(t, padico::usec(4000.0));
    EXPECT_NEAR(padico::mb_per_s(1000000, t), 250.0, 1e-9);
    EXPECT_EQ(padico::transfer_time(0, 250.0), 0);
    EXPECT_EQ(padico::transfer_time(100, 0.0), 0);
}

// ---------------------------------------------------------------------------
// stats

TEST(Stats, AccumulatorMoments) {
    pu::Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.stddev(), 2.138, 1e-3);
}

TEST(Stats, TableAlignsColumns) {
    pu::Table t({"nodes", "latency"});
    t.add_row({"1 to 1", "62"});
    t.add_row({"8 to 8", "148"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| nodes  | latency |"), std::string::npos);
    EXPECT_NE(s.find("| 8 to 8 | 148     |"), std::string::npos);
    EXPECT_THROW(t.add_row({"only one"}), padico::UsageError);
}

// ---------------------------------------------------------------------------
// strings

TEST(Strings, SplitTrimParse) {
    auto parts = pu::split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(pu::trim("  x y \t"), "x y");
    EXPECT_EQ(pu::parse_uint(" 42 "), 42u);
    EXPECT_THROW(pu::parse_uint("4x"), padico::UsageError);
    EXPECT_DOUBLE_EQ(pu::parse_double("2.5"), 2.5);
    EXPECT_THROW(pu::parse_double("abc"), padico::UsageError);
    EXPECT_EQ(pu::strfmt("%d-%s", 7, "x"), "7-x");
}

TEST(Rng, Deterministic) {
    pu::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    pu::Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.below(10), 10u);
        const double u = c.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}
