// Unit and property tests for the simulated grid fabric: topology, process
// spawning, adapter exclusivity, the virtual-time link model, and discovery.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fabric/grid.hpp"
#include "fabric/netmodel.hpp"
#include "fabric/registry.hpp"
#include "osal/sync.hpp"
#include "util/cache.hpp"
#include "util/rng.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

/// Two machines attached to one segment of the given technology.
struct Pair {
    Grid grid;
    Machine* a;
    Machine* b;
    NetworkSegment* seg;

    explicit Pair(NetTech tech) {
        seg = &grid.add_segment("net0", tech);
        a = &grid.add_machine("ma");
        b = &grid.add_machine("mb");
        grid.attach(*a, *seg);
        grid.attach(*b, *seg);
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Net model

TEST(NetModel, DefaultsMatchPaperTestbed) {
    const auto myri = default_params(NetTech::Myrinet2000);
    EXPECT_NEAR(attainable_mb(myri), 240.0, 0.01); // paper: 96% of 250 MB/s
    EXPECT_TRUE(myri.exclusive_open);
    EXPECT_EQ(myri.paradigm, Paradigm::Parallel);

    const auto eth = default_params(NetTech::FastEthernet);
    EXPECT_NEAR(attainable_mb(eth), 11.25, 0.01);
    EXPECT_FALSE(eth.exclusive_open);

    const auto wan = default_params(NetTech::Wan);
    EXPECT_FALSE(wan.secure);
}

TEST(NetModel, OneWayTimeComposition) {
    const auto myri = default_params(NetTech::Myrinet2000);
    StackCosts stack{"test", usec(1.0), usec(2.0), 1.0, 1.0};
    const SimTime t = one_way_time(myri, stack, 1000000);
    // latency + wire + cpu: 7us + 1e6/240 us + 1+2us + 2e6 ns
    const SimTime expect = usec(7.0) + transfer_time(1000000, 240.0) +
                           usec(3.0) + nsec(2000000);
    EXPECT_EQ(t, expect);
}

// ---------------------------------------------------------------------------
// Topology

TEST(Grid, TopologyConstructionAndLookup) {
    Grid g;
    auto& myri = g.add_segment("myri0", NetTech::Myrinet2000);
    auto& eth = g.add_segment("eth0", NetTech::FastEthernet);
    auto& m0 = g.add_machine("node0");
    auto& m1 = g.add_machine("node1");
    g.attach(m0, myri);
    g.attach(m0, eth);
    g.attach(m1, eth);

    EXPECT_EQ(&g.machine("node0"), &m0);
    EXPECT_EQ(&g.segment("eth0"), &eth);
    EXPECT_THROW(g.machine("nope"), LookupError);
    EXPECT_THROW(g.segment("nope"), LookupError);
    EXPECT_NE(m0.adapter_on(myri), nullptr);
    EXPECT_EQ(m1.adapter_on(myri), nullptr);
    EXPECT_THROW(g.attach(m0, myri), UsageError); // double attach

    auto common = g.common_segments(m0, m1);
    ASSERT_EQ(common.size(), 1u);
    EXPECT_EQ(common[0], &eth);
}

TEST(Grid, CommonSegmentsSortedByBandwidth) {
    Grid g;
    auto& eth = g.add_segment("eth", NetTech::FastEthernet);
    auto& myri = g.add_segment("myri", NetTech::Myrinet2000);
    auto& wan = g.add_segment("wan", NetTech::Wan);
    auto& a = g.add_machine("a");
    auto& b = g.add_machine("b");
    for (auto* s : {&eth, &myri, &wan}) {
        g.attach(a, *s);
        g.attach(b, *s);
    }
    auto common = g.common_segments(a, b);
    ASSERT_EQ(common.size(), 3u);
    EXPECT_EQ(common[0], &myri);
    EXPECT_EQ(common[1], &eth);
    EXPECT_EQ(common[2], &wan);
}

// ---------------------------------------------------------------------------
// Processes and clocks

TEST(Grid, SpawnJoinAndCurrentProcess) {
    Grid g;
    auto& m = g.add_machine("host");
    std::atomic<int> ran{0};
    g.spawn(m, [&](Process& p) {
        EXPECT_EQ(&Process::current(), &p);
        EXPECT_EQ(p.machine().name(), "host");
        p.compute(usec(5.0));
        EXPECT_EQ(p.now(), usec(5.0));
        ++ran;
    });
    g.join_all();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(Process::current_or_null(), nullptr);
}

TEST(Grid, JoinAllRethrowsProcessFailure) {
    Grid g;
    auto& m = g.add_machine("host");
    g.spawn(m, [](Process&) { throw LookupError("boom"); });
    EXPECT_THROW(g.join_all(), LookupError);
    // A second join is clean (failure consumed).
    g.join_all();
}

TEST(Grid, RunSpmdPassesRanks) {
    Grid g;
    auto& m0 = g.add_machine("h0");
    auto& m1 = g.add_machine("h1");
    std::atomic<int> sum{0};
    run_spmd(g, {&m0, &m1, &m0}, [&](Process&, int rank, int size) {
        EXPECT_EQ(size, 3);
        sum += rank;
    });
    g.join_all();
    EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

// ---------------------------------------------------------------------------
// Name service

TEST(Grid, ChannelIdsStableAndDistinct) {
    Grid g;
    const ChannelId a = g.channel_id("alpha");
    const ChannelId b = g.channel_id("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(g.channel_id("alpha"), a);
}

TEST(Grid, ServiceRegistrationBlocksUntilAvailable) {
    Grid g;
    auto& m = g.add_machine("h");
    g.spawn(m, [](Process& p) {
        const ProcessId who = p.grid().wait_service("late");
        EXPECT_EQ(who, p.grid().wait_service("late"));
    });
    g.spawn(m, [](Process& p) {
        p.grid().register_service("late", p.id());
    });
    g.join_all();
    EXPECT_TRUE(g.try_lookup("late").has_value());
    EXPECT_FALSE(g.try_lookup("never").has_value());
}

// ---------------------------------------------------------------------------
// Adapter exclusivity (the conflict PadicoTM arbitrates, paper §4.3.1)

TEST(Adapter, ExclusiveSanRejectsSecondOwner) {
    Pair p(NetTech::Myrinet2000);
    p.grid.spawn(*p.a, [&](Process& proc) {
        Adapter* nic = proc.machine().adapter_on(*p.seg);
        auto port1 = nic->open(proc, "mpich-raw");
        EXPECT_TRUE(nic->is_open());
        EXPECT_EQ(nic->owner_tag(), "mpich-raw");
        // Same owner may re-open (refcounted)...
        auto port2 = nic->open(proc, "mpich-raw");
        EXPECT_EQ(port2.get(), port1.get());
        // ...a different middleware may not: BIP-style exclusivity.
        EXPECT_THROW(nic->open(proc, "corba-raw"), ResourceConflict);
        port1.release();
        EXPECT_THROW(nic->open(proc, "corba-raw"), ResourceConflict);
        port2.release();
        // Fully released: a new owner can now claim the NIC.
        auto port3 = nic->open(proc, "corba-raw");
        EXPECT_TRUE(port3);
    });
    p.grid.join_all();
}

TEST(Adapter, SharedLanAllowsManyOwners) {
    Pair p(NetTech::FastEthernet);
    p.grid.spawn(*p.a, [&](Process& proc) {
        Adapter* nic = proc.machine().adapter_on(*p.seg);
        auto s1 = nic->open(proc, "tcp-stack-a");
        auto s2 = nic->open(proc, "tcp-stack-b");
        EXPECT_EQ(s1.get(), s2.get()); // one port per process, shared
    });
    p.grid.join_all();
}

TEST(Adapter, ExclusiveSanRejectsSecondProcess) {
    Pair p(NetTech::Myrinet2000);
    osal::Event first_open;
    osal::Event done;
    p.grid.spawn(*p.a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "mad");
        first_open.set();
        done.wait();
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        first_open.wait();
        EXPECT_THROW(proc.machine().adapter_on(*p.seg)->open(proc, "mad"),
                     ResourceConflict);
        done.set();
    });
    p.grid.join_all();
}

// ---------------------------------------------------------------------------
// Link timing model

TEST(LinkModel, SingleMessageTiming) {
    Pair p(NetTech::Myrinet2000);
    const ChannelId ch = p.grid.channel_id("t");
    p.grid.spawn(*p.a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        util::ByteBuf payload(240000); // 1 ms of wire time at 240 MB/s
        const SimTime tx_done =
            port->send(1, ch, util::to_message(std::move(payload)), 0);
        EXPECT_EQ(tx_done, msec(1.0));
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        auto pkt = port->recv_on(ch);
        ASSERT_TRUE(pkt.has_value());
        EXPECT_EQ(pkt->payload.size(), 240000u);
        // delivery = wire (1ms) + latency (7us)
        EXPECT_EQ(pkt->deliver_time, msec(1.0) + usec(7.0));
    });
    p.grid.join_all();
}

TEST(LinkModel, SenderSerializesOnTx) {
    // Two back-to-back sends from one NIC serialize on tx_free.
    Pair p(NetTech::Myrinet2000);
    const ChannelId ch = p.grid.channel_id("t2");
    p.grid.spawn(*p.a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        util::ByteBuf m1(240000), m2(240000);
        EXPECT_EQ(port->send(1, ch, util::to_message(std::move(m1)), 0),
                  msec(1.0));
        EXPECT_EQ(port->send(1, ch, util::to_message(std::move(m2)), 0),
                  msec(2.0));
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        auto pkt1 = port->recv_on(ch);
        auto pkt2 = port->recv_on(ch);
        EXPECT_EQ(pkt2->deliver_time, msec(2.0) + usec(7.0));
        (void)pkt1;
    });
    p.grid.join_all();
}

TEST(LinkModel, IncastSerializesOnRx) {
    // Two senders into one receiver NIC: second delivery pushed out.
    Grid g;
    auto& seg = g.add_segment("myri", NetTech::Myrinet2000);
    auto& a = g.add_machine("a");
    auto& b = g.add_machine("b");
    auto& c = g.add_machine("c");
    for (auto* m : {&a, &b, &c}) g.attach(*m, seg);
    const ChannelId ch = g.channel_id("incast");

    osal::Barrier ready(2);
    g.spawn(a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        ready.arrive_and_wait();
        port->send(2, ch, util::to_message(util::ByteBuf(240000)), 0);
    });
    g.spawn(b, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        ready.arrive_and_wait();
        port->send(2, ch, util::to_message(util::ByteBuf(240000)), 0);
    });
    g.spawn(c, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        auto p1 = port->recv_on(ch);
        auto p2 = port->recv_on(ch);
        const SimTime t1 = std::min(p1->deliver_time, p2->deliver_time);
        const SimTime t2 = std::max(p1->deliver_time, p2->deliver_time);
        EXPECT_EQ(t1, msec(1.0) + usec(7.0));
        // Second transfer waits for the receiver NIC to drain the first.
        EXPECT_EQ(t2, msec(2.0) + usec(7.0));
    });
    g.join_all();
}

TEST(LinkModel, FairSharingEmergesOnSharedNic) {
    // One sender NIC, two destination processes: tx serialization means the
    // aggregate never exceeds link bandwidth and both flows progress.
    Grid g;
    auto& seg = g.add_segment("myri", NetTech::Myrinet2000);
    auto& a = g.add_machine("a");
    auto& b = g.add_machine("b");
    g.attach(a, seg);
    g.attach(b, seg);
    const ChannelId ch1 = g.channel_id("f1");
    const ChannelId ch2 = g.channel_id("f2");
    constexpr int kMsgs = 50;
    constexpr std::size_t kBytes = 96000; // 0.4 ms each at 240 MB/s

    g.spawn(a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        SimTime now = 0;
        for (int i = 0; i < kMsgs; ++i) {
            now = port->send(1, ch1, util::to_message(util::ByteBuf(kBytes)),
                             now);
            now = port->send(1, ch2, util::to_message(util::ByteBuf(kBytes)),
                             now);
        }
    });
    g.spawn(b, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        SimTime last1 = 0, last2 = 0;
        for (int i = 0; i < kMsgs; ++i) {
            last1 = port->recv_on(ch1)->deliver_time;
            last2 = port->recv_on(ch2)->deliver_time;
        }
        const double agg =
            mb_per_s(2.0 * kMsgs * kBytes, std::max(last1, last2));
        EXPECT_LE(agg, 240.0 + 1e-6);
        EXPECT_GT(agg, 230.0); // link stays saturated
        // Each flow gets about half.
        const double f1 = mb_per_s(kMsgs * kBytes, last1);
        EXPECT_NEAR(f1, 120.0, 12.0);
    });
    g.join_all();
}

TEST(LinkModel, ShuffledBookingOrderIsDeterministic) {
    // The same per-pair workload, booked from concurrently scheduled
    // threads under two different start staggers and in both timing
    // modes, must serialize to identical virtual times: disjoint pairs
    // touch disjoint NIC shards, per-pair bookings are in program order,
    // and watermark pruning is exact.
    constexpr int kPairs = 4;
    constexpr int kMsgs = 150;
    // Transfer time (~23 us) below the compute gap (50 us): reservations
    // fragment, so the sharded mode's pruning is actually exercised.
    constexpr std::size_t kBytes = 256;

    struct PairTimes {
        SimTime last_tx = 0;
        SimTime last_deliver = 0;
        bool operator==(const PairTimes&) const = default;
    };
    auto run = [&](TimingMode mode, bool reversed_stagger) {
        Grid g;
        auto& seg = g.add_segment("eth", NetTech::FastEthernet);
        seg.set_timing_mode(mode);
        std::vector<Machine*> ms;
        for (int i = 0; i < 2 * kPairs; ++i) {
            ms.push_back(&g.add_machine("m" + std::to_string(i)));
            g.attach(*ms.back(), seg);
        }
        const ChannelId ch = g.channel_id("det");
        std::vector<PairTimes> times(kPairs);
        osal::Barrier start(2 * kPairs);
        for (int i = 0; i < kPairs; ++i) {
            const ProcessId rx_pid = static_cast<ProcessId>(2 * i + 1);
            g.spawn(*ms[2 * i], [&, i, rx_pid](Process& proc) {
                auto port =
                    proc.machine().adapter_on(seg)->open(proc, "det");
                start.arrive_and_wait();
                // Different real-time booking orders across runs.
                const int stagger = reversed_stagger ? kPairs - 1 - i : i;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200 * stagger));
                SimTime tx = 0;
                for (int m = 0; m < kMsgs; ++m) {
                    proc.compute(usec(50.0)); // gappy stream: fragments
                    tx = port->send(rx_pid, ch,
                                    util::to_message(util::ByteBuf(kBytes)),
                                    proc.now());
                    proc.clock().set(tx);
                }
                times[static_cast<std::size_t>(i)].last_tx = tx;
            });
            g.spawn(*ms[2 * i + 1], [&, i](Process& proc) {
                auto port =
                    proc.machine().adapter_on(seg)->open(proc, "det");
                start.arrive_and_wait();
                SimTime last = 0;
                for (int m = 0; m < kMsgs; ++m) {
                    auto pkt = port->recv();
                    ASSERT_TRUE(pkt.has_value());
                    last = pkt->deliver_time;
                    proc.clock().merge(last);
                }
                times[static_cast<std::size_t>(i)].last_deliver = last;
            });
        }
        g.join_all();
        return times;
    };

    const auto reference = run(TimingMode::kSegmentGlobal, false);
    EXPECT_EQ(reference, run(TimingMode::kSegmentGlobal, true));
    EXPECT_EQ(reference, run(TimingMode::kSharded, false));
    EXPECT_EQ(reference, run(TimingMode::kSharded, true));
}

TEST(FabricStress, ConcurrentPairsIncastAndRouteChurn) {
    // TSan workhorse (run under PADICO_SANITIZE=thread in the build-tsan
    // tree): disjoint streaming pairs, a shared incast sink, and a
    // process churning its port open/closed to invalidate the lock-free
    // route table while traffic flows.
    constexpr int kPairs = 4;
    constexpr int kMsgs = 400;
    constexpr std::size_t kBytes = 1024;

    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    std::vector<Machine*> ms;
    for (int i = 0; i < 2 * kPairs + 2; ++i) {
        ms.push_back(&g.add_machine("s" + std::to_string(i)));
        g.attach(*ms.back(), seg);
    }
    const ChannelId ch = g.channel_id("stress");
    const ProcessId sink_pid = 2 * kPairs;
    constexpr int kIncastEvery = 8;
    std::atomic<bool> stop_churn{false};
    osal::Barrier start(2 * kPairs + 1);

    for (int i = 0; i < kPairs; ++i) {
        const ProcessId rx_pid = static_cast<ProcessId>(2 * i + 1);
        g.spawn(*ms[2 * i], [&, rx_pid](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "st");
            start.arrive_and_wait();
            for (int m = 0; m < kMsgs; ++m) {
                proc.compute(usec(5.0));
                const ProcessId dst =
                    m % kIncastEvery == 0 ? sink_pid : rx_pid;
                proc.clock().set(port->send(
                    dst, ch, util::to_message(util::ByteBuf(kBytes)),
                    proc.now()));
            }
        });
        g.spawn(*ms[2 * i + 1], [&](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "st");
            start.arrive_and_wait();
            const int expect = kMsgs - (kMsgs + kIncastEvery - 1) /
                                           kIncastEvery;
            for (int m = 0; m < expect; ++m) {
                auto pkt = port->recv();
                ASSERT_TRUE(pkt.has_value());
                proc.clock().merge(pkt->deliver_time);
            }
        });
    }
    g.spawn(*ms[2 * kPairs], [&](Process& proc) { // incast sink
        auto port = proc.machine().adapter_on(seg)->open(proc, "st");
        start.arrive_and_wait();
        const int expect =
            kPairs * ((kMsgs + kIncastEvery - 1) / kIncastEvery);
        for (int m = 0; m < expect; ++m) {
            auto pkt = port->recv();
            ASSERT_TRUE(pkt.has_value());
            proc.clock().merge(pkt->deliver_time);
        }
        stop_churn.store(true);
    });
    g.spawn(*ms[2 * kPairs + 1], [&](Process& proc) { // route churn
        Adapter* nic = proc.machine().adapter_on(seg);
        while (!stop_churn.load()) {
            auto port = nic->open(proc, "churn");
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    });
    g.join_all();

    std::uint64_t tx_total = 0, rx_total = 0;
    for (int i = 0; i < 2 * kPairs + 2; ++i) {
        const AdapterCounters c = ms[i]->adapters()[0]->counters();
        tx_total += c.tx_packets;
        rx_total += c.rx_packets;
    }
    EXPECT_EQ(tx_total, static_cast<std::uint64_t>(kPairs) * kMsgs);
    EXPECT_EQ(rx_total, tx_total);
}

TEST(LinkModel, RouteFastPathCountersAndFallback) {
    Pair p(NetTech::FastEthernet);
    const ChannelId ch = p.grid.channel_id("fast");
    constexpr int kMsgs = 32;
    osal::Event b_open;
    p.grid.spawn(*p.a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        b_open.wait();
        for (int i = 0; i < kMsgs; ++i)
            proc.clock().set(port->send(
                1, ch, util::to_message(util::ByteBuf(64)), proc.now()));
        // With the table warm and no route churn, at most the first send
        // misses; everything after reads the table without route_mu_.
        EXPECT_GE(p.seg->route_fast_hits(), kMsgs - 1u);
        // Disabling the fast lanes forces every lookup down the slow path.
        const std::uint64_t hits_before = p.seg->route_fast_hits();
        util::set_caches_enabled(false);
        proc.clock().set(port->send(
            1, ch, util::to_message(util::ByteBuf(64)), proc.now()));
        util::set_caches_enabled(true);
        EXPECT_EQ(p.seg->route_fast_hits(), hits_before);
    });
    p.grid.spawn(*p.b, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*p.seg)->open(proc, "x");
        b_open.set();
        for (int i = 0; i < kMsgs + 1; ++i) (void)port->recv();
    });
    p.grid.join_all();
    EXPECT_GT(p.seg->route_fast_misses(), 0u);
}

TEST(LinkModel, UnreachablePeerThrows) {
    // The peer process exists but its machine is not attached to the
    // segment: topologically unreachable.
    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    auto& a = g.add_machine("a");
    auto& island = g.add_machine("island"); // no adapters at all
    g.attach(a, seg);
    osal::Event stay;
    g.spawn(island, [&](Process&) { stay.wait(); }); // pid 0
    g.spawn(a, [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "x");
        EXPECT_THROW(port->send(0, 1, util::Message(), 0), LookupError);
        stay.set();
    });
    g.join_all();
}

// ---------------------------------------------------------------------------
// BusyList (the NIC capacity reservation structure)

TEST(BusyList, SequentialReservationsChain) {
    BusyList bl;
    EXPECT_EQ(bl.reserve(0, 100), 0);
    EXPECT_EQ(bl.reserve(0, 100), 100); // serialized behind the first
    EXPECT_EQ(bl.reserve(0, 50), 200);
    EXPECT_EQ(bl.spans(), 1u); // coalesced into one span
}

TEST(BusyList, GapsAreUsed) {
    BusyList bl;
    EXPECT_EQ(bl.reserve(1000, 100), 1000); // [1000,1100)
    EXPECT_EQ(bl.reserve(0, 500), 0);       // fits before
    EXPECT_EQ(bl.reserve(0, 600), 1100);    // gap [500,1000) too small
    EXPECT_EQ(bl.reserve(400, 100), 500);   // exact fit in the gap
}

TEST(BusyList, InsensitiveToBookingOrder) {
    // The causality property: a virtually-late small reservation must not
    // delay a virtually-early large one, whatever the booking order.
    BusyList late_first;
    EXPECT_EQ(late_first.reserve(100000, 10), 100000);
    EXPECT_EQ(late_first.reserve(0, 50000), 0);

    BusyList early_first;
    EXPECT_EQ(early_first.reserve(0, 50000), 0);
    EXPECT_EQ(early_first.reserve(100000, 10), 100000);
}

TEST(BusyList, ZeroDurationIsFree) {
    BusyList bl;
    EXPECT_EQ(bl.reserve(7, 0), 7);
    EXPECT_EQ(bl.spans(), 0u);
}

TEST(BusyList, CoalescingBoundsGrowthUnderStreaming) {
    BusyList bl;
    SimTime t = 0;
    for (int i = 0; i < 1000; ++i) t = bl.reserve(t, 10) + 10;
    EXPECT_EQ(bl.spans(), 1u);
    EXPECT_EQ(t, 10000);
}

TEST(BusyList, FragmentationAndCoalescingEdges) {
    BusyList bl;
    EXPECT_EQ(bl.reserve(0, 10), 0);    // [0,10)
    EXPECT_EQ(bl.reserve(20, 10), 20);  // [20,30), gap [10,20)
    EXPECT_EQ(bl.spans(), 2u);
    EXPECT_EQ(bl.reserve(10, 10), 10);  // exact fill joins both neighbours
    EXPECT_EQ(bl.spans(), 1u);
    EXPECT_EQ(bl.high_water(), 2u);
    // Insert before the head span and after the tail span.
    EXPECT_EQ(bl.reserve(100, 5), 100);
    EXPECT_EQ(bl.reserve(0, 5), 30); // head busy [0,30): lands right after
    EXPECT_EQ(bl.reserve(200, 1), 200);
    EXPECT_EQ(bl.spans(), 3u);
    EXPECT_EQ(bl.high_water(), 3u);
    // A too-small gap is skipped, a barely-large-enough one is used.
    EXPECT_EQ(bl.reserve(0, 70), 105); // [35,100) has 65 < 70 → after [100,105)
    EXPECT_EQ(bl.reserve(0, 65), 35);  // exact fit in [35,100)
}

TEST(BusyList, LinearAndIndexedReserveAgree) {
    // reserve() (binary search) and reserve_linear() (the pre-sharding
    // scan-from-zero reference) must be bit-identical on any workload.
    util::Rng rng(42);
    BusyList indexed, linear;
    for (int i = 0; i < 2000; ++i) {
        const SimTime earliest = static_cast<SimTime>(rng.below(100000));
        const SimTime dur = static_cast<SimTime>(1 + rng.below(500));
        EXPECT_EQ(indexed.reserve(earliest, dur),
                  linear.reserve_linear(earliest, dur));
    }
    EXPECT_EQ(indexed.spans(), linear.spans());
}

TEST(BusyList, PruneRetiresCompletedSpansExactly) {
    // Build a fragmented history, prune behind a horizon, then verify a
    // long mixed reserve sequence (all at or after the horizon, per the
    // prune contract) is bit-identical to the unpruned copy.
    util::Rng rng(7);
    BusyList base;
    for (int i = 0; i < 300; ++i)
        base.reserve(static_cast<SimTime>(rng.below(50000)),
                     static_cast<SimTime>(1 + rng.below(40)));
    const SimTime horizon = 25000;
    BusyList pruned = base; // BusyList is a value type: plain copy
    pruned.prune(horizon);
    EXPECT_GT(pruned.pruned(), 0u);
    EXPECT_LT(pruned.spans(), base.spans());
    EXPECT_EQ(pruned.floor(), horizon);
    for (int i = 0; i < 500; ++i) {
        const SimTime earliest =
            horizon + static_cast<SimTime>(rng.below(50000));
        const SimTime dur = static_cast<SimTime>(1 + rng.below(40));
        EXPECT_EQ(pruned.reserve(earliest, dur), base.reserve(earliest, dur));
    }
    EXPECT_EQ(pruned.spans(), base.spans() - pruned.pruned());
}

TEST(BusyList, PruneFloorClampsContractViolators) {
    BusyList bl;
    EXPECT_EQ(bl.reserve(1000, 100), 1000);
    bl.prune(500); // nothing ends before 500: only the floor moves
    EXPECT_EQ(bl.pruned(), 0u);
    EXPECT_EQ(bl.floor(), 500);
    // A reservation booked "into the past" is clamped to the floor: it can
    // never claim wire time that pruning may already have retired.
    EXPECT_EQ(bl.reserve(0, 100), 500);
    // Straddling spans survive pruning whole.
    BusyList s;
    s.reserve(0, 100);
    s.prune(50);
    EXPECT_EQ(s.spans(), 1u);
    EXPECT_EQ(s.reserve(0, 10), 100); // [0,100) still booked
}

// ---------------------------------------------------------------------------
// Discovery registry

TEST(Registry, DiscoverByAttributesNetworkAndCpus) {
    Grid g;
    auto& myri = g.add_segment("myri", NetTech::Myrinet2000);
    auto& eth = g.add_segment("eth", NetTech::FastEthernet);
    auto& n0 = g.add_machine("n0", 2);
    auto& n1 = g.add_machine("n1", 4);
    auto& n2 = g.add_machine("n2", 1);
    n0.set_attr("owner", "companyX");
    n1.set_attr("owner", "companyX");
    n2.set_attr("owner", "inria");
    g.attach(n0, eth);
    g.attach(n1, myri);
    g.attach(n1, eth);
    g.attach(n2, myri);

    MachineQuery q;
    q.attrs = {{"owner", "companyX"}};
    EXPECT_EQ(discover(g, q).size(), 2u);

    q.network = NetTech::Myrinet2000;
    auto r = discover(g, q);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0]->name(), "n1");

    MachineQuery qbw;
    qbw.min_bandwidth_mb = 100.0;
    EXPECT_EQ(discover(g, qbw).size(), 2u); // n1, n2 via myrinet

    MachineQuery qcpu;
    qcpu.min_cpus = 4;
    ASSERT_EQ(discover(g, qcpu).size(), 1u);
    EXPECT_EQ(discover(g, qcpu)[0]->name(), "n1");
}

TEST(Registry, BuildGridFromXml) {
    Grid g;
    build_grid_from_xml(g, R"(<grid>
        <segment name="myri0" tech="myrinet2000"/>
        <segment name="wan0" tech="wan"/>
        <segment name="lan0" tech="fast-ethernet" secure="false" shared="true"/>
        <machine name="n0" cpus="2" owner="inria" site="rennes">
          <attach segment="myri0"/>
          <attach segment="wan0"/>
        </machine>
        <machine name="n1">
          <attach segment="lan0"/>
        </machine>
      </grid>)");
    EXPECT_EQ(g.machines().size(), 2u);
    EXPECT_EQ(g.machine("n0").attr_or("site", ""), "rennes");
    EXPECT_NE(g.machine("n0").adapter_on(g.segment("wan0")), nullptr);
    EXPECT_FALSE(g.segment("lan0").params().secure);
    // shared="true" models a hub/bus: segment-global timing serialization.
    EXPECT_EQ(g.segment("lan0").timing_mode(), TimingMode::kSegmentGlobal);
    EXPECT_EQ(g.segment("myri0").timing_mode(), TimingMode::kSharded);
    // Malformed documents surface as ProtocolError carrying the element
    // context (test_topology pins the message text).
    EXPECT_THROW(build_grid_from_xml(g, "<grid><segment name='x' tech='bogus'/></grid>"),
                 ProtocolError);
    EXPECT_THROW(build_grid_from_xml(g, "<notgrid/>"), ProtocolError);
}
