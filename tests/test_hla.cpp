// Tests for the HLA (Certi substitute) module: federation life cycle,
// publish/subscribe, object discovery (including late subscribers),
// attribute reflection, ownership rules, and cohabitation with the other
// middleware on one PadicoTM runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>

#include "hla/hla.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::hla;

namespace {

struct Net {
    Grid grid;
    std::vector<Machine*> nodes;
    explicit Net(int n) {
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("h" + std::to_string(i));
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
    }
};

/// Records callbacks; wakes waiters when a condition becomes observable.
class RecordingAmbassador : public FederateAmbassador {
public:
    void discover_object(ObjectHandle handle, const std::string& cls,
                         const std::string& owner) override {
        std::lock_guard<std::mutex> lk(mu_);
        discovered[handle] = cls + "@" + owner;
        cv_.notify_all();
    }
    void reflect_attribute_values(ObjectHandle handle,
                                  const AttributeMap& attrs) override {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto& [k, v] : attrs) reflected[handle][k] = v;
        cv_.notify_all();
    }

    /// Block until \p handle has attribute \p key == \p value.
    void wait_reflect(ObjectHandle handle, const std::string& key,
                      const std::string& value) {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
            auto it = reflected.find(handle);
            return it != reflected.end() && it->second.count(key) != 0 &&
                   it->second.at(key) == value;
        });
    }
    void wait_discover(ObjectHandle handle) {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return discovered.count(handle) != 0; });
    }

    std::map<ObjectHandle, std::string> discovered;
    std::map<ObjectHandle, AttributeMap> reflected;

private:
    std::mutex mu_;
    std::condition_variable cv_;
};

} // namespace

TEST(Hla, CdrAttributeMapRoundTrip) {
    AttributeMap attrs{{"x", "1.5"}, {"name", "probe"}, {"", "empty-key"}};
    corba::cdr::Encoder e(true);
    cdr_put(e, attrs);
    corba::cdr::Decoder d(e.take());
    AttributeMap back;
    cdr_get(d, back);
    EXPECT_EQ(back, attrs);
    d.expect_end();
}

TEST(Hla, FederationPublishSubscribeReflect) {
    Net net(3);
    osal::Event rti_up, done;
    osal::Latch resigned(2);

    // RTI gateway process.
    net.grid.spawn(*net.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        RtiGateway gateway(orb, "transport-sim");
        rti_up.set();
        done.wait();
        resigned.wait();
        EXPECT_EQ(gateway.federates(), 0u); // all resigned
        orb.shutdown();
    });

    osal::Event pub_ready;
    std::atomic<ObjectHandle> shared_handle{0};

    // Publisher federate.
    net.grid.spawn(*net.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        rti_up.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "transport-sim", "producer", amb);
        rtia.publish_object_class("Vehicle");
        const ObjectHandle car = rtia.register_object("Vehicle");
        shared_handle = car;
        pub_ready.set();
        rtia.update_attribute_values(car, {{"speed", "12"}, {"lane", "1"}});
        rtia.update_attribute_values(car, {{"speed", "15"}});
        // Unpublished class cannot be registered.
        EXPECT_THROW(rtia.register_object("Plane"), RemoteError);
        done.wait();
        rtia.resign();
        resigned.count_down();
        orb.shutdown();
    });

    // Subscriber federate.
    net.grid.spawn(*net.nodes[2], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        rti_up.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "transport-sim", "observer", amb);
        rtia.subscribe_object_class("Vehicle");
        pub_ready.wait();
        const ObjectHandle car = shared_handle.load();
        amb.wait_discover(car);
        EXPECT_EQ(amb.discovered[car], "Vehicle@producer");
        amb.wait_reflect(car, "speed", "15");
        EXPECT_EQ(amb.reflected[car]["lane"], "1"); // earlier update kept
        rtia.resign();
        resigned.count_down();
        done.set();
        orb.shutdown();
    });

    net.grid.join_all();
}

TEST(Hla, LateSubscriberDiscoversExistingObjects) {
    Net net(3);
    osal::Event rti_up, registered, done;
    osal::Latch resigned(2);
    std::atomic<ObjectHandle> h{0};

    net.grid.spawn(*net.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        RtiGateway gateway(orb, "late");
        rti_up.set();
        resigned.wait();
        orb.shutdown();
    });
    net.grid.spawn(*net.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        rti_up.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "late", "early-bird", amb);
        rtia.publish_object_class("Sensor");
        h = rtia.register_object("Sensor");
        registered.set();
        done.wait();
        rtia.resign();
        resigned.count_down();
        orb.shutdown();
    });
    net.grid.spawn(*net.nodes[2], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        registered.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "late", "latecomer", amb);
        rtia.subscribe_object_class("Sensor"); // object already exists
        amb.wait_discover(h.load());
        rtia.resign();
        resigned.count_down();
        done.set();
        orb.shutdown();
    });
    net.grid.join_all();
}

TEST(Hla, OwnershipAndMembershipRules) {
    Net net(3);
    osal::Event rti_up, obj_ready, done;
    osal::Latch resigned(2);
    std::atomic<ObjectHandle> h{0};
    net.grid.spawn(*net.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        RtiGateway gateway(orb, "rules");
        rti_up.set();
        resigned.wait();
        orb.shutdown();
    });
    net.grid.spawn(*net.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        rti_up.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "rules", "owner", amb);
        rtia.publish_object_class("Thing");
        h = rtia.register_object("Thing");
        obj_ready.set();
        done.wait();
        rtia.resign();
        resigned.count_down();
        orb.shutdown();
    });
    net.grid.spawn(*net.nodes[2], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        obj_ready.wait();
        RecordingAmbassador amb;
        RtiAmbassador rtia(orb, "rules", "intruder", amb);
        // Updating someone else's object is rejected.
        EXPECT_THROW(
            rtia.update_attribute_values(h.load(), {{"hacked", "1"}}),
            RemoteError);
        rtia.resign();
        resigned.count_down();
        done.set();
        orb.shutdown();
    });
    net.grid.join_all();
}

TEST(Hla, ModuleRegistered) {
    install();
    EXPECT_TRUE(ptm::ModuleManager::has_type("certi"));
}
