// Tests for the event-driven server stack: osal::WaitSet readiness
// multiplexing, ServerCore connection lifecycle (accept, frame dispatch,
// prune-on-close), the thread-count bound vs concurrent clients, pool
// elasticity under blocking handlers, and virtual-time equivalence of the
// event-driven and thread-per-connection server shapes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "corba/orb.hpp"
#include "fabric/grid.hpp"
#include "osal/blocking.hpp"
#include "osal/sync.hpp"
#include "osal/waitset.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::corba;

namespace {

struct DuoGrid {
    Grid grid;
    Machine* server;
    Machine* client;

    DuoGrid() {
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        server = &grid.add_machine("srv");
        client = &grid.add_machine("cli");
        for (auto* m : {server, client}) grid.attach(*m, eth);
    }
};

class EchoServant : public Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, cdr::Decoder& in,
                  cdr::Encoder& out) override {
        if (op != "echo") throw RemoteError("BAD_OPERATION " + op);
        out.put_string(in.get_string());
    }
};

/// Rendezvous servant: the first caller parks inside the handler until a
/// second caller arrives — the cross-request wait that deadlocks a fixed
/// pool unless the pool honors BlockingHint regions.
class MeetServant : public Servant {
public:
    std::string interface() const override { return "IDL:Meet:1.0"; }
    void dispatch(const std::string& op, cdr::Decoder&,
                  cdr::Encoder& out) override {
        if (op != "meet") throw RemoteError("BAD_OPERATION " + op);
        std::unique_lock<std::mutex> lk(mu_);
        ++arrived_;
        if (arrived_ < 2) {
            osal::BlockingHint::Region blocking;
            cv_.wait(lk, [&] { return arrived_ >= 2; });
        } else {
            cv_.notify_all();
        }
        out.put_bool(true);
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    int arrived_ = 0;
};

/// One raw GIOP request/reply round trip (the wire shape ObjectRef::invoke
/// produces). Raw so tests control when the stream close()s.
std::string raw_echo_call(ptm::VLink& conn, std::uint64_t req_id,
                          std::uint64_t key, const std::string& payload,
                          const std::string& op = "echo") {
    cdr::Encoder req(true);
    req.put_u64(req_id);
    req.put_u64(key);
    req.put_bool(true);
    req.put_string(op);
    req.put_message(cdr::encode(true, payload));
    giop::send_message(conn, giop::MsgType::Request, req.take());

    auto reply = giop::recv_message(conn);
    EXPECT_TRUE(reply.has_value());
    cdr::Decoder dec(std::move(reply->second));
    EXPECT_EQ(dec.get_u64(), req_id);
    EXPECT_EQ(dec.get_u8(),
              static_cast<std::uint8_t>(giop::ReplyStatus::NoException));
    if (op != "echo") return {};
    return cdr::decode_one<std::string>(dec.get_bytes_msg(dec.remaining()));
}

/// Poll server stats until \p pred holds or ~2s elapse.
template <typename Pred>
svc::ServerCore::Stats poll_stats(const Orb& orb, Pred pred) {
    svc::ServerCore::Stats st;
    for (int spin = 0; spin < 2000; ++spin) {
        st = orb.server_stats();
        if (pred(st)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return st;
}

} // namespace

// ---------------------------------------------------------------------------
// WaitSet

TEST(WaitSet, ItemsPushedBeforeAddStillReport) {
    osal::BlockingQueue<int> q;
    q.push(7);
    osal::WaitSet ws;
    ws.add(q, 3);
    const auto ready = ws.wait(); // must not block: readiness is level
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 3u);
    EXPECT_EQ(q.try_pop(), std::optional<int>(7));
    EXPECT_TRUE(ws.poll().empty());
}

TEST(WaitSet, PushWakesABlockedWait) {
    osal::BlockingQueue<int> q;
    osal::WaitSet ws;
    ws.add(q, 1);
    std::atomic<bool> woke{false};
    std::thread t([&] {
        const auto ready = ws.wait();
        ASSERT_EQ(ready.size(), 1u);
        EXPECT_EQ(ready[0], 1u);
        woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(woke.load());
    q.push(42);
    t.join();
    EXPECT_TRUE(woke.load());
    ws.remove(1);
}

TEST(WaitSet, CloseCountsAsReadyUntilRemoved) {
    osal::BlockingQueue<int> q;
    osal::WaitSet ws;
    ws.add(q, 9);
    q.close();
    EXPECT_EQ(ws.wait(), std::vector<osal::WaitSet::Key>{9});
    // Level-triggered: still ready until the caller deregisters.
    EXPECT_EQ(ws.poll(), std::vector<osal::WaitSet::Key>{9});
    ws.remove(9);
    EXPECT_TRUE(ws.poll().empty());
    EXPECT_EQ(ws.size(), 0u);
}

TEST(WaitSet, InterruptReturnsEmpty) {
    osal::BlockingQueue<int> q;
    osal::WaitSet ws;
    ws.add(q, 1);
    std::thread t([&] { EXPECT_TRUE(ws.wait().empty()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ws.interrupt();
    t.join();
}

TEST(WaitSet, ReportsEveryReadyQueue) {
    osal::BlockingQueue<int> a, b, c;
    osal::WaitSet ws;
    ws.add(a, 10);
    ws.add(b, 20);
    ws.add(c, 30);
    a.push(1);
    c.push(3);
    const auto ready = ws.wait();
    EXPECT_EQ(ready, (std::vector<osal::WaitSet::Key>{10, 30}));
    ws.remove(10);
    ws.remove(20);
    ws.remove(30);
    // Removing unknown keys is a no-op (prune races a late readiness).
    ws.remove(99);
}

// ---------------------------------------------------------------------------
// ServerCore lifecycle

TEST(ServerCore, ClosedConnectionIsPruned) {
    // Regression: the old per-connection servers kept every accepted
    // connection in conns_ forever; the core must release a connection
    // (and its VLink/channel subscription) once the stream closes.
    DuoGrid g;
    osal::Event served, client_done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        orb.serve("prune-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/prune/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        client_done.wait();
        const auto st = poll_stats(orb, [](const svc::ServerCore::Stats& s) {
            return s.live_connections == 0 && s.pruned >= 1;
        });
        EXPECT_EQ(st.accepted, 1u);
        EXPECT_EQ(st.pruned, 1u);
        EXPECT_EQ(st.live_connections, 0u);
        EXPECT_EQ(st.frames, 2u);
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key = proc.grid().wait_service("test/prune/key");
        ptm::VLink conn = ptm::VLink::connect(rt, "prune-ep");
        EXPECT_EQ(raw_echo_call(conn, 1, key, "ping"), "ping");
        EXPECT_EQ(raw_echo_call(conn, 2, key, "pong"), "pong");
        conn.close();
        client_done.set();
    });
    g.grid.join_all();
}

TEST(ServerCore, ThreadCountBoundedByPoolNotConnections) {
    constexpr int kClients = 8;
    Grid grid;
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& srv = grid.add_machine("srv");
    grid.attach(srv, eth);
    std::vector<Machine*> clients;
    for (int i = 0; i < kClients; ++i) {
        auto& m = grid.add_machine("cli" + std::to_string(i));
        grid.attach(m, eth);
        clients.push_back(&m);
    }
    osal::Event served;
    osal::Latch done(kClients);
    osal::Barrier start(kClients);
    grid.spawn(srv, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.workers = 2;
        orb.serve("bound-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/bound/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        const auto st = poll_stats(orb, [](const svc::ServerCore::Stats& s) {
            return s.live_connections == 0;
        });
        EXPECT_EQ(st.accepted, static_cast<std::uint64_t>(kClients));
        EXPECT_EQ(st.pruned, static_cast<std::uint64_t>(kClients));
        // 1 dispatcher + the pool, no matter how many clients connected.
        EXPECT_EQ(st.peak_threads, 1u + 2u);
        orb.shutdown();
    });
    for (int c = 0; c < kClients; ++c) {
        grid.spawn(*clients[static_cast<std::size_t>(c)],
                   [&, c](Process& proc) {
            ptm::Runtime rt(proc);
            served.wait();
            const std::uint64_t key =
                proc.grid().wait_service("test/bound/key");
            ptm::VLink conn = ptm::VLink::connect(rt, "bound-ep");
            start.arrive_and_wait(); // all connections live at once
            for (int i = 0; i < 4; ++i)
                EXPECT_EQ(raw_echo_call(conn,
                                        static_cast<std::uint64_t>(i + 1),
                                        key, "c" + std::to_string(c)),
                          "c" + std::to_string(c));
            conn.close();
            done.count_down();
        });
    }
    grid.join_all();
}

TEST(ServerCore, BlockingHintGrowsAndShrinksPool) {
    // Two clients rendezvous inside the servant. With a pool of ONE the
    // first contact would starve the second forever — unless the blocked
    // handler's BlockingHint region lends its slot to a spare thread.
    DuoGrid g;
    osal::Event served, done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.workers = 1;
        orb.serve("meet-ep", opts);
        IOR ior = orb.activate(std::make_shared<MeetServant>());
        proc.grid().register_service("test/meet/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        const auto st = orb.server_stats();
        // The rendezvous needed a spare thread beyond dispatcher + pool.
        EXPECT_GE(st.peak_threads, 3u);
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key = proc.grid().wait_service("test/meet/key");
        ptm::VLink c1 = ptm::VLink::connect(rt, "meet-ep");
        ptm::VLink c2 = ptm::VLink::connect(rt, "meet-ep");
        std::thread first(
            [&] { raw_echo_call(c1, 1, key, "", "meet"); });
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        raw_echo_call(c2, 1, key, "", "meet");
        first.join();
        c1.close();
        c2.close();
        done.set();
    });
    g.grid.join_all();
}

TEST(ServerCore, SerialVirtualTimeIdenticalAcrossModes) {
    // The server shape is real-time plumbing: a serialized workload must
    // produce bit-identical virtual completion times in both modes.
    auto run = [](svc::ServerCore::Mode mode) {
        DuoGrid g;
        osal::Event served, done;
        std::vector<SimTime> trace;
        g.grid.spawn(*g.server, [&](Process& proc) {
            ptm::Runtime rt(proc);
            Orb orb(rt, profile_omniorb4());
            svc::ServerCore::Options opts;
            opts.mode = mode;
            orb.serve("vt-ep", opts);
            IOR ior = orb.activate(std::make_shared<EchoServant>());
            proc.grid().register_service("test/vt/key",
                                         static_cast<ProcessId>(ior.key));
            served.set();
            done.wait();
            orb.shutdown();
        });
        g.grid.spawn(*g.client, [&](Process& proc) {
            ptm::Runtime rt(proc);
            served.wait();
            const std::uint64_t key = proc.grid().wait_service("test/vt/key");
            ptm::VLink conn = ptm::VLink::connect(rt, "vt-ep");
            for (int i = 0; i < 24; ++i) {
                raw_echo_call(conn, static_cast<std::uint64_t>(i + 1), key,
                              std::string(100 + i, 'p'));
                trace.push_back(proc.now());
            }
            conn.close();
            done.set();
        });
        g.grid.join_all();
        return trace;
    };
    const auto event = run(svc::ServerCore::Mode::kEventDriven);
    const auto legacy = run(svc::ServerCore::Mode::kThreadPerConnection);
    const auto sharded = run(svc::ServerCore::Mode::kShardedReadiness);
    ASSERT_EQ(event.size(), 24u);
    EXPECT_EQ(event, legacy);
    EXPECT_EQ(event, sharded);
    EXPECT_GT(event.back(), 0);
}
