// Tests for PadMPI: point-to-point semantics, nonblocking requests,
// collectives against sequential oracles (parameterized sweeps),
// communicator management, derived datatypes, and the paper's §4.4
// MPI-on-Myrinet performance points (11 us latency, 240 MB/s peak).

#include <gtest/gtest.h>

#include <numeric>

#include "fabric/grid.hpp"
#include "mpi/datatype.hpp"
#include "mpi/mpi.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

/// A Myrinet cluster of n machines (plus Fast-Ethernet control network).
struct Cluster {
    Grid grid;
    std::vector<Machine*> nodes;

    explicit Cluster(int n) {
        auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("node" + std::to_string(i));
            grid.attach(m, myri);
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
    }

    /// Run an SPMD body with an MPI world already set up.
    void run(const std::function<void(mpi::Comm&, fabric::Process&)>& body) {
        std::vector<ProcessId> members(nodes.size());
        std::iota(members.begin(), members.end(), 0u);
        run_spmd(grid, nodes, [&, members](Process& proc, int, int) {
            ptm::Runtime rt(proc);
            mpi::install();
            auto mod = std::static_pointer_cast<mpi::MpiModule>(
                rt.modules().load("mpi"));
            auto world = mod->init("test", members);
            body(world->world(), proc);
        });
        grid.join_all();
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Point to point

TEST(MpiP2p, SendRecvTyped) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        if (comm.rank() == 0) {
            std::vector<double> xs{1.5, 2.5, 3.5};
            comm.send(std::span<const double>(xs), 1, 42);
            comm.send_value<std::int32_t>(7, 1, 43);
        } else {
            std::vector<double> xs(3);
            mpi::Status st = comm.recv(std::span<double>(xs), 0, 42);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 42);
            EXPECT_EQ(st.bytes, 3 * sizeof(double));
            EXPECT_DOUBLE_EQ(xs[2], 3.5);
            EXPECT_EQ(comm.recv_value<std::int32_t>(0, 43), 7);
        }
    });
}

TEST(MpiP2p, WildcardsAndOrdering) {
    Cluster c(3);
    c.run([](mpi::Comm& comm, Process&) {
        if (comm.rank() != 0) {
            for (int i = 0; i < 3; ++i)
                comm.send_value<std::int32_t>(comm.rank() * 10 + i, 0,
                                              comm.rank());
        } else {
            // ANY_SOURCE with a fixed tag picks the right sender...
            int got_from_2 = 0;
            for (int i = 0; i < 3; ++i) {
                std::int32_t v = 0;
                const mpi::Status st =
                    comm.recv_bytes(&v, sizeof v, mpi::kAnySource, 2);
                EXPECT_EQ(st.source, 2);
                EXPECT_EQ(v, 20 + got_from_2); // per-sender FIFO order
                ++got_from_2;
            }
            // ...and ANY_TAG drains the rest.
            int count = 0;
            for (int i = 0; i < 3; ++i) {
                std::int32_t v = 0;
                mpi::Status st =
                    comm.recv_bytes(&v, sizeof v, 1, mpi::kAnyTag);
                EXPECT_EQ(st.source, 1);
                EXPECT_EQ(v, 10 + count);
                ++count;
            }
        }
    });
}

TEST(MpiP2p, TruncationIsAnError) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        if (comm.rank() == 0) {
            std::vector<std::int32_t> big(16);
            comm.send(std::span<const std::int32_t>(big), 1, 0);
        } else {
            std::int32_t tiny[2];
            EXPECT_THROW(comm.recv_bytes(tiny, sizeof tiny, 0, 0),
                         UsageError);
        }
    });
}

TEST(MpiP2p, NonblockingIsendIrecvWait) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        if (comm.rank() == 0) {
            std::int64_t v = 0x1234;
            auto req = comm.isend_bytes(&v, sizeof v, 1, 5);
            EXPECT_TRUE(req.test()); // sends complete eagerly
            req.wait();
        } else {
            std::int64_t v = 0;
            auto req = comm.irecv_bytes(&v, sizeof v, 0, 5);
            mpi::Status st = req.wait();
            EXPECT_EQ(v, 0x1234);
            EXPECT_EQ(st.bytes, sizeof v);
            EXPECT_TRUE(req.test()); // idempotent after completion
        }
    });
}

TEST(MpiP2p, WaitAllMixedRequests) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        constexpr int kN = 8;
        if (comm.rank() == 0) {
            std::vector<mpi::Request> reqs;
            std::vector<std::int32_t> vals(kN);
            for (int i = 0; i < kN; ++i) {
                vals[i] = i * i;
                reqs.push_back(
                    comm.isend_bytes(&vals[i], sizeof(std::int32_t), 1, i));
            }
            mpi::wait_all(reqs);
        } else {
            std::vector<mpi::Request> reqs;
            std::vector<std::int32_t> got(kN);
            for (int i = 0; i < kN; ++i)
                reqs.push_back(
                    comm.irecv_bytes(&got[i], sizeof(std::int32_t), 0, i));
            mpi::wait_all(reqs);
            for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], i * i);
        }
    });
}

// ---------------------------------------------------------------------------
// Collectives: parameterized sweep against sequential oracles

struct CollCase {
    int nodes;
    std::size_t elems;
};

class MpiCollectives : public ::testing::TestWithParam<CollCase> {};

TEST_P(MpiCollectives, BcastMatchesRoot) {
    const auto param = GetParam();
    Cluster c(param.nodes);
    c.run([&](mpi::Comm& comm, Process&) {
        for (int root = 0; root < comm.size(); ++root) {
            std::vector<std::int64_t> data(param.elems);
            if (comm.rank() == root)
                for (std::size_t i = 0; i < data.size(); ++i)
                    data[i] = static_cast<std::int64_t>(i * 3 + root);
            comm.bcast(std::span<std::int64_t>(data), root);
            for (std::size_t i = 0; i < data.size(); ++i)
                ASSERT_EQ(data[i], static_cast<std::int64_t>(i * 3 + root));
        }
    });
}

TEST_P(MpiCollectives, ReduceAndAllreduceOracle) {
    const auto param = GetParam();
    Cluster c(param.nodes);
    c.run([&](mpi::Comm& comm, Process&) {
        std::vector<std::int64_t> mine(param.elems);
        for (std::size_t i = 0; i < mine.size(); ++i)
            mine[i] = static_cast<std::int64_t>((comm.rank() + 1) * (i + 1));
        // Oracle on every rank.
        std::vector<std::int64_t> expect_sum(param.elems, 0);
        std::vector<std::int64_t> expect_max(param.elems);
        for (std::size_t i = 0; i < param.elems; ++i) {
            for (int r = 0; r < comm.size(); ++r)
                expect_sum[i] += static_cast<std::int64_t>((r + 1) * (i + 1));
            expect_max[i] =
                static_cast<std::int64_t>(comm.size() * (i + 1));
        }
        std::vector<std::int64_t> out(param.elems);
        comm.reduce(std::span<const std::int64_t>(mine),
                    std::span<std::int64_t>(out), mpi::Op::Sum, 0);
        if (comm.rank() == 0) EXPECT_EQ(out, expect_sum);

        comm.allreduce(std::span<const std::int64_t>(mine),
                       std::span<std::int64_t>(out), mpi::Op::Max);
        EXPECT_EQ(out, expect_max);
    });
}

TEST_P(MpiCollectives, GatherScatterAllgatherAlltoall) {
    const auto param = GetParam();
    Cluster c(param.nodes);
    c.run([&](mpi::Comm& comm, Process&) {
        const int n = comm.size();
        const std::size_t e = param.elems;
        auto value = [e](int owner, std::size_t i) {
            return static_cast<std::int32_t>(owner * 1000 +
                                             static_cast<int>(i % 997));
        };
        std::vector<std::int32_t> mine(e);
        for (std::size_t i = 0; i < e; ++i) mine[i] = value(comm.rank(), i);

        // gather -> scatter round trip through root 0
        std::vector<std::int32_t> all(e * static_cast<std::size_t>(n));
        comm.gather(std::span<const std::int32_t>(mine),
                    std::span<std::int32_t>(all), 0);
        if (comm.rank() == 0)
            for (int r = 0; r < n; ++r)
                for (std::size_t i = 0; i < e; ++i)
                    ASSERT_EQ(all[static_cast<std::size_t>(r) * e + i],
                              value(r, i));
        std::vector<std::int32_t> back(e);
        comm.scatter(std::span<const std::int32_t>(all),
                     std::span<std::int32_t>(back), 0);
        EXPECT_EQ(back, mine);

        // allgather
        std::vector<std::int32_t> all2(all.size());
        comm.allgather(std::span<const std::int32_t>(mine),
                       std::span<std::int32_t>(all2));
        for (int r = 0; r < n; ++r)
            for (std::size_t i = 0; i < e; ++i)
                ASSERT_EQ(all2[static_cast<std::size_t>(r) * e + i],
                          value(r, i));

        // alltoall: send value(rank, dest-block) -> receive value(src, ...)
        std::vector<std::int32_t> a2a_in(all.size());
        for (int r = 0; r < n; ++r)
            for (std::size_t i = 0; i < e; ++i)
                a2a_in[static_cast<std::size_t>(r) * e + i] =
                    value(comm.rank(), static_cast<std::size_t>(r) * e + i);
        std::vector<std::int32_t> a2a_out(all.size());
        comm.alltoall(std::span<const std::int32_t>(a2a_in),
                      std::span<std::int32_t>(a2a_out));
        for (int r = 0; r < n; ++r)
            for (std::size_t i = 0; i < e; ++i)
                ASSERT_EQ(a2a_out[static_cast<std::size_t>(r) * e + i],
                          value(r, static_cast<std::size_t>(comm.rank()) * e +
                                       i));
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MpiCollectives,
    ::testing::Values(CollCase{1, 4}, CollCase{2, 1}, CollCase{2, 1000},
                      CollCase{3, 7}, CollCase{4, 64}, CollCase{4, 2048}),
    [](const ::testing::TestParamInfo<CollCase>& info) {
        return "n" + std::to_string(info.param.nodes) + "e" +
               std::to_string(info.param.elems);
    });

TEST(MpiColl, BarrierSynchronizesVirtualClocks) {
    Cluster c(4);
    c.run([](mpi::Comm& comm, Process& proc) {
        // Skew the clocks, then barrier: everyone ends up past the max.
        proc.compute(usec(100.0 * comm.rank()));
        comm.barrier();
        EXPECT_GE(proc.now(), usec(300.0));
    });
}

TEST(MpiColl, AlltoallvMessages) {
    Cluster c(3);
    c.run([](mpi::Comm& comm, Process&) {
        std::vector<util::Message> out;
        for (int r = 0; r < comm.size(); ++r) {
            const std::string text = "from" + std::to_string(comm.rank()) +
                                     "to" + std::to_string(r);
            out.push_back(util::to_message(util::ByteBuf(text.data(),
                                                         text.size())));
        }
        auto in = comm.alltoallv_msg(std::move(out));
        for (int r = 0; r < comm.size(); ++r) {
            const std::string expect = "from" + std::to_string(r) + "to" +
                                       std::to_string(comm.rank());
            auto flat = in[static_cast<std::size_t>(r)].gather();
            EXPECT_EQ(std::string(reinterpret_cast<const char*>(flat.data()),
                                  flat.size()),
                      expect);
        }
    });
}

// ---------------------------------------------------------------------------
// Communicators

TEST(MpiComm, DupIsolatesTraffic) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        mpi::Comm dup = comm.dup();
        if (comm.rank() == 0) {
            comm.send_value<std::int32_t>(1, 1, 9);
            dup.send_value<std::int32_t>(2, 1, 9);
        } else {
            // Same tag, different communicators: no cross-talk.
            EXPECT_EQ(dup.recv_value<std::int32_t>(0, 9), 2);
            EXPECT_EQ(comm.recv_value<std::int32_t>(0, 9), 1);
        }
    });
}

TEST(MpiComm, SplitByParity) {
    Cluster c(4);
    c.run([](mpi::Comm& comm, Process&) {
        mpi::Comm sub = comm.split(comm.rank() % 2, comm.rank());
        ASSERT_TRUE(sub.valid());
        EXPECT_EQ(sub.size(), 2);
        EXPECT_EQ(sub.rank(), comm.rank() / 2);
        // Reduce within the split group only.
        const std::int64_t mine = comm.rank();
        std::int64_t sum = -1;
        sub.allreduce(std::span<const std::int64_t>(&mine, 1),
                      std::span<std::int64_t>(&sum, 1), mpi::Op::Sum);
        EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 : 1 + 3);
    });
}

TEST(MpiComm, SplitWithNegativeColorYieldsNull) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process&) {
        mpi::Comm sub = comm.split(comm.rank() == 0 ? 0 : -1, 0);
        EXPECT_EQ(sub.valid(), comm.rank() == 0);
    });
}

// ---------------------------------------------------------------------------
// Derived datatypes

TEST(MpiDatatype, VectorPackUnpackRoundTrip) {
    // A column of a 4x6 row-major matrix: 4 blocks of 1, stride 6.
    mpi::VectorType col{4, 1, 6};
    std::vector<std::int32_t> matrix(24);
    std::iota(matrix.begin(), matrix.end(), 0);
    auto packed = mpi::pack(col, std::span<const std::int32_t>(matrix));
    ASSERT_EQ(packed.size(), 4u);
    EXPECT_EQ(packed[0], 0);
    EXPECT_EQ(packed[3], 18);

    std::vector<std::int32_t> out(24, -1);
    mpi::unpack(col, std::span<const std::int32_t>(packed),
                std::span<std::int32_t>(out));
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[6], 6);
    EXPECT_EQ(out[1], -1); // untouched
}

TEST(MpiDatatype, InvalidShapesRejected) {
    mpi::VectorType overlap{3, 4, 2}; // blocklen > stride
    std::vector<float> src(32);
    EXPECT_THROW(mpi::pack(overlap, std::span<const float>(src)),
                 UsageError);
    mpi::VectorType vt{4, 2, 8};
    std::vector<float> small(8);
    EXPECT_THROW(mpi::pack(vt, std::span<const float>(small)), UsageError);
}

// ---------------------------------------------------------------------------
// Paper performance points (§4.4)

TEST(MpiPerf, MyrinetLatencyEleven) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process& proc) {
        constexpr int kIters = 20;
        char b = 0;
        if (comm.rank() == 0) {
            const SimTime t0 = proc.now();
            for (int i = 0; i < kIters; ++i) {
                comm.send_bytes(&b, 1, 1, 0);
                comm.recv_bytes(&b, 1, 1, 0);
            }
            const double lat = to_usec(proc.now() - t0) / (2.0 * kIters);
            EXPECT_NEAR(lat, 11.0, 0.8); // paper: 11 us
        } else {
            for (int i = 0; i < kIters; ++i) {
                comm.recv_bytes(&b, 1, 0, 0);
                comm.send_bytes(&b, 1, 0, 0);
            }
        }
    });
}

TEST(MpiPerf, MyrinetBandwidth240) {
    Cluster c(2);
    c.run([](mpi::Comm& comm, Process& proc) {
        constexpr std::size_t kLen = 1 << 20;
        util::ByteBuf payload(kLen);
        if (comm.rank() == 0) {
            const SimTime t0 = proc.now();
            comm.send_msg(util::to_message(std::move(payload)), 1, 0);
            char ack;
            comm.recv_bytes(&ack, 1, 1, 1);
            const double bw = mb_per_s(kLen, proc.now() - t0);
            EXPECT_GT(bw, 225.0); // paper: 240 MB/s (96% of Myrinet-2000)
            EXPECT_LE(bw, 241.0);
        } else {
            comm.recv_msg(0, 0);
            comm.send_bytes("k", 1, 0, 1);
        }
    });
}
