// Tests for the gSOAP substitute: envelope codec, RPC round trips, faults,
// module registration, and the "Web Services performance is poor" claim
// (paper §5) made measurable against CORBA on the same link.

#include <gtest/gtest.h>

#include "corba/stub.hpp"
#include "fabric/grid.hpp"
#include "osal/sync.hpp"
#include "soap/soap.hpp"
#include "util/strings.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::soap;

namespace {

struct LanPair {
    Grid grid;
    Machine* a;
    Machine* b;
    LanPair() {
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        a = &grid.add_machine("ma");
        b = &grid.add_machine("mb");
        grid.attach(*a, eth);
        grid.attach(*b, eth);
    }
};

} // namespace

TEST(SoapEnvelope, RoundTrip) {
    Params p{{"x", "1"}, {"name", "a<b&c"}};
    const std::string xml = make_envelope("getDensity", p);
    auto [op, parsed] = parse_envelope(xml);
    EXPECT_EQ(op, "getDensity");
    EXPECT_EQ(parsed, p);
}

TEST(SoapEnvelope, RejectsGarbage) {
    EXPECT_THROW(parse_envelope("<NotEnvelope/>"), ProtocolError);
    EXPECT_THROW(parse_envelope("<Envelope><Body/></Envelope>"),
                 ProtocolError);
    EXPECT_THROW(parse_envelope("not xml at all"), ProtocolError);
}

TEST(Soap, RpcRoundTripAndFault) {
    LanPair p;
    osal::Event up, done;
    p.grid.spawn(*p.b, [&](Process& proc) {
        ptm::Runtime rt(proc);
        SoapServer server(rt, "soap-calc");
        server.bind("add", [](const Params& in) {
            const double x = util::parse_double(in.at("x"));
            const double y = util::parse_double(in.at("y"));
            return Params{{"sum", util::strfmt("%g", x + y)}};
        });
        server.bind("boom", [](const Params&) -> Params {
            throw RemoteError("kaput");
        });
        up.set();
        done.wait();
        server.shutdown();
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        ptm::Runtime rt(proc);
        up.wait();
        SoapClient client(rt, "soap-calc");
        auto r = client.call("add", {{"x", "2.5"}, {"y", "4"}});
        EXPECT_EQ(r.at("sum"), "6.5");
        EXPECT_THROW(client.call("boom", {}), RemoteError);
        EXPECT_THROW(client.call("missing_op", {}), RemoteError);
        // Connection still healthy after faults.
        EXPECT_EQ(client.call("add", {{"x", "1"}, {"y", "1"}}).at("sum"),
                  "2");
        done.set();
    });
    p.grid.join_all();
}

TEST(Soap, ModuleRegistered) {
    install();
    EXPECT_TRUE(ptm::ModuleManager::has_type("gsoap"));
}

TEST(Soap, SlowerThanCorbaOnSameLink) {
    // Paper §5 on Web Services: "their performance is poor". Same payload,
    // same Fast-Ethernet, SOAP XML-codec cost vs CORBA CDR.
    LanPair p;
    osal::Event up, done;
    SimTime soap_time = 0, corba_time = 0;
    p.grid.spawn(*p.b, [&](Process& proc) {
        ptm::Runtime rt(proc);
        SoapServer server(rt, "soap-perf");
        server.bind("take", [](const Params&) { return Params{}; });
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("corba-perf");
        class Sink : public corba::Servant {
        public:
            std::string interface() const override { return "IDL:Sink:1.0"; }
            void dispatch(const std::string&, corba::cdr::Decoder& in,
                          corba::cdr::Encoder& out) override {
                (void)corba::skel::arg<std::string>(in);
                corba::skel::ret(out, true);
            }
        };
        corba::IOR ior = orb.activate(std::make_shared<Sink>());
        proc.grid().register_service("perf/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        server.shutdown();
        orb.shutdown();
    });
    p.grid.spawn(*p.a, [&](Process& proc) {
        ptm::Runtime rt(proc);
        up.wait();
        const std::string payload(32 * 1024, 'x');

        SoapClient soap(rt, "soap-perf");
        SimTime t0 = proc.now();
        soap.call("take", {{"data", payload}});
        soap_time = proc.now() - t0;

        corba::Orb orb(rt, corba::profile_omniorb4());
        corba::IOR ior{"corba-perf", proc.grid().wait_service("perf/key"),
                       "IDL:Sink:1.0"};
        auto ref = orb.resolve(ior);
        t0 = proc.now();
        corba::call<bool>(ref, "take", payload);
        corba_time = proc.now() - t0;
        EXPECT_GT(soap_time, corba_time);
        done.set();
    });
    p.grid.join_all();
}
