// Tests for the CORBA middleware: CDR marshalling (round trips, alignment,
// zero-copy strategy, malformed input), GIOP invocations, user/system
// exceptions, oneway calls, the naming service, module registration, and
// the per-implementation performance profiles of the paper's Fig. 7.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "corba/naming.hpp"
#include "corba/stub.hpp"
#include "fabric/grid.hpp"
#include "osal/sync.hpp"
#include "util/rng.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::corba;

namespace {

struct DuoGrid {
    Grid grid;
    Machine* server;
    Machine* client;

    DuoGrid() {
        auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        server = &grid.add_machine("srv");
        client = &grid.add_machine("cli");
        for (auto* m : {server, client}) {
            grid.attach(*m, myri);
            grid.attach(*m, eth);
        }
    }
};

/// Test interface: the moral output of "interface Echo" through an IDL
/// compiler.
class EchoServant : public Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }

    void dispatch(const std::string& op, cdr::Decoder& in,
                  cdr::Encoder& out) override {
        if (op == "echo_string") {
            skel::ret(out, skel::arg<std::string>(in));
        } else if (op == "sum") {
            const auto xs = skel::arg<std::vector<std::int32_t>>(in);
            skel::ret(out, std::accumulate(xs.begin(), xs.end(),
                                           std::int64_t{0}));
        } else if (op == "fail") {
            throw RemoteError("deliberate");
        } else if (op == "note") { // oneway
            notes.fetch_add(skel::arg<std::int32_t>(in));
        } else {
            throw RemoteError("BAD_OPERATION " + op);
        }
    }

    static std::atomic<std::int64_t> notes;
};

std::atomic<std::int64_t> EchoServant::notes{0};

} // namespace

// ---------------------------------------------------------------------------
// CDR

TEST(Cdr, PrimitiveRoundTripWithAlignment) {
    cdr::Encoder e(true);
    e.put_u8(7);
    e.put_u32(0xdeadbeef); // forces 3 bytes of padding
    e.put_u16(99);
    e.put_f64(2.75); // forces padding to 8
    e.put_bool(true);
    e.put_i64(-5);
    cdr::Decoder d(e.take());
    EXPECT_EQ(d.get_u8(), 7);
    EXPECT_EQ(d.get_u32(), 0xdeadbeefu);
    EXPECT_EQ(d.get_u16(), 99);
    EXPECT_DOUBLE_EQ(d.get_f64(), 2.75);
    EXPECT_TRUE(d.get_bool());
    EXPECT_EQ(d.get_i64(), -5);
    d.expect_end();
}

TEST(Cdr, StringsWithNulRules) {
    cdr::Encoder e(true);
    e.put_string("grid");
    e.put_string("");
    cdr::Decoder d(e.take());
    EXPECT_EQ(d.get_string(), "grid");
    EXPECT_EQ(d.get_string(), "");
    d.expect_end();
}

TEST(Cdr, UnderrunAndTrailingDetected) {
    cdr::Encoder e(true);
    e.put_u32(1);
    cdr::Decoder d(e.take());
    EXPECT_THROW(d.get_u64(), ProtocolError);
    cdr::Decoder d2(cdr::encode(true, std::uint32_t{1}, std::uint32_t{2}));
    (void)d2.get_u32();
    EXPECT_THROW(d2.expect_end(), ProtocolError);
}

class CdrSeq : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CdrSeq, SequenceRoundTripBothStrategies) {
    const std::size_t n = GetParam();
    std::vector<std::int32_t> xs(n);
    std::iota(xs.begin(), xs.end(), -3);
    for (bool zero_copy : {true, false}) {
        cdr::Encoder e(zero_copy);
        e.put_u8(1); // misalign on purpose
        e.put_seq(std::span<const std::int32_t>(xs));
        e.put_string("tail");
        cdr::Decoder d(e.take());
        EXPECT_EQ(d.get_u8(), 1);
        EXPECT_EQ(d.get_seq<std::int32_t>(), xs);
        EXPECT_EQ(d.get_string(), "tail");
        d.expect_end();
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CdrSeq,
                         ::testing::Values(0, 1, 3, 255, 256, 1024, 100000));

TEST(Cdr, ZeroCopyEmitsSeparateSegments) {
    std::vector<double> big(4096);
    cdr::Encoder zc(true);
    zc.put_seq(std::span<const double>(big));
    util::Message m = zc.take();
    EXPECT_GE(m.segment_count(), 2u); // header + payload segment

    cdr::Encoder copy(false);
    copy.put_seq(std::span<const double>(big));
    EXPECT_EQ(copy.take().segment_count(), 1u); // memcpy'd into the stream
}

TEST(Cdr, ZeroCopySharedSegmentIsAliased) {
    // The GridCCM fragment path: a message slice goes out without a copy.
    util::ByteBuf raw(64 * sizeof(float));
    auto buf = util::make_buf(std::move(raw));
    util::Segment seg(buf);
    cdr::Encoder e(true);
    e.put_seq_shared<float>(seg, 64);
    util::Message m = e.take();
    bool aliased = false;
    for (const auto& s : m.segments())
        if (s.data() == buf->data()) aliased = true;
    EXPECT_TRUE(aliased);

    std::size_t count = 0;
    cdr::Decoder d(std::move(m));
    util::Message view = d.get_seq_msg<float>(&count);
    EXPECT_EQ(count, 64u);
    EXPECT_EQ(view.segments()[0].data(), buf->data()); // still zero-copy
}

TEST(Cdr, RandomizedRoundTripProperty) {
    // Fuzz the codec: random sequences of typed puts must decode to the
    // same values in the same order, under both marshalling strategies.
    padico::util::Rng rng(20030422); // IPDPS 2003 ;-)
    for (int iter = 0; iter < 50; ++iter) {
        const bool zero_copy = (iter % 2) == 0;
        cdr::Encoder e(zero_copy);
        std::vector<int> kinds;
        std::vector<std::uint64_t> ints;
        std::vector<std::string> strs;
        std::vector<std::vector<std::int16_t>> seqs;
        const int n_ops = 1 + static_cast<int>(rng.below(20));
        for (int i = 0; i < n_ops; ++i) {
            const int kind = static_cast<int>(rng.below(4));
            kinds.push_back(kind);
            switch (kind) {
            case 0: {
                const std::uint64_t v = rng.next();
                ints.push_back(v);
                e.put_u64(v);
                break;
            }
            case 1: {
                const std::uint8_t v = static_cast<std::uint8_t>(rng.below(256));
                ints.push_back(v);
                e.put_u8(v);
                break;
            }
            case 2: {
                std::string s(rng.below(40), 'a');
                for (auto& c : s)
                    c = static_cast<char>('a' + rng.below(26));
                strs.push_back(s);
                e.put_string(s);
                break;
            }
            default: {
                std::vector<std::int16_t> v(rng.below(2000));
                for (auto& x : v)
                    x = static_cast<std::int16_t>(rng.next());
                seqs.push_back(v);
                e.put_seq(std::span<const std::int16_t>(v));
            }
            }
        }
        cdr::Decoder d(e.take());
        std::size_t ii = 0, si = 0, qi = 0;
        for (int kind : kinds) {
            switch (kind) {
            case 0: ASSERT_EQ(d.get_u64(), ints[ii++]); break;
            case 1: ASSERT_EQ(d.get_u8(), ints[ii++]); break;
            case 2: ASSERT_EQ(d.get_string(), strs[si++]); break;
            default: ASSERT_EQ(d.get_seq<std::int16_t>(), seqs[qi++]);
            }
        }
        d.expect_end();
    }
}

TEST(Cdr, NestedStructsViaAdl) {
    std::vector<std::string> names{"a", "bc", ""};
    std::vector<std::vector<std::int32_t>> nested{{1, 2}, {}, {3}};
    util::Message m = cdr::encode(true, names, nested);
    cdr::Decoder d(std::move(m));
    std::vector<std::string> n2;
    std::vector<std::vector<std::int32_t>> v2;
    cdr_get(d, n2);
    cdr_get(d, v2);
    EXPECT_EQ(n2, names);
    EXPECT_EQ(v2, nested);
}

// ---------------------------------------------------------------------------
// IOR

TEST(Ior, StringRoundTrip) {
    IOR ior{"endpoint-7", 42, "IDL:a/b:1.0"};
    const IOR back = IOR::from_string(ior.to_string());
    EXPECT_EQ(back.endpoint, ior.endpoint);
    EXPECT_EQ(back.key, ior.key);
    EXPECT_EQ(back.type, ior.type);
    EXPECT_THROW(IOR::from_string("junk"), ProtocolError);
    EXPECT_THROW(IOR::from_string("IOR:onlyendpoint"), ProtocolError);
}

// ---------------------------------------------------------------------------
// GIOP invocations

TEST(Giop, EchoInvocationAndUserException) {
    DuoGrid g;
    osal::Event served;
    osal::Event done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        orb.serve("echo-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/echo/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        served.wait();
        IOR ior{"echo-ep", proc.grid().wait_service("test/echo/key"),
                "IDL:Echo:1.0"};
        ObjectRef ref = orb.resolve(ior);
        EXPECT_EQ(call<std::string>(ref, "echo_string",
                                    std::string("bonjour")),
                  "bonjour");
        std::vector<std::int32_t> xs{1, 2, 3, 4};
        EXPECT_EQ(call<std::int64_t>(ref, "sum", xs), 10);
        EXPECT_THROW(call<void>(ref, "fail"), RemoteError);
        // Still usable after a user exception.
        EXPECT_EQ(call<std::string>(ref, "echo_string", std::string("x")),
                  "x");
        // Unknown object key -> system exception.
        IOR bogus = ior;
        bogus.key = 999999;
        ObjectRef bad = orb.resolve(bogus);
        EXPECT_THROW(call<void>(bad, "echo_string", std::string("y")),
                     RemoteError);
        done.set();
    });
    g.grid.join_all();
}

TEST(Giop, OnewayDeliversWithoutReply) {
    DuoGrid g;
    EchoServant::notes = 0;
    osal::Event served, done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_mico());
        orb.serve("ow-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/ow/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        orb.shutdown();
        EXPECT_EQ(EchoServant::notes.load(), 5 + 7);
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_mico());
        served.wait();
        IOR ior{"ow-ep", proc.grid().wait_service("test/ow/key"),
                "IDL:Echo:1.0"};
        ObjectRef ref = orb.resolve(ior);
        call_oneway(ref, "note", std::int32_t{5});
        call_oneway(ref, "note", std::int32_t{7});
        // A synchronous call flushes the oneways (same ordered stream).
        call<std::string>(ref, "echo_string", std::string("flush"));
        done.set();
    });
    g.grid.join_all();
}

TEST(Giop, ActivateDeactivateLifecycle) {
    DuoGrid g;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb3());
        orb.serve("lc-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        EXPECT_EQ(ior.type, "IDL:Echo:1.0");
        orb.deactivate(ior);
        EXPECT_THROW(orb.deactivate(ior), LookupError);
        orb.shutdown();
    });
    g.grid.join_all();
}

TEST(Giop, EsiopFramingInteroperates) {
    // An ESIOP client against the same server machinery: the receiver
    // auto-detects the framing, so GIOP and ESIOP clients can mix.
    DuoGrid g;
    osal::Event served, done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4_esiop());
        orb.serve("es-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/es/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        IOR ior{"es-ep", proc.grid().wait_service("test/es/key"),
                "IDL:Echo:1.0"};
        // ESIOP client.
        Orb eorb(rt, profile_omniorb4_esiop());
        ObjectRef eref = eorb.resolve(ior);
        EXPECT_EQ(call<std::string>(eref, "echo_string",
                                    std::string("via-esiop")),
                  "via-esiop");
        // Plain GIOP client against the same servant.
        Orb gorb(rt, profile_omniorb4());
        ObjectRef gref = gorb.resolve(ior);
        EXPECT_EQ(call<std::string>(gref, "echo_string",
                                    std::string("via-giop")),
                  "via-giop");
        done.set();
    });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Naming service

TEST(Naming, BindResolveUnbindList) {
    DuoGrid g;
    osal::Event done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        start_naming_service(orb);
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        NamingClient naming = NamingClient::connect(orb);
        IOR ior{"some-ep", 3, "IDL:Chemistry:1.0"};
        naming.bind("coupling/chemistry", ior);
        const IOR got = naming.resolve("coupling/chemistry");
        EXPECT_EQ(got.endpoint, "some-ep");
        EXPECT_EQ(got.type, "IDL:Chemistry:1.0");
        EXPECT_EQ(naming.resolve_wait("coupling/chemistry").key, 3u);
        EXPECT_THROW(naming.resolve("absent"), RemoteError);
        EXPECT_EQ(naming.list(), std::vector<std::string>{
                                     "coupling/chemistry"});
        naming.unbind("coupling/chemistry");
        EXPECT_THROW(naming.resolve("coupling/chemistry"), RemoteError);
        done.set();
    });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Modules

TEST(CorbaModules, AllProfilesRegistered) {
    corba::install();
    for (const auto& p : all_profiles())
        EXPECT_TRUE(ptm::ModuleManager::has_type("corba/" + p.name));
    EXPECT_TRUE(ptm::ModuleManager::has_type("corba/OpenCCM-Java"));

    DuoGrid g;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        auto mod = rt.modules().load("corba/omniORB-4.0.0");
        EXPECT_EQ(mod->name(), "corba/omniORB-4.0.0");
        auto orb = std::static_pointer_cast<Orb>(mod);
        EXPECT_TRUE(orb->profile().zero_copy);
    });
    g.grid.join_all();
}

// ---------------------------------------------------------------------------
// Performance profiles (paper Fig. 7 and §4.4 latency text)

namespace {

/// Round-trip of a payload under a profile; returns (latency_us, bw_mb) as
/// measured by a 4-byte ping-pong and a 1 MB invocation.
std::pair<double, double> measure_profile(const OrbProfile& profile) {
    DuoGrid g;
    osal::Event served, done;
    double latency = 0, bandwidth = 0;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile);
        orb.serve("perf-ep");
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/perf/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile);
        served.wait();
        IOR ior{"perf-ep", proc.grid().wait_service("test/perf/key"),
                "IDL:Echo:1.0"};
        ObjectRef ref = orb.resolve(ior);
        // Warm the connection.
        call<std::string>(ref, "echo_string", std::string("w"));

        constexpr int kIters = 10;
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i)
            call<std::string>(ref, "echo_string", std::string("ping"));
        latency = to_usec(proc.now() - t0) / (2.0 * kIters);

        std::vector<std::int32_t> mb(1 << 18); // 1 MiB of longs
        const SimTime t1 = proc.now();
        call<std::int64_t>(ref, "sum", mb);
        bandwidth = mb_per_s(mb.size() * 4, proc.now() - t1);
        done.set();
    });
    g.grid.join_all();
    return {latency, bandwidth};
}

} // namespace

TEST(CorbaPerf, OmniOrbReachesMyrinetSpeed) {
    const auto [lat, bw] = measure_profile(profile_omniorb4());
    EXPECT_NEAR(lat, 20.0, 2.0);  // paper: 20 us
    EXPECT_GT(bw, 220.0);         // paper: ~240 MB/s, same as MPI
}

TEST(CorbaPerf, MicoLimitedByMarshallingCopies) {
    const auto [lat, bw] = measure_profile(profile_mico());
    EXPECT_NEAR(lat, 62.0, 4.0); // paper: 62 us
    EXPECT_NEAR(bw, 55.0, 4.0);  // paper: 55 MB/s
}

TEST(CorbaPerf, OrbacusBetween) {
    const auto [lat, bw] = measure_profile(profile_orbacus());
    EXPECT_NEAR(lat, 54.0, 4.0); // paper: 54 us
    EXPECT_NEAR(bw, 63.0, 4.0);  // paper: 63 MB/s
}

TEST(CorbaPerf, EsiopLowersLatencyBelowGiop) {
    // The paper's §4.4 remark: a specific protocol (ESIOP) instead of the
    // general GIOP lowers latency; MPI's 11 us remains the floor.
    const auto [lat_giop, bw_giop] = measure_profile(profile_omniorb4());
    const auto [lat_esiop, bw_esiop] =
        measure_profile(profile_omniorb4_esiop());
    EXPECT_LT(lat_esiop, lat_giop - 3.0);
    EXPECT_GT(lat_esiop, 11.0);
    EXPECT_NEAR(bw_esiop, bw_giop, 5.0); // bandwidth unchanged (zero-copy)
}
