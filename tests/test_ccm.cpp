// Tests for the CCM subset: component ports and registry, container
// lifecycle, the remote component-server control path, assembly descriptor
// parsing, and full deployment with placement constraints, connections and
// event subscriptions (the paper's §2 scenarios).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "ccm/deployer.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::ccm;

namespace {

// --- test components -------------------------------------------------------

/// Facet servant of Greeter.
class GreetServant : public corba::Servant {
public:
    explicit GreetServant(std::string* last_note) : last_note_(last_note) {}
    std::string interface() const override { return "IDL:Greet:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        namespace skel = corba::skel;
        if (op == "hello") {
            skel::ret(out, "hi " + skel::arg<std::string>(in));
        } else if (op == "last_note") {
            skel::ret(out, *last_note_);
        } else {
            throw RemoteError("BAD_OPERATION " + op);
        }
    }

private:
    std::string* last_note_;
};

class Greeter : public Component {
public:
    Greeter() {
        provide_facet("greet", std::make_shared<GreetServant>(&last_note_));
        declare_event_sink("note", [this](const Event& ev) {
            last_note_ = corba::cdr::decode_one<std::string>(ev);
        });
    }
    std::string type() const override { return "Greeter"; }

private:
    std::string last_note_;
};

/// Caller: uses a Greeter through its receptacle, triggered via a facet.
class Caller : public Component {
public:
    class TriggerServant : public corba::Servant {
    public:
        explicit TriggerServant(Caller& c) : caller_(&c) {}
        std::string interface() const override {
            return "IDL:Trigger:1.0";
        }
        void dispatch(const std::string& op, corba::cdr::Decoder& in,
                      corba::cdr::Encoder& out) override {
            namespace skel = corba::skel;
            if (op != "go") throw RemoteError("BAD_OPERATION " + op);
            const std::string name = skel::arg<std::string>(in);
            const std::string full =
                caller_->attribute("prefix") + name;
            const std::string result = corba::call<std::string>(
                caller_->receptacle("out"), "hello", full);
            caller_->emit("done",
                          corba::cdr::encode(true,
                                             std::string("went:" + full)));
            skel::ret(out, result);
        }

    private:
        Caller* caller_;
    };

    Caller() {
        provide_facet("trigger", std::make_shared<TriggerServant>(*this));
        use_receptacle("out");
        declare_event_source("done");
    }
    std::string type() const override { return "Caller"; }

    // Expose protected bits to the facet servant.
    using Component::attribute;
    using Component::emit;
    using Component::receptacle;
};

void install_test_components() {
    static std::once_flag once;
    std::call_once(once, [] {
        ComponentRegistry::register_type(
            "Greeter", [] { return std::make_unique<Greeter>(); });
        ComponentRegistry::register_type(
            "Caller", [] { return std::make_unique<Caller>(); });
    });
}

} // namespace

// ---------------------------------------------------------------------------
// Registry and ports

TEST(CcmRegistry, RegisterCreateUnknown) {
    install_test_components();
    EXPECT_TRUE(ComponentRegistry::has_type("Greeter"));
    EXPECT_FALSE(ComponentRegistry::has_type("Nope"));
    auto c = ComponentRegistry::create("Greeter");
    EXPECT_EQ(c->type(), "Greeter");
    EXPECT_THROW(ComponentRegistry::create("Nope"), DeploymentError);
    auto types = ComponentRegistry::types();
    EXPECT_NE(std::find(types.begin(), types.end(), "Caller"), types.end());
}

TEST(CcmPorts, IntrospectionAndErrors) {
    install_test_components();
    auto c = ComponentRegistry::create("Caller");
    EXPECT_NE(c->facet("trigger"), nullptr);
    EXPECT_THROW(c->facet("nope"), LookupError);
    EXPECT_TRUE(c->has_receptacle("out"));
    EXPECT_FALSE(c->has_receptacle("nope"));
    EXPECT_TRUE(c->has_event_source("done"));
    EXPECT_FALSE(c->has_event_sink("done"));
    EXPECT_THROW(c->bind_receptacle("nope", corba::ObjectRef()),
                 LookupError);
    EXPECT_THROW(c->deliver_event("nope", Event()), LookupError);
    // Unconnected receptacle use fails loudly.
    auto* caller = dynamic_cast<Caller*>(c.get());
    ASSERT_NE(caller, nullptr);
    EXPECT_THROW(caller->receptacle("out"), UsageError);
}

TEST(CcmPorts, AttributesAndHook) {
    install_test_components();
    auto c = ComponentRegistry::create("Caller");
    EXPECT_FALSE(c->has_attribute("prefix"));
    EXPECT_THROW(c->attribute("prefix"), LookupError);
    c->set_attribute("prefix", "Mr ");
    EXPECT_EQ(c->attribute("prefix"), "Mr ");
}

// ---------------------------------------------------------------------------
// Assembly descriptor

namespace {
const char* kCouplingXml = R"(<assembly name="pair">
    <component id="caller" type="Caller">
      <constraint attr="site" value="rennes"/>
      <attribute name="prefix" value="dr "/>
    </component>
    <component id="greeter" type="Greeter">
      <constraint attr="site" value="lille"/>
    </component>
    <connection from="caller:out" to="greeter:greet"/>
    <event from="caller:done" to="greeter:note"/>
  </assembly>)";
} // namespace

TEST(CcmAssembly, ParseComplete) {
    const Assembly a = Assembly::parse(kCouplingXml);
    EXPECT_EQ(a.name, "pair");
    ASSERT_EQ(a.components.size(), 2u);
    EXPECT_EQ(a.component("caller").attributes.at(0).second, "dr ");
    EXPECT_EQ(a.component("caller").placement.attrs.at(0).first, "site");
    EXPECT_EQ(a.component("greeter").parallel, 1);
    ASSERT_EQ(a.connections.size(), 1u);
    EXPECT_EQ(a.connections[0].from.str(), "caller:out");
    ASSERT_EQ(a.events.size(), 1u);
    EXPECT_EQ(a.events[0].to.port, "note");
    EXPECT_THROW(a.component("nope"), LookupError);
}

TEST(CcmAssembly, ParseErrors) {
    EXPECT_THROW(Assembly::parse("<notassembly/>"), ProtocolError);
    EXPECT_THROW(Assembly::parse(R"(<assembly name="x">
        <component id="a" type="T"/>
        <component id="a" type="T"/></assembly>)"),
                 ProtocolError);
    EXPECT_THROW(Assembly::parse(R"(<assembly name="x">
        <component id="a" type="T"/>
        <connection from="a-bad" to="a:p"/></assembly>)"),
                 ProtocolError);
    EXPECT_THROW(Assembly::parse(R"(<assembly name="x">
        <component id="a" type="T"/>
        <connection from="a:p" to="b:q"/></assembly>)"),
                 LookupError);
    EXPECT_THROW(Assembly::parse(R"(<assembly name="x">
        <component id="a" type="T"><constraint bogus="1"/></component>
        </assembly>)"),
                 ProtocolError);
}

// ---------------------------------------------------------------------------
// Full deployment

namespace {

/// Two sites on a WAN; each site machine has a component server.
struct DeployGrid {
    Grid grid;
    Machine* rennes;
    Machine* lille;
    Machine* deployer_host;

    DeployGrid() {
        auto& wan = grid.add_segment("wan0", NetTech::Wan);
        auto& lan = grid.add_segment("lan0", NetTech::FastEthernet);
        rennes = &grid.add_machine("paraski");
        lille = &grid.add_machine("lilprime");
        deployer_host = &grid.add_machine("frontend");
        rennes->set_attr("site", "rennes");
        lille->set_attr("site", "lille");
        for (auto* m : {rennes, lille, deployer_host}) {
            grid.attach(*m, wan);
            grid.attach(*m, lan);
        }
    }
};

} // namespace

TEST(CcmDeploy, EndToEndWithEventsAndTeardown) {
    install_test_components();
    DeployGrid g;
    // Component server daemons.
    for (auto* m : {g.rennes, g.lille}) {
        g.grid.spawn(*m, [](Process& proc) {
            component_server_main(proc, corba::profile_omniorb4());
        });
    }
    g.grid.spawn(*g.deployer_host, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        Deployer deployer(orb);
        Deployment dep = deployer.deploy(Assembly::parse(kCouplingXml));

        EXPECT_EQ(dep.placed("caller").machines.at(0), "paraski");
        EXPECT_EQ(dep.placed("greeter").machines.at(0), "lilprime");

        // Drive the deployed application through the caller's facet.
        corba::IOR trig = deployer.facet_of(dep, PortAddr{"caller",
                                                          "trigger"});
        corba::ObjectRef ref = orb.resolve(trig);
        EXPECT_EQ(corba::call<std::string>(ref, "go", std::string("who")),
                  "hi dr who");

        // The event crossed from caller:done to greeter:note.
        corba::IOR greet = deployer.facet_of(dep, PortAddr{"greeter",
                                                           "greet"});
        corba::ObjectRef gref = orb.resolve(greet);
        // Oneway event: the next synchronous call serializes behind it
        // only on the same connection; poll to tolerate the other path.
        std::string note;
        for (int i = 0; i < 200 && note.empty(); ++i) {
            note = corba::call<std::string>(gref, "last_note");
            if (note.empty()) std::this_thread::yield();
        }
        EXPECT_EQ(note, "went:dr who");

        deployer.teardown(dep);
        // Instances are gone: facet resolution on removed instance fails.
        EXPECT_THROW(deployer.facet_of(dep, PortAddr{"caller", "trigger"}),
                     RemoteError);

        for (auto* m : {g.rennes, g.lille})
            connect_component_server(orb, m->name()).shutdown();
    });
    g.grid.join_all();
}

TEST(CcmDeploy, PlacementConstraintUnsatisfiable) {
    install_test_components();
    DeployGrid g;
    g.grid.spawn(*g.deployer_host, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        Deployer deployer(orb);
        const Assembly a = Assembly::parse(R"(<assembly name="bad">
            <component id="c" type="Greeter">
              <constraint attr="site" value="mars"/>
            </component></assembly>)");
        EXPECT_THROW(deployer.deploy(a), DeploymentError);
    });
    g.grid.join_all();
}

TEST(CcmDeploy, LocalizationConstraintScenario) {
    // Paper §2: company X's patented chemistry code must stay on company X
    // machines.
    install_test_components();
    Grid grid;
    auto& lan = grid.add_segment("lan0", NetTech::FastEthernet);
    auto& mx = grid.add_machine("xbox1");
    auto& mpub = grid.add_machine("shared1");
    auto& front = grid.add_machine("front");
    mx.set_attr("owner", "companyX");
    mpub.set_attr("owner", "public");
    for (auto* m : {&mx, &mpub, &front}) grid.attach(*m, lan);

    for (auto* m : {&mx, &mpub})
        grid.spawn(*m, [](Process& proc) {
            component_server_main(proc, corba::profile_mico());
        });
    grid.spawn(front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_mico());
        Deployer deployer(orb);
        Deployment dep = deployer.deploy(Assembly::parse(
            R"(<assembly name="x">
              <component id="secret" type="Greeter">
                <constraint attr="owner" value="companyX"/>
              </component></assembly>)"));
        EXPECT_EQ(dep.placed("secret").machines.at(0), "xbox1");
        deployer.teardown(dep);
        for (auto* m : {&mx, &mpub})
            connect_component_server(orb, m->name()).shutdown();
    });
    grid.join_all();
}
