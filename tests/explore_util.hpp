#pragma once
/// Shared helpers for the explore_* suites (compiled with
/// PADICO_SCHED_ENABLED + PADICO_CHECK_ENABLED; see tests/CMakeLists.txt).

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "osal/checked.hpp"
#include "osal/sched.hpp"

namespace explore {

namespace sched = padico::osal::sched;
namespace check = padico::osal::check;

/// PADICO_SCHED_REPLAY=<trace-file>: tests that support it run the
/// recorded schedule once instead of exploring — the deterministic-replay
/// debugging workflow (DESIGN.md §14).
inline std::optional<sched::Trace> replay_from_env() {
    const char* path = std::getenv("PADICO_SCHED_REPLAY");
    if (path == nullptr) return std::nullopt;
    auto t = sched::load_trace(path);
    if (!t) ADD_FAILURE() << "PADICO_SCHED_REPLAY: cannot load " << path;
    return t;
}

/// True when the budget was overridden via PADICO_EXPLORE_BUDGET. Suites
/// whose default budget provably exhausts their space only assert
/// exhaustion when that default is in effect, so slow CI legs (sanitizers)
/// can bound the run without turning the bound into a failure. An empty or
/// zero value counts as unset (CI matrix legs without an override export
/// the variable as "").
inline bool budget_overridden() {
    const char* b = std::getenv("PADICO_EXPLORE_BUDGET");
    return b != nullptr && std::strtoull(b, nullptr, 10) > 0;
}

/// PADICO_EXPLORE_BUDGET overrides a suite's default schedule budget.
inline std::uint64_t budget_or(std::uint64_t def) {
    if (!budget_overridden()) return def;
    return std::strtoull(std::getenv("PADICO_EXPLORE_BUDGET"), nullptr, 10);
}

/// Write a failing schedule where CI collects artifacts (PADICO_TRACE_DIR
/// or the cwd) and print the one-line replay repro command.
inline std::string dump_failure(const sched::Explorer& ex,
                                const std::string& binary,
                                const std::string& test) {
    const char* dir = std::getenv("PADICO_TRACE_DIR");
    const std::string path =
        std::string(dir != nullptr ? dir : ".") + "/" + test + ".trace";
    sched::save_trace(ex.failure_trace(), path);
    std::fprintf(stderr,
                 "padico::sched: failing schedule (%s) on run %llu written "
                 "to %s\n  replay: PADICO_SCHED_REPLAY=%s ./%s "
                 "--gtest_filter=*%s*\n",
                 ex.failure_reason().c_str(),
                 static_cast<unsigned long long>(ex.failure_run()),
                 path.c_str(), path.c_str(), binary.c_str(), test.c_str());
    return path;
}

/// Per-run checker reset. The order graph keys unranked mutexes by
/// address, so a re-created configuration could inherit edges from the
/// previous run's (destroyed) mutexes at recycled addresses and report
/// phantom cycles.
inline void reset_check() {
    check::clear_order_graph();
    check::clear_violations();
}

inline bool traces_equal(const sched::Trace& a, const sched::Trace& b) {
    if (a.steps.size() != b.steps.size()) return false;
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        if (a.steps[i].tid != b.steps[i].tid) return false;
        if (a.steps[i].kind != b.steps[i].kind) return false;
        if (a.steps[i].obj != b.steps[i].obj) return false;
    }
    return true;
}

} // namespace explore
