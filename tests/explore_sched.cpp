// Self-tests for the padico::sched harness (DESIGN.md §14): cooperative
// serialization, trace record/replay round-trips, DPOR-lite exploration
// counts, and the two seeded-bug regressions the explorer must find within
// a bounded schedule budget — a lost-update atomicity bug and an ABBA lock
// inversion that deadlocks for real under the right schedule.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "explore_util.hpp"
#include "osal/checked.hpp"
#include "osal/queue.hpp"
#include "osal/sync.hpp"

using namespace padico;
namespace sched = osal::sched;
namespace check = osal::check;

namespace {

/// Run one schedule of a two-thread scenario under \p picker. Returns the
/// controller result; \p fn1/fn2 run as managed threads.
template <typename F1, typename F2>
sched::Controller::Result run_pair(sched::Controller::Picker picker, F1 fn1,
                                   F2 fn2, std::uint64_t max_steps = 10000) {
    sched::Controller c(std::move(picker), max_steps, "pair");
    std::vector<std::thread> ts;
    ts.push_back(c.spawn(std::move(fn1), "t0"));
    ts.push_back(c.spawn(std::move(fn2), "t1"));
    sched::Controller::Result r = c.run();
    for (auto& t : ts) t.join();
    return r;
}

} // namespace

// ---------------------------------------------------------------------------
// Serialization + record/replay

TEST(SchedController, SerializesAndRecords) {
    explore::reset_check();
    osal::BlockingQueue<int> q;
    int sum = 0;
    const auto res = run_pair(
        sched::default_picker(),
        [&] {
            q.push(1);
            q.push(2);
            q.close();
        },
        [&] {
            while (auto v = q.pop()) sum += *v;
        });
    EXPECT_EQ(res.status, sched::Controller::Result::Status::kCompleted);
    EXPECT_EQ(sum, 3);
    EXPECT_FALSE(res.trace.steps.empty());
    EXPECT_EQ(res.trace.threads, 2u);
    EXPECT_EQ(res.trace.status, "completed");
    EXPECT_EQ(check::violation_count(), 0u);
}

TEST(SchedController, ReplayReproducesTraceExactly) {
    explore::reset_check();
    auto scenario = [](sched::Controller::Picker picker, int& sum) {
        auto q = std::make_shared<osal::BlockingQueue<int>>();
        return run_pair(
            std::move(picker),
            [q] {
                q->push(1);
                q->push(2);
                q->close();
            },
            [q, &sum] {
                while (auto v = q->pop()) sum += *v;
            });
    };
    int sum1 = 0;
    const auto first = scenario(sched::default_picker(), sum1);
    ASSERT_EQ(first.status, sched::Controller::Result::Status::kCompleted);

    auto err = std::make_shared<std::string>();
    int sum2 = 0;
    const auto second = scenario(sched::replay_picker(first.trace, err), sum2);
    EXPECT_EQ(*err, "") << "replay diverged";
    EXPECT_EQ(second.status, sched::Controller::Result::Status::kCompleted);
    EXPECT_EQ(sum2, sum1);
    EXPECT_TRUE(explore::traces_equal(first.trace, second.trace));
}

TEST(SchedTrace, FileRoundTrip) {
    sched::Trace t;
    t.config = "roundtrip";
    t.status = "completed";
    t.threads = 3;
    t.steps.push_back({0, sched::OpKind::kThreadStart, 1, "thread"});
    t.steps.push_back({1, sched::OpKind::kMutexLock, 2, "fabric.route"});
    t.steps.push_back({2, sched::OpKind::kQueuePop, 3, ""});
    const std::string path =
        testing::TempDir() + "sched_trace_roundtrip.trace";
    ASSERT_TRUE(sched::save_trace(t, path));
    const auto back = sched::load_trace(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->config, t.config);
    EXPECT_EQ(back->status, t.status);
    EXPECT_EQ(back->threads, t.threads);
    ASSERT_TRUE(explore::traces_equal(t, *back));
    EXPECT_EQ(back->steps[1].label, "fabric.route");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Exploration: counts and pruning

TEST(SchedExplorer, ExhaustsTwoConflictingIncrements) {
    // x = x*2 vs x = x+3 under one mutex: the two acquisition orders give
    // different finals (3 then *2 = 6; *2 then +3 = 3), so exhaustive
    // exploration must observe both.
    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(1000);
    opts.config_name = "two-increments";
    sched::Explorer ex(opts);
    std::set<int> finals;
    while (ex.next()) {
        explore::reset_check();
        int x = 1;
        osal::CheckedMutex mu;
        sched::Controller c = ex.make_controller();
        std::vector<std::thread> ts;
        ts.push_back(c.spawn([&] {
            osal::CheckedLock lk(mu);
            x = x * 2;
        }));
        ts.push_back(c.spawn([&] {
            osal::CheckedLock lk(mu);
            x = x + 3;
        }));
        const auto r = c.run();
        for (auto& t : ts) t.join();
        if (r.status == sched::Controller::Result::Status::kCompleted)
            finals.insert(x);
        ex.finish(r, check::violation_count() == 0);
    }
    EXPECT_FALSE(ex.failure_found()) << ex.failure_reason();
    EXPECT_FALSE(ex.diverged());
    EXPECT_TRUE(ex.stats().exhausted);
    EXPECT_EQ(finals, (std::set<int>{5, 8}));
    EXPECT_GE(ex.stats().completed, 2u);
    RecordProperty("schedules", static_cast<int>(ex.stats().runs));
}

TEST(SchedExplorer, IndependentThreadsExploreOneSchedule) {
    // Disjoint mutexes: every interleaving is equivalent, so last-access
    // pruning must collapse the whole space to a single completed run.
    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(1000);
    opts.config_name = "independent";
    sched::Explorer ex(opts);
    while (ex.next()) {
        explore::reset_check();
        int x = 0, y = 0;
        osal::CheckedMutex ma, mb;
        sched::Controller c = ex.make_controller();
        std::vector<std::thread> ts;
        ts.push_back(c.spawn([&] {
            osal::CheckedLock lk(ma);
            ++x;
        }));
        ts.push_back(c.spawn([&] {
            osal::CheckedLock lk(mb);
            ++y;
        }));
        const auto r = c.run();
        for (auto& t : ts) t.join();
        ex.finish(r, x == 1 && y == 1 && check::violation_count() == 0);
    }
    EXPECT_FALSE(ex.failure_found()) << ex.failure_reason();
    EXPECT_TRUE(ex.stats().exhausted);
    EXPECT_EQ(ex.stats().completed, 1u);
    EXPECT_EQ(ex.stats().redundant, 0u);
}

// ---------------------------------------------------------------------------
// Seeded bug 1: lost-update atomicity violation

namespace {

/// Read and write in two separate critical sections — the classic
/// check-then-act bug. Some schedule interleaves the two threads' reads
/// before either write, losing one increment.
sched::Controller::Result atomicity_run(sched::Controller::Picker picker,
                                        int& shared) {
    auto body = [&shared](osal::CheckedMutex& mu) {
        int tmp = 0;
        {
            osal::CheckedLock lk(mu);
            tmp = shared;
        }
        {
            osal::CheckedLock lk(mu);
            shared = tmp + 1;
        }
    };
    auto mu = std::make_shared<osal::CheckedMutex>();
    return run_pair(std::move(picker), [&shared, mu, body] { body(*mu); },
                    [&shared, mu, body] { body(*mu); });
}

} // namespace

TEST(SchedExplorer, FindsSeededAtomicityBug) {
    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(1000);
    opts.config_name = "lost-update";
    sched::Explorer ex(opts);
    while (ex.next()) {
        explore::reset_check();
        int shared = 0;
        const auto r = atomicity_run(ex.picker(), shared);
        const bool ok =
            r.status != sched::Controller::Result::Status::kCompleted ||
            (shared == 2 && check::violation_count() == 0);
        ex.finish(r, ok);
    }
    ASSERT_TRUE(ex.failure_found())
        << "explorer missed the lost update in " << ex.stats().runs
        << " schedules";
    EXPECT_FALSE(ex.diverged());
    EXPECT_EQ(ex.failure_reason(), "invariant violation");
    EXPECT_LE(ex.stats().runs, 200u) << "budget blow-up";
    RecordProperty("schedules_to_bug",
                   static_cast<int>(ex.failure_run()));

    // Replay the found schedule on a fresh configuration: identical trace,
    // identical (wrong) final value.
    explore::reset_check();
    auto err = std::make_shared<std::string>();
    int shared = 0;
    const auto r =
        atomicity_run(sched::replay_picker(ex.failure_trace(), err), shared);
    EXPECT_EQ(*err, "") << "replay diverged";
    EXPECT_EQ(r.status, sched::Controller::Result::Status::kCompleted);
    EXPECT_EQ(shared, 1) << "replay must reproduce the lost update";
    EXPECT_TRUE(explore::traces_equal(r.trace, ex.failure_trace()));

    // Determinism: a second exploration finds the same bug on the same run
    // with the identical schedule.
    sched::Explorer ex2(opts);
    while (ex2.next()) {
        explore::reset_check();
        int s2 = 0;
        const auto r2 = atomicity_run(ex2.picker(), s2);
        const bool ok =
            r2.status != sched::Controller::Result::Status::kCompleted ||
            (s2 == 2 && check::violation_count() == 0);
        ex2.finish(r2, ok);
    }
    ASSERT_TRUE(ex2.failure_found());
    EXPECT_EQ(ex2.failure_run(), ex.failure_run());
    EXPECT_TRUE(explore::traces_equal(ex2.failure_trace(),
                                      ex.failure_trace()));
}

// ---------------------------------------------------------------------------
// Seeded bug 2: ABBA lock inversion → real deadlock

namespace {

sched::Controller::Result abba_run(sched::Controller::Picker picker) {
    auto a = std::make_shared<osal::CheckedMutex>();
    auto b = std::make_shared<osal::CheckedMutex>();
    return run_pair(std::move(picker),
                    [a, b] {
                        osal::CheckedLock la(*a);
                        osal::CheckedLock lb(*b);
                    },
                    [a, b] {
                        osal::CheckedLock lb(*b);
                        osal::CheckedLock la(*a);
                    });
}

} // namespace

TEST(SchedExplorer, FindsSeededAbbaDeadlock) {
    sched::Explorer::Options opts;
    opts.max_runs = explore::budget_or(1000);
    opts.config_name = "abba";
    sched::Explorer ex(opts);
    while (ex.next()) {
        explore::reset_check();
        const auto r = abba_run(ex.picker());
        // padico::check flags the order cycle in every completed schedule
        // (that is its job — the inversion is seeded); the explorer's prey
        // here is the schedule where the inversion actually deadlocks.
        ex.finish(r, /*invariants_ok=*/true);
    }
    ASSERT_TRUE(ex.failure_found())
        << "explorer missed the ABBA deadlock in " << ex.stats().runs
        << " schedules";
    EXPECT_FALSE(ex.diverged());
    EXPECT_NE(ex.failure_reason().find("deadlock"), std::string::npos)
        << ex.failure_reason();
    EXPECT_NE(ex.failure_reason().find("held by"), std::string::npos)
        << "deadlock witness must name the holder: " << ex.failure_reason();
    EXPECT_LE(ex.stats().runs, 200u) << "budget blow-up";
    RecordProperty("schedules_to_bug", static_cast<int>(ex.failure_run()));

    // Replay: the recorded schedule drives a fresh configuration into the
    // very same deadlocked state.
    explore::reset_check();
    auto err = std::make_shared<std::string>();
    const auto r = abba_run(sched::replay_picker(ex.failure_trace(), err));
    EXPECT_EQ(*err, "") << "replay diverged";
    EXPECT_EQ(r.status, sched::Controller::Result::Status::kDeadlock);
    EXPECT_TRUE(explore::traces_equal(r.trace, ex.failure_trace()));
    explore::reset_check(); // consume the seeded order-cycle reports
}

// ---------------------------------------------------------------------------
// Primitives under the controller

TEST(SchedController, EventLatchQueueCloseAllTerminate) {
    explore::reset_check();
    auto ev = std::make_shared<osal::Event>();
    auto done = std::make_shared<osal::Latch>(1);
    int order = 0;
    const auto res = run_pair(
        sched::default_picker(),
        [=, &order] {
            ev->wait();
            order = order * 10 + 2;
            done->count_down();
        },
        [=, &order] {
            order = order * 10 + 1;
            ev->set();
            done->wait();
        });
    EXPECT_EQ(res.status, sched::Controller::Result::Status::kCompleted);
    EXPECT_EQ(order, 12);
    EXPECT_EQ(check::violation_count(), 0u);
}

TEST(SchedController, StepLimitAbortsCleanly) {
    explore::reset_check();
    // Two threads ping-pong on a queue forever; the step budget must stop
    // the run and unwind both threads without hanging or terminating.
    auto q = std::make_shared<osal::BlockingQueue<int>>();
    const auto res = run_pair(
        sched::default_picker(),
        [q] {
            q->push(0);
            while (auto v = q->pop()) q->push(*v + 1);
        },
        [q] {
            while (auto v = q->pop()) q->push(*v + 1);
        },
        /*max_steps=*/200);
    EXPECT_EQ(res.status, sched::Controller::Result::Status::kStepLimit);
    EXPECT_TRUE(res.aborted);
    explore::reset_check();
}
