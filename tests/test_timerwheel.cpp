// Tests for the hierarchical timer wheel (osal/timerwheel.hpp): cascade
// correctness at level boundaries, the cancel-vs-fire race resolving to
// exactly one outcome, deterministic delivery order, far-horizon clamping,
// and bookkeeping under concurrent schedule/cancel/advance.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "osal/timerwheel.hpp"

using padico::osal::TimerWheel;
using Wheel = TimerWheel<int>;

namespace {

/// Advance in steps of \p step, concatenating everything fired.
std::vector<int> advance_stepped(Wheel& w, Wheel::Tick to,
                                 Wheel::Tick step) {
    std::vector<int> all;
    while (w.now() < to) {
        const Wheel::Tick next = std::min<Wheel::Tick>(w.now() + step, to);
        auto fired = w.advance(next);
        all.insert(all.end(), fired.begin(), fired.end());
    }
    return all;
}

} // namespace

TEST(TimerWheel, FiresAtExactDeadline) {
    Wheel w;
    w.schedule(10, 1);
    EXPECT_TRUE(w.advance(9).empty());
    const auto fired = w.advance(10);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 1);
    EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, PastDeadlineClampsToNextTick) {
    Wheel w;
    w.advance(100);
    w.schedule(50, 7); // already past: fires on the next advance step
    w.schedule(100, 8); // == now: same
    EXPECT_EQ(w.pending(), 2u);
    const auto fired = w.advance(101);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 7);
    EXPECT_EQ(fired[1], 8);
}

TEST(TimerWheel, CascadeAtLevelBoundaries) {
    // Deadlines straddling every interesting wheel boundary: the level-0
    // lap at 64, the level-1 lap at 64^2, the level-2 lap at 64^3. Each
    // must fire exactly at its deadline regardless of the advance step.
    const std::vector<Wheel::Tick> deadlines = {
        1,      63,      64,      65,      127,     128,
        4095,   4096,    4097,    8191,    262143,  262144,
        262145, 262208};
    for (const Wheel::Tick step : {Wheel::Tick{1}, Wheel::Tick{7},
                                   Wheel::Tick{64}, Wheel::Tick{1000},
                                   Wheel::Tick{1} << 20}) {
        Wheel w;
        for (std::size_t i = 0; i < deadlines.size(); ++i)
            w.schedule(deadlines[i], static_cast<int>(i));
        // Walk to just-before each deadline and assert nothing early.
        std::vector<int> fired;
        for (std::size_t i = 0; i < deadlines.size(); ++i) {
            if (deadlines[i] > 0 && w.now() < deadlines[i] - 1) {
                const auto early =
                    advance_stepped(w, deadlines[i] - 1, step);
                fired.insert(fired.end(), early.begin(), early.end());
            }
            const auto at = w.advance(deadlines[i]);
            fired.insert(fired.end(), at.begin(), at.end());
            EXPECT_EQ(fired.size(), i + 1)
                << "deadline " << deadlines[i] << " step " << step;
        }
        // Order is deadline order == schedule order here.
        for (std::size_t i = 0; i < fired.size(); ++i)
            EXPECT_EQ(fired[i], static_cast<int>(i)) << "step " << step;
        EXPECT_EQ(w.pending(), 0u);
    }
}

TEST(TimerWheel, SingleJumpOverManyBoundaries) {
    Wheel w;
    const std::vector<Wheel::Tick> deadlines = {3,    64,    4096,
                                                 4100, 262144, 300000};
    for (std::size_t i = 0; i < deadlines.size(); ++i)
        w.schedule(deadlines[i], static_cast<int>(i));
    const auto fired = w.advance(300000); // one giant leap
    ASSERT_EQ(fired.size(), deadlines.size());
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], static_cast<int>(i));
}

TEST(TimerWheel, DeadlineOrderNotScheduleOrder) {
    Wheel w;
    w.schedule(300, 3);
    w.schedule(100, 1);
    w.schedule(200, 2);
    const auto fired = w.advance(1000);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
    Wheel w;
    for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < 16; ++i) w.schedule(w.now() + 50, i);
        const auto fired = w.advance(w.now() + 50);
        ASSERT_EQ(fired.size(), 16u);
        for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
    }
}

TEST(TimerWheel, CancelBeforeFire) {
    Wheel w;
    const auto id = w.schedule(40, 9);
    w.schedule(40, 10);
    EXPECT_TRUE(w.cancel(id));
    EXPECT_FALSE(w.cancel(id)); // second cancel: already gone
    const auto fired = w.advance(100);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 10); // the cancelled timer never fires
    EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, CancelAfterFireReportsFalse) {
    Wheel w;
    const auto id = w.schedule(5, 1);
    EXPECT_EQ(w.advance(10).size(), 1u);
    EXPECT_FALSE(w.cancel(id)); // exactly one of cancel/fire wins
    EXPECT_FALSE(w.cancel(12345)); // unknown id
}

TEST(TimerWheel, CancelAcrossCascade) {
    // Cancel a timer that has already been cascaded into a finer level.
    Wheel w;
    const auto id = w.schedule(4097, 1);
    w.advance(4096); // cascades the entry down, does not fire it
    EXPECT_EQ(w.pending(), 1u);
    EXPECT_TRUE(w.cancel(id));
    EXPECT_TRUE(w.advance(10000).empty());
}

TEST(TimerWheel, FarHorizonDoesNotFireEarly) {
    Wheel w;
    // Beyond the wheel's representable span: parked at the top level and
    // re-placed on each top-level lap. Must not fire in any near future.
    w.schedule(~Wheel::Tick{0} - 10, 99);
    EXPECT_TRUE(w.advance(1 << 20).empty());
    EXPECT_EQ(w.pending(), 1u);
}

TEST(TimerWheel, RescheduleChainsAcrossAdvances) {
    // The ServerCore idle-sweep pattern: each firing reschedules the next
    // probe; the chain must fire once per period, never twice.
    Wheel w;
    int fires = 0;
    w.schedule(10, 0);
    for (Wheel::Tick t = 1; t <= 100; ++t) {
        for (int v : w.advance(t)) {
            (void)v;
            ++fires;
            w.schedule(w.now() + 10, 0);
        }
    }
    EXPECT_EQ(fires, 10);
    EXPECT_EQ(w.pending(), 1u);
}

TEST(TimerWheel, ConcurrentScheduleCancelAdvanceSmoke) {
    TimerWheel<std::uint64_t> w;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 2000;
    std::atomic<std::uint64_t> fired{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<bool> stop{false};

    std::thread driver([&] {
        while (!stop.load()) {
            fired += w.advance(w.now() + 3).size();
            std::this_thread::yield();
        }
        // Drain everything still parked.
        fired += w.advance(w.now() + (Wheel::Tick{1} << 22)).size();
    });
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const auto id = w.schedule(
                    w.now() + 1 + (i % 500),
                    static_cast<std::uint64_t>(t) * kPerThread + i);
                if (i % 3 == 0 && w.cancel(id)) ++cancelled;
            }
        });
    }
    for (auto& th : producers) th.join();
    stop.store(true);
    driver.join();

    EXPECT_EQ(fired.load() + cancelled.load(), kThreads * kPerThread);
    EXPECT_EQ(w.pending(), 0u);
}
