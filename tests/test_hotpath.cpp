/// \file test_hotpath.cpp
/// The hot-path fast lanes: destination→segment route cache (generation
/// invalidation protocol), memoized redistribution plans, and the
/// persistent fan-out pool — plus the governing invariant that turning
/// every lane off changes nothing about virtual-time results.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "osal/sync.hpp"
#include "padicotm/runtime.hpp"
#include "util/cache.hpp"
#include "util/strings.hpp"

namespace padico {
namespace {

using namespace padico::fabric;
using namespace padico::gridccm;

/// Restore the process-wide fast-lane toggle on scope exit (tests share
/// one binary).
struct LanesGuard {
    explicit LanesGuard(bool on) : prev(util::caches_enabled()) {
        util::set_caches_enabled(on);
    }
    ~LanesGuard() { util::set_caches_enabled(prev); }
    bool prev;
};

// ---------------------------------------------------------------------------
// Route cache

TEST(RouteCache, RevalidatesOnPortOpenAndRelease) {
    LanesGuard lanes(true);
    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& m0 = grid.add_machine("n0");
    auto& m1 = grid.add_machine("n1");
    grid.attach(m0, myri);
    grid.attach(m0, eth);
    grid.attach(m1, myri);
    grid.attach(m1, eth);

    osal::Event eth_open, saw_eth, myri_open, saw_myri, myri_closed, done;

    Process& pb = grid.spawn(m1, [&](Process& proc) {
        // A raw peer (no Runtime): its ports appear and vanish under the
        // sender's feet, exactly what the generation protocol must catch.
        PortRef pe = m1.adapter_on(eth)->open(proc, "peer");
        eth_open.set();
        saw_eth.wait();
        {
            PortRef pm = m1.adapter_on(myri)->open(proc, "peer");
            myri_open.set();
            saw_myri.wait();
        } // releases the Myrinet port
        myri_closed.set();
        done.wait();
    });
    const ProcessId bid = pb.id();

    grid.spawn(m0, [&](Process& proc) {
        ptm::Runtime rt(proc);
        eth_open.wait();

        // Only the Ethernet port exists: first lookup misses and derives.
        EXPECT_EQ(rt.select_segment(bid), &eth);
        auto rc = rt.stats().route_cache;
        EXPECT_EQ(rc.misses, 1u);
        EXPECT_EQ(rc.hits, 0u);

        // Steady state: pure cache hit, entry visible to the peek API.
        EXPECT_EQ(rt.select_segment(bid), &eth);
        rc = rt.stats().route_cache;
        EXPECT_EQ(rc.hits, 1u);
        EXPECT_EQ(rc.misses, 1u);
        auto peek = rt.cached_route(bid);
        EXPECT_TRUE(peek.cached);
        EXPECT_EQ(peek.seg, &eth);
        saw_eth.set();

        // A better port opened: generation moved, entry dropped, rederived.
        myri_open.wait();
        EXPECT_EQ(rt.select_segment(bid), &myri);
        rc = rt.stats().route_cache;
        EXPECT_EQ(rc.invalidations, 1u);
        EXPECT_EQ(rc.misses, 2u);
        saw_myri.set();

        // The better port vanished: falls back to Ethernet, not a stale hit.
        myri_closed.wait();
        EXPECT_EQ(rt.select_segment(bid), &eth);
        rc = rt.stats().route_cache;
        EXPECT_EQ(rc.invalidations, 2u);
        EXPECT_EQ(rc.misses, 3u);
        done.set();
    });
    grid.join_all();
}

TEST(RouteCache, DisabledModeNeverCaches) {
    LanesGuard lanes(false);
    Grid grid;
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& m0 = grid.add_machine("n0");
    auto& m1 = grid.add_machine("n1");
    grid.attach(m0, eth);
    grid.attach(m1, eth);

    osal::Event eth_open, done;
    Process& pb = grid.spawn(m1, [&](Process& proc) {
        PortRef pe = m1.adapter_on(eth)->open(proc, "peer");
        eth_open.set();
        done.wait();
    });
    const ProcessId bid = pb.id();

    grid.spawn(m0, [&](Process& proc) {
        ptm::Runtime rt(proc);
        eth_open.wait();
        EXPECT_EQ(rt.select_segment(bid), &eth);
        EXPECT_EQ(rt.select_segment(bid), &eth);
        const auto rc = rt.stats().route_cache;
        EXPECT_EQ(rc.hits, 0u);
        EXPECT_EQ(rc.misses, 2u); // every lookup takes the slow path
        EXPECT_FALSE(rt.cached_route(bid).cached);
        done.set();
    });
    grid.join_all();
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCache, MemoizesByShape) {
    LanesGuard lanes(true);
    reset_plan_cache();

    const Distribution bc = Distribution::block_cyclic(64);
    const Distribution blk = Distribution::block();
    PlanPtr a = shared_plan(bc, 4, blk, 3, 4096);
    PlanPtr b = shared_plan(bc, 4, blk, 3, 4096);
    EXPECT_EQ(a.get(), b.get()); // one computation, shared by all callers

    // Any key component changing yields a different plan object.
    PlanPtr c = shared_plan(bc, 4, blk, 3, 8192);
    EXPECT_NE(a.get(), c.get());
    PlanPtr d = shared_plan(Distribution::block_cyclic(32), 4, blk, 3, 4096);
    EXPECT_NE(a.get(), d.get());

    const PlanCacheStats st = plan_cache_stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 3u);

    // The memoized plan matches a fresh computation exactly.
    const RedistPlan fresh = compute_plan(bc, 4, blk, 3, 4096);
    EXPECT_EQ(a->fragments, fresh.fragments);
    EXPECT_EQ(a->len, fresh.len);
    reset_plan_cache();
}

TEST(PlanCache, DisabledModeComputesFresh) {
    LanesGuard lanes(false);
    reset_plan_cache();
    const Distribution blk = Distribution::block();
    PlanPtr a = shared_plan(blk, 2, blk, 3, 1024);
    PlanPtr b = shared_plan(blk, 2, blk, 3, 1024);
    EXPECT_NE(a.get(), b.get()); // no table, fresh object each time
    EXPECT_EQ(a->fragments, b->fragments);
    const PlanCacheStats st = plan_cache_stats();
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(st.misses, 0u); // bypass does not even touch the counters
    reset_plan_cache();
}

// ---------------------------------------------------------------------------
// Fan-out pool

TEST(TaskPool, GrowsToBatchAndReuses) {
    std::atomic<int> inits{0};
    osal::TaskPool pool([&] { inits.fetch_add(1); });

    // run() returns when the tasks are done, which a subset of the workers
    // may have handled before a late-starting worker ran its thread_init —
    // so poll for the init count instead of asserting it instantly.
    const auto settled_inits = [&](int want) {
        for (int spin = 0; spin < 2000 && inits.load() < want; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return inits.load();
    };

    std::atomic<int> ran{0};
    std::vector<std::function<void()>> batch;
    for (int i = 0; i < 3; ++i) batch.push_back([&] { ran.fetch_add(1); });
    pool.run(std::move(batch));
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(settled_inits(3), 3); // thread_init once per worker

    // A larger batch grows the pool; a smaller one reuses it.
    batch.clear();
    for (int i = 0; i < 5; ++i) batch.push_back([&] { ran.fetch_add(1); });
    pool.run(std::move(batch));
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(pool.size(), 5u);
    EXPECT_EQ(settled_inits(5), 5);

    batch.clear();
    for (int i = 0; i < 2; ++i) batch.push_back([&] { ran.fetch_add(1); });
    pool.run(std::move(batch));
    EXPECT_EQ(ran.load(), 10);
    EXPECT_EQ(pool.size(), 5u);
    EXPECT_EQ(settled_inits(5), 5);
}

TEST(TaskPool, PropagatesErrorAndSurvivesIt) {
    osal::TaskPool pool;
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> batch;
    batch.push_back([&] { ran.fetch_add(1); });
    batch.push_back([] { throw std::runtime_error("fanout boom"); });
    batch.push_back([&] { ran.fetch_add(1); });
    try {
        pool.run(std::move(batch));
        FAIL() << "expected the task error to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "fanout boom");
    }
    EXPECT_EQ(ran.load(), 2); // the other tasks still completed

    // The pool is reusable after an error.
    batch.clear();
    batch.push_back([&] { ran.fetch_add(1); });
    pool.run(std::move(batch));
    EXPECT_EQ(ran.load(), 3);
}

// ---------------------------------------------------------------------------
// The governing invariant: virtual time is bit-identical with every fast
// lane on or off — only wall-clock may differ.

class HotpathTestComp : public ParallelComponent {
public:
    HotpathTestComp() {
        declare_parallel_facet(
            R"(<parallel-interface component="HotpathTestComp" facet="hot"
                                   distribution="block">
                 <operation name="xfer" argument="block"/>
               </parallel-interface>)",
            {{"xfer", [](const OpContext& ctx, util::Message) {
                  if (ctx.comm != nullptr) ctx.comm->barrier();
                  return util::Message();
              }}});
    }
    std::string type() const override { return "HotpathTestComp"; }
};

void install_test_component() {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type(
            "HotpathTestComp",
            [] { return std::make_unique<HotpathTestComp>(); });
    });
}

struct WorkloadResult {
    SimTime virtual_end = 0; ///< client rank 0 clock after the last barrier
    ptm::TrafficCounters::RouteCache route;
    PlanCacheStats plans;
    /// Summed client-side traffic: segment name -> (messages, bytes).
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> traffic;
    std::vector<SimTime> trace; ///< rank 0: clock after setup + each invoke
};

/// `serial` selects the shape. Serial: ONE sequential client invoking a
/// single-member component — at no point are two transfers booked on the
/// same adapter concurrently, so virtual time is exactly reproducible and
/// the on/off comparison must agree bit-for-bit. Fanout: a 4-client group
/// onto a 3-member component (block-cyclic vs block) — every call fans out
/// to 2-3 servers through the worker pool, and concurrently booked
/// reservations on one adapter are placed in real arrival order, so
/// completion time carries sub-percent scheduling jitter ALREADY in the
/// thread-per-call baseline; there the exact comparison is on traffic.
WorkloadResult run_gridccm_workload(bool fast_lanes, bool serial) {
    LanesGuard lanes(fast_lanes);
    reset_plan_cache();
    install_test_component();
    const int kServers = serial ? 1 : 3;
    const int kClients = serial ? 1 : 4;
    constexpr std::size_t kLen = 6144;

    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    std::vector<Machine*> nodes;
    for (int i = 0; i < kServers + kClients; ++i) {
        auto& m = grid.add_machine("node" + std::to_string(i), 2);
        m.set_attr("pool", "cluster");
        grid.attach(m, myri);
        grid.attach(m, eth);
        nodes.push_back(&m);
    }
    // The serial shape runs the deployer inside the client process so that
    // exactly two processes ever exchange messages; a third process would
    // couple its deploy-time traffic into the server's (shared) virtual
    // clock with real-time-dependent interleaving, smearing the absolute
    // timestamps we want to compare bit-for-bit.
    Machine* front = nullptr;
    if (!serial) {
        front = &grid.add_machine("front");
        grid.attach(*front, eth);
    }

    for (int i = 0; i < kServers; ++i)
        grid.spawn(*nodes[static_cast<std::size_t>(i)],
                   [](Process& proc) {
                       ccm::component_server_main(proc,
                                                  corba::profile_omniorb4());
                   });

    corba::IOR home;
    std::mutex home_mu;
    osal::Event home_ready;
    WorkloadResult res;
    std::mutex res_mu;

    const std::string assembly_xml = util::strfmt(
        R"(<assembly name="hotpath-test">
             <component id="hot" type="HotpathTestComp" parallel="%d"/>
           </assembly>)",
        kServers);

    if (!serial) {
        grid.spawn(*front, [&](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, corba::profile_omniorb4());
            ccm::Deployer deployer(orb);
            auto dep = deployer.deploy(ccm::Assembly::parse(assembly_xml));
            {
                std::lock_guard<std::mutex> lk(home_mu);
                home = deployer.facet_of(dep, ccm::PortAddr{"hot", "hot"});
            }
            home_ready.set();
            proc.grid().wait_service("hotpath-test/done");
            deployer.teardown(dep);
            for (int i = 0; i < kServers; ++i)
                ccm::connect_component_server(
                    orb, nodes[static_cast<std::size_t>(i)]->name())
                    .shutdown();
        });
    }

    osal::Barrier clients_done(static_cast<std::size_t>(kClients));
    for (int r = 0; r < kClients; ++r) {
        grid.spawn(*nodes[static_cast<std::size_t>(kServers + r)],
                   [&, r](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, corba::profile_omniorb4());
            std::shared_ptr<mpi::World> world;
            mpi::Comm* comm = nullptr;
            std::unique_ptr<ccm::Deployer> deployer;
            std::optional<ccm::Deployment> dep;
            corba::IOR h;
            if (serial) {
                deployer = std::make_unique<ccm::Deployer>(orb);
                dep = deployer->deploy(ccm::Assembly::parse(assembly_xml));
                h = deployer->facet_of(*dep, ccm::PortAddr{"hot", "hot"});
            } else {
                home_ready.wait();
                proc.grid().register_service(
                    "hotpath-test/client/" + std::to_string(r), proc.id());
                std::vector<ProcessId> members(
                    static_cast<std::size_t>(kClients));
                for (int i = 0; i < kClients; ++i)
                    members[static_cast<std::size_t>(i)] =
                        proc.grid().wait_service("hotpath-test/client/" +
                                                 std::to_string(i));
                world = mpi::World::create(rt, "hotclients", members);
                comm = &world->world();
                std::lock_guard<std::mutex> lk(home_mu);
                h = home;
            }
            const Distribution cdist = serial
                                           ? Distribution::block()
                                           : Distribution::block_cyclic(512);
            auto stub = serial ? std::make_unique<ParallelStub>(orb, h)
                               : std::make_unique<ParallelStub>(orb, *comm, h,
                                                                cdist);
            std::vector<std::int32_t> local(
                cdist.local_size(r, kClients, kLen), 1);
            // Every redistribution strategy takes its turn; in the serial
            // shape each resolves to a single-contact 1→1 plan but still
            // walks its own stub/skeleton code path.
            const Strategy strats[] = {Strategy::Auto, Strategy::InFlight,
                                       Strategy::ClientSide,
                                       Strategy::ServerSide};
            std::vector<SimTime> trace;
            trace.push_back(proc.now());
            for (int iter = 0; iter < 8; ++iter) {
                stub->invoke<std::int32_t>(
                    "xfer", std::span<const std::int32_t>(local), kLen,
                    strats[iter % 4]);
                trace.push_back(proc.now());
            }
            if (comm != nullptr) comm->barrier();
            {
                const ptm::TrafficCounters st = rt.stats();
                std::lock_guard<std::mutex> lk(res_mu);
                if (r == 0) {
                    res.virtual_end = proc.now();
                    res.route = st.route_cache;
                    res.trace = trace;
                }
                for (const auto& [name, c] : st.by_segment) {
                    auto& t = res.traffic[name];
                    t.first += c.messages;
                    t.second += c.bytes;
                }
            }
            clients_done.arrive_and_wait();
            if (serial) {
                deployer->teardown(*dep);
                ccm::connect_component_server(orb, nodes[0]->name())
                    .shutdown();
            } else if (r == 0) {
                proc.grid().register_service("hotpath-test/done",
                                             proc.id());
            }
        });
    }
    grid.join_all();
    res.plans = plan_cache_stats();
    reset_plan_cache();
    return res;
}

TEST(FastLanes, VirtualTimeIdenticalOnAndOff) {
    const WorkloadResult off = run_gridccm_workload(false, /*serial=*/true);
    const WorkloadResult on = run_gridccm_workload(true, /*serial=*/true);

    // The whole point: the fast lanes may only remove real-time work,
    // never move a single virtual-time event.
    EXPECT_EQ(on.virtual_end, off.virtual_end);
    EXPECT_EQ(on.trace, off.trace);
    EXPECT_GT(on.virtual_end, 0);
    EXPECT_EQ(on.traffic, off.traffic);

    // And the lanes did engage in the enabled run...
    EXPECT_GT(on.route.hits, 0u);
    EXPECT_GT(on.plans.hits, 0u);
    // ...but not in the disabled one.
    EXPECT_EQ(off.route.hits, 0u);
    EXPECT_EQ(off.plans.hits + off.plans.misses, 0u);
}

TEST(FastLanes, FanoutTrafficIdenticalOnAndOff) {
    // The multi-contact shape goes through the persistent pool when the
    // lanes are on and through per-invocation threads when off. Its
    // completion time is booking-order-sensitive either way (pre-existing
    // property of contended BusyList reservations), but every message and
    // byte the protocol emits must be identical.
    const WorkloadResult off = run_gridccm_workload(false, /*serial=*/false);
    const WorkloadResult on = run_gridccm_workload(true, /*serial=*/false);

    EXPECT_EQ(on.traffic, off.traffic);
    EXPECT_FALSE(on.traffic.empty());
    EXPECT_GT(on.route.hits, 0u);
    EXPECT_GT(on.plans.hits, 0u);
}

} // namespace
} // namespace padico
