// Schedule exploration of a two-client ServerCore configuration
// (DESIGN.md §14): one CORBA echo server, two clients with fully
// overlapping lifecycles — both race from connect through echo to
// close, ~250 scheduling decisions across 10 threads. Three legs:
//
//  * TwoClientExhaustive — kThreadPerConnection mode, explored
//    exhaustively. The conditional-dependence relation is what brings
//    this within reach: under plain same-object dependence this space
//    was measured not exhausted at 800k schedules. Every complete
//    schedule must echo correctly on both clients and keep the
//    padico::check invariants clean.
//  * TwoClientEventDrivenExhaustive — kEventDriven mode (dispatcher +
//    waitset + worker pool), explored exhaustively likewise.
//  * ReplayReproducesBitIdenticalVirtualTime — event-driven record/replay.
//
// Unlike the fabric configuration, the virtual-time digest here is NOT
// schedule-invariant and the tests do not pretend it is: the server
// processes the two requests in arrival order, and which client waits
// behind the other — and whether their wire traffic overlaps on the
// shared segment — is real arbitration that virtual time truthfully
// reflects. The exhaustive leg therefore tallies the distinct digests;
// determinism per schedule is asserted by the replay leg, which demands a
// bit-identical virtual time for a fixed schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "corba/orb.hpp"
#include "explore_util.hpp"
#include "fabric/grid.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::corba;
namespace sched = osal::sched;
namespace check = osal::check;

namespace {

class EchoServant : public Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, cdr::Decoder& in,
                  cdr::Encoder& out) override {
        if (op != "echo") throw RemoteError("BAD_OPERATION " + op);
        out.put_string(in.get_string());
    }
};

/// One raw GIOP request/reply round trip (the wire shape ObjectRef::invoke
/// produces).
std::string raw_echo_call(ptm::VLink& conn, std::uint64_t req_id,
                          std::uint64_t key, const std::string& payload) {
    cdr::Encoder req(true);
    req.put_u64(req_id);
    req.put_u64(key);
    req.put_bool(true);
    req.put_string("echo");
    req.put_message(cdr::encode(true, payload));
    giop::send_message(conn, giop::MsgType::Request, req.take());

    auto reply = giop::recv_message(conn);
    if (!reply.has_value()) return {};
    cdr::Decoder dec(std::move(reply->second));
    if (dec.get_u64() != req_id) return {};
    if (dec.get_u8() !=
        static_cast<std::uint8_t>(giop::ReplyStatus::NoException))
        return {};
    return cdr::decode_one<std::string>(dec.get_bytes_msg(dec.remaining()));
}

struct ServerOutcome {
    sched::Controller::Result res;
    std::array<std::string, 2> echoed;
    std::array<SimTime, 2> client_final{}; ///< per-client completion clock
    std::uint64_t server_sig = 0; ///< Runtime::virtual_time_signature()
    std::uint64_t frames = 0;     ///< request frames the core dispatched

    /// Virtual-time digest of one schedule (client-symmetric: the two
    /// completion times are sorted before folding). Distinct digests
    /// across schedules are expected — see the header comment.
    std::uint64_t identity() const {
        auto lo = std::min(client_final[0], client_final[1]);
        auto hi = std::max(client_final[0], client_final[1]);
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint64_t v :
             {static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi),
              server_sig, frames}) {
            for (int b = 0; b < 8; ++b) {
                h ^= (v >> (8 * b)) & 0xffu;
                h *= 1099511628211ull;
            }
        }
        return h;
    }
};

/// One schedule of the two-client echo configuration under \p c.
ServerOutcome two_client_run(sched::Controller& c,
                             svc::ServerCore::Mode mode) {
    ServerOutcome out;
    Grid grid;
    // The server machine has one NIC per client segment — the paper's
    // multi-network server shape. Each client's traffic lands in its own
    // adapter queue on the server, so the two request chains only meet at
    // the ServerCore itself (accept, slab, shared dispatch machinery).
    auto& eth0 = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& eth1 = grid.add_segment("eth1", NetTech::FastEthernet);
    auto& srv = grid.add_machine("srv");
    auto& cl0 = grid.add_machine("cli0");
    auto& cl1 = grid.add_machine("cli1");
    grid.attach(srv, eth0);
    grid.attach(srv, eth1);
    grid.attach(cl0, eth0);
    grid.attach(cl1, eth1);

    osal::Event served;
    osal::Latch done(2);
    // Out-of-band key handoff: written before served.set(), read after
    // served.wait() — ordered by the event, no registry rendezvous needed
    // (keeps the explored op count down to the echo path itself).
    std::uint64_t key = 0;

    grid.spawn(srv, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.workers = 1;
        opts.mode = mode;
        orb.serve("ex-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        key = ior.key;
        served.set();
        done.wait();
        out.server_sig = rt.virtual_time_signature();
        out.frames = orb.server_stats().frames;
        orb.shutdown();
    });
    for (int i = 0; i < 2; ++i) {
        Machine& m = i == 0 ? cl0 : cl1;
        grid.spawn(m, [&, i](Process& proc) {
            ptm::Runtime rt(proc);
            served.wait();
            ptm::VLink conn = ptm::VLink::connect(rt, "ex-ep");
            out.echoed[static_cast<std::size_t>(i)] =
                raw_echo_call(conn, 1, key, "ping");
            conn.close();
            out.client_final[static_cast<std::size_t>(i)] = proc.now();
            done.count_down();
        });
    }
    out.res = c.run();
    grid.join_all();
    return out;
}

bool echoes_ok(const ServerOutcome& o) {
    return o.echoed[0] == "ping" && o.echoed[1] == "ping";
}

} // namespace

/// Shared exploration driver: explore the configuration in \p mode under
/// \p opts, asserting every complete schedule echoes and stays
/// check-clean. \p require_exhausted additionally demands the explorer
/// proved the space covered within the budget.
void explore_mode(svc::ServerCore::Mode mode,
                  sched::Explorer::Options opts, const char* test_name,
                  bool require_exhausted) {
    sched::Explorer ex(opts);
    std::set<std::uint64_t> digests;
    std::uint64_t completed_ok = 0;
    while (ex.next()) {
        explore::reset_check();
        sched::Controller c = ex.make_controller();
        const auto o = two_client_run(c, mode);
        bool ok = true;
        if (o.res.status == sched::Controller::Result::Status::kCompleted) {
            ok = echoes_ok(o) && check::violation_count() == 0;
            if (ok) {
                digests.insert(o.identity());
                ++completed_ok;
            }
        }
        ex.finish(o.res, ok);
    }
    if (ex.failure_found())
        explore::dump_failure(ex, "explore_server", test_name);
    EXPECT_FALSE(ex.failure_found()) << ex.failure_reason();
    if (require_exhausted)
        EXPECT_TRUE(ex.stats().exhausted)
            << "budget too small: " << ex.stats().runs << " runs";
    EXPECT_GT(completed_ok, 0u);
    std::fprintf(stderr,
                 "%s: %llu schedules (%llu completed, %llu redundant), max "
                 "depth %llu, exhausted=%d, %zu distinct virtual-time "
                 "digests\n",
                 opts.config_name.c_str(),
                 static_cast<unsigned long long>(ex.stats().runs),
                 static_cast<unsigned long long>(ex.stats().completed),
                 static_cast<unsigned long long>(ex.stats().redundant),
                 static_cast<unsigned long long>(ex.stats().max_depth),
                 ex.stats().exhausted ? 1 : 0, digests.size());
    ::testing::Test::RecordProperty("schedules",
                                    static_cast<int>(ex.stats().runs));
    ::testing::Test::RecordProperty("completed",
                                    static_cast<int>(ex.stats().completed));
    ::testing::Test::RecordProperty("digests",
                                    static_cast<int>(digests.size()));
}

TEST(ExploreServer, TwoClientExhaustive) {
    // Replay workflow: PADICO_SCHED_REPLAY runs one recorded schedule
    // instead of exploring.
    if (auto t = explore::replay_from_env()) {
        explore::reset_check();
        auto err = std::make_shared<std::string>();
        sched::Controller c(sched::replay_picker(*t, err), 1u << 20,
                            t->config);
        const auto mode = t->config == "server-2cli-event"
                              ? svc::ServerCore::Mode::kEventDriven
                              : svc::ServerCore::Mode::kThreadPerConnection;
        const auto o = two_client_run(c, mode);
        EXPECT_EQ(*err, "") << "replay diverged";
        std::fprintf(stderr, "replayed %s: status=%s identity=%016llx\n",
                     t->config.c_str(), o.res.status_name(),
                     static_cast<unsigned long long>(o.identity()));
        return;
    }

    sched::Explorer::Options opts;
    // Measured 52 827 schedules to exhaustion (EXPERIMENTS.md); the
    // default budget leaves ~2x headroom so incidental op-count drift
    // does not flip the assertion.
    opts.max_runs = explore::budget_or(100000);
    // Same granularity decision as explore_fabric: critical sections are
    // atomic blocks; branch on queue/waiter/cv/message order only.
    opts.branch_mutexes = false;
    opts.config_name = "server-2cli";
    explore_mode(svc::ServerCore::Mode::kThreadPerConnection, opts,
                 "TwoClientExhaustive",
                 /*require_exhausted=*/!explore::budget_overridden());
}

TEST(ExploreServer, TwoClientEventDrivenExhaustive) {
    if (explore::replay_from_env()) GTEST_SKIP();
    sched::Explorer::Options opts;
    // Measured 7 742 schedules to exhaustion (the dispatcher serializes
    // more than thread-per-connection does, so the space is smaller).
    opts.max_runs = explore::budget_or(20000);
    opts.branch_mutexes = false;
    opts.config_name = "server-2cli-event";
    explore_mode(svc::ServerCore::Mode::kEventDriven, opts,
                 "TwoClientEventDrivenExhaustive",
                 /*require_exhausted=*/!explore::budget_overridden());
}

TEST(ExploreServer, ReplayReproducesBitIdenticalVirtualTime) {
    explore::reset_check();
    sched::Controller rec(sched::default_picker(), 1u << 20,
                          "server-2cli-event");
    const auto first =
        two_client_run(rec, svc::ServerCore::Mode::kEventDriven);
    ASSERT_EQ(first.res.status,
              sched::Controller::Result::Status::kCompleted);
    ASSERT_TRUE(echoes_ok(first));
    // Inspect this schedule with the pretty-printer:
    //   PADICO_DUMP_TRACE=/tmp ./tests/explore_server \
    //     --gtest_filter='*Replay*' && sched_trace /tmp/server-event.trace
    if (const char* dir = std::getenv("PADICO_DUMP_TRACE"))
        sched::save_trace(first.res.trace,
                          std::string(dir) + "/server-event.trace");

    explore::reset_check();
    auto err = std::make_shared<std::string>();
    sched::Controller rep(sched::replay_picker(first.res.trace, err),
                          1u << 20, "server-2cli-event");
    const auto second =
        two_client_run(rep, svc::ServerCore::Mode::kEventDriven);
    EXPECT_EQ(*err, "") << "replay diverged";
    ASSERT_EQ(second.res.status,
              sched::Controller::Result::Status::kCompleted);
    EXPECT_TRUE(explore::traces_equal(first.res.trace, second.res.trace));
    EXPECT_EQ(first.client_final, second.client_final);
    EXPECT_EQ(first.server_sig, second.server_sig)
        << "replay must reproduce bit-identical virtual time";
}
