// Tests for the fan-in ingress machinery this layer of the server stack
// added: the generation-tagged connection slab (stale handles must be
// rejected, never misdelivered), the idle-connection sweep (a regression:
// the legacy thread-per-connection shape historically never reaped idle
// streams), and the per-protocol ingress counters surfaced through
// ptm::Runtime::stats() — including their independence from the
// PADICO_DISABLE_CACHES ablation toggle.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "corba/orb.hpp"
#include "fabric/grid.hpp"
#include "osal/sync.hpp"
#include "svc/slab.hpp"
#include "util/cache.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::corba;

namespace {

struct DuoGrid {
    Grid grid;
    Machine* server;
    Machine* client;

    DuoGrid() {
        auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
        server = &grid.add_machine("srv");
        client = &grid.add_machine("cli");
        for (auto* m : {server, client}) grid.attach(*m, eth);
    }
};

class EchoServant : public Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, cdr::Decoder& in,
                  cdr::Encoder& out) override {
        if (op != "echo") throw RemoteError("BAD_OPERATION " + op);
        out.put_string(in.get_string());
    }
};

std::string raw_echo_call(ptm::VLink& conn, std::uint64_t req_id,
                          std::uint64_t key, const std::string& payload) {
    cdr::Encoder req(true);
    req.put_u64(req_id);
    req.put_u64(key);
    req.put_bool(true);
    req.put_string("echo");
    req.put_message(cdr::encode(true, payload));
    giop::send_message(conn, giop::MsgType::Request, req.take());
    auto reply = giop::recv_message(conn);
    EXPECT_TRUE(reply.has_value());
    cdr::Decoder dec(std::move(reply->second));
    EXPECT_EQ(dec.get_u64(), req_id);
    EXPECT_EQ(dec.get_u8(),
              static_cast<std::uint8_t>(giop::ReplyStatus::NoException));
    return cdr::decode_one<std::string>(dec.get_bytes_msg(dec.remaining()));
}

} // namespace

// ---------------------------------------------------------------------------
// Slab: generation-tagged handles

TEST(Slab, AllocGetFreeRoundTrip) {
    svc::Slab<std::string> slab;
    const auto h = slab.alloc("hello");
    ASSERT_NE(slab.get(h), nullptr);
    EXPECT_EQ(*slab.get(h), "hello");
    EXPECT_EQ(slab.live(), 1u);
    EXPECT_TRUE(slab.free(h));
    EXPECT_EQ(slab.get(h), nullptr);
    EXPECT_EQ(slab.live(), 0u);
}

TEST(Slab, HandleZeroIsNeverValid) {
    svc::Slab<int> slab;
    EXPECT_EQ(slab.get(0), nullptr);
    const auto h = slab.alloc(1);
    EXPECT_NE(h, 0u); // generations start odd: no live handle is ever 0
}

TEST(Slab, StaleGenerationRejectedAfterSlotReuse) {
    // The ABA case the generation tag exists for: a readiness event
    // carrying a stale handle must NOT reach the slot's new occupant.
    svc::Slab<std::string> slab;
    const auto h1 = slab.alloc("first");
    EXPECT_TRUE(slab.free(h1));
    const auto h2 = slab.alloc("second");
    // Same physical slot, different generation.
    EXPECT_EQ(svc::Slab<std::string>::index_of(h1),
              svc::Slab<std::string>::index_of(h2));
    EXPECT_NE(svc::Slab<std::string>::generation_of(h1),
              svc::Slab<std::string>::generation_of(h2));
    // The stale handle dereferences to nothing — not to "second".
    EXPECT_EQ(slab.get(h1), nullptr);
    ASSERT_NE(slab.get(h2), nullptr);
    EXPECT_EQ(*slab.get(h2), "second");
    // And a second free through the stale handle is refused.
    EXPECT_FALSE(slab.free(h1));
    EXPECT_EQ(slab.live(), 1u);
}

TEST(Slab, ChurnReusesSlotsWithFreshGenerations) {
    svc::Slab<int> slab;
    std::vector<std::uint64_t> stale;
    for (int round = 0; round < 50; ++round) {
        const auto h = slab.alloc(round);
        EXPECT_TRUE(slab.free(h));
        stale.push_back(h);
    }
    EXPECT_EQ(slab.used_slots(), 1u); // one slot recycled throughout
    for (const auto h : stale) EXPECT_EQ(slab.get(h), nullptr);
    const auto live = slab.alloc(99);
    EXPECT_EQ(*slab.get(live), 99);
    EXPECT_EQ(slab.live_handles(), std::vector<std::uint64_t>{live});
}

// ---------------------------------------------------------------------------
// Idle sweep: every server mode reaps an idle connection

class IdleReap : public ::testing::TestWithParam<svc::ServerCore::Mode> {};

TEST_P(IdleReap, IdleConnectionIsReaped) {
    // Regression: the legacy thread-per-connection shape parked its reader
    // in read_msg_opt() forever; an idle client pinned a server thread and
    // a connection slot for the life of the process. All modes now share
    // the timer-wheel sweep.
    DuoGrid g;
    osal::Event served, reaped, client_done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.mode = GetParam();
        opts.idle_timeout_ms = 40;
        orb.serve("reap-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/reap/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        // The client goes quiet after one call; the sweep must retire the
        // connection without any client-side close.
        svc::ServerCore::Stats st;
        for (int spin = 0; spin < 5000; ++spin) {
            st = orb.server_stats();
            if (st.idle_reaped >= 1 && st.live_connections == 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_GE(st.idle_reaped, 1u);
        EXPECT_EQ(st.live_connections, 0u);
        EXPECT_EQ(st.pruned, st.accepted);
        reaped.set();
        client_done.wait();
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key = proc.grid().wait_service("test/reap/key");
        ptm::VLink conn = ptm::VLink::connect(rt, "reap-ep");
        EXPECT_EQ(raw_echo_call(conn, 1, key, "ping"), "ping");
        reaped.wait(); // idle: no traffic, no close
        conn.close();
        client_done.set();
    });
    g.grid.join_all();
}

TEST_P(IdleReap, ActiveConnectionSurvivesSweep) {
    // A connection that keeps talking must never be reaped: activity
    // lazily pushes its wheel deadline forward.
    DuoGrid g;
    osal::Event served, done;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.mode = GetParam();
        opts.idle_timeout_ms = 150;
        orb.serve("live-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/live/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        EXPECT_EQ(orb.server_stats().idle_reaped, 0u);
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key = proc.grid().wait_service("test/live/key");
        ptm::VLink conn = ptm::VLink::connect(rt, "live-ep");
        // Keep the stream active well past several timeout periods, with a
        // wide margin (150ms timeout vs 30ms gaps) so scheduler stalls on
        // loaded CI machines cannot fake idleness.
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(raw_echo_call(conn, static_cast<std::uint64_t>(i + 1),
                                    key, "tick"),
                      "tick");
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        conn.close();
        done.set();
    });
    g.grid.join_all();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, IdleReap,
    ::testing::Values(svc::ServerCore::Mode::kThreadPerConnection,
                      svc::ServerCore::Mode::kEventDriven,
                      svc::ServerCore::Mode::kShardedReadiness),
    [](const ::testing::TestParamInfo<svc::ServerCore::Mode>& info) {
        switch (info.param) {
        case svc::ServerCore::Mode::kThreadPerConnection: return "Legacy";
        case svc::ServerCore::Mode::kEventDriven: return "Event";
        case svc::ServerCore::Mode::kShardedReadiness: return "Sharded";
        }
        return "Unknown";
    });

// ---------------------------------------------------------------------------
// Ingress counters in Runtime::stats()

namespace {

/// Fixed sharded workload; returns the server runtime's ingress map.
std::map<std::string, ptm::TrafficCounters::Ingress>
run_counter_workload() {
    DuoGrid g;
    osal::Event served, done;
    std::map<std::string, ptm::TrafficCounters::Ingress> out;
    g.grid.spawn(*g.server, [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.mode = svc::ServerCore::Mode::kShardedReadiness;
        opts.readiness_shards = 2;
        orb.serve("cnt-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("test/cnt/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        done.wait();
        // Wait for the close to be fully retired so counters are stable.
        for (int spin = 0; spin < 2000; ++spin) {
            const auto st = orb.server_stats();
            if (st.live_connections == 0 && st.pruned == st.accepted) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        out = rt.stats().ingress_by_protocol;
        orb.shutdown();
    });
    g.grid.spawn(*g.client, [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key = proc.grid().wait_service("test/cnt/key");
        ptm::VLink conn = ptm::VLink::connect(rt, "cnt-ep");
        for (int i = 0; i < 12; ++i)
            EXPECT_EQ(raw_echo_call(conn, static_cast<std::uint64_t>(i + 1),
                                    key, "x"),
                      "x");
        conn.close();
        done.set();
    });
    g.grid.join_all();
    return out;
}

} // namespace

TEST(IngressCounters, SurfacedPerProtocolInRuntimeStats) {
    const auto by_proto = run_counter_workload();
    ASSERT_EQ(by_proto.count("corba"), 1u);
    const auto& in = by_proto.at("corba");
    EXPECT_EQ(in.accepted, 1u);
    EXPECT_EQ(in.closed, 1u);
    EXPECT_EQ(in.idle_reaped, 0u);
    EXPECT_EQ(in.frames, 12u);
    EXPECT_GE(in.accept_batches, 1u);
    EXPECT_GE(in.accept_batch_max, 1u);
    EXPECT_EQ(in.live_connections, 0u);
}

TEST(IngressCounters, IdenticalWithCachesDisabled) {
    // The counters are observability, not a cache: the
    // PADICO_DISABLE_CACHES ablation toggle must not change a single one.
    const auto with_caches = run_counter_workload();
    util::set_caches_enabled(false);
    const auto without_caches = run_counter_workload();
    util::set_caches_enabled(true);

    ASSERT_EQ(with_caches.size(), without_caches.size());
    for (const auto& [proto, a] : with_caches) {
        ASSERT_EQ(without_caches.count(proto), 1u) << proto;
        const auto& b = without_caches.at(proto);
        // Compare the workload-deterministic counters. Batch sizes,
        // stale-event drops and queue high-waters are real-time
        // scheduling artifacts — they legitimately vary run to run (with
        // or without the toggle) and are excluded by design.
        EXPECT_EQ(a.accepted, b.accepted) << proto;
        EXPECT_EQ(a.closed, b.closed) << proto;
        EXPECT_EQ(a.idle_reaped, b.idle_reaped) << proto;
        EXPECT_EQ(a.frames, b.frames) << proto;
        EXPECT_EQ(a.live_connections, b.live_connections) << proto;
    }
}
