// Topology-aware hierarchical collectives: TopoMap derivation from
// fabric::Topology zones, multilevel algorithm correctness at non-power-of-
// two sizes and non-zero roots, WAN-crossing counter assertions (the
// MPICH-G2 "WAN messages dominate" design point), bit-identical flat-mode
// A/B, determinism of non-commutative reductions across modes, aliasing
// rules, and the per-zone-level traffic split in Runtime::stats().

#include <gtest/gtest.h>

#include <mutex>
#include <numeric>

#include "fabric/grid.hpp"
#include "fabric/topology.hpp"
#include "mpi/mpi.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

/// A zoned grid: Myrinet clusters of the given sizes joined by a WAN core.
/// Every member machine is attached to the core backbone as well, because
/// PadMPI's p2p needs a shared segment between any two ranks; intra-cluster
/// pairs still pick the fast LAN (segment selection is best-bandwidth
/// first), so only genuinely inter-cluster traffic rides the WAN.
struct ZonedCluster {
    Grid grid;
    std::unique_ptr<Topology> topo;
    std::vector<Machine*> nodes; // rank order: cluster 0 first, then 1, ...

    explicit ZonedCluster(const std::vector<std::size_t>& sizes) {
        topo = std::make_unique<Topology>(grid);
        auto& core = topo->add_wan("core");
        for (std::size_t c = 0; c < sizes.size(); ++c) {
            ClusterSpec spec;
            spec.size = sizes[c];
            spec.tech = NetTech::Myrinet2000;
            auto& cz = topo->add_cluster("c" + std::to_string(c), spec);
            core.link(cz);
            for (Machine* m : cz.members()) {
                if (m->adapter_on(core.backbone()) == nullptr)
                    grid.attach(*m, core.backbone());
                nodes.push_back(m);
            }
        }
    }

    void run(const std::function<void(mpi::Comm&, Process&)>& body) {
        std::vector<ProcessId> members(nodes.size());
        std::iota(members.begin(), members.end(), 0u);
        run_spmd(grid, nodes, [&, members](Process& proc, int, int) {
            ptm::Runtime rt(proc);
            mpi::install();
            auto mod = std::static_pointer_cast<mpi::MpiModule>(
                rt.modules().load("mpi"));
            auto world = mod->init("topo", members);
            body(world->world(), proc);
        });
        grid.join_all();
    }
};

/// Flat (topology-free) Myrinet cluster, as the legacy tests use.
struct FlatCluster {
    Grid grid;
    std::vector<Machine*> nodes;

    explicit FlatCluster(int n) {
        auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("node" + std::to_string(i));
            grid.attach(m, myri);
            nodes.push_back(&m);
        }
    }

    void run(const std::function<void(mpi::Comm&, Process&)>& body) {
        std::vector<ProcessId> members(nodes.size());
        std::iota(members.begin(), members.end(), 0u);
        run_spmd(grid, nodes, [&, members](Process& proc, int, int) {
            ptm::Runtime rt(proc);
            mpi::install();
            auto mod = std::static_pointer_cast<mpi::MpiModule>(
                rt.modules().load("mpi"));
            auto world = mod->init("flat", members);
            body(world->world(), proc);
        });
        grid.join_all();
    }
};

/// 2x2 integer matrix: an associative but NON-commutative exact operator
/// (matrix product) for pinning the reduction combine order.
struct Mat2 {
    std::int64_t a = 1, b = 0, c = 0, d = 1;
    friend Mat2 operator*(const Mat2& x, const Mat2& y) {
        return {x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
                x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
    }
    // Needed only so detail::combine<Mat2> instantiates; Prod is what the
    // tests use.
    friend Mat2 operator+(const Mat2& x, const Mat2& y) {
        return {x.a + y.a, x.b + y.b, x.c + y.c, x.d + y.d};
    }
    friend bool operator<(const Mat2& x, const Mat2& y) {
        return std::tie(x.a, x.b, x.c, x.d) < std::tie(y.a, y.b, y.c, y.d);
    }
    friend bool operator>(const Mat2& x, const Mat2& y) { return y < x; }
    friend bool operator==(const Mat2& x, const Mat2& y) {
        return std::tie(x.a, x.b, x.c, x.d) == std::tie(y.a, y.b, y.c, y.d);
    }
};

Mat2 rank_mat(int r) {
    return {r + 2, 2 * r + 1, r * r % 5 + 1, r + 3};
}

} // namespace

// ---------------------------------------------------------------------------
// TopoMap derivation

TEST(MpiTopo, TopoMapDerivation) {
    ZonedCluster z({3, 4, 5});
    z.run([](mpi::Comm& comm, Process&) {
        const mpi::TopoMap& m = comm.topo();
        ASSERT_EQ(m.size(), 12);
        EXPECT_TRUE(m.zoned());
        EXPECT_TRUE(m.hierarchical());
        EXPECT_TRUE(m.contiguous());
        ASSERT_EQ(m.clusters(), 3);
        for (int r = 0; r < 12; ++r)
            EXPECT_EQ(m.cluster_of(r), r < 3 ? 0 : (r < 7 ? 1 : 2));
        EXPECT_EQ(m.leaders(), (std::vector<int>{0, 3, 7}));
        EXPECT_EQ(m.cluster_ranks(1), (std::vector<int>{3, 4, 5, 6}));
        EXPECT_GT(m.distance(0, 1), 0);
        EXPECT_EQ(m.distance(1, 1), 0);
        EXPECT_EQ(m.distance(0, 2), m.distance(2, 0));
        // Link model: the LAN is faster and lower-latency than the WAN.
        EXPECT_GT(m.intra(0).mb, m.inter().mb);
        EXPECT_LT(m.intra(0).latency, m.inter().latency);
    });
}

// ---------------------------------------------------------------------------
// Correctness: non-power-of-two size, non-zero roots, leader and
// non-leader roots, hierarchical vs flat modes against the same oracle.

TEST(MpiTopo, CollectiveSweepMatchesOracle) {
    for (const mpi::CollMode mode :
         {mpi::CollMode::kAuto, mpi::CollMode::kFlat}) {
        ZonedCluster z({3, 4, 5});
        z.run([mode](mpi::Comm& comm, Process&) {
            comm.set_coll_mode(mode);
            const int n = comm.size();
            const int r = comm.rank();
            // roots: cluster-0 leader, cluster-1 leader, a non-leader.
            for (const int root : {0, 3, 5}) {
                // bcast
                std::vector<std::int64_t> buf(7, r == root ? 41 : -1);
                comm.bcast(std::span<std::int64_t>(buf), root);
                for (auto v : buf) EXPECT_EQ(v, 41);
                // reduce (Sum)
                std::vector<std::int64_t> in(5), out(5, -7);
                for (std::size_t i = 0; i < in.size(); ++i)
                    in[i] = r * 10 + static_cast<int>(i);
                comm.reduce(std::span<const std::int64_t>(in),
                            std::span<std::int64_t>(out), mpi::Op::Sum, root);
                if (r == root) {
                    for (std::size_t i = 0; i < out.size(); ++i)
                        EXPECT_EQ(out[i],
                                  n * (n - 1) / 2 * 10 +
                                      n * static_cast<std::int64_t>(i));
                }
                // gather / scatter
                std::vector<std::int32_t> gin{r, r + 100};
                std::vector<std::int32_t> gout(r == root ? 2 * n : 0);
                comm.gather(std::span<const std::int32_t>(gin),
                            std::span<std::int32_t>(gout), root);
                if (r == root) {
                    for (int i = 0; i < n; ++i) {
                        EXPECT_EQ(gout[2 * i], i);
                        EXPECT_EQ(gout[2 * i + 1], i + 100);
                    }
                }
                std::vector<std::int32_t> sin(r == root ? 2 * n : 0);
                for (int i = 0; r == root && i < n; ++i) {
                    sin[2 * i] = 7 * i;
                    sin[2 * i + 1] = 7 * i + 1;
                }
                std::vector<std::int32_t> sout(2, -1);
                comm.scatter(std::span<const std::int32_t>(sin),
                             std::span<std::int32_t>(sout), root);
                EXPECT_EQ(sout[0], 7 * r);
                EXPECT_EQ(sout[1], 7 * r + 1);
            }
            // allreduce (Max) and allgather
            std::int64_t mx = (r * 37) % 11;
            std::int64_t mxall = -1;
            comm.allreduce(std::span<const std::int64_t>(&mx, 1),
                           std::span<std::int64_t>(&mxall, 1), mpi::Op::Max);
            std::int64_t want = 0;
            for (int i = 0; i < n; ++i)
                want = std::max<std::int64_t>(want, (i * 37) % 11);
            EXPECT_EQ(mxall, want);
            std::int32_t me = 1000 + r;
            std::vector<std::int32_t> all(n);
            comm.allgather(std::span<const std::int32_t>(&me, 1),
                           std::span<std::int32_t>(all));
            for (int i = 0; i < n; ++i) EXPECT_EQ(all[i], 1000 + i);
            // alltoall (rides the hierarchical alltoallv)
            std::vector<std::int32_t> ain(n), aout(n);
            for (int i = 0; i < n; ++i) ain[i] = r * 100 + i;
            comm.alltoall(std::span<const std::int32_t>(ain),
                          std::span<std::int32_t>(aout));
            for (int i = 0; i < n; ++i) EXPECT_EQ(aout[i], i * 100 + r);
            comm.barrier();
        });
    }
}

// Long-message paths: scatter-allgather bcast inside clusters, the fused
// allreduce with pipelined down-phase, and the cluster-local ring allreduce
// on a zoned single-cluster communicator.
TEST(MpiTopo, LongMessageVariantsMatchOracle) {
    {
        ZonedCluster z({3, 3, 3});
        z.run([](mpi::Comm& comm, Process&) {
            const int n = comm.size();
            const int r = comm.rank();
            const std::size_t big = 96 * 1024 / sizeof(std::int64_t);
            std::vector<std::int64_t> buf(big, r == 4 ? 11 : 0);
            comm.bcast(std::span<std::int64_t>(buf), 4);
            EXPECT_EQ(buf.front(), 11);
            EXPECT_EQ(buf[big / 2], 11);
            EXPECT_EQ(buf.back(), 11);
            std::vector<std::int64_t> in(big), out(big);
            for (std::size_t i = 0; i < big; ++i)
                in[i] = r + static_cast<std::int64_t>(i % 13);
            comm.allreduce(std::span<const std::int64_t>(in),
                           std::span<std::int64_t>(out), mpi::Op::Sum);
            for (const std::size_t i : {std::size_t{0}, big / 3, big - 1})
                EXPECT_EQ(out[i],
                          n * (n - 1) / 2 +
                              n * static_cast<std::int64_t>(i % 13));
        });
    }
    {
        // One zoned cluster: clusters()==1 but zoned() -- the ring
        // allreduce and single-group SAG bcast territory.
        ZonedCluster z({6});
        z.run([](mpi::Comm& comm, Process&) {
            EXPECT_EQ(comm.topo().clusters(), 1);
            EXPECT_TRUE(comm.topo().zoned());
            const int n = comm.size();
            const int r = comm.rank();
            const std::size_t big = 64 * 1024 / sizeof(std::int64_t);
            std::vector<std::int64_t> in(big), out(big);
            for (std::size_t i = 0; i < big; ++i)
                in[i] = (r + 1) * static_cast<std::int64_t>(i % 7 + 1);
            comm.allreduce(std::span<const std::int64_t>(in),
                           std::span<std::int64_t>(out), mpi::Op::Sum);
            for (const std::size_t i : {std::size_t{0}, big / 2, big - 1})
                EXPECT_EQ(out[i], n * (n + 1) / 2 *
                                      static_cast<std::int64_t>(i % 7 + 1));
            std::vector<std::int64_t> buf(big, r == 2 ? 5 : 0);
            comm.bcast(std::span<std::int64_t>(buf), 2);
            EXPECT_EQ(buf.front(), 5);
            EXPECT_EQ(buf.back(), 5);
        });
    }
}

// Split with an interleaving key produces non-contiguous clusters: the
// reduction paths must fall back to flat (still correct), while the
// order-free collectives stay hierarchical.
TEST(MpiTopo, NonContiguousSplitFallsBackCorrectly) {
    ZonedCluster z({3, 3});
    z.run([](mpi::Comm& comm, Process&) {
        mpi::Comm sub = comm.split(0, comm.rank() % 2);
        const int n = sub.size();
        ASSERT_EQ(n, 6);
        EXPECT_TRUE(sub.topo().hierarchical());
        EXPECT_FALSE(sub.topo().contiguous());
        const int r = sub.rank();
        std::int64_t v = r + 1, sum = 0;
        sub.allreduce(std::span<const std::int64_t>(&v, 1),
                      std::span<std::int64_t>(&sum, 1), mpi::Op::Sum);
        EXPECT_EQ(sum, n * (n + 1) / 2);
        std::vector<std::int64_t> buf(3, r == 4 ? 9 : 0);
        sub.bcast(std::span<std::int64_t>(buf), 4);
        EXPECT_EQ(buf[1], 9);
        std::int32_t mine = 50 + r;
        std::vector<std::int32_t> all(static_cast<std::size_t>(n));
        sub.allgather(std::span<const std::int32_t>(&mine, 1),
                      std::span<std::int32_t>(all));
        for (int i = 0; i < n; ++i) EXPECT_EQ(all[i], 50 + i);
        comm.barrier();
    });
}

// ---------------------------------------------------------------------------
// WAN-crossing counters: the hierarchical algorithms must cross gateways
// O(clusters) times, strictly fewer than the flat trees.

namespace {

/// Measured WAN crossings of one collective, summed over all ranks: run
/// `op` between barriers, snapshot the per-process zone_level counters,
/// then combine the deltas in flat mode (so the measurement machinery does
/// not disturb the next measurement's mode).
std::uint64_t measure_wan(mpi::Comm& comm, mpi::CollMode mode,
                          const std::function<void(mpi::Comm&)>& op) {
    comm.set_coll_mode(mpi::CollMode::kFlat);
    comm.barrier();
    ptm::Runtime& rt = comm.runtime();
    const std::uint64_t before = rt.stats().zone_level.wan_messages;
    comm.set_coll_mode(mode);
    op(comm);
    const std::uint64_t local = rt.stats().zone_level.wan_messages - before;
    comm.set_coll_mode(mpi::CollMode::kFlat);
    std::uint64_t total = 0;
    comm.allreduce(std::span<const std::uint64_t>(&local, 1),
                   std::span<std::uint64_t>(&total, 1), mpi::Op::Sum);
    return total;
}

} // namespace

TEST(MpiTopo, WanCrossingCountsAreOClusters) {
    ZonedCluster z({3, 3, 3, 3}); // C = 4, n = 12
    z.run([](mpi::Comm& comm, Process&) {
        const std::uint64_t C = 4;
        struct Case {
            const char* name;
            std::function<void(mpi::Comm&)> op;
            std::uint64_t expect_hier;
        };
        std::vector<std::int64_t> b(4), in(4, 1), out(4);
        const Case cases[] = {
            {"bcast",
             [&](mpi::Comm& c) {
                 c.bcast(std::span<std::int64_t>(b), 5);
             },
             C - 1},
            {"allreduce",
             [&](mpi::Comm& c) {
                 c.allreduce(std::span<const std::int64_t>(in),
                             std::span<std::int64_t>(out), mpi::Op::Sum);
             },
             2 * (C - 1)},
            {"barrier", [](mpi::Comm& c) { c.barrier(); }, 2 * (C - 1)},
        };
        for (const auto& cs : cases) {
            const std::uint64_t hier =
                measure_wan(comm, mpi::CollMode::kAuto, cs.op);
            const std::uint64_t flat =
                measure_wan(comm, mpi::CollMode::kFlat, cs.op);
            EXPECT_EQ(hier, cs.expect_hier) << cs.name;
            EXPECT_LT(hier, flat) << cs.name;
        }
        // gather / scatter: C-1 crossings from a non-leader root's view.
        std::vector<std::int32_t> gin{comm.rank()};
        std::vector<std::int32_t> gout(comm.rank() == 4 ? comm.size() : 0);
        const std::uint64_t hg =
            measure_wan(comm, mpi::CollMode::kAuto, [&](mpi::Comm& c) {
                c.gather(std::span<const std::int32_t>(gin),
                         std::span<std::int32_t>(gout), 4);
            });
        EXPECT_EQ(hg, C - 1);
        const std::uint64_t fg =
            measure_wan(comm, mpi::CollMode::kFlat, [&](mpi::Comm& c) {
                c.gather(std::span<const std::int32_t>(gin),
                         std::span<std::int32_t>(gout), 4);
            });
        EXPECT_GT(fg, hg);
        // allgather: up bundles + full images down.
        std::int32_t mine = comm.rank();
        std::vector<std::int32_t> all(static_cast<std::size_t>(comm.size()));
        const std::uint64_t ha =
            measure_wan(comm, mpi::CollMode::kAuto, [&](mpi::Comm& c) {
                c.allgather(std::span<const std::int32_t>(&mine, 1),
                            std::span<std::int32_t>(all));
            });
        EXPECT_EQ(ha, 2 * (C - 1));
    });
}

// ---------------------------------------------------------------------------
// Determinism: a non-commutative (but associative) operator reduces to the
// exact same bits in hierarchical and flat modes -- the combine order is
// pinned to ascending rank order in both.

TEST(MpiTopo, NonCommutativeReduceIsModeInvariant) {
    ZonedCluster z({3, 4, 5});
    z.run([](mpi::Comm& comm, Process&) {
        const int n = comm.size();
        const Mat2 mine = rank_mat(comm.rank());
        Mat2 oracle = rank_mat(0);
        for (int i = 1; i < n; ++i) oracle = oracle * rank_mat(i);

        // reduce to rank 0 (leader of cluster 0 -> hierarchical path).
        Mat2 hier_out{0, 0, 0, 0}, flat_out{0, 0, 0, 0};
        comm.set_coll_mode(mpi::CollMode::kAuto);
        comm.reduce(std::span<const Mat2>(&mine, 1),
                    std::span<Mat2>(&hier_out, 1), mpi::Op::Prod, 0);
        comm.set_coll_mode(mpi::CollMode::kFlat);
        comm.reduce(std::span<const Mat2>(&mine, 1),
                    std::span<Mat2>(&flat_out, 1), mpi::Op::Prod, 0);
        if (comm.rank() == 0) {
            EXPECT_EQ(hier_out, oracle);
            EXPECT_EQ(flat_out, oracle);
            EXPECT_EQ(hier_out, flat_out);
        }

        // Fused hierarchical allreduce pins the same order.
        Mat2 hier_all{}, flat_all{};
        comm.set_coll_mode(mpi::CollMode::kAuto);
        comm.allreduce(std::span<const Mat2>(&mine, 1),
                       std::span<Mat2>(&hier_all, 1), mpi::Op::Prod);
        comm.set_coll_mode(mpi::CollMode::kFlat);
        comm.allreduce(std::span<const Mat2>(&mine, 1),
                       std::span<Mat2>(&flat_all, 1), mpi::Op::Prod);
        EXPECT_EQ(hier_all, oracle);
        EXPECT_EQ(flat_all, oracle);

        // A non-leader root reduction falls back to flat internally. The
        // flat tree at root r combines in rotated-ascending order
        // (r, r+1, ... wrapping), so auto mode must be bit-identical to
        // forced-flat AND to that rotated left-fold.
        Mat2 rot_oracle = rank_mat(4);
        for (int i = 1; i < n; ++i) rot_oracle = rot_oracle * rank_mat((4 + i) % n);
        Mat2 at4_auto{}, at4_flat{};
        comm.set_coll_mode(mpi::CollMode::kAuto);
        comm.reduce(std::span<const Mat2>(&mine, 1),
                    std::span<Mat2>(&at4_auto, 1), mpi::Op::Prod, 4);
        comm.set_coll_mode(mpi::CollMode::kFlat);
        comm.reduce(std::span<const Mat2>(&mine, 1),
                    std::span<Mat2>(&at4_flat, 1), mpi::Op::Prod, 4);
        if (comm.rank() == 4) {
            EXPECT_EQ(at4_auto, rot_oracle);
            EXPECT_EQ(at4_flat, rot_oracle);
        }
    });
}

// ---------------------------------------------------------------------------
// Aliasing rules: exact in==out aliasing is in-place and legal; partial
// overlap throws UsageError on every rank before any traffic moves.

TEST(MpiTopo, CollectiveAliasingRules) {
    ZonedCluster z({2, 2});
    z.run([](mpi::Comm& comm, Process&) {
        std::vector<std::int64_t> buf(8, comm.rank() + 1);
        // Exact alias: in-place allreduce.
        comm.allreduce(std::span<const std::int64_t>(buf),
                       std::span<std::int64_t>(buf), mpi::Op::Sum);
        EXPECT_EQ(buf[0], 1 + 2 + 3 + 4);
        // Partial overlap: rejected symmetrically on every rank.
        EXPECT_THROW(
            comm.allreduce(std::span<const std::int64_t>(buf.data(), 4),
                           std::span<std::int64_t>(buf.data() + 1, 4),
                           mpi::Op::Sum),
            UsageError);
        EXPECT_THROW(
            comm.reduce(std::span<const std::int64_t>(buf.data(), 4),
                        std::span<std::int64_t>(buf.data() + 2, 4),
                        mpi::Op::Sum, comm.rank()),
            UsageError);
        comm.barrier();
    });
    // gather/scatter overlap checks fire at the root; exercise them on a
    // single-rank communicator so no peer is left mid-collective.
    ZonedCluster solo({1});
    solo.run([](mpi::Comm& comm, Process&) {
        std::vector<std::int32_t> v(4, 3);
        EXPECT_THROW(
            comm.gather(std::span<const std::int32_t>(v.data(), 2),
                        std::span<std::int32_t>(v.data() + 1, 2), 0),
            UsageError);
        EXPECT_THROW(
            comm.scatter(std::span<const std::int32_t>(v.data(), 2),
                         std::span<std::int32_t>(v.data() + 1, 2), 0),
            UsageError);
    });
}

// ---------------------------------------------------------------------------
// Runtime::stats() zone-level split.

TEST(MpiTopo, ZoneLevelTrafficSplit) {
    ZonedCluster z({2, 2});
    z.run([](mpi::Comm& comm, Process&) {
        ptm::Runtime& rt = comm.runtime();
        if (comm.rank() == 0) {
            const auto s0 = rt.stats().zone_level;
            comm.send_value<std::int32_t>(1, 1, 7); // same cluster: LAN
            const auto s1 = rt.stats().zone_level;
            EXPECT_GT(s1.local_messages, s0.local_messages);
            EXPECT_EQ(s1.wan_messages, s0.wan_messages);
            comm.send_value<std::int32_t>(2, 2, 7); // cross cluster: WAN
            const auto s2 = rt.stats().zone_level;
            EXPECT_GT(s2.wan_messages, s1.wan_messages);
            EXPECT_GT(s2.wan_bytes, s1.wan_bytes);
            EXPECT_EQ(s2.local_messages, s1.local_messages);
        } else if (comm.rank() == 1) {
            EXPECT_EQ(comm.recv_value<std::int32_t>(0, 7), 1);
        } else if (comm.rank() == 2) {
            EXPECT_EQ(comm.recv_value<std::int32_t>(0, 7), 2);
        }
        comm.barrier();
    });
}

// ---------------------------------------------------------------------------
// Flat-topology A/B: on a grid without a Topology, kAuto must take exactly
// the legacy flat paths -- bit-identical virtual time signatures.

namespace {

void signature_workload(mpi::Comm& comm) {
    const int n = comm.size();
    const int r = comm.rank();
    std::vector<std::int64_t> buf(9, r == 2 ? 4 : 0);
    comm.bcast(std::span<std::int64_t>(buf), 2);
    std::vector<std::int64_t> in(6, r + 1), out(6);
    comm.reduce(std::span<const std::int64_t>(in),
                std::span<std::int64_t>(out), mpi::Op::Sum, 1);
    comm.allreduce(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), mpi::Op::Min);
    std::int32_t me = r;
    std::vector<std::int32_t> all(static_cast<std::size_t>(n));
    comm.allgather(std::span<const std::int32_t>(&me, 1),
                   std::span<std::int32_t>(all));
    comm.barrier();
}

std::vector<std::uint64_t> run_flat_signatures(mpi::CollMode mode) {
    FlatCluster f(5); // non-power-of-two
    std::vector<std::uint64_t> sigs(5, 0);
    std::mutex mu;
    f.run([&](mpi::Comm& comm, Process&) {
        EXPECT_FALSE(comm.topo().zoned());
        EXPECT_EQ(comm.topo().clusters(), 1);
        comm.set_coll_mode(mode);
        signature_workload(comm);
        const std::uint64_t sig =
            comm.runtime().virtual_time_signature();
        std::lock_guard<std::mutex> lk(mu);
        sigs[static_cast<std::size_t>(comm.rank())] = sig;
    });
    return sigs;
}

} // namespace

TEST(MpiTopo, FlatGridAutoModeIsBitIdenticalToFlatMode) {
    const auto auto_sigs = run_flat_signatures(mpi::CollMode::kAuto);
    const auto flat_sigs = run_flat_signatures(mpi::CollMode::kFlat);
    EXPECT_EQ(auto_sigs, flat_sigs);
    for (const auto s : auto_sigs) EXPECT_NE(s, 0u);
}

