// expect: none
// path: src/fabric/clean.cpp
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "util/simtime.hpp"

struct Clean {
    padico::osal::CheckedMutex mu{padico::lockrank::kTestDeclared, "clean"};
    padico::osal::CheckedCondVar cv;
    bool flag = false;
    void wait_ready() {
        padico::osal::CheckedUniqueLock lk(mu);
        cv.wait(lk, [&] { return flag; }); // predicate form: fine
    }
    void poll() {
        waitset.wait(); // zero-argument multiplex wait: fine
    }
    struct {
        void wait() {}
    } waitset;
};
