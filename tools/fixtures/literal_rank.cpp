// expect: literal-rank
// path: src/svc/magic.cpp
#include "osal/checked.hpp"

struct Magic {
    padico::osal::CheckedMutex mu{42, "magic"};
    void g() { mu.set_rank(7); }
};
