// expect: raw-mutex
// path: src/svc/raw.cpp
#include <mutex>

struct Raw {
    std::mutex mu;
    void f() { std::lock_guard<std::mutex> lk(mu); }
};
