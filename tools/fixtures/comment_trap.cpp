// expect: none
// path: src/fabric/trap.cpp
// A std::mutex mentioned in a comment, like std::scoped_lock's unspecified
// order, must not trip the token rules; neither must cv.wait(lk) here.
#include "osal/checked.hpp"

/* block comment: std::lock_guard<std::mutex> lk(mu); cv.wait(lk); */
const char* kDoc =
    "string literal: std::mutex cv.wait(lk) lockrank::kNotDeclared";
