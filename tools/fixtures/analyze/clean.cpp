// Fully compliant fixture: ranks increase, slab handles are checked, the
// stamp precedes the route lock, no blocking under a lock. Must be silent.
// expect-analyze: none
// path: src/svc/clean.cpp

struct Item {
    int x;
};

class Clean {
public:
    void ordered();
    void slab_use(int h);
    void read();

private:
    osal::CheckedMutex lo_{lockrank::kLow, "fixture.lo"};
    osal::CheckedMutex route_mu_{lockrank::kMid, "fixture.routes"};
    osal::Slab<Item> slab_;
};

void Clean::ordered() {
    osal::CheckedLock a(lo_);
    osal::CheckedLock b(route_mu_);
}

void Clean::slab_use(int h) {
    Item* it = slab_.get(h);
    if (!it) return;
    it->x = 7;
}

void Clean::read() {
    out.generation = gen_.load();
    osal::CheckedLock lk(route_mu_);
    copy_routes();
}
