// A lockrank:: identifier that the registry does not declare: the rank
// header is the single source of truth.
// expect-analyze: unknown-lockrank@8
// path: src/svc/unknown.cpp

class U {
private:
    osal::CheckedMutex mu_{lockrank::kNotARealRank, "fixture.unknown"};
};
