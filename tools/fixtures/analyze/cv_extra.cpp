// The sanctioned condvar idiom (wait with ONLY the waited lock held) must
// stay silent; waiting while a second lock is held is the finding.
// expect-analyze: cv-wait-extra-lock@25
// path: src/svc/cv_extra.cpp

class Cv {
public:
    void good();
    void bad();

private:
    osal::CheckedMutex other_{lockrank::kLow, "fixture.other"};
    osal::CheckedMutex mu_{lockrank::kMid, "fixture.cv_mu"};
    osal::CheckedCondVar cv_;
};

void Cv::good() {
    osal::CheckedUniqueLock lk(mu_);
    cv_.wait(lk); // sanctioned: lk is the only lock held
}

void Cv::bad() {
    osal::CheckedLock lo(other_);
    osal::CheckedUniqueLock lk(mu_);
    cv_.wait(lk); // other_ still held across the wait
}
