// Seeded ABBA for the static lock-order pass: f_ab takes a then b (the
// sanctioned order, ranks increase), f_ba takes b then a — the b->a edge
// is a rank inversion at the acquire site AND closes the a<->b cycle
// (the cycle is reported at its first edge's witness line).
// expect-analyze: lock-order-inversion@25, lock-order-cycle@20
// path: src/svc/abba.cpp

class Abba {
public:
    void f_ab();
    void f_ba();

private:
    osal::CheckedMutex mu_a{lockrank::kLow, "fixture.a"};
    osal::CheckedMutex mu_b{lockrank::kMid, "fixture.b"};
};

void Abba::f_ab() {
    osal::CheckedLock la(mu_a);
    osal::CheckedLock lb(mu_b);
}

void Abba::f_ba() {
    osal::CheckedLock lb(mu_b);
    osal::CheckedLock la(mu_a); // inversion: rank 100 after rank 200
}
