// Fixture rank registry — stands in for src/osal/lockrank.hpp in the
// padico_analyze self-test. Small, human-checkable values.
#pragma once

namespace padico::lockrank {

constexpr int kLow = 100;
constexpr int kMid = 200;
constexpr int kHigh = 300;

// Band helper: shard locks occupy [kBand, kBand+2047] as an interval.
constexpr int kBand = 400;
constexpr int shard_rank(int i) { return kBand + i; }

} // namespace padico::lockrank
