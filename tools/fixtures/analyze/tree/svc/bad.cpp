// Gate-demo source: one pre-existing violation that baseline.json accepts
// (the raw mutex) and one injected NEW violation (the unchecked slab
// deref). Analyze.GateDemo runs the analyzer over this tree with the
// tree's baseline and asserts a non-zero exit — the same failure CI
// produces when a change introduces a finding the baseline doesn't cover.

struct Item {
    int x;
};

class Bad {
public:
    void hot(int h);

private:
    std::mutex legacy_; // pre-existing, suppressed by tree baseline
    osal::Slab<Item> slab_;
};

void Bad::hot(int h) {
    slab_.get(h)->x = 1; // injected NEW violation: not in the baseline
}
