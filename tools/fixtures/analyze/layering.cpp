// Layering back-edge: osal/ (layer 1) must not include svc/ (layer 5).
// The util/ include goes down the stack and is fine.
// expect-analyze: include-layering@6
// path: src/osal/bad_layer.cpp

#include "svc/server_core.hpp"
#include "util/log.hpp"

void osal_helper() {}
