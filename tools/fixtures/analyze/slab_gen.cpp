// Generation-tag discipline: Slab::get() returns nullptr for a stale
// (recycled) handle, so the result must be null-checked before the first
// dereference. Two violations (deref-before-check, direct chained deref)
// and one compliant use. The deref-before-check case is reported at the
// dereference line (the crash site), the chained case at the call.
// expect-analyze: slab-gen-unchecked@25, slab-gen-unchecked@28
// path: src/svc/slab_gen.cpp

struct Item {
    int x;
};

class Pool {
public:
    void bad(int h);
    void bad_direct(int h);
    void good(int h);

private:
    osal::Slab<Item> slab_;
};

void Pool::bad(int h) {
    Item* it = slab_.get(h);
    it->x = 1; // deref before any null check
}

void Pool::bad_direct(int h) { slab_.get(h)->x = 2; }

void Pool::good(int h) {
    Item* it = slab_.get(h);
    if (it == nullptr) return;
    it->x = 3;
}
