// Same raw mutex, but opted out via the shared pragma — no finding.
// expect-analyze: none
// path: src/svc/raw_allowed.cpp

// padico-lint: allow(raw-mutex)

class R {
private:
    std::mutex m_;
};
