// Seeded blocking-under-lock: a direct blocking pop() inside a held lock
// region, and the same thing one call level down (helper() blocks, caller
// holds the lock) to exercise the one-level callee expansion.
// expect-analyze: blocking-under-lock@19, blocking-under-lock@29
// path: src/svc/blocking.cpp

class Blk {
public:
    void direct();
    void via_helper();
    void helper();

private:
    osal::CheckedMutex mu_{lockrank::kLow, "fixture.blk"};
};

void Blk::direct() {
    osal::CheckedLock lk(mu_);
    q_.pop(); // blocks while mu_ is held
}

void Blk::helper() {
    // No lock held here: blocking on its own is fine.
    q_.pop();
}

void Blk::via_helper() {
    osal::CheckedLock lk(mu_);
    helper(); // one-level expansion: callee blocks while mu_ is held
}
