// Stamp-before-copy for route-table reads: the generation stamp must be
// written BEFORE taking the route lock and copying, so a racing update
// leaves a stale (conservative) stamp, never a fresh stamp on stale routes.
// expect-analyze: stamp-order@24
// path: src/fabric/stamp.cpp

class Table {
public:
    void good_read();
    void bad_read();

private:
    osal::CheckedMutex route_mu_{lockrank::kMid, "fixture.routes"};
};

void Table::good_read() {
    out.generation = gen_.load();
    osal::CheckedLock lk(route_mu_);
    copy_routes();
}

void Table::bad_read() {
    osal::CheckedLock lk(route_mu_);
    out.generation = gen_.load(); // stamped after the lock: wrong order
    copy_routes();
}
