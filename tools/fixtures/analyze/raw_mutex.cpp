// Raw std::mutex above util/: forbidden — everything higher in the stack
// must use osal::CheckedMutex so ranks and the runtime checker apply.
// expect-analyze: raw-mutex@8
// path: src/svc/raw.cpp

class R {
private:
    std::mutex m_;
};
