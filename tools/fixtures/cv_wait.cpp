// expect: cv-wait
// path: src/corba/waity.cpp
#include <condition_variable>

struct Waity {
    padico::osal::CheckedMutex mu{padico::lockrank::kTestDeclared, "w"};
    padico::osal::CheckedCondVar cv;
    void f() {
        padico::osal::CheckedUniqueLock lk(mu);
        cv.wait(lk); // no predicate: lost wakeups / spurious wakeups
    }
};
