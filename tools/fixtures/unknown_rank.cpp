// expect: unknown-lockrank
// path: src/padicotm/mystery.cpp
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

struct Mystery {
    padico::osal::CheckedMutex mu{padico::lockrank::kNotDeclaredAnywhere,
                                  "mystery"};
};
