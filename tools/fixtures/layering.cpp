// expect: include-layering
// path: src/fabric/upward.cpp
#include "ccm/component.hpp"
#include "util/simtime.hpp"
