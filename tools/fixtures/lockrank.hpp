// Rank registry the self-test fixtures resolve lockrank:: against (the
// real tree uses src/osal/lockrank.hpp).
constexpr int kTestDeclared = 100;
constexpr int shard_rank(int order, bool rx) { return order * 2 + rx; }
