// expect: none
// path: src/util/allowed.cpp
// padico-lint: allow(raw-mutex) — below osal in the layering
#include <mutex>

struct Allowed {
    std::mutex mu;
    void f() { std::lock_guard<std::mutex> lk(mu); }
};
