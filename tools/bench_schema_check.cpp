// bench_schema_check: validates the shape of the BENCH_*.json files the
// benchmarks emit (the checked-in copies at the repo root and the smoke
// copies the ctest legs produce). The benchmarks' JSON is consumed by the
// EXPERIMENTS.md tables and by future regression tooling, so its shape is
// part of the contract: this tool fails CI when a bench edit drops or
// renames a field. Dispatches on the top-level "bench" key: "ingress"
// (bench_ingress), "topology" (bench_fabric_scale zone legs),
// "fabric_scale" (bench_fabric_scale pair sweep + soak) or "collectives"
// (bench_collectives flat-vs-hierarchical sweep).
//
// Deliberately not a JSON library: a small scanner that checks
//  * braces/brackets balance and the file is one object,
//  * every required key exists,
//  * numeric keys are followed by a number, boolean keys by true/false,
//  * the "legs" array holds one entry per server mode (legacy, event,
//    sharded), each with connections + percentile fields.
//
// Usage: bench_schema_check <path-to-json>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void fail(const std::string& what) {
    std::fprintf(stderr, "schema: %s\n", what.c_str());
    ++g_failures;
}

/// Position just past `"key":` or npos.
std::size_t find_key(const std::string& s, const std::string& key,
                     std::size_t from = 0) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = s.find(needle, from);
    return at == std::string::npos ? std::string::npos : at + needle.size();
}

std::string value_token(const std::string& s, std::size_t at) {
    while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at])))
        ++at;
    std::size_t end = at;
    if (at < s.size() && s[at] == '"') {
        end = s.find('"', at + 1);
        return end == std::string::npos ? ""
                                        : s.substr(at, end - at + 1);
    }
    while (end < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[end])) ||
            s[end] == '.' || s[end] == '-' || s[end] == '+'))
        ++end;
    return s.substr(at, end - at);
}

bool is_number(const std::string& tok) {
    if (tok.empty()) return false;
    char* end = nullptr;
    std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
}

void require_number(const std::string& s, const std::string& key,
                    std::size_t from = 0) {
    const std::size_t at = find_key(s, key, from);
    if (at == std::string::npos) {
        fail("missing numeric key \"" + key + "\"");
        return;
    }
    const std::string tok = value_token(s, at);
    if (!is_number(tok))
        fail("key \"" + key + "\" has non-numeric value '" + tok + "'");
}

void require_bool(const std::string& s, const std::string& key) {
    const std::size_t at = find_key(s, key);
    if (at == std::string::npos) {
        fail("missing boolean key \"" + key + "\"");
        return;
    }
    const std::string tok = value_token(s, at);
    if (tok != "true" && tok != "false")
        fail("key \"" + key + "\" has non-boolean value '" + tok + "'");
}

std::string string_value(const std::string& s, const std::string& key) {
    const std::size_t at = find_key(s, key);
    if (at == std::string::npos) {
        fail("missing key \"" + key + "\"");
        return "";
    }
    return value_token(s, at);
}

void check_balance(const std::string& s) {
    int brace = 0, bracket = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_str) {
            if (c == '\\') ++i;
            else if (c == '"') in_str = false;
            continue;
        }
        if (c == '"') in_str = true;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        if (brace < 0 || bracket < 0) {
            fail("unbalanced close at offset " + std::to_string(i));
            return;
        }
    }
    if (brace != 0) fail("unbalanced braces");
    if (bracket != 0) fail("unbalanced brackets");
    if (in_str) fail("unterminated string");
}

/// BENCH_topology.json from the bench_fabric_scale zone legs: identity of
/// zoned-vs-flat virtual times, the generated-topology scaling sweep with
/// its sub-linearity verdict, and the live zoned-grid leg.
void check_topology(const std::string& s) {
    require_bool(s, "quick");
    require_number(s, "cpus");
    require_bool(s, "zoned_pairs_identical");
    require_bool(s, "zoned_soak_identical");

    const std::size_t scaling = find_key(s, "scaling");
    if (scaling == std::string::npos) {
        fail("missing \"scaling\" array");
    } else {
        // At least two rows, each with the full field set; rows must stop
        // before the "growth" block that follows the array.
        const std::size_t growth = s.find("\"growth\"", scaling);
        std::size_t rows = 0;
        for (std::size_t at = find_key(s, "procs", scaling);
             at != std::string::npos && at < growth;
             at = find_key(s, "procs", at)) {
            ++rows;
            for (const char* k :
                 {"zones", "machines", "segments", "route_entries_max",
                  "route_entries_mean", "flat_equiv_entries",
                  "per_process_route_bytes_max", "build_ms"})
                require_number(s, k, at);
        }
        if (rows < 2)
            fail("\"scaling\" array has " + std::to_string(rows) +
                 " row(s), want at least 2");
    }

    const std::size_t growth = find_key(s, "growth");
    if (growth == std::string::npos) {
        fail("missing \"growth\" block");
    } else {
        require_number(s, "n_ratio", growth);
        require_number(s, "entries_ratio", growth);
        const std::size_t at = find_key(s, "sub_linear", growth);
        const std::string tok =
            at == std::string::npos ? "" : value_token(s, at);
        if (tok != "true" && tok != "false")
            fail("key \"sub_linear\" has non-boolean value '" + tok + "'");
    }

    const std::size_t live = find_key(s, "live");
    if (live == std::string::npos) {
        fail("missing \"live\" block");
    } else {
        for (const char* k :
             {"procs", "zones", "relays", "entries_max", "entries_mean",
              "messages", "routed_messages", "route_tables_retired",
              "wall_ms"})
            require_number(s, k, live);
    }

    require_bool(s, "ok");
}

/// BENCH_fabric.json from bench_fabric_scale: the pair-count sweep with
/// sharded-vs-legacy wall clocks, the serial-engine identity leg and the
/// windowed soak with its span-pruning counters.
void check_fabric(const std::string& s) {
    require_bool(s, "quick");
    require_number(s, "cpus");

    const std::size_t pairs = find_key(s, "pairs");
    if (pairs == std::string::npos) {
        fail("missing \"pairs\" array");
    } else {
        const std::size_t stop = s.find("\"speedup_at_max_pairs\"", pairs);
        std::size_t rows = 0;
        for (std::size_t at = find_key(s, "msgs_per_pair", pairs);
             at != std::string::npos && at < stop;
             at = find_key(s, "msgs_per_pair", at)) {
            ++rows;
            for (const char* k :
                 {"wall_ms_sharded", "wall_ms_legacy", "kpkts_s_sharded",
                  "kpkts_s_legacy", "speedup"})
                require_number(s, k, at);
        }
        if (rows < 2)
            fail("\"pairs\" array has " + std::to_string(rows) +
                 " row(s), want at least 2");
    }
    require_number(s, "speedup_at_max_pairs");

    const std::size_t serial = find_key(s, "serial");
    if (serial == std::string::npos) {
        fail("missing \"serial\" block");
    } else {
        require_number(s, "events", serial);
    }

    const std::size_t soak = find_key(s, "soak");
    if (soak == std::string::npos) {
        fail("missing \"soak\" block");
    } else {
        require_number(s, "msgs", soak);
        require_number(s, "window", soak);
        for (const char* k :
             {"wall_ms", "tx_span_high_water", "tx_pruned_spans"})
            require_number(s, k, soak);
    }

    require_bool(s, "ok");
}

/// BENCH_collectives.json from bench_collectives: per-(clusters, op, size)
/// legs with flat/hier virtual times and WAN-crossing counts, plus the
/// headline speedup, the closed-form WAN verdict and the flat-grid
/// virtual-time identity.
void check_collectives(const std::string& s) {
    require_bool(s, "quick");
    require_number(s, "cpus");
    require_number(s, "per_cluster");
    require_number(s, "iters");

    const std::size_t legs = find_key(s, "legs");
    if (legs == std::string::npos) {
        fail("missing \"legs\" array");
    } else {
        const std::size_t stop = s.find("\"cmax\"", legs);
        std::size_t rows = 0;
        for (std::size_t at = find_key(s, "clusters", legs);
             at != std::string::npos && at < stop;
             at = find_key(s, "clusters", at)) {
            ++rows;
            for (const char* k :
                 {"ranks", "bytes", "flat_us", "hier_us", "speedup",
                  "flat_wan_msgs", "hier_wan_msgs", "hier_wan_expected",
                  "hier_wan_bytes", "flat_wan_bytes"})
                require_number(s, k, at);
        }
        if (rows < 4)
            fail("\"legs\" array has " + std::to_string(rows) +
                 " row(s), want at least 4");
        for (const char* op : {"bcast", "allreduce", "barrier"})
            if (s.find("\"op\": \"" + std::string(op) + "\"", legs) ==
                std::string::npos)
                fail("no leg for op '" + std::string(op) + "'");
    }

    require_number(s, "cmax");
    require_number(s, "speedup_min_cmax_small");
    require_bool(s, "hier_wan_ok");
    require_bool(s, "flat_identity");
    require_bool(s, "ok");
}

} // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: bench_schema_check <json>\n");
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();

    check_balance(s);
    const std::string bench = string_value(s, "bench");
    if (bench == "\"topology\"") {
        check_topology(s);
        if (g_failures != 0) {
            std::fprintf(stderr, "%d schema failure(s) in %s\n", g_failures,
                         argv[1]);
            return 1;
        }
        std::printf("%s: schema OK\n", argv[1]);
        return 0;
    }
    if (bench == "\"fabric_scale\"") {
        check_fabric(s);
        if (g_failures != 0) {
            std::fprintf(stderr, "%d schema failure(s) in %s\n", g_failures,
                         argv[1]);
            return 1;
        }
        std::printf("%s: schema OK\n", argv[1]);
        return 0;
    }
    if (bench == "\"collectives\"") {
        check_collectives(s);
        if (g_failures != 0) {
            std::fprintf(stderr, "%d schema failure(s) in %s\n", g_failures,
                         argv[1]);
            return 1;
        }
        std::printf("%s: schema OK\n", argv[1]);
        return 0;
    }
    if (bench != "\"ingress\"")
        fail("key \"bench\" is " + bench +
             ", want \"ingress\", \"topology\", \"fabric_scale\" or "
             "\"collectives\"");
    require_bool(s, "quick");
    require_number(s, "hardware_concurrency");
    require_number(s, "thread_budget");

    // serial identity block
    const std::size_t serial = find_key(s, "serial");
    if (serial == std::string::npos) {
        fail("missing \"serial\" block");
    } else {
        require_number(s, "virtual_end_legacy", serial);
        require_number(s, "virtual_end_event", serial);
        require_number(s, "virtual_end_sharded", serial);
    }

    // one leg per server mode, each with population + percentiles
    const std::size_t legs = find_key(s, "legs");
    if (legs == std::string::npos) {
        fail("missing \"legs\" array");
    } else {
        for (const char* mode : {"legacy", "event", "sharded"}) {
            std::size_t at = s.find("\"mode\": \"" + std::string(mode) + "\"",
                                    legs);
            if (at == std::string::npos) {
                fail("missing leg for mode '" + std::string(mode) + "'");
                continue;
            }
            require_number(s, "connections", at);
            require_number(s, "peak_threads", at);
            require_number(s, "rss_kb_per_conn", at);
            require_number(s, "p50_us", at);
            require_number(s, "p99_us", at);
            require_number(s, "p999_us", at);
        }
        // The sharded leg reports the per-protocol ingress counters.
        const std::size_t ingress = find_key(s, "ingress", legs);
        if (ingress == std::string::npos) {
            fail("missing \"ingress\" counters in sharded leg");
        } else {
            for (const char* k :
                 {"accepted", "closed", "idle_reaped", "accept_batches",
                  "accept_batch_max", "ready_queue_high_water"})
                require_number(s, k, ingress);
        }
    }

    require_number(s, "sustained_connections");
    require_bool(s, "sustained_ok");
    require_bool(s, "thread_bound_ok");
    require_bool(s, "memory_sublinear_ok");
    require_bool(s, "virtual_time_identical");

    if (g_failures != 0) {
        std::fprintf(stderr, "%d schema failure(s) in %s\n", g_failures,
                     argv[1]);
        return 1;
    }
    std::printf("%s: schema OK\n", argv[1]);
    return 0;
}
