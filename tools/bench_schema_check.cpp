// bench_schema_check: validates the shape of a BENCH_ingress.json emitted
// by bench_ingress (the checked-in copy at the repo root and the smoke
// copy the ctest leg produces). The benchmark's JSON is consumed by the
// EXPERIMENTS.md tables and by future regression tooling, so its shape is
// part of the contract: this tool fails CI when a bench edit drops or
// renames a field.
//
// Deliberately not a JSON library: a small scanner that checks
//  * braces/brackets balance and the file is one object,
//  * every required key exists,
//  * numeric keys are followed by a number, boolean keys by true/false,
//  * the "legs" array holds one entry per server mode (legacy, event,
//    sharded), each with connections + percentile fields.
//
// Usage: bench_schema_check <path-to-json>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void fail(const std::string& what) {
    std::fprintf(stderr, "schema: %s\n", what.c_str());
    ++g_failures;
}

/// Position just past `"key":` or npos.
std::size_t find_key(const std::string& s, const std::string& key,
                     std::size_t from = 0) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = s.find(needle, from);
    return at == std::string::npos ? std::string::npos : at + needle.size();
}

std::string value_token(const std::string& s, std::size_t at) {
    while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at])))
        ++at;
    std::size_t end = at;
    if (at < s.size() && s[at] == '"') {
        end = s.find('"', at + 1);
        return end == std::string::npos ? ""
                                        : s.substr(at, end - at + 1);
    }
    while (end < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[end])) ||
            s[end] == '.' || s[end] == '-' || s[end] == '+'))
        ++end;
    return s.substr(at, end - at);
}

bool is_number(const std::string& tok) {
    if (tok.empty()) return false;
    char* end = nullptr;
    std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
}

void require_number(const std::string& s, const std::string& key,
                    std::size_t from = 0) {
    const std::size_t at = find_key(s, key, from);
    if (at == std::string::npos) {
        fail("missing numeric key \"" + key + "\"");
        return;
    }
    const std::string tok = value_token(s, at);
    if (!is_number(tok))
        fail("key \"" + key + "\" has non-numeric value '" + tok + "'");
}

void require_bool(const std::string& s, const std::string& key) {
    const std::size_t at = find_key(s, key);
    if (at == std::string::npos) {
        fail("missing boolean key \"" + key + "\"");
        return;
    }
    const std::string tok = value_token(s, at);
    if (tok != "true" && tok != "false")
        fail("key \"" + key + "\" has non-boolean value '" + tok + "'");
}

void require_string(const std::string& s, const std::string& key,
                    const std::string& want) {
    const std::size_t at = find_key(s, key);
    if (at == std::string::npos) {
        fail("missing key \"" + key + "\"");
        return;
    }
    const std::string tok = value_token(s, at);
    if (tok != "\"" + want + "\"")
        fail("key \"" + key + "\" is " + tok + ", want \"" + want + "\"");
}

void check_balance(const std::string& s) {
    int brace = 0, bracket = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_str) {
            if (c == '\\') ++i;
            else if (c == '"') in_str = false;
            continue;
        }
        if (c == '"') in_str = true;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        if (brace < 0 || bracket < 0) {
            fail("unbalanced close at offset " + std::to_string(i));
            return;
        }
    }
    if (brace != 0) fail("unbalanced braces");
    if (bracket != 0) fail("unbalanced brackets");
    if (in_str) fail("unterminated string");
}

} // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: bench_schema_check <json>\n");
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();

    check_balance(s);
    require_string(s, "bench", "ingress");
    require_bool(s, "quick");
    require_number(s, "hardware_concurrency");
    require_number(s, "thread_budget");

    // serial identity block
    const std::size_t serial = find_key(s, "serial");
    if (serial == std::string::npos) {
        fail("missing \"serial\" block");
    } else {
        require_number(s, "virtual_end_legacy", serial);
        require_number(s, "virtual_end_event", serial);
        require_number(s, "virtual_end_sharded", serial);
    }

    // one leg per server mode, each with population + percentiles
    const std::size_t legs = find_key(s, "legs");
    if (legs == std::string::npos) {
        fail("missing \"legs\" array");
    } else {
        for (const char* mode : {"legacy", "event", "sharded"}) {
            std::size_t at = s.find("\"mode\": \"" + std::string(mode) + "\"",
                                    legs);
            if (at == std::string::npos) {
                fail("missing leg for mode '" + std::string(mode) + "'");
                continue;
            }
            require_number(s, "connections", at);
            require_number(s, "peak_threads", at);
            require_number(s, "rss_kb_per_conn", at);
            require_number(s, "p50_us", at);
            require_number(s, "p99_us", at);
            require_number(s, "p999_us", at);
        }
        // The sharded leg reports the per-protocol ingress counters.
        const std::size_t ingress = find_key(s, "ingress", legs);
        if (ingress == std::string::npos) {
            fail("missing \"ingress\" counters in sharded leg");
        } else {
            for (const char* k :
                 {"accepted", "closed", "idle_reaped", "accept_batches",
                  "accept_batch_max", "ready_queue_high_water"})
                require_number(s, k, ingress);
        }
    }

    require_number(s, "sustained_connections");
    require_bool(s, "sustained_ok");
    require_bool(s, "thread_bound_ok");
    require_bool(s, "memory_sublinear_ok");
    require_bool(s, "virtual_time_identical");

    if (g_failures != 0) {
        std::fprintf(stderr, "%d schema failure(s) in %s\n", g_failures,
                     argv[1]);
        return 1;
    }
    std::printf("%s: schema OK\n", argv[1]);
    return 0;
}
