// sched_trace: pretty-printer for padico::sched schedule traces
// (DESIGN.md §14). The explorer dumps a failing schedule as a compact
// trace file; this tool renders it human-readably — one swim-lane column
// per thread so the interleaving is visible at a glance — and prints the
// replay command for the matching explore_* binary.
//
// Usage: sched_trace [--summary] <trace-file>
//
// Works on any build: the trace format lives outside the
// PADICO_SCHED_ENABLED gate, so the tool can inspect traces produced by an
// instrumented binary even when built without the harness.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "osal/sched.hpp"

namespace {

namespace sched = padico::osal::sched;

void print_summary(const sched::Trace& t) {
    std::map<std::uint32_t, std::size_t> per_thread;
    std::map<std::string, std::size_t> per_kind;
    std::map<std::uint32_t, std::string> obj_label;
    for (const auto& s : t.steps) {
        ++per_thread[s.tid];
        ++per_kind[sched::op_name(s.kind)];
        if (!s.label.empty() && obj_label[s.obj].empty())
            obj_label[s.obj] = s.label;
    }
    std::printf("config:  %s\n", t.config.empty() ? "-" : t.config.c_str());
    std::printf("status:  %s\n", t.status.empty() ? "-" : t.status.c_str());
    std::printf("threads: %u\n", t.threads);
    std::printf("steps:   %zu\n", t.steps.size());
    std::printf("objects: %zu\n", obj_label.size());
    for (const auto& [tid, n] : per_thread)
        std::printf("  t%-3u %6zu step(s)\n", tid, n);
    for (const auto& [kind, n] : per_kind)
        std::printf("  %-14s %6zu\n", kind.c_str(), n);
}

void print_lanes(const sched::Trace& t) {
    // One column per thread; each row is one scheduling decision, placed
    // in the lane of the thread that was granted.
    const unsigned lanes = t.threads ? t.threads : 1;
    const int width = 22;
    std::printf("%5s ", "step");
    for (unsigned i = 0; i < lanes; ++i)
        std::printf(" %-*s", width, ("t" + std::to_string(i)).c_str());
    std::printf("\n");
    std::size_t n = 0;
    for (const auto& s : t.steps) {
        std::printf("%5zu ", n++);
        std::string cell = std::string(sched::op_name(s.kind)) + " #" +
                           std::to_string(s.obj);
        if (!s.label.empty()) cell += " (" + s.label + ")";
        if (cell.size() > static_cast<std::size_t>(width))
            cell.resize(static_cast<std::size_t>(width));
        for (unsigned i = 0; i < lanes; ++i) {
            if (i == s.tid)
                std::printf(" %-*s", width, cell.c_str());
            else
                std::printf(" %-*s", width, ".");
        }
        std::printf("\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    bool summary_only = false;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--summary") == 0)
            summary_only = true;
        else
            path = argv[i];
    }
    if (!path) {
        std::fprintf(stderr, "usage: sched_trace [--summary] <trace-file>\n");
        return 2;
    }
    auto t = sched::load_trace(path);
    if (!t.has_value()) {
        std::fprintf(stderr, "%s: not a padico-sched-trace v1 file\n", path);
        return 1;
    }
    print_summary(*t);
    if (!summary_only) {
        std::printf("\n");
        print_lanes(*t);
    }
    std::printf("\nreplay: PADICO_SCHED_REPLAY=%s ./tests/explore_<config> "
                "--gtest_filter='*'\n",
                path);
    return 0;
}
