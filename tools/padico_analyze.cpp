/// \file padico_analyze.cpp
/// Whole-program static analyzer for the Padico source tree (DESIGN.md §16).
///
/// Where padico_lint is a token scanner, this tool runs a real lexer and a
/// brace/scope-tracking parser over every TU and header under src/, builds a
/// cross-TU model (mutex declarations with their lockrank.hpp ranks, lexical
/// lock regions, function summaries, #include edges), and runs four passes:
///
///   pass 1  lock-order     every lexical acquisition is recorded with the
///                          set of locks already held in scope (plus direct
///                          callees expanded one level deep); edges are
///                          unioned across TUs; rank inversions and ABBA
///                          cycles are reported even on paths the runtime
///                          checker (osal/checked.hpp) has never executed.
///   pass 2  blocking       calls to known-blocking osal primitives
///                          (BlockingQueue::pop, Waiter::wait_changed,
///                          WaitSet::wait, sleep_for, Grid::wait_process,
///                          VLink::read_msg, join, ...) inside a held-lock
///                          region. The sanctioned condvar idiom —
///                          cv.wait(lk, pred) where lk is the only held
///                          lock — is allowlisted.
///   pass 3  layering       #include edges must go strictly DOWN the layer
///                          stack (util -> osal -> fabric/sockets ->
///                          svc/padicotm -> middleware).
///   pass 4  api-discipline slab handles must null-check Slab::get() before
///                          deref (generation tag), route-table snapshots
///                          must stamp the generation BEFORE copying under
///                          route_mu (stale-stamp-on-race), raw std::mutex
///                          family forbidden above util/ (subsumes the old
///                          padico_lint rules), lockrank:: ids must exist.
///
/// Findings diff against tools/analyze_baseline.json: a finding whose key is
/// baselined (with a justification) is suppressed; anything NEW fails the
/// run with a file:line witness. Keys deliberately omit line numbers so
/// unrelated edits don't invalidate the baseline.
///
/// Usage:
///   padico_analyze <src_dir> [--baseline FILE] [--json FILE]
///   padico_analyze --self-test <fixtures_dir>
///   padico_analyze --check-baseline FILE
///
/// Exit: 0 clean (or all findings baselined), 1 new findings / self-test
/// failure / unjustified baseline entry, 2 usage or I/O error.
///
/// File opt-out pragma (shared with padico_lint):
///   // padico-lint: allow(rule-name)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Small shared bits

struct Finding {
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    std::string key; // stable, line-free identity used by the baseline
};

/// Rank interval. Exact ranks are {v,v}; band helpers (zone_rank,
/// shard_rank, server_shard_rank) are {base, base+width}; unknown is lo<0.
/// The interval widens conservatively: a violation is only reported when it
/// holds for EVERY value in both intervals, so over-wide bands can hide a
/// finding but never invent one.
struct RankVal {
    long lo = -1, hi = -1;
    bool known() const { return lo >= 0; }
};

struct Tok {
    enum K { kId, kNum, kPn };
    K k;
    std::string s;
    int line;
};

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Replace comments and string/char literals with spaces, preserving line
/// structure (same contract as padico_lint's helper).
std::string strip_comments_and_strings(const std::string& in) {
    std::string out = in;
    enum { kCode, kLine, kBlock, kStr, kChar } st = kCode;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
        case kCode:
            if (c == '/' && n == '/') st = kLine;
            else if (c == '/' && n == '*') st = kBlock;
            else if (c == '"') st = kStr;
            else if (c == '\'') st = kChar;
            if (st != kCode) out[i] = ' ';
            break;
        case kLine:
            if (c == '\n') st = kCode;
            else out[i] = ' ';
            break;
        case kBlock:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                st = kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case kStr:
        case kChar: {
            const char close = st == kStr ? '"' : '\'';
            if (c == '\\') {
                out[i] = ' ';
                if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
            } else if (c == close) {
                st = kCode;
                out[i] = ' ';
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
        }
    }
    return out;
}

/// Blank preprocessor lines (including backslash continuations) so the
/// lexer only ever sees real code; include targets are harvested from the
/// raw text separately.
void blank_preprocessor(std::string& code) {
    std::size_t pos = 0;
    while (pos < code.size()) {
        std::size_t eol = code.find('\n', pos);
        if (eol == std::string::npos) eol = code.size();
        std::size_t f = pos;
        while (f < eol && std::isspace(static_cast<unsigned char>(code[f]))) ++f;
        if (f < eol && code[f] == '#') {
            bool cont = true;
            while (cont && pos < code.size()) {
                if (eol == std::string::npos) eol = code.size();
                cont = eol > pos && code[eol - 1] == '\\';
                for (std::size_t i = pos; i < eol; ++i) code[i] = ' ';
                pos = eol < code.size() ? eol + 1 : eol;
                eol = code.find('\n', pos);
                if (eol == std::string::npos) eol = code.size();
            }
        } else {
            pos = eol < code.size() ? eol + 1 : eol;
        }
    }
}

std::vector<Tok> lex(const std::string& code) {
    static const std::set<std::string> two = {
        "::", "->", "<<", ">>", "==", "!=", "<=", ">=", "&&",
        "||", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "##"};
    std::vector<Tok> out;
    out.reserve(code.size() / 6);
    int line = 1;
    for (std::size_t i = 0; i < code.size();) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < code.size() && is_ident_char(code[j])) ++j;
            out.push_back({Tok::kId, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < code.size() &&
                   (is_ident_char(code[j]) || code[j] == '.' ||
                    ((code[j] == '+' || code[j] == '-') && j > i &&
                     (code[j - 1] == 'e' || code[j - 1] == 'E'))))
                ++j;
            out.push_back({Tok::kNum, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (i + 1 < code.size() && two.count(code.substr(i, 2)) != 0) {
            out.push_back({Tok::kPn, code.substr(i, 2), line});
            i += 2;
            continue;
        }
        out.push_back({Tok::kPn, std::string(1, c), line});
        ++i;
    }
    return out;
}

/// Layer levels; an include must go strictly DOWN (lower level) or stay in
/// the including file's own directory. Mirrors the lockrank.hpp bands.
/// (Single source for this map now lives here; padico_lint's copy retired.)
const std::map<std::string, int>& layer_levels() {
    static const std::map<std::string, int> levels = {
        {"util", 0},    {"osal", 1},     {"fabric", 2}, {"madeleine", 3},
        {"sockets", 3}, {"padicotm", 4}, {"mpi", 5},    {"svc", 5},
        {"corba", 6},   {"soap", 7},     {"hla", 7},    {"ccm", 7},
        {"gridccm", 8},
    };
    return levels;
}

std::string module_dir(const std::string& path) {
    std::string p = path;
    if (p.rfind("src/", 0) == 0) p = p.substr(4);
    const auto slash = p.find('/');
    return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

std::string path_stem(const std::string& path) {
    const auto dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
}

/// Rules the file's pragmas switch off: "// padico-lint: allow(a,b)".
std::set<std::string> allowed_rules(const std::string& raw) {
    std::set<std::string> out;
    const std::string tag = "padico-lint: allow(";
    std::size_t at = 0;
    while ((at = raw.find(tag, at)) != std::string::npos) {
        at += tag.size();
        const std::size_t end = raw.find(')', at);
        if (end == std::string::npos) break;
        std::istringstream is(raw.substr(at, end - at));
        std::string rule;
        while (std::getline(is, rule, ','))
            if (!rule.empty()) out.insert(rule);
        at = end;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Per-file parsed data

struct FileData {
    std::string path; // repo-virtual path, e.g. "src/fabric/grid.cpp"
    std::string dir;  // module dir ("fabric")
    std::string stem; // path without extension — pairs .hpp/.cpp
    std::vector<Tok> toks;
    std::vector<std::pair<int, std::string>> includes; // line, target
    std::set<std::string> allows;
};

struct MutexDecl {
    std::string cls;  // innermost class at declaration ("" = file scope)
    std::string name; // member/variable identifier
    std::string stem; // stem of the declaring file
    RankVal rank;
    std::string sym;       // "lockrank::kX" or band helper name, for messages
    bool decl_ranked = false; // ranked by its declaration initializer
};

struct MutexNode {
    std::string key; // "Class::member", "::global", "Cls::fn()" or "file:id"
    RankVal rank;
    std::string sym;
};

struct Acq {
    int node;
    int line;
};
struct BlockingCall {
    std::string name;
    int line;
};
struct CallSite {
    std::string name;
    std::string cls; // caller's class context (for qualified resolution)
    int line;
    std::vector<int> held; // node ids held at the call
    int held_line = 0;
};

struct FnSummary {
    std::string qual;   // "ServerCore::adopt" or "<file>::fn"
    std::string simple; // "adopt"
    std::string cls;    // class context ("" if free function)
    int file = -1;      // index into files_
    std::vector<Acq> acqs;
    std::vector<BlockingCall> blocking;
    std::vector<CallSite> calls;
};

struct EdgeWitness {
    std::string file;
    int line = 0;       // acquisition site of the destination lock
    std::string note;   // "held since line N" / "via call ..."
};

// ---------------------------------------------------------------------------
// Analyzer: global cross-TU state + the four passes

class Analyzer {
  public:
    /// Load rank constants and band helpers from a lockrank.hpp.
    bool load_ranks(const fs::path& lockrank_hpp);

    /// Lex + harvest one file (phase handled internally on run()).
    void add_file(const std::string& vpath, const std::string& raw);

    /// Run both walker phases and all four passes over the added files.
    void run();

    std::vector<Finding>& findings() { return findings_; }
    std::size_t file_count() const { return files_.size(); }

  private:
    friend struct Walker;

    // --- rank registry -----------------------------------------------------
    std::map<std::string, long> rank_consts_;
    std::map<std::string, RankVal> rank_bands_;

    // --- cross-TU DB -------------------------------------------------------
    std::vector<FileData> files_;
    std::vector<MutexDecl> decls_;
    std::map<std::string, std::vector<int>> decls_by_name_;
    // alias fns returning CheckedMutex& : "Cls::name" -> member idents in
    // the return expression (e.g. ServerCore::state_mu -> {mu_, mu}).
    std::map<std::string, std::vector<std::string>> aliases_;
    std::set<std::string> alias_names_; // simple names, for quick lookup
    struct SetRankSite {
        std::string target, cls, stem;
        RankVal rank;
        std::string sym;
    };
    std::vector<SetRankSite> set_rank_sites_;
    std::set<std::string> slab_vars_;

    std::vector<MutexNode> nodes_;
    std::map<std::string, int> node_ids_;
    std::map<std::pair<int, int>, EdgeWitness> edges_;

    std::vector<FnSummary> fns_;
    std::map<std::string, std::vector<int>> fns_by_simple_;
    std::map<std::string, int> fns_by_qual_;

    std::vector<Finding> findings_;

    // --- helpers -----------------------------------------------------------
    int node_for(const std::string& key, RankVal rank, const std::string& sym) {
        auto it = node_ids_.find(key);
        if (it != node_ids_.end()) {
            if (!nodes_[it->second].rank.known() && rank.known()) {
                nodes_[it->second].rank = rank;
                nodes_[it->second].sym = sym;
            }
            return it->second;
        }
        const int id = static_cast<int>(nodes_.size());
        nodes_.push_back({key, rank, sym});
        node_ids_[key] = id;
        return id;
    }
    int node_for_decl(int decl_idx) {
        MutexDecl& d = decls_[decl_idx];
        const std::string key =
            d.cls.empty() ? "::" + d.name : d.cls + "::" + d.name;
        return node_for(key, d.rank, d.sym);
    }

    RankVal rank_of_expr(const std::vector<Tok>& toks, std::size_t begin,
                         std::size_t end, std::string* sym) const;
    int resolve_mutex(const std::string& trailing, bool is_call,
                      const std::string& cls, const FileData& fd);
    int resolve_callee(const CallSite& c) const;

    void apply_set_rank_sites();
    void build_alias_nodes();
    void pass_expand_calls();
    void pass_cycles();
    void pass_layering();

    void emit(const FileData& fd, const std::string& rule, int line,
              const std::string& msg, const std::string& keydetail) {
        if (fd.allows.count(rule) != 0) return;
        findings_.push_back(
            {rule, fd.path, line, msg, rule + "|" + fd.path + "|" + keydetail});
    }
    std::string describe(int node) const {
        const MutexNode& n = nodes_[node];
        if (!n.rank.known()) return n.key + " (rank ?)";
        if (n.rank.lo == n.rank.hi)
            return n.key + " (rank " + std::to_string(n.rank.lo) + ")";
        return n.key + " (rank " + std::to_string(n.rank.lo) + ".." +
               std::to_string(n.rank.hi) + ")";
    }
};

// Evaluate a rank initializer expression: `lockrank::kX`, a band call
// `lockrank::zone_rank(depth)`, plain integers, `A << B`. Anything else is
// unknown (e.g. a constructor parameter forwarding the rank).
RankVal Analyzer::rank_of_expr(const std::vector<Tok>& toks, std::size_t begin,
                               std::size_t end, std::string* sym) const {
    for (std::size_t i = begin; i < end; ++i) {
        if (toks[i].k != Tok::kId) continue;
        auto c = rank_consts_.find(toks[i].s);
        if (c != rank_consts_.end()) {
            if (sym) *sym = "lockrank::" + c->first;
            return {c->second, c->second};
        }
        auto b = rank_bands_.find(toks[i].s);
        if (b != rank_bands_.end()) {
            if (sym) *sym = "lockrank::" + b->first + "(...)";
            return b->second;
        }
    }
    if (begin < end && toks[begin].k == Tok::kNum) {
        const long v = std::strtol(toks[begin].s.c_str(), nullptr, 0);
        if (begin + 2 < end && toks[begin + 1].s == "<<" &&
            toks[begin + 2].k == Tok::kNum) {
            const long s = std::strtol(toks[begin + 2].s.c_str(), nullptr, 0);
            if (sym) *sym = "<literal>";
            return {v << s, v << s};
        }
        if (sym) *sym = "<literal>";
        return {v, v};
    }
    return {};
}

bool Analyzer::load_ranks(const fs::path& lockrank_hpp) {
    const std::string raw = read_file(lockrank_hpp);
    if (raw.empty()) return false;
    std::string code = strip_comments_and_strings(raw);
    blank_preprocessor(code);
    const std::vector<Tok> t = lex(code);
    // First sweep: constants `constexpr int kX = <expr>;`
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].s != "constexpr" || t[i + 1].s != "int" ||
            t[i + 2].k != Tok::kId)
            continue;
        if (t[i + 3].s != "=") continue;
        std::size_t e = i + 4;
        while (e < t.size() && t[e].s != ";") ++e;
        const RankVal v = rank_of_expr(t, i + 4, e, nullptr);
        if (v.known()) rank_consts_[t[i + 2].s] = v.lo;
        else rank_consts_[t[i + 2].s] = -1; // declared, value unevaluated
    }
    // Second sweep: band helpers `constexpr int name(...) { return kBase +
    // ...; }` — interval [base, base+2047]; wide-on-purpose (see RankVal).
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].s != "constexpr" || t[i + 1].s != "int" ||
            t[i + 2].k != Tok::kId || t[i + 3].s != "(")
            continue;
        std::size_t e = i + 4;
        int depth = 1;
        while (e < t.size() && depth > 0) {
            if (t[e].s == "(") ++depth;
            else if (t[e].s == ")") --depth;
            ++e;
        }
        // Body: first known-constant reference is the band base.
        std::size_t body_end = e;
        if (e < t.size() && t[e].s == "{") {
            int bd = 1;
            body_end = e + 1;
            while (body_end < t.size() && bd > 0) {
                if (t[body_end].s == "{") ++bd;
                else if (t[body_end].s == "}") --bd;
                ++body_end;
            }
        }
        long base = -1;
        for (std::size_t j = e; j < body_end; ++j) {
            if (t[j].k != Tok::kId) continue;
            auto c = rank_consts_.find(t[j].s);
            if (c != rank_consts_.end() && c->second >= 0) {
                base = c->second;
                break;
            }
        }
        if (base >= 0) rank_bands_[t[i + 2].s] = {base, base + 2047};
        else rank_bands_[t[i + 2].s] = {};
    }
    return !rank_consts_.empty();
}

void Analyzer::add_file(const std::string& vpath, const std::string& raw) {
    FileData fd;
    fd.path = vpath;
    fd.dir = module_dir(vpath);
    fd.stem = path_stem(vpath);
    fd.allows = allowed_rules(raw);
    // Includes come from the raw text: the stripper blanks string literals.
    {
        std::istringstream is(raw);
        std::string line;
        int ln = 0;
        while (std::getline(is, line)) {
            ++ln;
            std::size_t at = line.find("#include");
            if (at == std::string::npos) continue;
            const std::size_t q1 = line.find('"', at);
            if (q1 == std::string::npos) continue;
            const std::size_t q2 = line.find('"', q1 + 1);
            if (q2 == std::string::npos) continue;
            fd.includes.emplace_back(ln, line.substr(q1 + 1, q2 - q1 - 1));
        }
    }
    std::string code = strip_comments_and_strings(raw);
    blank_preprocessor(code);
    fd.toks = lex(code);
    files_.push_back(std::move(fd));
}

/// Mutex-expression resolution, best first:
///   1. alias fn of the current class (state_mu(h) style), when a call
///   2. declared member of the current class
///   3. globally unique declaration with that identifier
///   4. unique declaration within the same file stem (.hpp/.cpp pair)
///   5. per-file unknown node "<file>:<ident>" (no rank, no cross-file merge)
int Analyzer::resolve_mutex(const std::string& trailing, bool is_call,
                            const std::string& cls, const FileData& fd) {
    if (is_call) {
        auto a = aliases_.find(cls + "::" + trailing);
        if (a == aliases_.end()) {
            // unique alias across classes
            int hits = 0;
            for (auto& [k, v] : aliases_)
                if (k.size() > trailing.size() + 2 &&
                    k.compare(k.size() - trailing.size(), trailing.size(),
                              trailing) == 0 &&
                    k[k.size() - trailing.size() - 1] == ':') {
                    a = aliases_.find(k);
                    ++hits;
                }
            if (hits != 1) a = aliases_.end();
        }
        if (a != aliases_.end()) return node_ids_.at(a->first + "()");
    }
    auto by = decls_by_name_.find(trailing);
    if (by != decls_by_name_.end()) {
        for (int di : by->second)
            if (!cls.empty() && decls_[di].cls == cls) return node_for_decl(di);
        if (by->second.size() == 1) return node_for_decl(by->second[0]);
        int hit = -1, hits = 0;
        for (int di : by->second)
            if (decls_[di].stem == fd.stem) {
                hit = di;
                ++hits;
            }
        if (hits == 1) return node_for_decl(hit);
    }
    return node_for(fd.path + ":" + trailing, {}, "");
}

void Analyzer::apply_set_rank_sites() {
    for (const SetRankSite& s : set_rank_sites_) {
        auto by = decls_by_name_.find(s.target);
        if (by == decls_by_name_.end()) continue;
        // Preference: same class, then same stem; never overwrite a rank
        // that came from a declaration initializer.
        std::vector<int> order;
        for (int di : by->second)
            if (!s.cls.empty() && decls_[di].cls == s.cls) order.push_back(di);
        for (int di : by->second)
            if (decls_[di].stem == s.stem) order.push_back(di);
        if (by->second.size() == 1) order.push_back(by->second[0]);
        for (int di : order) {
            if (decls_[di].decl_ranked) continue;
            decls_[di].rank = s.rank;
            decls_[di].sym = s.sym;
            break;
        }
    }
}

void Analyzer::build_alias_nodes() {
    for (auto& [qual, members] : aliases_) {
        const std::string cls = qual.substr(0, qual.find("::"));
        RankVal u;
        std::string sym;
        for (const std::string& m : members) {
            auto by = decls_by_name_.find(m);
            if (by == decls_by_name_.end()) continue;
            for (int di : by->second) {
                // Members reachable from the alias body: same class first,
                // otherwise any same-stem declaration (nested helper structs
                // like ServerCore::Shard live in the same header).
                const MutexDecl& d = decls_[di];
                if (d.cls != cls && d.stem.empty()) continue;
                if (!d.rank.known()) continue;
                if (!u.known()) u = d.rank;
                else {
                    u.lo = std::min(u.lo, d.rank.lo);
                    u.hi = std::max(u.hi, d.rank.hi);
                }
                if (sym.empty()) sym = d.sym;
                else if (sym != d.sym) sym += "|" + d.sym;
            }
        }
        node_for(qual + "()", u, sym);
    }
}

// ---------------------------------------------------------------------------
// Walker: one pass over one file's token stream with scope tracking.
//
// Phase 1 harvests declarations (CheckedMutex members + their rank
// initializers, raw std::mutex members, Slab<T> variables, set_rank() sites,
// CheckedMutex&-returning alias functions). Phase 2 tracks lexical lock
// regions (guard objects scoped to their block, manual lock()/unlock()),
// records acquisitions/edges/blocking calls/call sites into function
// summaries, and emits the single-function findings.

const std::set<std::string>& blocking_names() {
    static const std::set<std::string> s = {
        "pop",       "pop_matching",  "wait_changed", "sleep_for",
        "wait_process", "wait_service", "wait_port_for", "read_msg",
        "accept",    "join",          "join_all"};
    return s;
}

const std::set<std::string>& keywords() {
    static const std::set<std::string> s = {
        "if",     "for",   "while",  "switch",  "return", "sizeof",
        "catch",  "new",   "delete", "throw",   "static_cast",
        "dynamic_cast", "reinterpret_cast", "const_cast", "alignof",
        "decltype", "assert", "defined"};
    return s;
}

struct Walker {
    Analyzer& an;
    FileData& fd;
    int file_idx;
    int phase;

    struct HeldLock {
        int node;
        int line;
        std::string src; // guard name or "~m:<ident>" for manual locks
    };
    struct GuardInfo {
        std::vector<int> nodes;
        bool held = false;
    };
    struct SlabTrack {
        std::string lhs;
        std::size_t from;
    };
    struct FnState {
        int fn = -1; // index into an.fns_ (phase 2), -1 in phase 1
        std::string qual, cls;
        std::vector<HeldLock> held;
        std::map<std::string, GuardInfo> guards;
        std::vector<SlabTrack> slabs;
        int route_lock_line = 0;
        int gen_assign_line = 0;
    };
    struct Scope {
        char kind; // 'n'amespace 'c'lass 'f'unction 'b'lock 'o'ther
        std::string name;
        int base_paren = 0;
        bool pushed_fn = false;
        std::vector<std::string> guard_names;
        std::vector<Tok> saved_buf;
    };

    std::vector<Scope> scopes;
    std::vector<FnState> fnstack;
    std::vector<Tok> buf;
    int paren = 0;

    Walker(Analyzer& a, FileData& f, int fidx, int ph)
        : an(a), fd(f), file_idx(fidx), phase(ph) {}

    int eff_depth() const {
        return paren - (scopes.empty() ? 0 : scopes.back().base_paren);
    }
    std::string cur_class() const {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (it->kind == 'c') return it->name;
        if (!fnstack.empty()) return fnstack.back().cls;
        return "";
    }
    bool in_checked_layer() const { return fd.dir == "osal" || fd.dir == "util"; }

    // --- token helpers -----------------------------------------------------
    const std::vector<Tok>& T() const { return fd.toks; }
    std::size_t match_forward(std::size_t open) const { // open at "(" or "{"
        const std::string o = T()[open].s, c = o == "(" ? ")" : "}";
        int d = 0;
        for (std::size_t i = open; i < T().size(); ++i) {
            if (T()[i].s == o) ++d;
            else if (T()[i].s == c && --d == 0) return i;
        }
        return T().size() - 1;
    }
    std::size_t skip_angles(std::size_t i) const { // i at "<"
        int d = 0;
        for (; i < T().size(); ++i) {
            if (T()[i].s == "<") ++d;
            else if (T()[i].s == ">") { if (--d == 0) return i + 1; }
            else if (T()[i].s == ">>") { d -= 2; if (d <= 0) return i + 1; }
            else if (T()[i].s == ";" || T()[i].s == "{") return i; // bail
        }
        return i;
    }
    /// Split "( a, b )" (open at the paren) into top-level argument ranges.
    std::vector<std::pair<std::size_t, std::size_t>> args_of(
        std::size_t open, std::size_t close) const {
        std::vector<std::pair<std::size_t, std::size_t>> out;
        int d = 0;
        std::size_t s = open + 1;
        for (std::size_t i = open; i <= close; ++i) {
            const std::string& x = T()[i].s;
            if (x == "(" || x == "{" || x == "[") ++d;
            else if (x == ")" || x == "}" || x == "]") --d;
            if ((d == 1 && x == ",") || i == close) {
                if (i > s) out.emplace_back(s, i); // [s, i)
                s = i + 1;
            }
        }
        return out;
    }
    /// Trailing identifier of a mutex expression plus whether it is a call
    /// (`state_mu(h)` -> {"state_mu", true}; `seg.time_mu_` -> {...,false}).
    std::pair<std::string, bool> trailing_of(std::size_t s,
                                             std::size_t e) const {
        if (e <= s) return {"", false};
        std::size_t last = e - 1;
        if (T()[last].s == ")") {
            int d = 0;
            std::size_t i = last + 1;
            while (i-- > s) {
                if (T()[i].s == ")") ++d;
                else if (T()[i].s == "(" && --d == 0) {
                    if (i > s && T()[i - 1].k == Tok::kId)
                        return {T()[i - 1].s, true};
                    return {"", false};
                }
            }
            return {"", false};
        }
        for (std::size_t i = e; i-- > s;)
            if (T()[i].k == Tok::kId) return {T()[i].s, false};
        return {"", false};
    }

    // --- lock-region bookkeeping -------------------------------------------
    void record_acq(FnState& fs, int node, int line) {
        if (fs.fn >= 0) an.fns_[fs.fn].acqs.push_back({node, line});
        if (an.nodes_[node].key.find("route_mu") != std::string::npos &&
            fs.route_lock_line == 0)
            fs.route_lock_line = line;
    }
    void acquire_group(FnState& fs, const std::vector<int>& nodes, int line,
                       const std::string& src) {
        const std::size_t snap = fs.held.size();
        for (int node : nodes) {
            for (std::size_t h = 0; h < snap; ++h) {
                const HeldLock& held = fs.held[h];
                if (held.node == node) continue;
                auto ekey = std::make_pair(held.node, node);
                if (an.edges_.find(ekey) == an.edges_.end())
                    an.edges_[ekey] = {fd.path, line,
                                       "held " + an.nodes_[held.node].key +
                                           " since line " +
                                           std::to_string(held.line)};
                const RankVal& a = an.nodes_[held.node].rank;
                const RankVal& b = an.nodes_[node].rank;
                if (a.known() && b.known() && b.hi <= a.lo)
                    an.emit(fd, "lock-order-inversion", line,
                            "acquiring " + an.describe(node) +
                                " while holding " + an.describe(held.node) +
                                " — lock ranks must strictly increase "
                                "(osal/lockrank.hpp)",
                            an.nodes_[node].key + "<" +
                                an.nodes_[held.node].key + "@" + fs.qual);
            }
            record_acq(fs, node, line);
        }
        for (int node : nodes) fs.held.push_back({node, line, src});
    }
    void release_src(FnState& fs, const std::string& src) {
        fs.held.erase(std::remove_if(fs.held.begin(), fs.held.end(),
                                     [&](const HeldLock& h) {
                                         return h.src == src;
                                     }),
                      fs.held.end());
    }

    // --- brace classification ----------------------------------------------
    bool lambda_brace(std::size_t i) const {
        if (i == 0) return false;
        std::size_t j = i - 1;
        while (j > 0 && (T()[j].s == "mutable" || T()[j].s == "noexcept" ||
                         T()[j].s == "const"))
            --j;
        if (T()[j].s == ")") {
            int d = 0;
            std::size_t k = j + 1;
            while (k-- > 0) {
                if (T()[k].s == ")") ++d;
                else if (T()[k].s == "(" && --d == 0) break;
            }
            if (k == 0) return false;
            j = k - 1;
        }
        if (T()[j].s != "]") return false;
        int d = 0;
        while (j + 1 > 0) {
            if (T()[j].s == "]") ++d;
            else if (T()[j].s == "[" && --d == 0) return true;
            if (j == 0) break;
            --j;
        }
        return false;
    }

    /// Extract the qualified function name from the statement buffer (the
    /// tokens of the declarator before its body brace).
    std::pair<std::string, std::string> fn_name_from_buf() const {
        // first top-level "(" in buf
        int d = 0;
        std::size_t open = buf.size();
        for (std::size_t i = 0; i < buf.size(); ++i) {
            const std::string& x = buf[i].s;
            if (x == "(" && d == 0) { open = i; break; }
            if (x == "(" || x == "[" || x == "{" || x == "<") ++d;
            else if (x == ")" || x == "]" || x == "}" || x == ">") --d;
        }
        if (open == buf.size() || open == 0) return {"", ""};
        // walk back over Id ("::" Id | "~")* chain
        std::vector<std::string> parts;
        std::size_t i = open;
        std::string pend;
        bool id_done = false; // current segment already has its identifier
        while (i-- > 0) {
            const Tok& t = buf[i];
            if (t.k == Tok::kId) {
                // Two adjacent identifiers means we've walked past the
                // name into the return type ("void ServerCore::shutdown").
                if (id_done) break;
                pend = t.s + pend;
                id_done = true;
            } else if (t.s == "~") {
                pend = "~" + pend;
            } else if (t.s == "::" && !pend.empty()) {
                parts.insert(parts.begin(), pend);
                pend.clear();
                id_done = false;
            } else {
                break;
            }
            if (i == 0) break;
        }
        if (!pend.empty()) parts.insert(parts.begin(), pend);
        if (parts.empty()) return {"", ""};
        std::string cls =
            parts.size() >= 2 ? parts[parts.size() - 2] : cur_class();
        std::string qual;
        if (parts.size() >= 2) {
            qual = parts[parts.size() - 2] + "::" + parts.back();
        } else {
            qual = cls.empty() ? parts.back() : cls + "::" + parts.back();
        }
        return {qual, cls};
    }

    std::pair<char, std::string> classify() const {
        if (buf.empty()) return {'b', ""};
        std::size_t b = 0;
        if (buf[b].s == "template") { // skip template<...> intro
            int d = 0;
            for (std::size_t i = b + 1; i < buf.size(); ++i) {
                if (buf[i].s == "<") ++d;
                else if (buf[i].s == ">" && --d == 0) { b = i + 1; break; }
                else if (buf[i].s == ">>") { d -= 2; if (d <= 0) { b = i + 1; break; } }
            }
            if (b >= buf.size()) return {'o', ""};
        }
        const std::string& f = buf[b].s;
        if (f == "namespace") {
            std::string n =
                b + 1 < buf.size() && buf[b + 1].k == Tok::kId ? buf[b + 1].s
                                                               : "<anon>";
            return {'n', n};
        }
        if (f == "class" || f == "struct" || f == "union") {
            bool has_paren = false;
            for (std::size_t i = b; i < buf.size(); ++i)
                if (buf[i].s == "(") { has_paren = true; break; }
            if (!has_paren) {
                for (std::size_t i = b + 1; i < buf.size(); ++i)
                    if (buf[i].k == Tok::kId && buf[i].s != "final" &&
                        buf[i].s != "alignas")
                        return {'c', buf[i].s};
                return {'c', "<anon>"};
            }
        }
        if (f == "enum") return {'o', ""};
        static const std::set<std::string> ctl = {"if",    "for",   "while",
                                                 "switch", "do",    "else",
                                                 "try",    "catch"};
        if (ctl.count(f) != 0) return {'b', ""};
        const std::string& last = buf.back().s;
        if (last == "=" || last == "," || last == "(" || last == "[" ||
            last == "return" || last == ":" || last == "<<")
            return {'o', ""};
        bool has_paren = false;
        {
            int d = 0;
            for (std::size_t i = b; i < buf.size(); ++i) {
                const std::string& x = buf[i].s;
                if (x == "(" && d == 0) has_paren = true;
                if (x == "(" || x == "[" || x == "{") ++d;
                else if (x == ")" || x == "]" || x == "}") --d;
            }
        }
        if (has_paren) {
            if (last == ")" || last == "const" || last == "noexcept" ||
                last == "override" || last == "final" || last == "mutable")
                return {'f', ""};
            // trailing return type: "-> Type {"
            for (std::size_t i = buf.size(); i-- > b;) {
                if (buf[i].s == ")") break;
                if (buf[i].s == "->") return {'f', ""};
            }
        }
        if (buf.back().k == Tok::kId) return {'o', ""};
        return {'b', ""};
    }

    // --- phase-1 matchers ---------------------------------------------------
    void match_checkedmutex_decl(std::size_t i) {
        // Skip the class definition itself and constructor mentions.
        if (i > 0 && (T()[i - 1].s == "class" || T()[i - 1].s == "struct"))
            return;
        std::size_t j = i + 1;
        if (j >= T().size()) return;
        if (T()[j].s == "&") {
            // Possible alias fn: CheckedMutex& [Cls::]name(...) { return E; }
            ++j;
            std::vector<std::string> chain;
            while (j < T().size() && T()[j].k == Tok::kId) {
                chain.push_back(T()[j].s);
                if (j + 1 < T().size() && T()[j + 1].s == "::") j += 2;
                else { ++j; break; }
            }
            if (chain.empty() || j >= T().size() || T()[j].s != "(") return;
            const std::size_t close = match_forward(j);
            std::size_t body = close + 1;
            if (body >= T().size() || T()[body].s != "{") return;
            const std::size_t bend = match_forward(body);
            if (body + 1 >= T().size() || T()[body + 1].s != "return") return;
            std::vector<std::string> ids;
            for (std::size_t k = body + 2; k < bend; ++k)
                if (T()[k].k == Tok::kId && keywords().count(T()[k].s) == 0)
                    ids.push_back(T()[k].s);
            const std::string cls =
                chain.size() >= 2 ? chain[chain.size() - 2] : cur_class();
            an.aliases_[cls + "::" + chain.back()] = ids;
            an.alias_names_.insert(chain.back());
            return;
        }
        if (T()[j].k != Tok::kId) return;
        const std::string name = T()[j].s;
        if (j + 1 >= T().size()) return;
        const std::string& nx = T()[j + 1].s;
        MutexDecl d;
        d.cls = cur_class();
        d.name = name;
        d.stem = fd.stem;
        if (nx == "{" || nx == "(") {
            const std::size_t close = match_forward(j + 1);
            auto args = args_of(j + 1, close);
            if (!args.empty())
                d.rank = an.rank_of_expr(T(), args[0].first, args[0].second,
                                         &d.sym);
            d.decl_ranked = d.rank.known();
        } else if (nx != ";") {
            return;
        }
        an.decls_by_name_[name].push_back(static_cast<int>(an.decls_.size()));
        an.decls_.push_back(std::move(d));
    }

    void match_raw_mutex(std::size_t i) {
        // i at "std"; phase 1 registers raw mutex decls for lock-order
        // nodes, phase 2 emits the raw-mutex finding outside osal/util.
        if (i + 2 >= T().size() || T()[i + 1].s != "::") return;
        const std::string& kind = T()[i + 2].s;
        static const std::set<std::string> mutexes = {"mutex",
                                                      "recursive_mutex",
                                                      "timed_mutex"};
        static const std::set<std::string> guards = {"lock_guard",
                                                     "scoped_lock",
                                                     "unique_lock"};
        const bool is_mutex = mutexes.count(kind) != 0;
        const bool is_guard = guards.count(kind) != 0;
        if (!is_mutex && !is_guard) return;
        if (phase == 1 && is_mutex) {
            std::size_t j = i + 3;
            if (j < T().size() && T()[j].k == Tok::kId &&
                j + 1 < T().size() &&
                (T()[j + 1].s == ";" || T()[j + 1].s == "{" ||
                 T()[j + 1].s == ",")) {
                MutexDecl d;
                d.cls = cur_class();
                d.name = T()[j].s;
                d.stem = fd.stem;
                an.decls_by_name_[d.name].push_back(
                    static_cast<int>(an.decls_.size()));
                an.decls_.push_back(std::move(d));
            }
        }
        if (phase == 2 && !in_checked_layer())
            an.emit(fd, "raw-mutex", T()[i].line,
                    "std::" + kind +
                        " outside osal/ and util/ — use osal::CheckedMutex / "
                        "CheckedLock (osal/checked.hpp) so PADICO_CHECK=ON "
                        "sees every acquisition",
                    "std::" + kind);
    }

    void match_slab_decl(std::size_t i) {
        if (i + 1 >= T().size() || T()[i + 1].s != "<") return;
        std::size_t j = skip_angles(i + 1);
        if (j >= T().size() || T()[j].k != Tok::kId) return; // e.g. Slab<T>::
        if (j + 1 < T().size() &&
            (T()[j + 1].s == ";" || T()[j + 1].s == "{" ||
             T()[j + 1].s == "=" || T()[j + 1].s == ","))
            an.slab_vars_.insert(T()[j].s);
    }

    void match_set_rank(std::size_t i) {
        if (i == 0 || i + 1 >= T().size() || T()[i + 1].s != "(") return;
        const std::string& prev = T()[i - 1].s;
        if (prev != "." && prev != "->") return;
        if (i < 2 || T()[i - 2].k != Tok::kId) return;
        const std::size_t close = match_forward(i + 1);
        auto args = args_of(i + 1, close);
        if (args.empty()) return;
        Analyzer::SetRankSite s;
        s.target = T()[i - 2].s;
        s.cls = cur_class();
        s.stem = fd.stem;
        s.rank = an.rank_of_expr(T(), args[0].first, args[0].second, &s.sym);
        if (s.rank.known()) an.set_rank_sites_.push_back(std::move(s));
    }

    // --- phase-2 matchers ---------------------------------------------------
    void match_guard_decl(std::size_t i) {
        if (fnstack.empty() || eff_depth() != 0) return;
        if (i > 0 && (T()[i - 1].s == "class" || T()[i - 1].s == "struct"))
            return;
        std::size_t j = i + 1;
        if (j < T().size() && T()[j].s == "<") j = skip_angles(j);
        if (j >= T().size() || T()[j].k != Tok::kId) return;
        const std::string gname = T()[j].s;
        if (j + 1 >= T().size() ||
            (T()[j + 1].s != "(" && T()[j + 1].s != "{"))
            return;
        const std::size_t close = match_forward(j + 1);
        auto args = args_of(j + 1, close);
        if (args.empty()) return;
        bool deferred = false;
        std::vector<int> nodes;
        for (auto [s, e] : args) {
            bool skip = false;
            for (std::size_t k = s; k < e; ++k) {
                if (T()[k].s == "defer_lock") { deferred = true; skip = true; }
                if (T()[k].s == "adopt_lock" || T()[k].s == "try_to_lock")
                    skip = true;
            }
            if (skip) continue;
            auto [trailing, is_call] = trailing_of(s, e);
            if (trailing.empty()) continue;
            nodes.push_back(an.resolve_mutex(trailing, is_call, cur_class(),
                                             fd));
        }
        if (nodes.empty()) return;
        FnState& fs = fnstack.back();
        fs.guards[gname] = {nodes, !deferred};
        if (!scopes.empty()) scopes.back().guard_names.push_back(gname);
        if (!deferred) acquire_group(fs, nodes, T()[i].line, gname);
    }

    void match_lock_unlock(std::size_t i) {
        if (fnstack.empty() || i < 2) return;
        const bool is_lock = T()[i].s == "lock";
        const std::string& prev = T()[i - 1].s;
        if ((prev != "." && prev != "->") || i + 1 >= T().size() ||
            T()[i + 1].s != "(")
            return;
        FnState& fs = fnstack.back();
        if (T()[i - 2].k == Tok::kId) {
            auto g = fs.guards.find(T()[i - 2].s);
            if (g != fs.guards.end()) {
                if (is_lock && !g->second.held) {
                    g->second.held = true;
                    acquire_group(fs, g->second.nodes, T()[i].line, g->first);
                } else if (!is_lock && g->second.held) {
                    g->second.held = false;
                    release_src(fs, g->first);
                }
                return;
            }
        }
        // Manual mutex.lock()/unlock(): resolve the receiver expression.
        std::size_t s = i - 1;
        while (s > 0 && (T()[s - 1].k == Tok::kId || T()[s - 1].s == "." ||
                         T()[s - 1].s == "->" || T()[s - 1].s == "::"))
            --s;
        auto [trailing, is_call] = trailing_of(s, i - 1);
        if (trailing.empty()) return;
        const std::string src = "~m:" + trailing;
        if (is_lock) {
            const int node =
                an.resolve_mutex(trailing, is_call, cur_class(), fd);
            acquire_group(fs, {node}, T()[i].line, src);
        } else {
            release_src(fs, src);
        }
    }

    void held_keys(const FnState& fs, std::string* human,
                   std::string* key) const {
        for (const HeldLock& h : fs.held) {
            if (!human->empty()) *human += ", ";
            *human += an.describe(h.node);
            if (!key->empty()) *key += "+";
            *key += an.nodes_[h.node].key;
        }
    }

    void match_blocking(std::size_t i) {
        if (fnstack.empty() || i == 0 || i + 1 >= T().size() ||
            T()[i + 1].s != "(")
            return;
        const std::string& prev = T()[i - 1].s;
        if (prev != "." && prev != "->" && prev != "::") return;
        FnState& fs = fnstack.back();
        if (fs.fn >= 0)
            an.fns_[fs.fn].blocking.push_back({T()[i].s, T()[i].line});
        if (fs.held.empty() || in_checked_layer()) return;
        std::string human, key;
        held_keys(fs, &human, &key);
        an.emit(fd, "blocking-under-lock", T()[i].line,
                "blocking call " + T()[i].s + "() while holding " + human +
                    " — blocked threads stall every waiter on those locks",
                T()[i].s + "@" + fs.qual + "&" + key);
    }

    void match_wait(std::size_t i) {
        if (fnstack.empty() || i == 0 || i + 1 >= T().size() ||
            T()[i + 1].s != "(")
            return;
        const std::string& prev = T()[i - 1].s;
        if (prev != "." && prev != "->") return;
        const std::size_t close = match_forward(i + 1);
        auto args = args_of(i + 1, close);
        FnState& fs = fnstack.back();
        if (args.empty()) {
            // 0-arg wait: WaitSet/Event/Latch-style blocking wait.
            if (fs.fn >= 0)
                an.fns_[fs.fn].blocking.push_back({"wait", T()[i].line});
            if (fs.held.empty() || in_checked_layer()) return;
            std::string human, key;
            held_keys(fs, &human, &key);
            an.emit(fd, "blocking-under-lock", T()[i].line,
                    "blocking wait() while holding " + human,
                    "wait@" + fs.qual + "&" + key);
            return;
        }
        // Condvar idiom: wait(lk[, pred]) where lk is a held guard. The wait
        // releases lk, so it is sanctioned iff no OTHER lock is held.
        if (args[0].second - args[0].first != 1) return;
        const Tok& a0 = T()[args[0].first];
        if (a0.k != Tok::kId) return;
        auto g = fs.guards.find(a0.s);
        if (g == fs.guards.end()) return;
        std::string human, key;
        for (const HeldLock& h : fs.held) {
            if (h.src == a0.s) continue;
            if (!human.empty()) human += ", ";
            human += an.describe(h.node);
            if (!key.empty()) key += "+";
            key += an.nodes_[h.node].key;
        }
        if (!human.empty() && !in_checked_layer())
            an.emit(fd, "cv-wait-extra-lock", T()[i].line,
                    "cv.wait(" + a0.s + ") releases only " + a0.s +
                        " but the thread still holds " + human +
                        " across the sleep",
                    fs.qual + "&" + key);
    }

    void match_call(std::size_t i) {
        if (fnstack.empty() || i + 1 >= T().size() || T()[i + 1].s != "(")
            return;
        FnState& fs = fnstack.back();
        if (fs.fn < 0 || fs.held.empty()) return;
        if (keywords().count(T()[i].s) != 0) return;
        if (i > 0 && (T()[i - 1].s == "class" || T()[i - 1].s == "struct"))
            return;
        CallSite c;
        c.name = T()[i].s;
        c.cls = fs.cls;
        // A call through an explicit receiver ("factories().find(name)")
        // is not a call on the enclosing class; only bare calls and
        // this-> calls get class-qualified callee resolution.
        if (i > 1 && (T()[i - 1].s == "." || T()[i - 1].s == "->") &&
            T()[i - 2].s != "this")
            c.cls.clear();
        c.line = T()[i].line;
        c.held_line = fs.held.front().line;
        for (const HeldLock& h : fs.held) c.held.push_back(h.node);
        an.fns_[fs.fn].calls.push_back(std::move(c));
    }

    void match_slab_get(std::size_t i) {
        if (fnstack.empty()) return;
        if (an.slab_vars_.count(T()[i].s) == 0) return;
        if (i + 3 >= T().size()) return;
        const std::string& dot = T()[i + 1].s;
        if (dot != "." && dot != "->") return;
        if (T()[i + 2].s != "get" || T()[i + 3].s != "(") return;
        const std::size_t close = match_forward(i + 3);
        FnState& fs = fnstack.back();
        if (close + 1 < T().size() &&
            (T()[close + 1].s == "->" || T()[close + 1].s == ".")) {
            an.emit(fd, "slab-gen-unchecked", T()[i].line,
                    "Slab::get() result dereferenced directly — a stale "
                    "(generation-recycled) handle returns nullptr and this "
                    "deref crashes; null-check first",
                    fs.qual + ":<expr>");
            return;
        }
        if (i >= 2 && T()[i - 1].s == "=" && T()[i - 2].k == Tok::kId)
            fs.slabs.push_back({T()[i - 2].s, close + 1});
    }

    void match_gen_assign(std::size_t i) {
        if (fnstack.empty()) return;
        if (T()[i].s != "generation") return;
        if (i + 1 >= T().size() || T()[i + 1].s != "=") return;
        FnState& fs = fnstack.back();
        if (fs.gen_assign_line == 0) fs.gen_assign_line = T()[i].line;
    }

    void match_unknown_rank(std::size_t i) {
        if (T()[i].s != "lockrank" || i + 2 >= T().size() ||
            T()[i + 1].s != "::" || T()[i + 2].k != Tok::kId)
            return;
        const std::string& id = T()[i + 2].s;
        if (an.rank_consts_.count(id) != 0 || an.rank_bands_.count(id) != 0)
            return;
        an.emit(fd, "unknown-lockrank", T()[i].line,
                "lockrank::" + id +
                    " is not declared in osal/lockrank.hpp — the registry "
                    "is the single source of truth",
                id);
    }

    // --- function close: deferred single-function checks --------------------
    void close_fn(FnState& fs, std::size_t end_tok) {
        for (const SlabTrack& st : fs.slabs) {
            for (std::size_t k = st.from; k < end_tok; ++k) {
                if (T()[k].k != Tok::kId || T()[k].s != st.lhs) continue;
                const std::string nx =
                    k + 1 < end_tok ? T()[k + 1].s : std::string();
                const std::string pv = k > 0 ? T()[k - 1].s : std::string();
                if (pv == "*" || nx == "->") {
                    an.emit(fd, "slab-gen-unchecked", T()[k].line,
                            "'" + st.lhs +
                                "' from Slab::get() dereferenced before a "
                                "null check — a stale generation-tagged "
                                "handle yields nullptr here",
                            fs.qual + ":" + st.lhs);
                    break;
                }
                if (nx == "==" || nx == "!=" || pv == "==" || pv == "!=" ||
                    pv == "!" || (pv == "(" && nx == ")"))
                    break; // checked first
                if (nx == "=") break; // reassigned
            }
        }
        if (fs.route_lock_line != 0 && fs.gen_assign_line != 0 &&
            fs.gen_assign_line > fs.route_lock_line)
            an.emit(fd, "stamp-order", fs.gen_assign_line,
                    "generation stamped AFTER locking route_mu — the stamp "
                    "must be written before the copy so a racing update "
                    "leaves a stale (conservative) stamp, never a fresh "
                    "stamp on stale routes",
                    fs.qual);
    }

    // --- main loop ----------------------------------------------------------
    void walk() {
        const std::vector<Tok>& t = T();
        for (std::size_t i = 0; i < t.size(); ++i) {
            const Tok& tk = t[i];
            if (tk.s == "(") {
                ++paren;
            } else if (tk.s == ")") {
                if (paren > 0) --paren;
            } else if (tk.s == "{") {
                open_brace(i);
                continue;
            } else if (tk.s == "}") {
                close_brace(i);
                continue;
            } else if (tk.s == ";" && eff_depth() == 0) {
                buf.clear();
                continue;
            }
            if (buf.size() < 256) buf.push_back(tk);

            if (tk.k != Tok::kId) continue;
            const std::string& s = tk.s;
            if (phase == 1) {
                if (s == "CheckedMutex") match_checkedmutex_decl(i);
                else if (s == "std") match_raw_mutex(i);
                else if (s == "Slab") match_slab_decl(i);
                else if (s == "set_rank") match_set_rank(i);
            } else {
                if (s == "CheckedLock" || s == "CheckedUniqueLock" ||
                    s == "lock_guard" || s == "unique_lock" ||
                    s == "scoped_lock")
                    match_guard_decl(i);
                if (s == "std") match_raw_mutex(i);
                else if (s == "lock" || s == "unlock") match_lock_unlock(i);
                else if (s == "wait") match_wait(i);
                else if (blocking_names().count(s) != 0) match_blocking(i);
                else if (s == "lockrank") match_unknown_rank(i);
                else if (s == "generation") match_gen_assign(i);
                else {
                    match_slab_get(i);
                    match_call(i);
                }
            }
        }
        while (!scopes.empty()) close_brace(t.size());
    }

    void open_brace(std::size_t i) {
        Scope sc;
        sc.base_paren = paren;
        if (lambda_brace(i)) {
            sc.kind = 'f';
            sc.pushed_fn = true;
            FnState fs;
            fs.cls = cur_class();
            const std::string outer =
                fnstack.empty() ? fd.path : fnstack.back().qual;
            fs.qual = outer + "::<lambda:" + std::to_string(T()[i].line) + ">";
            if (phase == 2) {
                fs.fn = static_cast<int>(an.fns_.size());
                FnSummary sum;
                sum.qual = fs.qual;
                sum.simple = "<lambda>";
                sum.cls = fs.cls;
                sum.file = file_idx;
                an.fns_.push_back(std::move(sum));
            }
            fnstack.push_back(std::move(fs));
            buf.clear();
            scopes.push_back(std::move(sc));
            return;
        }
        if (eff_depth() > 0) {
            sc.kind = 'o';
            scopes.push_back(std::move(sc));
            return;
        }
        auto [kind, name] = classify();
        sc.kind = kind;
        sc.name = name;
        if (kind == 'o') {
            sc.saved_buf = buf;
            scopes.push_back(std::move(sc));
            buf.clear();
            return;
        }
        if (kind == 'f') {
            auto [qual, cls] = fn_name_from_buf();
            if (qual.empty()) {
                qual = fd.path + ":<fn@" + std::to_string(T()[i].line) + ">";
                cls = cur_class();
            }
            FnState fs;
            fs.qual = qual;
            fs.cls = cls;
            sc.pushed_fn = true;
            if (phase == 2) {
                fs.fn = static_cast<int>(an.fns_.size());
                FnSummary sum;
                sum.qual = qual;
                const auto cc = qual.rfind("::");
                sum.simple =
                    cc == std::string::npos ? qual : qual.substr(cc + 2);
                sum.cls = cls;
                sum.file = file_idx;
                an.fns_by_simple_[sum.simple].push_back(fs.fn);
                an.fns_by_qual_[qual] = fs.fn;
                an.fns_.push_back(std::move(sum));
            }
            fnstack.push_back(std::move(fs));
        }
        buf.clear();
        scopes.push_back(std::move(sc));
    }

    void close_brace(std::size_t i) {
        if (scopes.empty()) {
            buf.clear();
            return;
        }
        Scope sc = std::move(scopes.back());
        scopes.pop_back();
        if (!fnstack.empty()) {
            FnState& fs = fnstack.back();
            for (const std::string& g : sc.guard_names) {
                release_src(fs, g);
                fs.guards.erase(g);
            }
        }
        if (sc.kind == 'f' && sc.pushed_fn && !fnstack.empty()) {
            if (phase == 2) close_fn(fnstack.back(), i);
            fnstack.pop_back();
        }
        if (sc.kind == 'o') buf = std::move(sc.saved_buf);
        else buf.clear();
    }
};

// ---------------------------------------------------------------------------
// Cross-TU passes

void Analyzer::run() {
    for (std::size_t i = 0; i < files_.size(); ++i)
        Walker(*this, files_[i], static_cast<int>(i), 1).walk();
    apply_set_rank_sites();
    build_alias_nodes();
    for (std::size_t i = 0; i < files_.size(); ++i)
        Walker(*this, files_[i], static_cast<int>(i), 2).walk();
    pass_expand_calls();
    pass_cycles();
    pass_layering();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.key < b.key;
              });
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                    return a.key == b.key &&
                                           a.line == b.line;
                                }),
                    findings_.end());
}

int Analyzer::resolve_callee(const CallSite& c) const {
    if (!c.cls.empty()) {
        auto q = fns_by_qual_.find(c.cls + "::" + c.name);
        if (q != fns_by_qual_.end()) return q->second;
    }
    // Names shared with the standard containers ("boxes_.find(ch)") must
    // not bind to an unrelated tree function that happens to be the only
    // one with that simple name; such calls resolve only class-qualified.
    static const std::set<std::string> generic = {
        "find",      "count",    "insert",   "erase",     "clear",
        "begin",     "end",      "at",       "size",      "empty",
        "front",     "back",     "data",     "push_back", "pop_back",
        "emplace",   "emplace_back",         "contains",  "get",
        "reset",     "load",     "store",    "swap",      "push",
        "pop",       "top",      "resize",   "reserve",   "value",
        "value_or",  "has_value",            "str",       "c_str",
        "substr",    "append",   "merge",    "exchange",  "fetch_add",
        "fetch_sub", "lower_bound",          "upper_bound"};
    if (generic.count(c.name)) return -1;
    auto s = fns_by_simple_.find(c.name);
    if (s != fns_by_simple_.end() && s->second.size() == 1)
        return s->second[0];
    return -1;
}

/// One-level callee expansion: every call made while holding locks pulls in
/// the callee's DIRECT acquisitions and blocking calls (not the callee's own
/// callees — one level only, see DESIGN.md §16 for why this bounds both
/// false positives and runtime).
void Analyzer::pass_expand_calls() {
    for (std::size_t fi = 0; fi < fns_.size(); ++fi) {
        const FnSummary& caller = fns_[fi];
        const FileData& cfd = files_[caller.file];
        const bool checked_layer = cfd.dir == "osal" || cfd.dir == "util";
        for (const CallSite& c : caller.calls) {
            const int ci = resolve_callee(c);
            if (ci < 0 || ci == static_cast<int>(fi)) continue;
            const FnSummary& callee = fns_[ci];
            for (const Acq& a : callee.acqs) {
                for (const int h : c.held) {
                    if (h == a.node) continue;
                    auto ekey = std::make_pair(h, a.node);
                    if (edges_.find(ekey) == edges_.end())
                        edges_[ekey] = {cfd.path, c.line,
                                        "via call " + c.name +
                                            "() -> acquisition at " +
                                            files_[callee.file].path + ":" +
                                            std::to_string(a.line)};
                    const RankVal& ra = nodes_[h].rank;
                    const RankVal& rb = nodes_[a.node].rank;
                    if (ra.known() && rb.known() && rb.hi <= ra.lo)
                        emit(cfd, "lock-order-inversion", c.line,
                             "call to " + c.name + "() acquires " +
                                 describe(a.node) + " (at " +
                                 files_[callee.file].path + ":" +
                                 std::to_string(a.line) +
                                 ") while holding " + describe(h) +
                                 " — lock ranks must strictly increase",
                             nodes_[a.node].key + "<" + nodes_[h].key + "@" +
                                 caller.qual + "->" + c.name);
                }
            }
            if (checked_layer) continue;
            for (const BlockingCall& b : callee.blocking) {
                std::string human, key;
                for (const int h : c.held) {
                    if (!human.empty()) human += ", ";
                    human += describe(h);
                    if (!key.empty()) key += "+";
                    key += nodes_[h].key;
                }
                emit(cfd, "blocking-under-lock", c.line,
                     "call to " + c.name + "() blocks in " + b.name +
                         "() (" + files_[callee.file].path + ":" +
                         std::to_string(b.line) + ") while holding " + human,
                     b.name + "<-" + c.name + "@" + caller.qual + "&" + key);
            }
        }
    }
}

/// Tarjan SCC over the union lock-order graph; every multi-node SCC is a
/// potential ABBA cycle, reported with one witness edge per hop.
void Analyzer::pass_cycles() {
    const int n = static_cast<int>(nodes_.size());
    std::vector<std::vector<int>> adj(n);
    for (const auto& [e, w] : edges_) adj[e.first].push_back(e.second);
    std::vector<int> idx(n, -1), low(n, 0), comp(n, -1);
    std::vector<bool> onstk(n, false);
    std::vector<int> stk;
    int counter = 0, ncomp = 0;
    // Iterative Tarjan (explicit stack of (node, child-cursor)).
    for (int root = 0; root < n; ++root) {
        if (idx[root] != -1) continue;
        std::vector<std::pair<int, std::size_t>> work{{root, 0}};
        while (!work.empty()) {
            auto& [v, ci] = work.back();
            if (ci == 0) {
                idx[v] = low[v] = counter++;
                stk.push_back(v);
                onstk[v] = true;
            }
            if (ci < adj[v].size()) {
                const int w = adj[v][ci++];
                if (idx[w] == -1) work.emplace_back(w, 0);
                else if (onstk[w]) low[v] = std::min(low[v], idx[w]);
            } else {
                if (low[v] == idx[v]) {
                    while (true) {
                        const int w = stk.back();
                        stk.pop_back();
                        onstk[w] = false;
                        comp[w] = ncomp;
                        if (w == v) break;
                    }
                    ++ncomp;
                }
                work.pop_back();
                if (!work.empty())
                    low[work.back().first] =
                        std::min(low[work.back().first], low[v]);
            }
        }
    }
    std::map<int, std::vector<int>> groups;
    for (int v = 0; v < n; ++v) groups[comp[v]].push_back(v);
    for (const auto& [cid, members] : groups) {
        if (members.size() < 2) continue;
        std::vector<std::string> keys;
        for (int v : members) keys.push_back(nodes_[v].key);
        std::sort(keys.begin(), keys.end());
        std::string cyc;
        for (const auto& k : keys) cyc += (cyc.empty() ? "" : " -> ") + k;
        std::string msg = "potential ABBA cycle among {" + cyc + "}:";
        std::string file = "(lock-graph)";
        int line = 0, shown = 0;
        for (const auto& [e, w] : edges_) {
            if (comp[e.first] != cid || comp[e.second] != cid) continue;
            if (line == 0 || w.line < line ||
                (w.line == line && w.file < file)) {
                // keep deterministic witness: smallest line, then file
                if (line == 0 || w.line < line || w.file < file) {
                    file = w.file;
                    line = w.line;
                }
            }
            if (shown < 4) {
                msg += " " + nodes_[e.first].key + " -> " +
                       nodes_[e.second].key + " (" + w.file + ":" +
                       std::to_string(w.line) + ");";
                ++shown;
            }
        }
        findings_.push_back({"lock-order-cycle", file, line, msg,
                             "lock-order-cycle||" + cyc});
    }
}

void Analyzer::pass_layering() {
    const auto& levels = layer_levels();
    for (FileData& fd : files_) {
        const auto self = levels.find(fd.dir);
        if (self == levels.end()) continue;
        for (const auto& [line, target] : fd.includes) {
            const std::string inc_dir = module_dir(target);
            if (inc_dir.empty() || inc_dir == fd.dir) continue;
            const auto inc = levels.find(inc_dir);
            if (inc == levels.end()) continue;
            if (inc->second >= self->second)
                emit(fd, "include-layering", line,
                     fd.dir + "/ (layer " + std::to_string(self->second) +
                         ") must not include " + inc_dir + "/ (layer " +
                         std::to_string(inc->second) +
                         ") — includes go down the stack only",
                     target);
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline + JSON I/O. The baseline format is one entry per line:
//   { "findings": [
//     {"key": "...", "justified": "..."},
//   ] }

std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\', out += c;
        else if (c == '\n') out += "\\n";
        else out += c;
    }
    return out;
}

/// Minimal reader for the quoted string starting at s[i] == '"'.
std::string read_quoted(const std::string& s, std::size_t& i) {
    std::string out;
    ++i; // opening quote
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            out += s[i] == 'n' ? '\n' : s[i];
        } else {
            out += s[i];
        }
        ++i;
    }
    ++i; // closing quote
    return out;
}

struct BaselineEntry {
    std::string key, justified;
};

std::vector<BaselineEntry> load_baseline(const fs::path& p, bool* ok) {
    std::vector<BaselineEntry> out;
    *ok = true;
    if (!fs::exists(p)) return out; // absent baseline = empty baseline
    const std::string raw = read_file(p);
    std::size_t i = 0;
    while ((i = raw.find("\"key\"", i)) != std::string::npos) {
        i += 5;
        while (i < raw.size() && raw[i] != '"') ++i;
        if (i >= raw.size()) break;
        BaselineEntry e;
        e.key = read_quoted(raw, i);
        const std::size_t brace = raw.find('}', i);
        std::size_t j = raw.find("\"justified\"", i);
        if (j != std::string::npos && (brace == std::string::npos || j < brace)) {
            j += 11;
            while (j < raw.size() && raw[j] != '"') ++j;
            if (j < raw.size()) e.justified = read_quoted(raw, j);
        }
        out.push_back(std::move(e));
    }
    return out;
}

void write_json_report(const fs::path& p, const std::vector<Finding>& all,
                       const std::set<std::string>& baselined,
                       std::size_t files) {
    std::ofstream out(p);
    std::size_t fresh = 0, supp = 0;
    for (const Finding& f : all)
        (baselined.count(f.key) != 0 ? supp : fresh)++;
    out << "{\n  \"files\": " << files << ",\n  \"new\": " << fresh
        << ",\n  \"suppressed\": " << supp << ",\n  \"findings\": [\n";
    bool first = true;
    for (const Finding& f : all) {
        if (!first) out << ",\n";
        first = false;
        out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
            << json_escape(f.file) << "\", \"line\": " << f.line
            << ", \"suppressed\": "
            << (baselined.count(f.key) != 0 ? "true" : "false")
            << ", \"key\": \"" << json_escape(f.key) << "\", \"message\": \""
            << json_escape(f.message) << "\"}";
    }
    out << "\n  ]\n}\n";
}

// ---------------------------------------------------------------------------
// Modes

int analyze_tree(const fs::path& src, const fs::path& baseline_path,
                 const fs::path& json_path) {
    Analyzer an;
    if (!an.load_ranks(src / "osal" / "lockrank.hpp")) {
        std::fprintf(stderr, "padico_analyze: cannot load %s\n",
                     (src / "osal" / "lockrank.hpp").string().c_str());
        return 2;
    }
    std::vector<fs::path> files;
    for (const auto& e : fs::recursive_directory_iterator(src)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".hpp" || ext == ".cpp") files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& f : files)
        an.add_file("src/" + fs::relative(f, src).generic_string(),
                    read_file(f));
    an.run();

    bool ok = true;
    std::set<std::string> baselined;
    if (!baseline_path.empty()) {
        for (const BaselineEntry& e : load_baseline(baseline_path, &ok))
            baselined.insert(e.key);
    }
    std::size_t fresh = 0, supp = 0;
    for (const Finding& f : an.findings()) {
        if (baselined.count(f.key) != 0) {
            ++supp;
            continue;
        }
        ++fresh;
        std::fprintf(stderr, "%s:%d: [%s] %s\n      key: %s\n",
                     f.file.c_str(), f.line, f.rule.c_str(),
                     f.message.c_str(), f.key.c_str());
    }
    // Stale baseline entries (suppressing nothing) are a warning: the CI
    // shrink check nudges them out, but they must not fail local runs.
    for (const std::string& k : baselined) {
        bool hit = false;
        for (const Finding& f : an.findings())
            if (f.key == k) { hit = true; break; }
        if (!hit)
            std::fprintf(stderr,
                         "padico_analyze: warning: stale baseline entry "
                         "(no longer reported): %s\n",
                         k.c_str());
    }
    if (!json_path.empty())
        write_json_report(json_path, an.findings(), baselined,
                          an.file_count());
    std::printf("padico_analyze: %zu file(s), %zu finding(s) "
                "(%zu new, %zu baselined)\n",
                an.file_count(), an.findings().size(), fresh, supp);
    return fresh == 0 ? 0 : 1;
}

int check_baseline(const fs::path& p) {
    bool ok = true;
    const auto entries = load_baseline(p, &ok);
    int bad = 0;
    for (const BaselineEntry& e : entries) {
        if (e.justified.empty()) {
            ++bad;
            std::fprintf(stderr,
                         "padico_analyze: baseline entry lacks a "
                         "\"justified\" note: %s\n",
                         e.key.c_str());
        }
    }
    std::printf("padico_analyze: baseline %s: %zu entr%s, %d unjustified\n",
                p.string().c_str(), entries.size(),
                entries.size() == 1 ? "y" : "ies", bad);
    return bad == 0 ? 0 : 1;
}

/// Fixture self-test: each .cpp/.hpp in the directory (except lockrank.hpp)
/// is analyzed as a single-file tree against the fixture rank registry.
/// Header lines declare the exact expected findings, rule@line:
///   // expect-analyze: lock-order-inversion@12, lock-order-cycle@9
///   // expect-analyze: none
///   // path: src/fabric/foo.cpp
int self_test(const fs::path& dir) {
    int failures = 0;
    std::size_t fixtures = 0;
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().filename() != "lockrank.hpp") {
            const std::string ext = e.path().extension().string();
            if (ext == ".hpp" || ext == ".cpp") files.push_back(e.path());
        }
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
        ++fixtures;
        const std::string raw = read_file(f);
        std::multiset<std::string> expected;
        std::string vpath = "src/fixture/" + f.filename().string();
        {
            std::istringstream is(raw);
            std::string line;
            while (std::getline(is, line)) {
                if (line.rfind("// expect-analyze:", 0) == 0) {
                    std::istringstream ls(line.substr(18));
                    std::string item;
                    while (std::getline(ls, item, ',')) {
                        item.erase(std::remove_if(item.begin(), item.end(),
                                                  [](unsigned char c) {
                                                      return std::isspace(c);
                                                  }),
                                   item.end());
                        if (!item.empty() && item != "none")
                            expected.insert(item);
                    }
                } else if (line.rfind("// path:", 0) == 0) {
                    std::string p = line.substr(8);
                    p.erase(std::remove_if(p.begin(), p.end(),
                                           [](unsigned char c) {
                                               return std::isspace(c);
                                           }),
                            p.end());
                    vpath = p;
                } else if (line.rfind("//", 0) != 0) {
                    break;
                }
            }
        }
        Analyzer an;
        if (!an.load_ranks(dir / "lockrank.hpp")) {
            std::fprintf(stderr, "padico_analyze: missing %s\n",
                         (dir / "lockrank.hpp").string().c_str());
            return 2;
        }
        an.add_file(vpath, raw);
        an.run();
        std::multiset<std::string> got;
        for (const Finding& fi : an.findings())
            got.insert(fi.rule + "@" + std::to_string(fi.line));
        if (got == expected) {
            std::printf("PASS %s\n", f.filename().string().c_str());
        } else {
            ++failures;
            auto join = [](const std::multiset<std::string>& s) {
                std::string out;
                for (const auto& r : s) out += (out.empty() ? "" : ",") + r;
                return out.empty() ? std::string("none") : out;
            };
            std::printf("FAIL %s: expected [%s], got [%s]\n",
                        f.filename().string().c_str(), join(expected).c_str(),
                        join(got).c_str());
            for (const Finding& fi : an.findings())
                std::printf("     %s:%d: [%s] %s\n", fi.file.c_str(), fi.line,
                            fi.rule.c_str(), fi.message.c_str());
        }
    }
    std::printf("padico_analyze self-test: %zu fixture(s), %d failure(s)\n",
                fixtures, failures);
    if (fixtures == 0) return 2;
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() == 2 && args[0] == "--self-test")
        return self_test(args[1]);
    if (args.size() == 2 && args[0] == "--check-baseline")
        return check_baseline(args[1]);
    if (!args.empty() && args[0][0] != '-') {
        fs::path src = args[0], baseline, json;
        for (std::size_t i = 1; i + 1 < args.size() + 1; ++i) {
            if (args[i] == "--baseline" && i + 1 < args.size())
                baseline = args[++i];
            else if (args[i] == "--json" && i + 1 < args.size())
                json = args[++i];
            else {
                std::fprintf(stderr, "padico_analyze: unknown arg %s\n",
                             args[i].c_str());
                return 2;
            }
        }
        return analyze_tree(src, baseline, json);
    }
    std::fprintf(
        stderr,
        "usage: padico_analyze <src_dir> [--baseline FILE] [--json FILE]\n"
        "       padico_analyze --self-test <fixtures_dir>\n"
        "       padico_analyze --check-baseline FILE\n");
    return 2;
}
