/// \file padico_lint.cpp
/// In-tree lexical lint for the Padico source tree (ISSUE: padico::check).
/// A deliberately small token-level checker — no real C++ parsing — that
/// keeps the rules where pure text matching is the right tool:
///
///   cv-wait          .wait(lk) with exactly one argument outside src/osal/
///                    — a condition wait without a predicate is a lost-wakeup
///                    / spurious-wakeup bug waiting to happen.
///   literal-rank     CheckedMutex{<integer>, ...} or set_rank(<integer>)
///                    outside src/osal/ — ranks must be named lockrank::
///                    constants, not magic numbers.
///
/// The scope/cross-TU rules this tool used to carry (raw-mutex,
/// include-layering, unknown-lockrank) moved to tools/padico_analyze.cpp,
/// which tracks real lock regions and include edges; total lint coverage
/// is a superset of the old set (see DESIGN.md §16).
///
/// A file opts out of one rule with a comment pragma anywhere in the file:
///     // padico-lint: allow(raw-mutex)
///
/// Usage:
///   padico_lint <src_dir>             lint every .hpp/.cpp under src_dir
///   padico_lint --self-test <dir>     run the fixture suite in <dir>
///
/// Fixture format: first comment lines declare the expectation and the
/// pretend path the rules should see:
///     // expect: raw-mutex,cv-wait     (or: // expect: none)
///     // path: src/fabric/foo.cpp
/// Exit status: 0 clean, 1 findings (or fixture mismatch), 2 usage error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
    std::string file;
    std::size_t line;
    std::string rule;
    std::string message;
};

/// First path component after the leading "src/" (or the first component
/// outright), i.e. the module directory the osal-exemption keys on.
std::string module_dir(const std::string& path) {
    std::string p = path;
    if (p.rfind("src/", 0) == 0) p = p.substr(4);
    const auto slash = p.find('/');
    return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

/// Replace comments and string/char literals with spaces, preserving line
/// structure, so token rules cannot fire inside either.
std::string strip_comments_and_strings(const std::string& in) {
    std::string out = in;
    enum { kCode, kLine, kBlock, kStr, kChar } st = kCode;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
        case kCode:
            if (c == '/' && n == '/') st = kLine;
            else if (c == '/' && n == '*') st = kBlock;
            else if (c == '"') st = kStr;
            else if (c == '\'') st = kChar;
            if (st != kCode) out[i] = ' ';
            break;
        case kLine:
            if (c == '\n') st = kCode;
            else out[i] = ' ';
            break;
        case kBlock:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                st = kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case kStr:
            if (c == '\\') {
                out[i] = ' ';
                if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
            } else if (c == '"') {
                st = kCode;
                out[i] = ' ';
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case kChar:
            if (c == '\\') {
                out[i] = ' ';
                if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
            } else if (c == '\'') {
                st = kCode;
                out[i] = ' ';
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

bool is_ident(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Rules the file's pragmas switch off: "// padico-lint: allow(a,b)".
std::set<std::string> allowed_rules(const std::string& raw) {
    std::set<std::string> out;
    const std::string tag = "padico-lint: allow(";
    std::size_t at = 0;
    while ((at = raw.find(tag, at)) != std::string::npos) {
        at += tag.size();
        const std::size_t end = raw.find(')', at);
        if (end == std::string::npos) break;
        std::string inside = raw.substr(at, end - at);
        std::string rule;
        std::istringstream is(inside);
        while (std::getline(is, rule, ','))
            if (!rule.empty()) out.insert(rule);
        at = end;
    }
    return out;
}

/// After ".wait(" at \p open (index of '('), count top-level arguments.
/// Returns -1 when the parenthesis never closes in this file.
int count_args(const std::string& code, std::size_t open) {
    int depth = 0;
    bool any = false;
    int commas = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            --depth;
            if (depth == 0) return any ? commas + 1 : 0;
        } else if (depth == 1) {
            if (c == ',') ++commas;
            else if (!std::isspace(static_cast<unsigned char>(c))) any = true;
        }
    }
    return -1;
}

std::size_t line_of(const std::string& s, std::size_t pos) {
    return static_cast<std::size_t>(
               std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(pos), '\n')) +
           1;
}

/// First non-space character at or after \p pos, skipping newlines too.
char first_token_char(const std::string& s, std::size_t pos) {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])))
        ++pos;
    return pos < s.size() ? s[pos] : '\0';
}

void lint_file(const std::string& path, const std::string& raw,
               std::vector<Finding>& findings) {
    const std::string dir = module_dir(path);
    const std::set<std::string> allowed = allowed_rules(raw);
    const std::string code = strip_comments_and_strings(raw);
    const bool in_osal = dir == "osal";

    auto emit = [&](std::size_t line, const std::string& rule,
                    const std::string& msg) {
        if (allowed.count(rule) != 0) return;
        findings.push_back(Finding{path, line, rule, msg});
    };

    // cv-wait: one-argument .wait( outside osal/ (zero args = WaitSet-style
    // wait, two args = predicate form; both fine).
    if (!in_osal) {
        std::size_t at = 0;
        while ((at = code.find(".wait", at)) != std::string::npos) {
            std::size_t p = at + 5;
            while (p < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[p])))
                ++p;
            if (p < code.size() && code[p] == '(' && !is_ident(code[at + 5])) {
                if (count_args(code, p) == 1)
                    emit(line_of(code, at), "cv-wait",
                         "condition wait without a predicate — spurious "
                         "wakeups and lost notifies; use wait(lock, pred)");
            }
            at += 5;
        }
    }

    // literal-rank: integer-literal ranks outside osal/.
    if (!in_osal) {
        for (const std::string& tok : {std::string("CheckedMutex"),
                                       std::string("set_rank")}) {
            std::size_t at = 0;
            while ((at = code.find(tok, at)) != std::string::npos) {
                std::size_t p = at + tok.size();
                if ((at > 0 && is_ident(code[at - 1])) ||
                    (p < code.size() && is_ident(code[p]))) {
                    at = p;
                    continue; // part of a longer identifier
                }
                while (p < code.size() &&
                       std::isspace(static_cast<unsigned char>(code[p])))
                    ++p;
                if (p < code.size() && (code[p] == '{' || code[p] == '(')) {
                    const char first = first_token_char(code, p + 1);
                    if (std::isdigit(static_cast<unsigned char>(first)))
                        emit(line_of(code, at), "literal-rank",
                             "magic-number lock rank — name it in "
                             "osal/lockrank.hpp and use the constant");
                }
                at = p;
            }
        }
    }
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int lint_tree(const fs::path& src) {
    std::vector<Finding> findings;
    std::vector<fs::path> files;
    for (const auto& e : fs::recursive_directory_iterator(src)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".hpp" || ext == ".cpp") files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
        const std::string rel =
            "src/" + fs::relative(f, src).generic_string();
        lint_file(rel, read_file(f), findings);
    }
    for (const auto& f : findings)
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
    std::printf("padico_lint: %zu file(s), %zu finding(s)\n", files.size(),
                findings.size());
    return findings.empty() ? 0 : 1;
}

int self_test(const fs::path& dir) {
    int failures = 0;
    std::size_t fixtures = 0;
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().filename() != "lockrank.hpp")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
        ++fixtures;
        const std::string raw = read_file(f);
        // Header: "// expect: a,b|none" and optional "// path: src/x/y.cpp".
        std::set<std::string> expected;
        std::string vpath = "src/fixture/" + f.filename().string();
        {
            std::istringstream is(raw);
            std::string line;
            while (std::getline(is, line)) {
                if (line.rfind("// expect:", 0) == 0) {
                    std::string list = line.substr(10);
                    std::istringstream ls(list);
                    std::string r;
                    while (std::getline(ls, r, ',')) {
                        r.erase(std::remove_if(r.begin(), r.end(),
                                               [](unsigned char c) {
                                                   return std::isspace(c);
                                               }),
                                r.end());
                        if (!r.empty() && r != "none") expected.insert(r);
                    }
                } else if (line.rfind("// path:", 0) == 0) {
                    std::string p = line.substr(8);
                    p.erase(std::remove_if(p.begin(), p.end(),
                                           [](unsigned char c) {
                                               return std::isspace(c);
                                           }),
                            p.end());
                    vpath = p;
                } else if (line.rfind("//", 0) != 0) {
                    break; // header ends at the first non-comment line
                }
            }
        }
        std::vector<Finding> findings;
        lint_file(vpath, raw, findings);
        std::set<std::string> got;
        for (const auto& fd : findings) got.insert(fd.rule);
        if (got == expected) {
            std::printf("PASS %s\n", f.filename().string().c_str());
        } else {
            ++failures;
            auto join = [](const std::set<std::string>& s) {
                std::string out;
                for (const auto& r : s) out += (out.empty() ? "" : ",") + r;
                return out.empty() ? std::string("none") : out;
            };
            std::printf("FAIL %s: expected [%s], got [%s]\n",
                        f.filename().string().c_str(),
                        join(expected).c_str(), join(got).c_str());
            for (const auto& fd : findings)
                std::printf("     %s:%zu: [%s] %s\n", fd.file.c_str(),
                            fd.line, fd.rule.c_str(), fd.message.c_str());
        }
    }
    std::printf("padico_lint self-test: %zu fixture(s), %d failure(s)\n",
                fixtures, failures);
    if (fixtures == 0) return 2;
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    if (argc == 3 && std::string(argv[1]) == "--self-test")
        return self_test(argv[2]);
    if (argc == 2) return lint_tree(argv[1]);
    std::fprintf(stderr,
                 "usage: padico_lint <src_dir> | padico_lint --self-test "
                 "<fixtures_dir>\n");
    return 2;
}
