// Fabric data-plane scaling benchmark: the sharded timing model
// (per-NIC-direction locks + indexed/pruned BusyList + lock-free route
// reads) against the legacy segment-global data plane (one lock per
// segment, scan-from-zero BusyList that never forgets spans, route lookup
// under route_mu_), kept as TimingMode::kSegmentGlobal for A/B.
//
// Three legs:
//  * pairs: N disjoint machine pairs streaming on ONE switched segment,
//    with a small flow-control window (receivers merge their clocks, so
//    watermark pruning can follow). Wall-clock packets/sec per mode; the
//    per-pair serialized virtual times must be BIT-IDENTICAL across modes.
//  * serial: one sender, two destinations, a deterministic mixed workload
//    booked strictly sequentially; the full trace of sender-side
//    completions and delivery times must be bit-identical across modes.
//  * soak: one streaming pair long enough that the legacy never-pruned
//    BusyList hurts; reports span high-water marks, pruned spans and
//    route fast-path counters.
//
// Emits one JSON object to stdout AND to BENCH_fabric.json (override with
// --out <path>). --quick shrinks sizes for the CTest smoke run and skips
// the wall-clock speedup assertion (virtual-identity is always asserted).
// Exits nonzero when an assertion fails.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "fabric/grid.hpp"
#include "osal/sync.hpp"
#include "util/rng.hpp"

namespace padico::bench {
namespace {

using namespace padico::fabric;

constexpr std::size_t kBytes = 256;   // ~23 us wire time on Fast-Ethernet
constexpr SimTime kGap = usec(50.0);  // compute gap between sends
constexpr int kWindow = 256;          // flow-control window (in-flight msgs)

struct PairLeg {
    double wall_ms = 0;
    /// Per pair: {last sender-side completion, FNV-mixed delivery trace}.
    std::vector<std::pair<SimTime, std::uint64_t>> sig;
    AdapterCounters tx_nic;  ///< sender NIC of pair 0
    AdapterCounters rx_nic;  ///< receiver NIC of pair 0
    std::uint64_t fast_hits = 0, fast_misses = 0;
};

PairLeg run_pairs(TimingMode mode, int n_pairs, int msgs) {
    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    seg.set_timing_mode(mode);
    std::vector<Machine*> ms;
    for (int i = 0; i < 2 * n_pairs; ++i) {
        ms.push_back(&g.add_machine("n" + std::to_string(i)));
        g.attach(*ms.back(), seg);
    }
    const ChannelId ch = g.channel_id("pairs");
    PairLeg res;
    res.sig.resize(static_cast<std::size_t>(n_pairs));
    std::vector<std::unique_ptr<std::atomic<int>>> consumed;
    for (int i = 0; i < n_pairs; ++i)
        consumed.push_back(std::make_unique<std::atomic<int>>(0));
    osal::Barrier start(static_cast<std::size_t>(2 * n_pairs) + 1);

    for (int i = 0; i < n_pairs; ++i) {
        const ProcessId rx_pid = static_cast<ProcessId>(2 * i + 1);
        g.spawn(*ms[static_cast<std::size_t>(2 * i)],
                [&, i, rx_pid](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            start.arrive_and_wait();
            SimTime tx = 0;
            for (int m = 0; m < msgs; ++m) {
                while (m - consumed[static_cast<std::size_t>(i)]->load(
                               std::memory_order_relaxed) > kWindow)
                    std::this_thread::yield();
                proc.compute(kGap);
                tx = port->send(rx_pid, ch,
                                util::to_message(util::ByteBuf(kBytes)),
                                proc.now());
                proc.clock().set(tx);
            }
            res.sig[static_cast<std::size_t>(i)].first = tx;
        });
        g.spawn(*ms[static_cast<std::size_t>(2 * i + 1)],
                [&, i](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            start.arrive_and_wait();
            std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
            for (int m = 0; m < msgs; ++m) {
                auto pkt = port->recv();
                if (!pkt) break;
                proc.clock().merge(pkt->deliver_time);
                h = (h ^ static_cast<std::uint64_t>(pkt->deliver_time)) *
                    1099511628211ULL;
                consumed[static_cast<std::size_t>(i)]->store(
                    m + 1, std::memory_order_relaxed);
            }
            res.sig[static_cast<std::size_t>(i)].second = h;
        });
    }
    start.arrive_and_wait();
    const auto t0 = std::chrono::steady_clock::now();
    g.join_all();
    res.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    res.tx_nic = ms[0]->adapters()[0]->counters();
    res.rx_nic = ms[1]->adapters()[0]->counters();
    res.fast_hits = seg.route_fast_hits();
    res.fast_misses = seg.route_fast_misses();
    return res;
}

/// Strictly sequential mixed workload: every booking decision is made by
/// one thread, so the full virtual-time trace must be independent of the
/// timing mode.
std::vector<SimTime> run_serial(TimingMode mode, int msgs) {
    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    seg.set_timing_mode(mode);
    std::vector<Machine*> ms;
    for (int i = 0; i < 3; ++i) {
        ms.push_back(&g.add_machine("n" + std::to_string(i)));
        g.attach(*ms.back(), seg);
    }
    const ChannelId ch = g.channel_id("serial");
    std::array<std::vector<SimTime>, 3> parts; // fixed slot per thread
    osal::Event sender_done;
    osal::Latch receivers_ready(2);

    g.spawn(*ms[0], [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
        receivers_ready.wait();
        util::Rng rng(123);
        for (int m = 0; m < msgs; ++m) {
            proc.compute(nsec(static_cast<SimTime>(rng.below(100000))));
            const std::size_t bytes = 64 + rng.below(8192);
            const ProcessId dst = static_cast<ProcessId>(1 + m % 2);
            const SimTime tx = port->send(
                dst, ch, util::to_message(util::ByteBuf(bytes)), proc.now());
            proc.clock().set(tx);
            parts[0].push_back(tx);
        }
        sender_done.set();
    });
    for (int r = 0; r < 2; ++r) {
        const int expect = (msgs + 1 - r) / 2;
        g.spawn(*ms[static_cast<std::size_t>(1 + r)],
                [&, r, expect](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            receivers_ready.count_down();
            sender_done.wait(); // drain after the fact: bookings stay serial
            for (int m = 0; m < expect; ++m) {
                auto pkt = port->recv();
                if (!pkt) break;
                parts[static_cast<std::size_t>(1 + r)].push_back(
                    pkt->deliver_time);
            }
        });
    }
    g.join_all();
    std::vector<SimTime> trace;
    for (const auto& p : parts) trace.insert(trace.end(), p.begin(), p.end());
    return trace;
}

int run(bool quick, const std::string& out_path) {
    const std::vector<int> pair_counts =
        quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
    const int pair_msgs = quick ? 300 : 5000;
    const int serial_msgs = quick ? 200 : 2000;
    const int soak_msgs = quick ? 2000 : 30000;

    std::string rows;
    bool all_identical = true;
    double speedup_at_max = 0;
    for (int n : pair_counts) {
        const PairLeg sh = run_pairs(TimingMode::kSharded, n, pair_msgs);
        const PairLeg lg = run_pairs(TimingMode::kSegmentGlobal, n,
                                     pair_msgs);
        const bool identical = sh.sig == lg.sig;
        all_identical = all_identical && identical;
        const double total_pkts = static_cast<double>(n) * pair_msgs;
        const double speedup = sh.wall_ms > 0 ? lg.wall_ms / sh.wall_ms : 0;
        speedup_at_max = speedup; // pair_counts is ascending
        rows += util::strfmt(
            "  {\"pairs\": %d, \"msgs_per_pair\": %d, "
            "\"wall_ms_sharded\": %.1f, \"wall_ms_legacy\": %.1f, "
            "\"kpkts_s_sharded\": %.0f, \"kpkts_s_legacy\": %.0f, "
            "\"speedup\": %.2f, \"virtual_identical\": %s},\n",
            n, pair_msgs, sh.wall_ms, lg.wall_ms,
            total_pkts / sh.wall_ms, total_pkts / lg.wall_ms, speedup,
            identical ? "true" : "false");
        std::fprintf(stderr, "pairs=%2d sharded %7.1f ms, legacy %7.1f ms, "
                             "speedup %.2fx, identical=%d\n",
                     n, sh.wall_ms, lg.wall_ms, speedup, identical);
    }
    if (!rows.empty()) rows.erase(rows.size() - 2); // drop trailing ",\n"

    const auto serial_sh = run_serial(TimingMode::kSharded, serial_msgs);
    const auto serial_lg = run_serial(TimingMode::kSegmentGlobal,
                                      serial_msgs);
    const bool serial_identical =
        serial_sh == serial_lg && !serial_sh.empty();

    const PairLeg soak_sh = run_pairs(TimingMode::kSharded, 1, soak_msgs);
    const PairLeg soak_lg = run_pairs(TimingMode::kSegmentGlobal, 1,
                                      soak_msgs);
    const bool soak_identical = soak_sh.sig == soak_lg.sig;

    const bool soak_pruned_ok = soak_sh.tx_nic.tx_pruned_spans > 0 &&
                                soak_sh.tx_nic.tx_span_high_water < 4096;
    const bool speedup_ok = quick || speedup_at_max >= 3.0;
    const bool ok = all_identical && serial_identical && soak_identical &&
                    soak_pruned_ok && speedup_ok;

    std::string json = util::strfmt(
        "{\n \"bench\": \"fabric_scale\",\n \"quick\": %s,\n"
        " \"cpus\": %u,\n \"pairs\": [\n%s\n ],\n"
        " \"speedup_at_max_pairs\": %.2f,\n"
        " \"serial\": {\"events\": %zu, \"identical\": %s},\n",
        quick ? "true" : "false", std::thread::hardware_concurrency(),
        rows.c_str(), speedup_at_max, serial_sh.size(),
        serial_identical ? "true" : "false");
    json += util::strfmt(
        " \"soak\": {\"msgs\": %d, \"window\": %d, \"identical\": %s,\n"
        "  \"sharded\": {\"wall_ms\": %.1f, \"tx_span_high_water\": %llu, "
        "\"tx_pruned_spans\": %llu, \"rx_span_high_water\": %llu, "
        "\"rx_pruned_spans\": %llu, \"route_fast_hits\": %llu, "
        "\"route_fast_misses\": %llu},\n"
        "  \"legacy\": {\"wall_ms\": %.1f, \"tx_span_high_water\": %llu, "
        "\"tx_pruned_spans\": %llu}},\n \"ok\": %s\n}\n",
        soak_msgs, kWindow, soak_identical ? "true" : "false",
        soak_sh.wall_ms,
        static_cast<unsigned long long>(soak_sh.tx_nic.tx_span_high_water),
        static_cast<unsigned long long>(soak_sh.tx_nic.tx_pruned_spans),
        static_cast<unsigned long long>(soak_sh.rx_nic.rx_span_high_water),
        static_cast<unsigned long long>(soak_sh.rx_nic.rx_pruned_spans),
        static_cast<unsigned long long>(soak_sh.fast_hits),
        static_cast<unsigned long long>(soak_sh.fast_misses),
        soak_lg.wall_ms,
        static_cast<unsigned long long>(soak_lg.tx_nic.tx_span_high_water),
        static_cast<unsigned long long>(soak_lg.tx_nic.tx_pruned_spans),
        ok ? "true" : "false");

    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "WARN: cannot write %s\n", out_path.c_str());
    }

    if (!all_identical || !serial_identical || !soak_identical) {
        std::fprintf(stderr, "FAIL: virtual times diverge across modes\n");
        return 1;
    }
    if (!soak_pruned_ok) {
        std::fprintf(stderr,
                     "FAIL: soak pruning ineffective (high water %llu, "
                     "pruned %llu)\n",
                     static_cast<unsigned long long>(
                         soak_sh.tx_nic.tx_span_high_water),
                     static_cast<unsigned long long>(
                         soak_sh.tx_nic.tx_pruned_spans));
        return 1;
    }
    if (!speedup_ok) {
        std::fprintf(stderr, "FAIL: speedup at %d pairs is %.2fx (< 3x)\n",
                     pair_counts.back(), speedup_at_max);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace padico::bench

int main(int argc, char** argv) {
    bool quick = false;
    std::string out = "BENCH_fabric.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }
    return padico::bench::run(quick, out);
}
