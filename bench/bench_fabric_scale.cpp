// Fabric data-plane scaling benchmark: the sharded timing model
// (per-NIC-direction locks + indexed/pruned BusyList + lock-free route
// reads) against the legacy segment-global data plane (one lock per
// segment, scan-from-zero BusyList that never forgets spans, route lookup
// under route_mu_), kept as TimingMode::kSegmentGlobal for A/B.
//
// Three legs:
//  * pairs: N disjoint machine pairs streaming on ONE switched segment,
//    with a small flow-control window (receivers merge their clocks, so
//    watermark pruning can follow). Wall-clock packets/sec per mode; the
//    per-pair serialized virtual times must be BIT-IDENTICAL across modes.
//  * serial: one sender, two destinations, a deterministic mixed workload
//    booked strictly sequentially; the full trace of sender-side
//    completions and delivery times must be bit-identical across modes.
//  * soak: one streaming pair long enough that the legacy never-pruned
//    BusyList hurts; reports span high-water marks, pruned spans and
//    route fast-path counters.
//
// A second family of legs exercises the hierarchical routing zones of
// fabric::Topology (see topology.hpp):
//  * zoned identity: the pair and soak workloads rebuilt through a
//    ClusterZone (same wiring, zone-tagged segment) — serialized virtual
//    times must be BIT-IDENTICAL to the flat build.
//  * scaling: DSL-generated cluster/WAN hierarchies at 1k-10k simulated
//    processes (no threads), measuring the per-process route-table entry
//    bound — it must stay near-constant while a flat segment's would grow
//    linearly with the grid.
//  * live: a zoned grid with one real process per member machine, in-zone
//    streaming plus cross-zone messages through gateway relays, sampling
//    the ACTUAL per-segment route-table population and retirements.
//
// Emits one JSON object to stdout AND to BENCH_fabric.json (override with
// --out <path>); the zone legs write a second object to BENCH_topology.json
// (--topology-out <path>). --quick shrinks sizes for the CTest smoke run
// and skips the wall-clock speedup assertion (virtual-identity is always
// asserted). Exits nonzero when an assertion fails.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "fabric/grid.hpp"
#include "fabric/registry.hpp"
#include "fabric/topology.hpp"
#include "osal/sync.hpp"
#include "util/rng.hpp"

namespace padico::bench {
namespace {

using namespace padico::fabric;

constexpr std::size_t kBytes = 256;   // ~23 us wire time on Fast-Ethernet
constexpr SimTime kGap = usec(50.0);  // compute gap between sends
constexpr int kWindow = 256;          // flow-control window (in-flight msgs)

struct PairLeg {
    double wall_ms = 0;
    /// Per pair: {last sender-side completion, FNV-mixed delivery trace}.
    std::vector<std::pair<SimTime, std::uint64_t>> sig;
    AdapterCounters tx_nic;  ///< sender NIC of pair 0
    AdapterCounters rx_nic;  ///< receiver NIC of pair 0
    std::uint64_t fast_hits = 0, fast_misses = 0;
};

PairLeg run_pairs(TimingMode mode, int n_pairs, int msgs,
                  bool zoned = false) {
    Grid g;
    std::unique_ptr<Topology> topo;
    std::vector<Machine*> ms;
    NetworkSegment* segp;
    if (zoned) {
        // Same single-segment wiring, built through a ClusterZone so the
        // segment carries a real zone id: virtual times must not change.
        topo = std::make_unique<Topology>(g);
        ClusterSpec spec;
        spec.size = static_cast<std::size_t>(2 * n_pairs);
        spec.tech = NetTech::FastEthernet;
        ClusterZone& cz = topo->add_cluster("pairs", spec);
        ms = cz.members();
        segp = cz.segments().front();
    } else {
        segp = &g.add_segment("eth", NetTech::FastEthernet);
        for (int i = 0; i < 2 * n_pairs; ++i) {
            ms.push_back(&g.add_machine("n" + std::to_string(i)));
            g.attach(*ms.back(), *segp);
        }
    }
    NetworkSegment& seg = *segp;
    seg.set_timing_mode(mode);
    const ChannelId ch = g.channel_id("pairs");
    PairLeg res;
    res.sig.resize(static_cast<std::size_t>(n_pairs));
    std::vector<std::unique_ptr<std::atomic<int>>> consumed;
    for (int i = 0; i < n_pairs; ++i)
        consumed.push_back(std::make_unique<std::atomic<int>>(0));
    osal::Barrier start(static_cast<std::size_t>(2 * n_pairs) + 1);

    for (int i = 0; i < n_pairs; ++i) {
        const ProcessId rx_pid = static_cast<ProcessId>(2 * i + 1);
        g.spawn(*ms[static_cast<std::size_t>(2 * i)],
                [&, i, rx_pid](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            start.arrive_and_wait();
            SimTime tx = 0;
            for (int m = 0; m < msgs; ++m) {
                while (m - consumed[static_cast<std::size_t>(i)]->load(
                               std::memory_order_relaxed) > kWindow)
                    std::this_thread::yield();
                proc.compute(kGap);
                tx = port->send(rx_pid, ch,
                                util::to_message(util::ByteBuf(kBytes)),
                                proc.now());
                proc.clock().set(tx);
            }
            res.sig[static_cast<std::size_t>(i)].first = tx;
        });
        g.spawn(*ms[static_cast<std::size_t>(2 * i + 1)],
                [&, i](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            start.arrive_and_wait();
            std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
            for (int m = 0; m < msgs; ++m) {
                auto pkt = port->recv();
                if (!pkt) break;
                proc.clock().merge(pkt->deliver_time);
                h = (h ^ static_cast<std::uint64_t>(pkt->deliver_time)) *
                    1099511628211ULL;
                consumed[static_cast<std::size_t>(i)]->store(
                    m + 1, std::memory_order_relaxed);
            }
            res.sig[static_cast<std::size_t>(i)].second = h;
        });
    }
    start.arrive_and_wait();
    const auto t0 = std::chrono::steady_clock::now();
    g.join_all();
    res.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    res.tx_nic = ms[0]->adapters()[0]->counters();
    res.rx_nic = ms[1]->adapters()[0]->counters();
    res.fast_hits = seg.route_fast_hits();
    res.fast_misses = seg.route_fast_misses();
    return res;
}

/// Strictly sequential mixed workload: every booking decision is made by
/// one thread, so the full virtual-time trace must be independent of the
/// timing mode.
std::vector<SimTime> run_serial(TimingMode mode, int msgs) {
    Grid g;
    auto& seg = g.add_segment("eth", NetTech::FastEthernet);
    seg.set_timing_mode(mode);
    std::vector<Machine*> ms;
    for (int i = 0; i < 3; ++i) {
        ms.push_back(&g.add_machine("n" + std::to_string(i)));
        g.attach(*ms.back(), seg);
    }
    const ChannelId ch = g.channel_id("serial");
    std::array<std::vector<SimTime>, 3> parts; // fixed slot per thread
    osal::Event sender_done;
    osal::Latch receivers_ready(2);

    g.spawn(*ms[0], [&](Process& proc) {
        auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
        receivers_ready.wait();
        util::Rng rng(123);
        for (int m = 0; m < msgs; ++m) {
            proc.compute(nsec(static_cast<SimTime>(rng.below(100000))));
            const std::size_t bytes = 64 + rng.below(8192);
            const ProcessId dst = static_cast<ProcessId>(1 + m % 2);
            const SimTime tx = port->send(
                dst, ch, util::to_message(util::ByteBuf(bytes)), proc.now());
            proc.clock().set(tx);
            parts[0].push_back(tx);
        }
        sender_done.set();
    });
    for (int r = 0; r < 2; ++r) {
        const int expect = (msgs + 1 - r) / 2;
        g.spawn(*ms[static_cast<std::size_t>(1 + r)],
                [&, r, expect](Process& proc) {
            auto port = proc.machine().adapter_on(seg)->open(proc, "bench");
            receivers_ready.count_down();
            sender_done.wait(); // drain after the fact: bookings stay serial
            for (int m = 0; m < expect; ++m) {
                auto pkt = port->recv();
                if (!pkt) break;
                parts[static_cast<std::size_t>(1 + r)].push_back(
                    pkt->deliver_time);
            }
        });
    }
    g.join_all();
    std::vector<SimTime> trace;
    for (const auto& p : parts) trace.insert(trace.end(), p.begin(), p.end());
    return trace;
}


// --- hierarchical-zone legs ------------------------------------------------

/// DSL for n processes as full clusters of \p cluster_sz under site WANs of
/// \p site_sz clusters, stitched by a core WAN when more than one site.
std::string hier_dsl(std::size_t n, std::size_t cluster_sz = 32,
                     std::size_t site_sz = 16) {
    const std::size_t clusters = (n + cluster_sz - 1) / cluster_sz;
    std::string dsl;
    std::size_t left = n;
    for (std::size_t c = 0; c < clusters; ++c) {
        const std::size_t sz = left < cluster_sz ? left : cluster_sz;
        left -= sz;
        dsl += "cluster name=c" + std::to_string(c) +
               " kind=full size=" + std::to_string(sz) +
               " tech=fast-ethernet\n";
    }
    const std::size_t sites = (clusters + site_sz - 1) / site_sz;
    for (std::size_t s = 0; s < sites; ++s) {
        std::string links;
        for (std::size_t c = s * site_sz;
             c < clusters && c < (s + 1) * site_sz; ++c)
            links += (links.empty() ? "" : ",") + ("c" + std::to_string(c));
        dsl += "wan name=s" + std::to_string(s) + " link=" + links + "\n";
    }
    if (sites > 1) {
        std::string links;
        for (std::size_t s = 0; s < sites; ++s)
            links += (links.empty() ? "" : ",") + ("s" + std::to_string(s));
        dsl += "wan name=core tech=wan link=" + links + "\n";
    }
    return dsl;
}

struct ScaleRow {
    std::size_t procs = 0, zones = 0, machines = 0, segments = 0;
    std::size_t entries_max = 0;
    double entries_mean = 0;
    double build_ms = 0;
};

/// Build (no threads) and measure the per-process route-table entry bound:
/// the sum over a machine's NICs of each segment's attachment count — the
/// most entries the data plane can ever hold for that machine's traffic.
/// A flat single-segment grid of the same size would bound at n.
ScaleRow run_topology_scale(std::size_t n) {
    Grid g;
    const auto t0 = std::chrono::steady_clock::now();
    auto topo = build_topology_from_dsl(g, hier_dsl(n));
    ScaleRow row;
    row.build_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    row.procs = n;
    row.zones = topo->zone_count();
    row.machines = g.machines().size();
    row.segments = g.segments().size();
    std::size_t sum = 0;
    for (const auto& m : g.machines()) {
        const std::size_t e = Topology::route_entries_upper_bound(*m);
        row.entries_max = e > row.entries_max ? e : row.entries_max;
        sum += e;
    }
    row.entries_mean =
        static_cast<double>(sum) / static_cast<double>(row.machines);
    return row;
}

struct LiveRow {
    std::size_t procs = 0, zones = 0, relays = 0;
    std::size_t entries_max = 0;
    double entries_mean = 0;
    std::uint64_t messages = 0, routed = 0;
    std::uint64_t tables_retired = 0;
    double wall_ms = 0;
};

/// One real process per member machine of a zoned grid: in-cluster
/// streaming plus a few cross-zone messages forwarded by gateway relays,
/// then every member samples its segment's ACTUAL route-table population
/// before any port closes.
LiveRow run_topology_live(std::size_t n, int intra_msgs) {
    Grid g;
    auto topo = build_topology_from_dsl(g, hier_dsl(n));
    std::vector<Machine*> members;
    for (const auto& m : g.machines()) members.push_back(m.get());

    // Relays on every cluster gateway (site/core gateways coincide).
    std::vector<Machine*> gateways;
    for (Zone* z : topo->zones())
        if (z->kind() == ZoneKind::Cluster) gateways.push_back(&z->gateway());
    std::atomic<bool> relay_stop{false};
    for (Machine* gw : gateways)
        g.spawn(*gw, [&topo, &relay_stop](Process& p) {
            relay_loop(*topo, p, relay_stop);
        });
    const ProcessId pid0 = static_cast<ProcessId>(gateways.size());

    // Member i's in-cluster peer: next member of the same cluster zone,
    // cyclic — a permutation, so everyone receives what it sends.
    const std::size_t nm = members.size();
    std::vector<std::size_t> next_in_cluster(nm);
    {
        std::size_t i = 0;
        for (Zone* z : topo->zones()) {
            if (z->kind() != ZoneKind::Cluster) continue;
            const std::size_t sz = z->members().size();
            for (std::size_t k = 0; k < sz; ++k)
                next_in_cluster[i + k] = i + (k + 1) % sz;
            i += sz;
        }
    }
    const bool multi_cluster = gateways.size() > 1;
    const int cross_msgs = multi_cluster ? 2 : 0;
    const ChannelId ch = g.channel_id("live");
    osal::Barrier start(nm + 1);
    osal::Barrier traffic_done(nm);
    osal::Latch members_done(nm);
    std::vector<std::size_t> entries(nm, 0);
    std::atomic<std::uint64_t> routed_sent{0};

    for (std::size_t i = 0; i < nm; ++i) {
        g.spawn(*members[i], [&, i](Process& proc) {
            // adapters()[0] is the cluster LAN (backbone NICs attach later).
            auto port = proc.machine().adapters()[0]->open(proc, "bench");
            start.arrive_and_wait();
            for (int m = 0; m < intra_msgs; ++m) {
                proc.compute(kGap);
                const SimTime tx = port->send(
                    pid0 + static_cast<ProcessId>(next_in_cluster[i]), ch,
                    util::to_message(util::ByteBuf(kBytes)), proc.now());
                proc.clock().set(tx);
            }
            // Cross-zone: to the same-position member one cluster over,
            // store-and-forward through the gateway relays.
            for (int m = 0; m < cross_msgs; ++m) {
                proc.compute(kGap);
                send_routed(*topo, proc, *port,
                            pid0 + static_cast<ProcessId>((i + 32) % nm), ch,
                            util::to_message(util::ByteBuf(kBytes)));
                routed_sent.fetch_add(1, std::memory_order_relaxed);
            }
            for (int m = 0; m < intra_msgs + cross_msgs; ++m) {
                auto pkt = port->recv();
                if (!pkt) break;
                proc.clock().merge(pkt->deliver_time);
            }
            // Sample while every member still holds its port.
            traffic_done.arrive_and_wait();
            entries[i] =
                port->adapter().segment().route_snapshot().routes.size();
            members_done.count_down();
        });
    }
    start.arrive_and_wait();
    const auto t0 = std::chrono::steady_clock::now();
    members_done.wait();
    relay_stop.store(true, std::memory_order_release);
    g.join_all();
    LiveRow row;
    row.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    row.procs = nm;
    row.zones = topo->zone_count();
    row.relays = gateways.size();
    std::size_t sum = 0;
    for (std::size_t e : entries) {
        row.entries_max = e > row.entries_max ? e : row.entries_max;
        sum += e;
    }
    row.entries_mean = static_cast<double>(sum) / static_cast<double>(nm);
    row.messages = static_cast<std::uint64_t>(nm) *
                   static_cast<std::uint64_t>(intra_msgs + cross_msgs);
    row.routed = routed_sent.load(std::memory_order_relaxed);
    for (const auto& s : g.segments())
        row.tables_retired += s->route_tables_retired();
    return row;
}

/// Zone legs: identity of zoned vs flat wiring, generated-topology scaling
/// and the live zoned grid. Writes one JSON object to \p out_path.
int run_topology(bool quick, const std::string& out_path) {
    const int pair_msgs = quick ? 300 : 5000;
    const int soak_msgs = quick ? 2000 : 30000;
    const int zn = quick ? 4 : 16;

    const PairLeg flat_pairs =
        run_pairs(TimingMode::kSharded, zn, pair_msgs, false);
    const PairLeg zoned_pairs =
        run_pairs(TimingMode::kSharded, zn, pair_msgs, true);
    const bool pairs_identical = flat_pairs.sig == zoned_pairs.sig;
    const PairLeg flat_soak =
        run_pairs(TimingMode::kSharded, 1, soak_msgs, false);
    const PairLeg zoned_soak =
        run_pairs(TimingMode::kSharded, 1, soak_msgs, true);
    const bool soak_identical = flat_soak.sig == zoned_soak.sig;
    std::fprintf(stderr,
                 "zoned identity: pairs=%d soak=%d (flat vs ClusterZone)\n",
                 pairs_identical, soak_identical);

    const std::vector<std::size_t> sizes =
        quick ? std::vector<std::size_t>{128, 512}
              : std::vector<std::size_t>{1000, 4000, 10000};
    std::string rows;
    std::vector<ScaleRow> scale;
    for (std::size_t n : sizes) {
        scale.push_back(run_topology_scale(n));
        const ScaleRow& r = scale.back();
        rows += util::strfmt(
            "  {\"procs\": %zu, \"zones\": %zu, \"machines\": %zu, "
            "\"segments\": %zu, \"route_entries_max\": %zu, "
            "\"route_entries_mean\": %.1f, \"flat_equiv_entries\": %zu, "
            "\"per_process_route_bytes_max\": %zu, \"build_ms\": %.1f},\n",
            r.procs, r.zones, r.machines, r.segments, r.entries_max,
            r.entries_mean, r.procs,
            r.entries_max * sizeof(std::pair<ProcessId, Port*>), r.build_ms);
        std::fprintf(stderr,
                     "topology n=%5zu zones=%3zu entries max=%zu mean=%.1f "
                     "(flat bound %zu) build %.1f ms\n",
                     r.procs, r.zones, r.entries_max, r.entries_mean, r.procs,
                     r.build_ms);
    }
    if (!rows.empty()) rows.erase(rows.size() - 2);
    // Sub-linear: grid grew by n_ratio, the per-process bound must grow
    // far slower, and at the top size sit at least 10x under the flat one.
    const double n_ratio = static_cast<double>(scale.back().procs) /
                           static_cast<double>(scale.front().procs);
    const double entries_ratio =
        static_cast<double>(scale.back().entries_max) /
        static_cast<double>(scale.front().entries_max);
    const bool sub_linear =
        entries_ratio * 2.0 <= n_ratio &&
        scale.back().entries_max * 10 <= scale.back().procs;

    const std::size_t live_n = quick ? 64 : 1000;
    const LiveRow live = run_topology_live(live_n, quick ? 20 : 50);
    std::fprintf(stderr,
                 "live n=%zu relays=%zu entries max=%zu mean=%.1f "
                 "routed=%llu retired=%llu wall %.1f ms\n",
                 live.procs, live.relays, live.entries_max, live.entries_mean,
                 static_cast<unsigned long long>(live.routed),
                 static_cast<unsigned long long>(live.tables_retired),
                 live.wall_ms);
    const bool live_ok =
        live.routed > 0 && (quick || live.entries_max * 10 <= live.procs);

    const bool ok = pairs_identical && soak_identical && sub_linear && live_ok;
    const std::string json = util::strfmt(
        "{\n \"bench\": \"topology\",\n \"quick\": %s,\n \"cpus\": %u,\n"
        " \"zoned_pairs_identical\": %s,\n \"zoned_soak_identical\": %s,\n"
        " \"scaling\": [\n%s\n ],\n"
        " \"growth\": {\"n_ratio\": %.1f, \"entries_ratio\": %.2f, "
        "\"sub_linear\": %s},\n"
        " \"live\": {\"procs\": %zu, \"zones\": %zu, \"relays\": %zu, "
        "\"entries_max\": %zu, \"entries_mean\": %.1f, "
        "\"messages\": %llu, \"routed_messages\": %llu, "
        "\"route_tables_retired\": %llu, \"wall_ms\": %.1f},\n"
        " \"ok\": %s\n}\n",
        quick ? "true" : "false", std::thread::hardware_concurrency(),
        pairs_identical ? "true" : "false", soak_identical ? "true" : "false",
        rows.c_str(), n_ratio, entries_ratio, sub_linear ? "true" : "false",
        live.procs, live.zones, live.relays, live.entries_max,
        live.entries_mean, static_cast<unsigned long long>(live.messages),
        static_cast<unsigned long long>(live.routed),
        static_cast<unsigned long long>(live.tables_retired), live.wall_ms,
        ok ? "true" : "false");

    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "WARN: cannot write %s\n", out_path.c_str());
    }
    if (!pairs_identical || !soak_identical) {
        std::fprintf(stderr,
                     "FAIL: zoned wiring changed serialized virtual times\n");
        return 1;
    }
    if (!sub_linear) {
        std::fprintf(stderr,
                     "FAIL: route-table bound not sub-linear (entries ratio "
                     "%.2f over n ratio %.1f)\n",
                     entries_ratio, n_ratio);
        return 1;
    }
    if (!live_ok) {
        std::fprintf(stderr, "FAIL: live zoned leg (routed=%llu, max=%zu)\n",
                     static_cast<unsigned long long>(live.routed),
                     live.entries_max);
        return 1;
    }
    return 0;
}

int run(bool quick, const std::string& out_path) {
    const std::vector<int> pair_counts =
        quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
    const int pair_msgs = quick ? 300 : 5000;
    const int serial_msgs = quick ? 200 : 2000;
    const int soak_msgs = quick ? 2000 : 30000;

    std::string rows;
    bool all_identical = true;
    double speedup_at_max = 0;
    for (int n : pair_counts) {
        const PairLeg sh = run_pairs(TimingMode::kSharded, n, pair_msgs);
        const PairLeg lg = run_pairs(TimingMode::kSegmentGlobal, n,
                                     pair_msgs);
        const bool identical = sh.sig == lg.sig;
        all_identical = all_identical && identical;
        const double total_pkts = static_cast<double>(n) * pair_msgs;
        const double speedup = sh.wall_ms > 0 ? lg.wall_ms / sh.wall_ms : 0;
        speedup_at_max = speedup; // pair_counts is ascending
        rows += util::strfmt(
            "  {\"pairs\": %d, \"msgs_per_pair\": %d, "
            "\"wall_ms_sharded\": %.1f, \"wall_ms_legacy\": %.1f, "
            "\"kpkts_s_sharded\": %.0f, \"kpkts_s_legacy\": %.0f, "
            "\"speedup\": %.2f, \"virtual_identical\": %s},\n",
            n, pair_msgs, sh.wall_ms, lg.wall_ms,
            total_pkts / sh.wall_ms, total_pkts / lg.wall_ms, speedup,
            identical ? "true" : "false");
        std::fprintf(stderr, "pairs=%2d sharded %7.1f ms, legacy %7.1f ms, "
                             "speedup %.2fx, identical=%d\n",
                     n, sh.wall_ms, lg.wall_ms, speedup, identical);
    }
    if (!rows.empty()) rows.erase(rows.size() - 2); // drop trailing ",\n"

    const auto serial_sh = run_serial(TimingMode::kSharded, serial_msgs);
    const auto serial_lg = run_serial(TimingMode::kSegmentGlobal,
                                      serial_msgs);
    const bool serial_identical =
        serial_sh == serial_lg && !serial_sh.empty();

    const PairLeg soak_sh = run_pairs(TimingMode::kSharded, 1, soak_msgs);
    const PairLeg soak_lg = run_pairs(TimingMode::kSegmentGlobal, 1,
                                      soak_msgs);
    const bool soak_identical = soak_sh.sig == soak_lg.sig;

    const bool soak_pruned_ok = soak_sh.tx_nic.tx_pruned_spans > 0 &&
                                soak_sh.tx_nic.tx_span_high_water < 4096;
    const bool speedup_ok = quick || speedup_at_max >= 3.0;
    const bool ok = all_identical && serial_identical && soak_identical &&
                    soak_pruned_ok && speedup_ok;

    std::string json = util::strfmt(
        "{\n \"bench\": \"fabric_scale\",\n \"quick\": %s,\n"
        " \"cpus\": %u,\n \"pairs\": [\n%s\n ],\n"
        " \"speedup_at_max_pairs\": %.2f,\n"
        " \"serial\": {\"events\": %zu, \"identical\": %s},\n",
        quick ? "true" : "false", std::thread::hardware_concurrency(),
        rows.c_str(), speedup_at_max, serial_sh.size(),
        serial_identical ? "true" : "false");
    json += util::strfmt(
        " \"soak\": {\"msgs\": %d, \"window\": %d, \"identical\": %s,\n"
        "  \"sharded\": {\"wall_ms\": %.1f, \"tx_span_high_water\": %llu, "
        "\"tx_pruned_spans\": %llu, \"rx_span_high_water\": %llu, "
        "\"rx_pruned_spans\": %llu, \"route_fast_hits\": %llu, "
        "\"route_fast_misses\": %llu},\n"
        "  \"legacy\": {\"wall_ms\": %.1f, \"tx_span_high_water\": %llu, "
        "\"tx_pruned_spans\": %llu}},\n \"ok\": %s\n}\n",
        soak_msgs, kWindow, soak_identical ? "true" : "false",
        soak_sh.wall_ms,
        static_cast<unsigned long long>(soak_sh.tx_nic.tx_span_high_water),
        static_cast<unsigned long long>(soak_sh.tx_nic.tx_pruned_spans),
        static_cast<unsigned long long>(soak_sh.rx_nic.rx_span_high_water),
        static_cast<unsigned long long>(soak_sh.rx_nic.rx_pruned_spans),
        static_cast<unsigned long long>(soak_sh.fast_hits),
        static_cast<unsigned long long>(soak_sh.fast_misses),
        soak_lg.wall_ms,
        static_cast<unsigned long long>(soak_lg.tx_nic.tx_span_high_water),
        static_cast<unsigned long long>(soak_lg.tx_nic.tx_pruned_spans),
        ok ? "true" : "false");

    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "WARN: cannot write %s\n", out_path.c_str());
    }

    if (!all_identical || !serial_identical || !soak_identical) {
        std::fprintf(stderr, "FAIL: virtual times diverge across modes\n");
        return 1;
    }
    if (!soak_pruned_ok) {
        std::fprintf(stderr,
                     "FAIL: soak pruning ineffective (high water %llu, "
                     "pruned %llu)\n",
                     static_cast<unsigned long long>(
                         soak_sh.tx_nic.tx_span_high_water),
                     static_cast<unsigned long long>(
                         soak_sh.tx_nic.tx_pruned_spans));
        return 1;
    }
    if (!speedup_ok) {
        std::fprintf(stderr, "FAIL: speedup at %d pairs is %.2fx (< 3x)\n",
                     pair_counts.back(), speedup_at_max);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace padico::bench

int main(int argc, char** argv) {
    bool quick = false;
    std::string out = "BENCH_fabric.json";
    std::string topo_out = "BENCH_topology.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--topology-out") == 0 && i + 1 < argc)
            topo_out = argv[++i];
    }
    const int rc = padico::bench::run(quick, out);
    const int topo_rc = padico::bench::run_topology(quick, topo_out);
    return rc != 0 ? rc : topo_rc;
}
