/// \file bench_ablation_security.cpp
/// Ablation A4 (the paper's §6 future work, implemented here): security
/// granularity. CORBA's security service is "sometimes too coarse-grained"
/// — if two components sit inside the same parallel machine the traffic
/// can skip encryption. Three configurations of the same stream:
///
///   1. co-located on a secure SAN, colocation optimization ON  (no crypto)
///   2. same placement, paranoid encrypt-everywhere              (crypto)
///   3. across an untrusted WAN                                  (crypto)

#include "bench/common.hpp"
#include "osal/sync.hpp"
#include "padicotm/vlink.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;
using namespace padico::ptm;

namespace {

struct Config {
    const char* name;
    bool use_wan;
    bool encrypt_always;
    double paper_expect; // none; qualitative ablation
};

double stream_bw(const Config& cfg) {
    Grid grid;
    NetworkSegment* seg =
        cfg.use_wan ? &grid.add_segment("wan0", NetTech::Wan)
                    : &grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& a = grid.add_machine("ma");
    auto& b = grid.add_machine("mb");
    grid.attach(a, *seg);
    grid.attach(b, *seg);

    RuntimeOptions opts;
    opts.encrypt_always = cfg.encrypt_always;
    constexpr std::size_t kLen = 2u << 20;
    double bw = 0;
    grid.spawn(b, [&](Process& proc) {
        Runtime rt(proc, opts);
        VLinkListener listener(rt, "sec");
        VLink s = listener.accept();
        (void)s.read_msg(kLen);
        s.write("k", 1);
    });
    grid.spawn(a, [&](Process& proc) {
        Runtime rt(proc, opts);
        VLink s = VLink::connect(rt, "sec");
        const SimTime t0 = proc.now();
        s.write(util::to_message(util::ByteBuf(kLen)));
        char ack;
        s.read(&ack, 1);
        bw = mb_per_s(kLen, proc.now() - t0);
    });
    grid.join_all();
    return bw;
}

} // namespace

int main() {
    print_header("Ablation A4",
                 "security granularity: co-location optimization vs "
                 "encrypt-everywhere (§6 future work)");
    const Config configs[] = {
        {"co-located on secure SAN, colocation opt.", false, false, 0},
        {"co-located on secure SAN, encrypt always", false, true, 0},
        {"across untrusted WAN (always encrypted)", true, false, 0},
    };
    util::Table table({"configuration", "stream bandwidth (MB/s)"});
    double coloc = 0, paranoid = 0;
    for (const auto& cfg : configs) {
        const double bw = stream_bw(cfg);
        if (coloc == 0) coloc = bw;
        else if (paranoid == 0) paranoid = bw;
        table.add_row({cfg.name, fmt_mb(bw)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("skipping encryption inside a secure machine buys x%.1f on "
                "the SAN — the optimization the paper proposes in §6\n",
                coloc / paranoid);
    return 0;
}
