/// \file bench_ethernet_gridccm.cpp
/// Reproduces the §4.4 Fast-Ethernet GridCCM text: "The behavior of
/// GridCCM on top a Fast-Ethernet network based on MicoCCM (resp. on
/// OpenCCM (Java)) is similar: the bandwidth scales from 9.8 MB/s (resp.
/// 8.3 MB/s) to 78.4 MB/s (resp. 66.4 MB/s)" — 1 to 1 up to 8 to 8 nodes.

#include "bench/common.hpp"
#include "bench/gridccm_pair.hpp"

using namespace padico;
using namespace padico::bench;

int main() {
    print_header("§4.4 Fast-Ethernet GridCCM",
                 "aggregate bandwidth scaling on Fast-Ethernet, MicoCCM vs "
                 "OpenCCM (Java)");
    const double paper_mico[] = {9.8, 19.6, 39.2, 78.4};   // endpoints from
    const double paper_java[] = {8.3, 16.6, 33.2, 66.4};   // the paper; the
    // intermediate points are linear interpolations of its "scales from/to".
    util::Table table(
        {"nodes", "MicoCCM (MB/s)", "OpenCCM-Java (MB/s)"});
    int idx = 0;
    for (int n : {1, 2, 4, 8}) {
        const Fig8Row mico =
            run_pair(n, corba::profile_mico(), /*with_san=*/false);
        const Fig8Row java =
            run_pair(n, corba::profile_openccm_java(), /*with_san=*/false);
        table.add_row({util::strfmt("%d to %d", n, n),
                       vs_paper(mico.aggregate_mb, paper_mico[idx]),
                       vs_paper(java.aggregate_mb, paper_java[idx])});
        ++idx;
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper: MicoCCM scales 9.8 -> 78.4 MB/s, OpenCCM (Java) "
                "8.3 -> 66.4 MB/s from 1-to-1 to 8-to-8\n");
    return 0;
}
