/// \file bench_micro_core.cpp
/// Real (wall-clock) microbenchmarks of the infrastructure itself, via
/// google-benchmark: CDR marshalling, scatter-gather messages, the
/// blocking queue under the demux, XML parsing, and redistribution-plan
/// computation. These measure OUR implementation (not the paper's modeled
/// numbers) and guard against performance regressions of the simulator.

#include <benchmark/benchmark.h>

#include <numeric>

#include "corba/cdr.hpp"
#include "gridccm/distribution.hpp"
#include "osal/queue.hpp"
#include "util/xml.hpp"

using namespace padico;

namespace {

void BM_CdrEncodeSequenceZeroCopy(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<std::int32_t> xs(n, 7);
    for (auto _ : state) {
        corba::cdr::Encoder e(true);
        e.put_seq(std::span<const std::int32_t>(xs));
        benchmark::DoNotOptimize(e.take());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 4));
}
BENCHMARK(BM_CdrEncodeSequenceZeroCopy)->Range(1 << 8, 1 << 18);

void BM_CdrEncodeSequenceCopying(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<std::int32_t> xs(n, 7);
    for (auto _ : state) {
        corba::cdr::Encoder e(false);
        e.put_seq(std::span<const std::int32_t>(xs));
        benchmark::DoNotOptimize(e.take());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 4));
}
BENCHMARK(BM_CdrEncodeSequenceCopying)->Range(1 << 8, 1 << 18);

void BM_CdrRoundTripScalars(benchmark::State& state) {
    for (auto _ : state) {
        corba::cdr::Encoder e(true);
        e.put_u64(1);
        e.put_string("operation");
        e.put_f64(2.5);
        e.put_u32(42);
        corba::cdr::Decoder d(e.take());
        benchmark::DoNotOptimize(d.get_u64());
        benchmark::DoNotOptimize(d.get_string());
        benchmark::DoNotOptimize(d.get_f64());
        benchmark::DoNotOptimize(d.get_u32());
    }
}
BENCHMARK(BM_CdrRoundTripScalars);

void BM_MessageSliceZeroCopy(benchmark::State& state) {
    util::Message m = util::to_message(util::ByteBuf(1 << 20));
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.slice(4096, 1 << 16));
    }
}
BENCHMARK(BM_MessageSliceZeroCopy);

void BM_MessageGather(benchmark::State& state) {
    util::Message m;
    for (int i = 0; i < 16; ++i)
        m.append(util::Segment(util::make_buf(util::ByteBuf(1 << 12))));
    for (auto _ : state) benchmark::DoNotOptimize(m.gather());
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (16 << 12));
}
BENCHMARK(BM_MessageGather);

void BM_BlockingQueuePushPop(benchmark::State& state) {
    osal::BlockingQueue<int> q;
    for (auto _ : state) {
        q.push(1);
        benchmark::DoNotOptimize(q.try_pop());
    }
}
BENCHMARK(BM_BlockingQueuePushPop);

void BM_XmlParseAssembly(benchmark::State& state) {
    const std::string xml = R"(<assembly name="coupling">
        <component id="chem" type="Chemistry" parallel="4">
          <constraint attr="owner" value="companyX"/>
          <attribute name="dt" value="0.1"/>
        </component>
        <component id="trans" type="Transport" parallel="2"/>
        <connection from="chem:transport" to="trans:port"/>
      </assembly>)";
    for (auto _ : state) benchmark::DoNotOptimize(util::xml_parse(xml));
}
BENCHMARK(BM_XmlParseAssembly);

void BM_RedistPlanBlockToBlock(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(gridccm::compute_plan(
            gridccm::Distribution::block(), n,
            gridccm::Distribution::block(), n / 2 + 1, 1 << 20));
    }
}
BENCHMARK(BM_RedistPlanBlockToBlock)->Arg(4)->Arg(32);

void BM_RedistPlanCyclicToBlock(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(gridccm::compute_plan(
            gridccm::Distribution::block_cyclic(64), 8,
            gridccm::Distribution::block(), 4, 1 << 16));
    }
}
BENCHMARK(BM_RedistPlanCyclicToBlock);

} // namespace

BENCHMARK_MAIN();
