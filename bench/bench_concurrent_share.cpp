/// \file bench_concurrent_share.cpp
/// Reproduces §4.4's concurrency result: "Concurrent benchmarks (CORBA and
/// MPI at the same time) show the bandwidth is efficiently shared: each
/// gets 120 MB/s" — both middleware streaming over the same Myrinet NIC
/// pair through the PadicoTM arbitration layer.

#include <thread>

#include "bench/common.hpp"
#include "corba/stub.hpp"
#include "mpi/mpi.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;

namespace {

class SinkServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Sink:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "take") throw RemoteError("BAD_OPERATION");
        (void)in.get_seq_msg<std::uint8_t>();
        corba::skel::ret(out, true);
    }
};

struct Result {
    double mpi_bw = 0;
    double corba_bw = 0;
};

/// Stream kIters x 1MB through MPI and/or CORBA between two nodes.
Result run(bool with_mpi, bool with_corba) {
    constexpr std::size_t kLen = 1 << 20;
    constexpr int kIters = 24;
    Testbed tb(2);
    Result res;
    osal::Event up, done;

    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("cc-ep");
        corba::IOR ior = orb.activate(std::make_shared<SinkServant>());
        proc.grid().register_service("cc/key",
                                     static_cast<ProcessId>(ior.key));
        std::shared_ptr<mpi::World> world;
        if (with_mpi) world = mpi::World::create(rt, "cc", {0, 1});
        up.set();
        if (with_mpi) {
            mpi::Comm& comm = world->world();
            for (int i = 0; i < kIters; ++i) comm.recv_msg(1, 0);
            comm.send_bytes("k", 1, 1, 1);
        }
        done.wait();
        orb.shutdown();
    });

    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        std::shared_ptr<mpi::World> world;
        if (with_mpi) world = mpi::World::create(rt, "cc", {0, 1});
        up.wait();

        // Align the measurement windows of the two streams: with skewed
        // starts each flow would enjoy some solo time and report more than
        // its fair share.
        osal::Barrier start(with_mpi && with_corba ? 2 : 1);
        std::thread mpi_thread;
        if (with_mpi) {
            mpi_thread = std::thread([&] {
                Process::bind_to_thread(&proc);
                mpi::Comm& comm = world->world();
                start.arrive_and_wait();
                const SimTime t0 = proc.now();
                for (int i = 0; i < kIters; ++i)
                    comm.send_msg(util::to_message(util::ByteBuf(kLen)), 0,
                                  0);
                char ack;
                comm.recv_bytes(&ack, 1, 0, 1);
                res.mpi_bw = mb_per_s(
                    static_cast<std::uint64_t>(kIters) * kLen,
                    proc.now() - t0);
            });
        }
        if (with_corba) {
            corba::IOR ior{"cc-ep", proc.grid().wait_service("cc/key"),
                           "IDL:Sink:1.0"};
            corba::ObjectRef ref = orb.resolve(ior);
            corba::call<bool>(ref, "take", std::vector<std::uint8_t>{1});
            start.arrive_and_wait();
            const SimTime t0 = proc.now();
            // Stream oneway invocations (like the MPI side), then flush
            // with one synchronous call.
            for (int i = 0; i < kIters - 1; ++i) {
                corba::cdr::Encoder e(true);
                e.put_seq_shared<std::uint8_t>(
                    util::Segment(util::make_buf(util::ByteBuf(kLen))),
                    kLen);
                ref.oneway("take", e.take());
            }
            corba::cdr::Encoder e(true);
            e.put_seq_shared<std::uint8_t>(
                util::Segment(util::make_buf(util::ByteBuf(kLen))), kLen);
            ref.invoke("take", e.take());
            res.corba_bw = mb_per_s(
                static_cast<std::uint64_t>(kIters) * kLen, proc.now() - t0);
        }
        if (mpi_thread.joinable()) mpi_thread.join();
        done.set();
    });
    tb.grid.join_all();
    return res;
}

} // namespace

int main() {
    print_header("§4.4 concurrent benchmark",
                 "CORBA and MPI sharing one Myrinet NIC through PadicoTM");

    const Result mpi_only = run(true, false);
    const Result corba_only = run(false, true);
    const Result both = run(true, true);

    util::Table table({"configuration", "MPI (MB/s)", "omniORB (MB/s)"});
    table.add_row({"MPI alone", fmt_mb(mpi_only.mpi_bw), "-"});
    table.add_row({"CORBA alone", "-", fmt_mb(corba_only.corba_bw)});
    table.add_row({"both concurrently", vs_paper(both.mpi_bw, 120.0),
                   vs_paper(both.corba_bw, 120.0)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper: alone each ~240 MB/s; concurrently the bandwidth is "
                "efficiently shared, each gets ~120 MB/s\n");
    return 0;
}
