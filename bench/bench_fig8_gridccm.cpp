/// \file bench_fig8_gridccm.cpp
/// Reproduces Fig. 8: "Performance between two parallel components over
/// Myrinet-2000" with the MicoCCM-based GridCCM prototype. A first
/// parallel component (the client group) invokes an operation taking a
/// vector of integers on a second parallel component; the invoked
/// operation only contains an MPI_Barrier. Both sides have n nodes,
/// n = 1, 2, 4, 8.
///
/// Paper values:   nodes   latency (us)   aggregate bandwidth (MB/s)
///                 1 to 1       62                  43
///                 2 to 2       93                  76
///                 4 to 4      123                 144
///                 8 to 8      148                 280

#include "bench/common.hpp"
#include "bench/gridccm_pair.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;
using namespace padico::gridccm;



int main() {
    print_header("Figure 8",
                 "GridCCM (MicoCCM-based) between two parallel components "
                 "over Myrinet-2000");
    const double paper_lat[] = {62, 93, 123, 148};
    const double paper_bw[] = {43, 76, 144, 280};
    util::Table table({"nodes", "latency (us)", "aggregate bw (MB/s)"});
    int idx = 0;
    for (int n : {1, 2, 4, 8}) {
        const Fig8Row row = run_pair(n, corba::profile_mico(), true);
        table.add_row({util::strfmt("%d to %d", n, n),
                       vs_paper(row.latency_us, paper_lat[idx]),
                       vs_paper(row.aggregate_mb, paper_bw[idx])});
        ++idx;
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper: latency is the sum of the Mico latency and the "
                "MPI_Barrier; the bandwidth is efficiently aggregated\n");
    return 0;
}
