#pragma once
/// \file common.hpp
/// Shared plumbing for the paper-reproduction benchmark binaries: grid
/// builders matching the paper's testbed, measurement helpers, and
/// paper-vs-measured table rendering.

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "corba/orb.hpp"
#include "fabric/grid.hpp"
#include "soap/soap.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace padico::bench {

/// The paper's testbed: dual-PIII nodes with Myrinet-2000 and switched
/// Fast-Ethernet.
struct Testbed {
    fabric::Grid grid;
    std::vector<fabric::Machine*> nodes;

    explicit Testbed(int n, bool with_myrinet = true) {
        fabric::NetworkSegment* myri =
            with_myrinet
                ? &grid.add_segment("myri0", fabric::NetTech::Myrinet2000)
                : nullptr;
        auto& eth = grid.add_segment("eth0", fabric::NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("node" + std::to_string(i), 2);
            m.set_attr("pool", "cluster");
            if (myri) grid.attach(m, *myri);
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
    }
};

/// Message sizes of a Fig. 7 style sweep (32 B .. 4 MB).
inline std::vector<std::size_t> sweep_sizes() {
    std::vector<std::size_t> out;
    for (std::size_t s = 32; s <= (4u << 20); s *= 4) out.push_back(s);
    return out;
}

inline std::string fmt_mb(double v) { return util::strfmt("%.1f", v); }
inline std::string fmt_us(double v) { return util::strfmt("%.1f", v); }

/// "measured (paper X, ratio R)" cell.
inline std::string vs_paper(double measured, double paper) {
    if (paper <= 0) return util::strfmt("%.1f", measured);
    return util::strfmt("%.1f  [paper %.1f, x%.2f]", measured, paper,
                        measured / paper);
}

inline void print_header(const char* id, const char* what) {
    std::printf("\n==============================================================\n");
    std::printf("%s — %s\n", id, what);
    std::printf("==============================================================\n");
}

/// Environment override with a default (bench knobs: client counts, shard
/// counts, ...). Zero/garbage values fall back to \p dflt.
inline std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return dflt;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || v == 0) return dflt;
    return static_cast<std::uint64_t>(v);
}

/// Process max-RSS in kilobytes (Linux getrusage); deltas across bench
/// phases give a (monotone) per-connection memory figure.
inline std::uint64_t maxrss_kb() {
    struct rusage ru {};
    ::getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

/// p-quantile (0..100) of an ALREADY SORTED sample set, nearest-rank.
inline double percentile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// ---------------------------------------------------------------------------
// Server-bench harness: raw wire-shape clients shared by bench_server_scale
// and bench_ingress. Raw (below ObjectRef / SoapClient) so a bench client
// can pipeline requests, close() streams explicitly, and watch the server
// prune them.

/// The echo servant both server benches load the ORB with.
class EchoServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        PADICO_CHECK(op == "echo", "unexpected op " + op);
        out.put_string(in.get_string());
    }
};

/// Send one GIOP Request frame (the wire shape ObjectRef::invoke produces)
/// without waiting for the reply — open-loop generators pipeline these.
inline void raw_giop_send(ptm::VLink& conn, std::uint64_t req_id,
                          std::uint64_t key, const std::string& op,
                          util::Message args, bool want_reply = true) {
    corba::cdr::Encoder req(true);
    req.put_u64(req_id);
    req.put_u64(key);
    req.put_bool(want_reply);
    req.put_string(op);
    req.put_message(std::move(args));
    corba::giop::send_message(conn, corba::giop::MsgType::Request,
                              req.take());
}

/// Receive one GIOP Reply frame, check \p req_id and NoException status,
/// and return the result payload bytes.
inline util::Message raw_giop_recv_reply(ptm::VLink& conn,
                                         std::uint64_t req_id) {
    auto reply = corba::giop::recv_message(conn);
    PADICO_CHECK(reply.has_value(), "connection closed during invocation");
    corba::cdr::Decoder dec(std::move(reply->second));
    PADICO_CHECK(dec.get_u64() == req_id, "reply id mismatch");
    PADICO_CHECK(dec.get_u8() == static_cast<std::uint8_t>(
                                     corba::giop::ReplyStatus::NoException),
                 "request raised");
    return dec.get_bytes_msg(dec.remaining());
}

/// One GIOP echo round trip on a raw VLink; asserts the payload survives.
inline void raw_echo_call(ptm::VLink& conn, std::uint64_t req_id,
                          std::uint64_t key, const std::string& payload) {
    raw_giop_send(conn, req_id, key, "echo",
                  corba::cdr::encode(true, payload));
    const auto echoed = corba::cdr::decode_one<std::string>(
        raw_giop_recv_reply(conn, req_id));
    PADICO_CHECK(echoed == payload, "echo payload corrupted");
}

/// Send one length-prefixed SOAP envelope (the SoapClient wire shape),
/// charging the client-side XML cost like soap.cpp's send_text does.
inline void raw_soap_send(ptm::Runtime& rt, ptm::VLink& conn,
                          const std::string& op, const soap::Params& params) {
    const std::string xml = soap::make_envelope(op, params);
    rt.process().clock().advance(static_cast<SimTime>(
        static_cast<double>(xml.size()) * soap::kXmlNsPerByte));
    const std::uint64_t len = xml.size();
    util::ByteBuf framed(&len, sizeof len);
    framed.append(xml.data(), xml.size());
    conn.write(util::to_message(std::move(framed)));
}

/// Receive one length-prefixed SOAP envelope; returns (op, params).
inline std::optional<std::pair<std::string, soap::Params>>
raw_soap_recv(ptm::Runtime& rt, ptm::VLink& conn) {
    auto lm = conn.read_msg_opt(sizeof(std::uint64_t));
    if (!lm.has_value()) return std::nullopt;
    std::uint64_t len = 0;
    lm->copy_out(0, &len, sizeof len);
    util::Message body = conn.read_msg(len);
    auto flat = body.gather();
    rt.process().clock().advance(static_cast<SimTime>(
        static_cast<double>(flat.size()) * soap::kXmlNsPerByte));
    return soap::parse_envelope(std::string(
        reinterpret_cast<const char*>(flat.data()), flat.size()));
}

} // namespace padico::bench
