#pragma once
/// \file common.hpp
/// Shared plumbing for the paper-reproduction benchmark binaries: grid
/// builders matching the paper's testbed, measurement helpers, and
/// paper-vs-measured table rendering.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "fabric/grid.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace padico::bench {

/// The paper's testbed: dual-PIII nodes with Myrinet-2000 and switched
/// Fast-Ethernet.
struct Testbed {
    fabric::Grid grid;
    std::vector<fabric::Machine*> nodes;

    explicit Testbed(int n, bool with_myrinet = true) {
        fabric::NetworkSegment* myri =
            with_myrinet
                ? &grid.add_segment("myri0", fabric::NetTech::Myrinet2000)
                : nullptr;
        auto& eth = grid.add_segment("eth0", fabric::NetTech::FastEthernet);
        for (int i = 0; i < n; ++i) {
            auto& m = grid.add_machine("node" + std::to_string(i), 2);
            m.set_attr("pool", "cluster");
            if (myri) grid.attach(m, *myri);
            grid.attach(m, eth);
            nodes.push_back(&m);
        }
    }
};

/// Message sizes of a Fig. 7 style sweep (32 B .. 4 MB).
inline std::vector<std::size_t> sweep_sizes() {
    std::vector<std::size_t> out;
    for (std::size_t s = 32; s <= (4u << 20); s *= 4) out.push_back(s);
    return out;
}

inline std::string fmt_mb(double v) { return util::strfmt("%.1f", v); }
inline std::string fmt_us(double v) { return util::strfmt("%.1f", v); }

/// "measured (paper X, ratio R)" cell.
inline std::string vs_paper(double measured, double paper) {
    if (paper <= 0) return util::strfmt("%.1f", measured);
    return util::strfmt("%.1f  [paper %.1f, x%.2f]", measured, paper,
                        measured / paper);
}

inline void print_header(const char* id, const char* what) {
    std::printf("\n==============================================================\n");
    std::printf("%s — %s\n", id, what);
    std::printf("==============================================================\n");
}

} // namespace padico::bench
