/// \file bench_fig7_latency.cpp
/// Reproduces the §4.4 latency measurements accompanying Fig. 7:
/// on Myrinet-2000 through PadicoTM — MPI 11 us, omniORB 20 us,
/// ORBacus 54 us, Mico 62 us (half round-trip of a small message).

#include "bench/common.hpp"
#include "corba/stub.hpp"
#include "mpi/mpi.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;

namespace {

class EchoServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "echo") throw RemoteError("BAD_OPERATION");
        corba::skel::ret(out, corba::skel::arg<std::uint32_t>(in));
    }
};

double corba_latency(const corba::OrbProfile& profile) {
    Testbed tb(2);
    double lat = 0;
    osal::Event up, done;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        orb.serve("lat-ep");
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("lat/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        up.wait();
        corba::IOR ior{"lat-ep", proc.grid().wait_service("lat/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        corba::call<std::uint32_t>(ref, "echo", std::uint32_t{0}); // warm
        constexpr int kIters = 50;
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i)
            corba::call<std::uint32_t>(ref, "echo", std::uint32_t{4});
        lat = to_usec(proc.now() - t0) / (2.0 * kIters);
        done.set();
    });
    tb.grid.join_all();
    return lat;
}

double mpi_latency() {
    Testbed tb(2);
    double lat = 0;
    run_spmd(tb.grid, {tb.nodes[0], tb.nodes[1]},
             [&](Process& proc, int rank, int) {
                 ptm::Runtime rt(proc);
                 auto world = mpi::World::create(rt, "lat", {0, 1});
                 mpi::Comm& comm = world->world();
                 constexpr int kIters = 50;
                 char b = 0;
                 if (rank == 0) {
                     const SimTime t0 = proc.now();
                     for (int i = 0; i < kIters; ++i) {
                         comm.send_bytes(&b, 1, 1, 0);
                         comm.recv_bytes(&b, 1, 1, 0);
                     }
                     lat = to_usec(proc.now() - t0) / (2.0 * kIters);
                 } else {
                     for (int i = 0; i < kIters; ++i) {
                         comm.recv_bytes(&b, 1, 0, 0);
                         comm.send_bytes(&b, 1, 0, 0);
                     }
                 }
             });
    tb.grid.join_all();
    return lat;
}

} // namespace

int main() {
    print_header("Fig. 7 companion",
                 "small-message latency on Myrinet-2000 through PadicoTM");
    util::Table table({"stack", "latency (us)"});
    table.add_row({"MPICH/Madeleine", vs_paper(mpi_latency(), 11.0)});
    const struct {
        corba::OrbProfile profile;
        double paper;
    } rows[] = {
        {corba::profile_omniorb3(), 20.0},
        {corba::profile_omniorb4(), 20.0},
        {corba::profile_orbacus(), 54.0},
        {corba::profile_mico(), 62.0},
    };
    for (const auto& r : rows)
        table.add_row({r.profile.name, vs_paper(corba_latency(r.profile),
                                                r.paper)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper (§4.4): MPI 11 us; omniORB 20 us; ORBacus 54 us; "
                "Mico 62 us\n");
    return 0;
}
