/// \file bench_ablation_redistribution.cpp
/// Ablation A2 (design choice of §4.2.2): where should the redistribution
/// happen — on the client side, on the server side, or during the
/// communication? The paper says the decision depends on feasibility and
/// on client vs server network performance; this bench measures all three
/// strategies (plus the automatic chooser) on two shapes:
///
///  - an aligned block->block exchange (identity plan), and
///  - a highly fragmented block-cyclic->block exchange, where in-flight
///    redistribution degenerates into many small fragments across the
///    inter-component network.

#include "bench/common.hpp"
#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;
using namespace padico::gridccm;

namespace {

class SinkComp : public ParallelComponent {
public:
    SinkComp() {
        declare_parallel_facet(
            R"(<parallel-interface component="SinkComp" facet="vec"
                                   distribution="block">
                 <operation name="absorb" argument="block"/>
               </parallel-interface>)",
            {{"absorb", [](const OpContext&, util::Message) {
                  return util::Message();
              }}});
    }
    std::string type() const override { return "SinkComp"; }
};

struct Shape {
    const char* name;
    Distribution client_dist;
    int n_clients;
    int n_servers;
    std::size_t global_len; // int32 elements
};

double run_strategy(const Shape& shape, Strategy strategy,
                    Strategy* chosen) {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type(
            "SinkComp", [] { return std::make_unique<SinkComp>(); });
    });
    const int n_c = shape.n_clients;
    const int n_s = shape.n_servers;
    Testbed tb(n_c + n_s);
    auto& front = tb.grid.add_machine("front");
    tb.grid.attach(front, tb.grid.segment("eth0"));

    for (int i = 0; i < n_s; ++i)
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(i)],
                      [](Process& proc) {
                          ccm::component_server_main(
                              proc, corba::profile_omniorb4());
                      });

    corba::IOR home;
    std::mutex home_mu;
    osal::Event home_ready;
    double elapsed_us = 0;
    std::mutex res_mu;

    tb.grid.spawn(front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        auto dep = deployer.deploy(ccm::Assembly::parse(util::strfmt(
            R"(<assembly name="redist">
                 <component id="sink" type="SinkComp" parallel="%d"/>
               </assembly>)",
            n_s)));
        {
            std::lock_guard<std::mutex> lk(home_mu);
            home = deployer.facet_of(dep, ccm::PortAddr{"sink", "vec"});
        }
        home_ready.set();
        proc.grid().wait_service("redist/done");
        deployer.teardown(dep);
        for (int i = 0; i < n_s; ++i)
            ccm::connect_component_server(
                orb, tb.nodes[static_cast<std::size_t>(i)]->name())
                .shutdown();
    });

    for (int r = 0; r < n_c; ++r) {
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(n_s + r)],
                      [&, r](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, corba::profile_omniorb4());
            home_ready.wait();
            proc.grid().register_service("rc/" + std::to_string(r),
                                         proc.id());
            std::vector<ProcessId> members(static_cast<std::size_t>(n_c));
            for (int i = 0; i < n_c; ++i)
                members[static_cast<std::size_t>(i)] =
                    proc.grid().wait_service("rc/" + std::to_string(i));
            auto world = mpi::World::create(rt, "redistc", members);
            mpi::Comm& comm = world->world();
            corba::IOR h;
            {
                std::lock_guard<std::mutex> lk(home_mu);
                h = home;
            }
            ParallelStub stub(orb, comm, h, shape.client_dist);
            if (chosen != nullptr && r == 0)
                *chosen = stub.choose_strategy(shape.global_len,
                                               sizeof(std::int32_t));
            std::vector<std::int32_t> local(
                shape.client_dist.local_size(r, n_c, shape.global_len), 3);
            // warm-up (connections)
            stub.invoke<std::int32_t>("absorb",
                                      std::span<const std::int32_t>(local),
                                      shape.global_len, strategy);
            comm.barrier();
            const SimTime t0 = proc.now();
            stub.invoke<std::int32_t>("absorb",
                                      std::span<const std::int32_t>(local),
                                      shape.global_len, strategy);
            comm.barrier();
            if (r == 0) {
                std::lock_guard<std::mutex> lk(res_mu);
                elapsed_us = to_usec(proc.now() - t0);
            }
            comm.barrier();
            if (r == 0)
                proc.grid().register_service("redist/done", proc.id());
        });
    }
    tb.grid.join_all();
    return elapsed_us;
}

} // namespace

int main() {
    print_header("Ablation A2",
                 "redistribution strategy: client-side vs server-side vs "
                 "in-flight vs auto (§4.2.2 design space)");

    const Shape shapes[] = {
        {"block->block 4x4, 4 MB", Distribution::block(), 4, 4,
         1u << 20},
        {"block-cyclic:64->block 4x2, 4 MB", Distribution::block_cyclic(64),
         4, 2, 1u << 20},
        {"block->block 2x6, 4 MB", Distribution::block(), 2, 6,
         1u << 20},
    };

    util::Table table({"shape", "in-flight (us)", "client-side (us)",
                       "server-side (us)", "auto (us)", "auto picked"});
    for (const auto& shape : shapes) {
        Strategy chosen = Strategy::Auto;
        const double inflight =
            run_strategy(shape, Strategy::InFlight, nullptr);
        const double client =
            run_strategy(shape, Strategy::ClientSide, nullptr);
        const double server =
            run_strategy(shape, Strategy::ServerSide, nullptr);
        const double automatic =
            run_strategy(shape, Strategy::Auto, &chosen);
        table.add_row({shape.name, fmt_us(inflight), fmt_us(client),
                       fmt_us(server), fmt_us(automatic),
                       strategy_name(chosen)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "expected shape: contiguous exchanges (block->block, any node "
        "counts) favor in-flight; interleaved layouts that shatter into "
        "thousands of tiny fragments favor consolidating on one side, "
        "which spares the receiver the per-fragment bookkeeping\n");
    return 0;
}
