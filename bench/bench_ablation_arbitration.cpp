/// \file bench_ablation_arbitration.cpp
/// Ablation A1 (design choice of §4.3.1): cooperative arbitration vs
/// competitive access to the exclusive SAN adapter.
///
/// With PadicoTM, MPI and CORBA share the Myrinet NIC and each streams at
/// ~120 MB/s. Without it ("competitive"), whichever middleware grabs the
/// BIP driver first owns the NIC; the other one cannot open it and falls
/// back to the Fast-Ethernet — a 10x loss, when it does not crash outright.

#include "bench/common.hpp"
#include "corba/stub.hpp"
#include "madeleine/madeleine.hpp"
#include "mpi/mpi.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;

namespace {

class SinkServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Sink:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "take") throw RemoteError("BAD_OPERATION");
        (void)in.get_seq_msg<std::uint8_t>();
        corba::skel::ret(out, true);
    }
};

/// CORBA streaming bandwidth when raw MPI already owns the SAN (or not).
double corba_bw_with_raw_mpi(bool raw_mpi_owns_san) {
    constexpr std::size_t kLen = 1 << 20;
    constexpr int kIters = 16;
    Testbed tb(2);
    auto& myri = tb.grid.segment("myri0");
    double bw = 0;
    osal::Event up, done;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        // The competitive scenario: MPICH-over-BIP opened the NIC first.
        std::unique_ptr<mad::Endpoint> raw;
        if (raw_mpi_owns_san)
            raw = std::make_unique<mad::Endpoint>(proc, myri, "mpich/bip");
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        orb.serve("arb-ep");
        corba::IOR ior = orb.activate(std::make_shared<SinkServant>());
        proc.grid().register_service("arb/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        std::unique_ptr<mad::Endpoint> raw;
        if (raw_mpi_owns_san)
            raw = std::make_unique<mad::Endpoint>(proc, myri, "mpich/bip");
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        up.wait();
        corba::IOR ior{"arb-ep", proc.grid().wait_service("arb/key"),
                       "IDL:Sink:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        corba::call<bool>(ref, "take", std::vector<std::uint8_t>{1});
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i) {
            corba::cdr::Encoder e(true);
            e.put_seq_shared<std::uint8_t>(
                util::Segment(util::make_buf(util::ByteBuf(kLen))), kLen);
            if (i + 1 < kIters)
                ref.oneway("take", e.take());
            else
                ref.invoke("take", e.take());
        }
        bw = mb_per_s(static_cast<std::uint64_t>(kIters) * kLen,
                      proc.now() - t0);
        done.set();
    });
    tb.grid.join_all();
    return bw;
}

/// Whether a second raw middleware can open the NIC at all.
bool raw_double_open_possible() {
    Testbed tb(2);
    auto& myri = tb.grid.segment("myri0");
    bool ok = true;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        mad::Endpoint first(proc, myri, "mpich/bip");
        try {
            mad::Endpoint second(proc, myri, "omniorb/raw");
        } catch (const ResourceConflict&) {
            ok = false;
        }
    });
    tb.grid.join_all();
    return ok;
}

} // namespace

int main() {
    print_header("Ablation A1",
                 "cooperative arbitration (PadicoTM) vs competitive raw "
                 "access to the Myrinet NIC");

    std::printf("raw double-open of the exclusive NIC possible: %s\n\n",
                raw_double_open_possible() ? "yes (?!)" : "no (BIP-style "
                                                          "conflict)");

    const double coop = corba_bw_with_raw_mpi(false);
    const double competitive = corba_bw_with_raw_mpi(true);

    util::Table table({"configuration", "CORBA stream (MB/s)", "network"});
    table.add_row({"arbitrated (PadicoTM owns NIC)", fmt_mb(coop),
                   "Myrinet-2000"});
    table.add_row({"competitive (raw MPI owns NIC)", fmt_mb(competitive),
                   "Fast-Ethernet fallback"});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("factor lost without arbitration: x%.1f\n",
                coop / competitive);
    return 0;
}
