#pragma once
/// \file gridccm_pair.hpp
/// Shared workload of the Fig. 8 family: an n-member client group invoking
/// a vector-of-integers operation (whose body is an MPI_Barrier) on an
/// n-member parallel component, returning latency and aggregate bandwidth.

#include "bench/common.hpp"
#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "osal/sync.hpp"

namespace padico::bench {

using namespace padico::fabric;
using namespace padico::gridccm;


/// The server side of the Fig. 8 workload.
class BenchComp : public ParallelComponent {
public:
    BenchComp() {
        declare_parallel_facet(
            R"(<parallel-interface component="BenchComp" facet="bench"
                                   distribution="block">
                 <operation name="xfer" argument="block"/>
               </parallel-interface>)",
            {{"xfer", [](const OpContext& ctx, util::Message) {
                  // "The invoked operation only contains a MPI_Barrier."
                  if (ctx.comm != nullptr) ctx.comm->barrier();
                  return util::Message();
              }}});
    }
    std::string type() const override { return "BenchComp"; }
};

inline void install_bench_component() {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type(
            "BenchComp", [] { return std::make_unique<BenchComp>(); });
    });
}

struct Fig8Row {
    double latency_us = 0;
    double aggregate_mb = 0;
};

inline Fig8Row run_pair(int n, const corba::OrbProfile& profile, bool with_san) {
    install_bench_component();
    // n server nodes + n client nodes + a frontend.
    Testbed tb(2 * n, with_san);
    auto& front = tb.grid.add_machine("front");
    tb.grid.attach(front, tb.grid.segment("eth0"));

    for (int i = 0; i < n; ++i)
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(i)],
                      [&profile](Process& proc) {
                          ccm::component_server_main(proc, profile);
                      });

    corba::IOR home;
    std::mutex home_mu;
    osal::Event home_ready;
    Fig8Row row;
    std::mutex row_mu;

    tb.grid.spawn(front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        ccm::Deployer deployer(orb);
        auto dep = deployer.deploy(ccm::Assembly::parse(util::strfmt(
            R"(<assembly name="fig8">
                 <component id="bench" type="BenchComp" parallel="%d"/>
               </assembly>)",
            n)));
        {
            std::lock_guard<std::mutex> lk(home_mu);
            home = deployer.facet_of(dep, ccm::PortAddr{"bench", "bench"});
        }
        home_ready.set();
        proc.grid().wait_service("fig8/done");
        deployer.teardown(dep);
        for (int i = 0; i < n; ++i)
            ccm::connect_component_server(
                orb, tb.nodes[static_cast<std::size_t>(i)]->name())
                .shutdown();
    });

    // Client group on the second half of the nodes.
    for (int r = 0; r < n; ++r) {
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(n + r)],
                      [&, r](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, profile);
            home_ready.wait();
            proc.grid().register_service(
                "fig8/client/" + std::to_string(r), proc.id());
            std::vector<ProcessId> members(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i)
                members[static_cast<std::size_t>(i)] =
                    proc.grid().wait_service("fig8/client/" +
                                             std::to_string(i));
            auto world = mpi::World::create(rt, "fig8clients", members);
            mpi::Comm& comm = world->world();

            corba::IOR h;
            {
                std::lock_guard<std::mutex> lk(home_mu);
                h = home;
            }
            ParallelStub stub(orb, comm, h);
            const Distribution block = Distribution::block();

            // --- latency: minimal vector, averaged ----------------------
            constexpr int kLatIters = 10;
            {
                const std::size_t global = static_cast<std::size_t>(n);
                std::vector<std::int32_t> local(
                    block.local_size(r, n, global), 1);
                stub.invoke<std::int32_t>("xfer",
                                          std::span<const std::int32_t>(
                                              local),
                                          global, Strategy::InFlight);
                comm.barrier();
                const SimTime t0 = proc.now();
                for (int i = 0; i < kLatIters; ++i)
                    stub.invoke<std::int32_t>(
                        "xfer", std::span<const std::int32_t>(local),
                        global, Strategy::InFlight);
                comm.barrier();
                if (r == 0) {
                    std::lock_guard<std::mutex> lk(row_mu);
                    row.latency_us =
                        to_usec(proc.now() - t0) / (2.0 * kLatIters);
                }
            }

            // --- aggregate bandwidth: 1 MiB of integers per node --------
            {
                const std::size_t global =
                    static_cast<std::size_t>(n) * (256u << 10);
                std::vector<std::int32_t> local(
                    block.local_size(r, n, global), 7);
                comm.barrier();
                const SimTime t0 = proc.now();
                stub.invoke<std::int32_t>("xfer",
                                          std::span<const std::int32_t>(
                                              local),
                                          global, Strategy::InFlight);
                comm.barrier();
                if (r == 0) {
                    std::lock_guard<std::mutex> lk(row_mu);
                    row.aggregate_mb = mb_per_s(
                        global * sizeof(std::int32_t), proc.now() - t0);
                }
            }
            comm.barrier();
            if (r == 0)
                proc.grid().register_service("fig8/done", proc.id());
        });
    }
    tb.grid.join_all();
    return row;
}


} // namespace padico::bench
