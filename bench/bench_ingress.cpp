// Fan-in ingress benchmark: how many concurrent simulated connections one
// PadicoTM server node sustains, and at what latency. This is the
// ROADMAP's "Million-client ingress" item: the paper's middleware
// personalities (CORBA, SOAP, HLA-over-CORBA) multiplexed over one
// network core, driven by a deployment-scale client population instead of
// bench_server_scale's 64.
//
// Legs:
//  * serial: 1 client x 64 requests in each server mode (legacy
//    thread-per-connection, PR-2 event dispatcher, sharded readiness).
//    The virtual completion time after every request must be BIT-IDENTICAL
//    across modes — the ingress machinery is real-time plumbing only.
//  * legacy: closed-loop CORBA echo at a small connection count (the
//    thread-per-connection shape cannot hold 100k threads) — the memory
//    and thread baseline.
//  * event: the PR-2 dispatcher at a mid connection count — its WaitSet
//    poll is O(live connections) per wake, which is the wall this PR
//    removes.
//  * sharded: the full population (default 100k) with a mixed protocol
//    population (75% CORBA echo / 20% SOAP echo / 5% HLA attribute
//    updates), closed-loop rounds for service latency and a windowed
//    open-loop pass for queueing latency; reports p50/p99/p999 (us),
//    per-protocol ingress counters from Runtime::stats(), peak server
//    threads, and resident memory per connection.
//
// Thread bound: total server threads across all three cores must stay
// <= 2 x max(hardware_concurrency, 8). The max() floor keeps the bound
// meaningful on 1-2 core CI containers — the point is that thread count
// scales with the machine, never with the connection count.
//
// Latency methodology (EXPERIMENTS.md "ingress"): closed-loop samples are
// per-request wall-clock round-trip times across every client; open-loop
// samples stamp each request at send time inside a fixed-depth window and
// measure completion minus stamp. Percentiles are nearest-rank with linear
// interpolation over the merged sample set.
//
// Writes one JSON object to --out (default stdout); exits nonzero if the
// virtual-time identity, the thread bound, or the sustained-connection
// target fails.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "corba/orb.hpp"
#include "hla/hla.hpp"
#include "osal/sync.hpp"
#include "padicotm/runtime.hpp"
#include "soap/soap.hpp"

namespace padico::bench {
namespace {

using namespace padico::fabric;
using svc::ServerCore;

constexpr std::size_t kPayload = 64; // CORBA echo payload bytes

enum class Proto { kCorba, kSoap, kHla };

/// 75/20/5 protocol mix, deterministic per connection index.
Proto proto_of(std::uint64_t conn) {
    const auto r = conn % 20;
    if (r < 15) return Proto::kCorba;
    if (r < 19) return Proto::kSoap;
    return Proto::kHla;
}

struct Knobs {
    bool quick = false;
    std::uint64_t conns = 100000;   ///< sharded-leg population
    std::uint64_t client_procs = 8; ///< client process count
    std::uint64_t rounds = 2;       ///< closed-loop rounds over the population
    std::uint64_t window = 512;     ///< open-loop in-flight window
    std::size_t shards = 2;         ///< per-core readiness shards
    std::size_t workers = 2;        ///< per-core pool workers
    std::uint64_t thread_budget = 16;
};

Knobs make_knobs(bool quick) {
    Knobs k;
    k.quick = quick;
    k.conns = env_u64("PADICO_INGRESS_CONNS", quick ? 1500 : 100000);
    k.client_procs =
        env_u64("PADICO_INGRESS_CLIENTS", quick ? 4 : 8);
    k.rounds = env_u64("PADICO_INGRESS_ROUNDS", 2);
    k.window = env_u64("PADICO_INGRESS_WINDOW", quick ? 256 : 512);
    // Three server cores (CORBA echo, SOAP, HLA gateway) of (shards +
    // workers) threads each, plus one idle sweeper, must fit the budget
    // 2 x max(hw, 8): solve 6s + 1 <= 2*base for the shard/worker width.
    const std::uint64_t hw = std::thread::hardware_concurrency();
    const std::uint64_t base = std::max<std::uint64_t>(hw, 8);
    k.thread_budget = 2 * base;
    const std::uint64_t s = std::max<std::uint64_t>(1, base / 3);
    k.shards = static_cast<std::size_t>(s);
    k.workers = static_cast<std::size_t>(s);
    return k;
}

struct LatencySummary {
    double p50 = 0, p99 = 0, p999 = 0;
    std::size_t samples = 0;
};

LatencySummary summarize(std::vector<double>& us) {
    std::sort(us.begin(), us.end());
    LatencySummary s;
    s.samples = us.size();
    s.p50 = percentile(us, 50);
    s.p99 = percentile(us, 99);
    s.p999 = percentile(us, 99.9);
    return s;
}

double now_us() {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ---------------------------------------------------------------------------
// Serial virtual-time identity (the same check bench_server_scale runs,
// here across all three modes with the ingress-tuned options).

std::vector<SimTime> serial_trace(ServerCore::Mode mode, const Knobs& k) {
    Testbed tb(2, /*with_myrinet=*/false);
    osal::Event served;
    std::vector<SimTime> trace;
    std::mutex trace_mu;
    osal::Event client_done;

    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ServerCore::Options opts;
        opts.workers = k.workers;
        opts.mode = mode;
        opts.readiness_shards = k.shards;
        orb.serve("ingress-serial", opts);
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("bench/ingress/serial-key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        client_done.wait();
        orb.shutdown();
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        served.wait();
        const std::uint64_t key =
            proc.grid().wait_service("bench/ingress/serial-key");
        ptm::VLink conn = ptm::VLink::connect(rt, "ingress-serial");
        const std::string payload(kPayload, 'x');
        std::vector<SimTime> local;
        for (int i = 0; i < 64; ++i) {
            raw_echo_call(conn, static_cast<std::uint64_t>(i + 1), key,
                          payload);
            local.push_back(proc.now());
        }
        conn.close();
        {
            std::lock_guard<std::mutex> lk(trace_mu);
            trace = std::move(local);
        }
        client_done.set();
    });
    tb.grid.join_all();
    return trace;
}

// ---------------------------------------------------------------------------
// One fan-in leg.

struct LegResult {
    std::string mode;
    std::uint64_t conns = 0;
    double setup_wall_ms = 0;
    double traffic_wall_ms = 0;
    std::uint64_t live_at_peak = 0; ///< live connections after setup
    double rss_kb_per_conn = 0;
    std::size_t peak_threads_total = 0; ///< sum over server cores
    LatencySummary closed;
    LatencySummary open; ///< sharded leg only (windowed pass)
    std::map<std::string, ptm::TrafficCounters::Ingress> ingress;
    bool mixed = false;
};

ServerCore::Options core_opts(ServerCore::Mode mode, const Knobs& k,
                              std::uint64_t idle_ms = 0) {
    ServerCore::Options o;
    o.workers = k.workers;
    o.mode = mode;
    o.readiness_shards = k.shards;
    o.idle_timeout_ms = idle_ms;
    return o;
}

/// Runs one population against one server node. \p mixed selects the
/// CORBA+SOAP+HLA mix (sharded leg); otherwise every connection is CORBA.
LegResult run_leg(ServerCore::Mode mode, std::uint64_t n_conns,
                  const Knobs& k, bool mixed, bool open_loop_pass) {
    const std::uint64_t n_clients =
        std::min<std::uint64_t>(k.client_procs, n_conns);
    Testbed tb(static_cast<int>(n_clients) + 1, /*with_myrinet=*/false);
    osal::Event served;
    osal::Latch setup_done(static_cast<std::size_t>(n_clients));
    osal::Event live_checked;
    osal::Latch clients_done(static_cast<std::size_t>(n_clients));

    LegResult res;
    res.conns = n_conns;
    res.mixed = mixed;
    std::mutex res_mu;
    std::vector<double> closed_us;
    std::vector<double> open_us;

    const std::uint64_t rss0 = maxrss_kb();
    const auto t0 = std::chrono::steady_clock::now();
    double setup_end_us = 0;

    // --- server node ----------------------------------------------------
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        // CORBA echo core. The sharded leg also carries the idle-sweep
        // timer wheel (long timeout: nothing reaps, but every connection
        // is parked on the wheel, so the sweep runs at population scale).
        corba::Orb echo_orb(rt, corba::profile_omniorb4());
        echo_orb.serve("ingress-corba",
                       core_opts(mode, k,
                                 mode == ServerCore::Mode::kShardedReadiness
                                     ? 600000
                                     : 0));
        corba::IOR echo_ior =
            echo_orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("bench/ingress/key",
                                     static_cast<ProcessId>(echo_ior.key));

        // SOAP + HLA cores only exist in the mixed leg.
        std::unique_ptr<soap::SoapServer> soap_srv;
        std::unique_ptr<corba::Orb> hla_orb;
        std::unique_ptr<hla::RtiGateway> gateway;
        if (mixed) {
            soap_srv = std::make_unique<soap::SoapServer>(
                rt, "ingress-soap", core_opts(mode, k));
            soap_srv->bind("echo",
                           [](const soap::Params& p) { return p; });
            hla_orb = std::make_unique<corba::Orb>(
                rt, corba::profile_omniorb4());
            gateway = std::make_unique<hla::RtiGateway>(
                *hla_orb, "ingress", core_opts(mode, k));
        }
        served.set();

        setup_done.wait();
        // Sustained-population snapshot: every client connect() has
        // returned; spin until the cores have adopted them all (accepts
        // are asynchronous), then record the concurrently-live count.
        std::uint64_t live = 0;
        for (int spin = 0; spin < 20000; ++spin) {
            live = echo_orb.server_stats().live_connections;
            if (soap_srv)
                live += soap_srv->server_stats().live_connections;
            if (hla_orb)
                live += hla_orb->server_stats().live_connections;
            if (live >= n_conns) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        {
            std::lock_guard<std::mutex> lk(res_mu);
            res.live_at_peak = live;
            setup_end_us = now_us();
        }
        live_checked.set();

        clients_done.wait();
        // Clients closed their streams; let the cores prune.
        const auto want = n_conns;
        for (int spin = 0; spin < 20000; ++spin) {
            std::uint64_t pruned = echo_orb.server_stats().pruned;
            if (soap_srv) pruned += soap_srv->server_stats().pruned;
            if (hla_orb) pruned += hla_orb->server_stats().pruned;
            if (pruned >= want) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        {
            std::lock_guard<std::mutex> lk(res_mu);
            res.peak_threads_total = echo_orb.server_stats().peak_threads;
            if (soap_srv)
                res.peak_threads_total +=
                    soap_srv->server_stats().peak_threads;
            if (hla_orb)
                res.peak_threads_total +=
                    hla_orb->server_stats().peak_threads;
            res.ingress = rt.stats().ingress_by_protocol;
        }
        if (gateway) gateway.reset();
        if (hla_orb) hla_orb->shutdown();
        if (soap_srv) soap_srv->shutdown();
        echo_orb.shutdown();
    });

    // --- client nodes ---------------------------------------------------
    for (std::uint64_t c = 0; c < n_clients; ++c) {
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(c) + 1],
                      [&, c](Process& proc) {
            ptm::Runtime rt(proc);
            served.wait();
            const std::uint64_t echo_key =
                proc.grid().wait_service("bench/ingress/key");
            std::uint64_t gw_key = 0;
            if (mixed)
                gw_key = proc.grid().wait_service("rti/ingress/key");

            // This client's slice of the population.
            struct ClientConn {
                ptm::VLink link;
                Proto proto;
                std::uint64_t id;     ///< global connection index
                std::uint64_t object = 0; ///< HLA object handle
            };
            std::vector<ClientConn> slice;
            std::uint64_t next_req = 1;
            for (std::uint64_t i = c; i < n_conns; i += n_clients) {
                const Proto p = mixed ? proto_of(i) : Proto::kCorba;
                const char* ep = p == Proto::kCorba ? "ingress-corba"
                                 : p == Proto::kSoap
                                     ? "ingress-soap"
                                     : "rti-ep/ingress";
                ClientConn cc{ptm::VLink::connect(rt, ep), p, i, 0};
                if (p == Proto::kHla) {
                    // join + publish + register once per federate conn.
                    const std::string fed = "fed-" + std::to_string(i);
                    corba::cdr::Encoder j(true);
                    j.put_string(fed);
                    corba::cdr_put(j, corba::IOR{});
                    raw_giop_send(cc.link, next_req, gw_key, "join",
                                  j.take());
                    raw_giop_recv_reply(cc.link, next_req++);
                    corba::cdr::Encoder pb(true);
                    pb.put_string(fed);
                    pb.put_string("Position");
                    raw_giop_send(cc.link, next_req, gw_key, "publish",
                                  pb.take());
                    raw_giop_recv_reply(cc.link, next_req++);
                    corba::cdr::Encoder ro(true);
                    ro.put_string(fed);
                    ro.put_string("Position");
                    raw_giop_send(cc.link, next_req, gw_key,
                                  "register_object", ro.take());
                    cc.object = corba::cdr::decode_one<std::uint64_t>(
                        raw_giop_recv_reply(cc.link, next_req++));
                }
                slice.push_back(std::move(cc));
            }
            setup_done.count_down();
            live_checked.wait();

            const std::string payload(kPayload, 'x');
            std::vector<double> my_closed;
            std::vector<double> my_open;
            my_closed.reserve(slice.size() * k.rounds);

            auto one_call = [&](ClientConn& cc) {
                switch (cc.proto) {
                case Proto::kCorba:
                    raw_echo_call(cc.link, next_req++, echo_key, payload);
                    break;
                case Proto::kSoap: {
                    raw_soap_send(rt, cc.link, "echo",
                                  {{"v", std::to_string(cc.id)}});
                    const auto r = raw_soap_recv(rt, cc.link);
                    PADICO_CHECK(r.has_value(), "soap stream closed");
                    break;
                }
                case Proto::kHla: {
                    corba::cdr::Encoder u(true);
                    u.put_string("fed-" + std::to_string(cc.id));
                    u.put_u64(cc.object);
                    hla::cdr_put(u, {{"x", std::to_string(cc.id)}});
                    const std::uint64_t id = next_req++;
                    raw_giop_send(cc.link, id, gw_key, "update", u.take());
                    raw_giop_recv_reply(cc.link, id);
                    break;
                }
                }
            };

            // Closed loop: one outstanding request per client process.
            for (std::uint64_t r = 0; r < k.rounds; ++r) {
                for (auto& cc : slice) {
                    const double t = now_us();
                    one_call(cc);
                    my_closed.push_back(now_us() - t);
                }
            }

            // Windowed open loop (sharded leg): keep `window` requests in
            // flight across the slice, stamping each at send time.
            if (open_loop_pass && !slice.empty()) {
                const std::uint64_t win =
                    std::min<std::uint64_t>(k.window, slice.size());
                std::vector<double> sent_at(win);
                for (std::uint64_t base = 0; base + win <= slice.size();
                     base += win) {
                    for (std::uint64_t i = 0; i < win; ++i) {
                        ClientConn& cc = slice[base + i];
                        sent_at[i] = now_us();
                        switch (cc.proto) {
                        case Proto::kCorba:
                            raw_giop_send(cc.link, 1000000 + i, echo_key,
                                          "echo",
                                          corba::cdr::encode(true, payload));
                            break;
                        case Proto::kSoap:
                            raw_soap_send(rt, cc.link, "echo",
                                          {{"v", "w"}});
                            break;
                        case Proto::kHla: {
                            corba::cdr::Encoder u(true);
                            u.put_string("fed-" + std::to_string(cc.id));
                            u.put_u64(cc.object);
                            hla::cdr_put(u, {{"x", "w"}});
                            raw_giop_send(cc.link, 1000000 + i, gw_key,
                                          "update", u.take());
                            break;
                        }
                        }
                    }
                    for (std::uint64_t i = 0; i < win; ++i) {
                        ClientConn& cc = slice[base + i];
                        if (cc.proto == Proto::kSoap) {
                            const auto r = raw_soap_recv(rt, cc.link);
                            PADICO_CHECK(r.has_value(),
                                         "soap stream closed");
                        } else {
                            raw_giop_recv_reply(cc.link, 1000000 + i);
                        }
                        my_open.push_back(now_us() - sent_at[i]);
                    }
                }
            }

            for (auto& cc : slice) cc.link.close();
            {
                std::lock_guard<std::mutex> lk(res_mu);
                closed_us.insert(closed_us.end(), my_closed.begin(),
                                 my_closed.end());
                open_us.insert(open_us.end(), my_open.begin(),
                               my_open.end());
            }
            clients_done.count_down();
        });
    }

    tb.grid.join_all();
    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    const std::uint64_t rss1 = maxrss_kb();
    res.setup_wall_ms =
        setup_end_us / 1000.0 -
        std::chrono::duration<double, std::milli>(t0.time_since_epoch())
            .count();
    res.traffic_wall_ms = total_ms - res.setup_wall_ms;
    res.rss_kb_per_conn = n_conns == 0
                              ? 0
                              : static_cast<double>(rss1 - rss0) /
                                    static_cast<double>(n_conns);
    res.closed = summarize(closed_us);
    res.open = summarize(open_us);
    return res;
}

// ---------------------------------------------------------------------------

void print_leg(std::FILE* f, const LegResult& r, const char* name,
               bool thread_bound_ok) {
    std::fprintf(f,
                 "  {\"mode\": \"%s\", \"connections\": %llu, "
                 "\"live_at_peak\": %llu,\n"
                 "   \"setup_wall_ms\": %.1f, \"traffic_wall_ms\": %.1f, "
                 "\"peak_threads\": %zu, \"thread_bound_ok\": %s,\n"
                 "   \"rss_kb_per_conn\": %.2f,\n"
                 "   \"closed_loop\": {\"samples\": %zu, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"p999_us\": %.2f}",
                 name, static_cast<unsigned long long>(r.conns),
                 static_cast<unsigned long long>(r.live_at_peak),
                 r.setup_wall_ms, r.traffic_wall_ms, r.peak_threads_total,
                 thread_bound_ok ? "true" : "false", r.rss_kb_per_conn,
                 r.closed.samples, r.closed.p50, r.closed.p99,
                 r.closed.p999);
    if (r.open.samples > 0)
        std::fprintf(f,
                     ",\n   \"open_loop\": {\"samples\": %zu, "
                     "\"p50_us\": %.2f, \"p99_us\": %.2f, "
                     "\"p999_us\": %.2f}",
                     r.open.samples, r.open.p50, r.open.p99, r.open.p999);
    if (!r.ingress.empty()) {
        std::fprintf(f, ",\n   \"ingress\": {");
        bool first = true;
        for (const auto& [proto, in] : r.ingress) {
            std::fprintf(
                f,
                "%s\n    \"%s\": {\"accepted\": %llu, \"closed\": %llu, "
                "\"idle_reaped\": %llu, \"frames\": %llu, "
                "\"accept_batches\": %llu, \"accept_batch_max\": %llu, "
                "\"stale_events\": %llu, "
                "\"ready_queue_high_water\": %llu}",
                first ? "" : ",", proto.c_str(),
                static_cast<unsigned long long>(in.accepted),
                static_cast<unsigned long long>(in.closed),
                static_cast<unsigned long long>(in.idle_reaped),
                static_cast<unsigned long long>(in.frames),
                static_cast<unsigned long long>(in.accept_batches),
                static_cast<unsigned long long>(in.accept_batch_max),
                static_cast<unsigned long long>(in.stale_events),
                static_cast<unsigned long long>(in.ready_queue_high_water));
            first = false;
        }
        std::fprintf(f, "}");
    }
    std::fprintf(f, "}");
}

int run(bool quick, const char* out_path) {
    const Knobs k = make_knobs(quick);

    // --- serial virtual-time identity across the three modes ------------
    const auto tl = serial_trace(ServerCore::Mode::kThreadPerConnection, k);
    const auto te = serial_trace(ServerCore::Mode::kEventDriven, k);
    const auto ts = serial_trace(ServerCore::Mode::kShardedReadiness, k);
    const bool identical = !tl.empty() && tl == te && tl == ts;

    // --- fan-in legs -----------------------------------------------------
    const std::uint64_t legacy_n = std::min<std::uint64_t>(k.conns, 256);
    const std::uint64_t event_n = std::min<std::uint64_t>(k.conns, 4096);
    LegResult legacy = run_leg(ServerCore::Mode::kThreadPerConnection,
                               legacy_n, k, /*mixed=*/false,
                               /*open_loop_pass=*/false);
    LegResult event = run_leg(ServerCore::Mode::kEventDriven, event_n, k,
                              /*mixed=*/false, /*open_loop_pass=*/false);
    LegResult sharded = run_leg(ServerCore::Mode::kShardedReadiness,
                                k.conns, k, /*mixed=*/true,
                                /*open_loop_pass=*/true);

    const bool sharded_bound_ok =
        sharded.peak_threads_total <= k.thread_budget;
    const bool sustained_ok = sharded.live_at_peak >= k.conns;
    const bool mem_ok =
        quick || sharded.rss_kb_per_conn < legacy.rss_kb_per_conn;

    std::FILE* f = out_path != nullptr ? std::fopen(out_path, "w") : stdout;
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n \"bench\": \"ingress\",\n \"quick\": %s,\n",
                 quick ? "true" : "false");
    std::fprintf(f,
                 " \"hardware_concurrency\": %u,\n"
                 " \"thread_budget\": %llu,\n"
                 " \"shards_per_core\": %zu, \"workers_per_core\": %zu,\n",
                 std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(k.thread_budget), k.shards,
                 k.workers);
    std::fprintf(f,
                 " \"serial\": {\"requests\": 64, "
                 "\"virtual_end_legacy\": %lld, "
                 "\"virtual_end_event\": %lld, "
                 "\"virtual_end_sharded\": %lld, "
                 "\"virtual_time_identical\": %s},\n",
                 static_cast<long long>(tl.empty() ? 0 : tl.back()),
                 static_cast<long long>(te.empty() ? 0 : te.back()),
                 static_cast<long long>(ts.empty() ? 0 : ts.back()),
                 identical ? "true" : "false");
    std::fprintf(f,
                 " \"mix\": {\"corba_pct\": 75, \"soap_pct\": 20, "
                 "\"hla_pct\": 5},\n");
    std::fprintf(f, " \"legs\": [\n");
    print_leg(f, legacy, "legacy", true);
    std::fprintf(f, ",\n");
    print_leg(f, event, "event", true);
    std::fprintf(f, ",\n");
    print_leg(f, sharded, "sharded", sharded_bound_ok);
    std::fprintf(f, "\n ],\n");
    std::fprintf(f,
                 " \"sustained_connections\": %llu,\n"
                 " \"sustained_ok\": %s,\n"
                 " \"thread_bound_ok\": %s,\n"
                 " \"memory_sublinear_ok\": %s,\n"
                 " \"virtual_time_identical\": %s\n}\n",
                 static_cast<unsigned long long>(sharded.live_at_peak),
                 sustained_ok ? "true" : "false",
                 sharded_bound_ok ? "true" : "false",
                 mem_ok ? "true" : "false",
                 identical ? "true" : "false");
    if (f != stdout) std::fclose(f);

    int rc = 0;
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: serial virtual times diverge across modes\n");
        rc = 1;
    }
    if (!sharded_bound_ok) {
        std::fprintf(stderr,
                     "FAIL: server thread peak %zu exceeds budget %llu\n",
                     sharded.peak_threads_total,
                     static_cast<unsigned long long>(k.thread_budget));
        rc = 1;
    }
    if (!sustained_ok) {
        std::fprintf(stderr,
                     "FAIL: sustained %llu < target %llu connections\n",
                     static_cast<unsigned long long>(sharded.live_at_peak),
                     static_cast<unsigned long long>(k.conns));
        rc = 1;
    }
    if (!mem_ok) {
        std::fprintf(stderr,
                     "FAIL: sharded memory/conn %.2f kB not below legacy "
                     "%.2f kB\n",
                     sharded.rss_kb_per_conn, legacy.rss_kb_per_conn);
        rc = 1;
    }
    return rc;
}

} // namespace
} // namespace padico::bench

int main(int argc, char** argv) {
    bool quick = false;
    const char* out = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }
    return padico::bench::run(quick, out);
}
