// Server-scalability benchmark of the event-driven server core: N clients
// x M requests against one CORBA server, run in both server shapes —
// kEventDriven (shared readiness dispatcher + fixed pool) and
// kThreadPerConnection (the historical acceptor + thread-per-link shape).
//
// Two legs:
//  * serial: 1 client, M sequential requests, both modes. The virtual
//    completion time after every request must be BIT-IDENTICAL across
//    modes — the threading shape is real-time plumbing and must not move
//    a single virtual-time event.
//  * scale: 64 concurrent clients. The metric is the server's peak thread
//    count (ServerCore tickets): the event core stays at 1 dispatcher +
//    pool regardless of connections, the legacy shape grows O(clients).
//
// Prints one JSON object; exits nonzero if virtual times diverge or the
// event-mode thread bound is violated.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "corba/orb.hpp"
#include "osal/sync.hpp"
#include "padicotm/runtime.hpp"

namespace padico::bench {
namespace {

using namespace padico::fabric;
using namespace padico::corba;

/// Client count of the scale leg: historically hardcoded to 64, now an
/// env knob so the same harness drives bigger fan-in runs.
const int kScaleClients =
    static_cast<int>(env_u64("PADICO_SCALE_CLIENTS", 64));
constexpr int kScaleRequests = 20; // per client
constexpr int kSerialRequests = 200;
constexpr std::size_t kPayload = 2048; // request payload bytes
constexpr std::size_t kPoolWorkers = 2;
constexpr std::size_t kShards = 2; // sharded-readiness mode

struct LegResult {
    double wall_ms = 0;
    svc::ServerCore::Stats stats;
    std::vector<SimTime> trace; ///< client 0: virtual time after each reply
};

LegResult run_leg(svc::ServerCore::Mode mode, int n_clients, int n_requests) {
    Testbed tb(n_clients + 1, /*with_myrinet=*/false);
    osal::Event served;
    osal::Latch clients_done(static_cast<std::size_t>(n_clients));
    osal::Barrier start(static_cast<std::size_t>(n_clients));
    LegResult res;
    std::mutex res_mu;

    const auto t0 = std::chrono::steady_clock::now();
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        Orb orb(rt, profile_omniorb4());
        svc::ServerCore::Options opts;
        opts.workers = kPoolWorkers;
        opts.mode = mode;
        opts.readiness_shards = kShards;
        orb.serve("scale-ep", opts);
        IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("bench/scale/key",
                                     static_cast<ProcessId>(ior.key));
        served.set();
        clients_done.wait();
        // Clients closed their streams; give the core a moment to prune.
        for (int spin = 0; spin < 2000; ++spin) {
            const auto st = orb.server_stats();
            if (st.live_connections == 0 &&
                st.pruned == st.accepted)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        {
            std::lock_guard<std::mutex> lk(res_mu);
            res.stats = orb.server_stats();
        }
        orb.shutdown();
    });

    for (int c = 0; c < n_clients; ++c) {
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(c + 1)],
                      [&, c](Process& proc) {
            ptm::Runtime rt(proc);
            served.wait();
            const std::uint64_t key =
                proc.grid().wait_service("bench/scale/key");
            ptm::VLink conn = ptm::VLink::connect(rt, "scale-ep");
            // Everyone connects first, so the legacy shape holds all
            // connection threads alive at once — the O(connections) peak
            // the event core is measured against.
            start.arrive_and_wait();
            const std::string payload(kPayload, 'x');
            std::vector<SimTime> trace;
            for (int i = 0; i < n_requests; ++i) {
                raw_echo_call(conn, static_cast<std::uint64_t>(i + 1), key,
                              payload);
                if (c == 0) trace.push_back(proc.now());
            }
            conn.close();
            if (c == 0) {
                std::lock_guard<std::mutex> lk(res_mu);
                res.trace = std::move(trace);
            }
            clients_done.count_down();
        });
    }
    tb.grid.join_all();
    res.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

void print_leg(const char* name, const LegResult& r) {
    std::printf("  \"%s\": {\"wall_ms\": %.1f, \"peak_threads\": %zu, "
                "\"accepted\": %llu, \"pruned\": %llu, \"frames\": %llu}",
                name, r.wall_ms, r.stats.peak_threads,
                static_cast<unsigned long long>(r.stats.accepted),
                static_cast<unsigned long long>(r.stats.pruned),
                static_cast<unsigned long long>(r.stats.frames));
}

int run() {
    // --- serial leg: virtual time must not depend on the server shape ---
    const LegResult se =
        run_leg(svc::ServerCore::Mode::kEventDriven, 1, kSerialRequests);
    const LegResult sl = run_leg(svc::ServerCore::Mode::kThreadPerConnection,
                                 1, kSerialRequests);
    const LegResult ss = run_leg(svc::ServerCore::Mode::kShardedReadiness,
                                 1, kSerialRequests);
    const bool identical = se.trace == sl.trace && se.trace == ss.trace &&
                           !se.trace.empty();

    // --- scale leg: thread count vs N concurrent clients ----------------
    const LegResult ce = run_leg(svc::ServerCore::Mode::kEventDriven,
                                 kScaleClients, kScaleRequests);
    const LegResult cs = run_leg(svc::ServerCore::Mode::kShardedReadiness,
                                 kScaleClients, kScaleRequests);
    const LegResult cl = run_leg(svc::ServerCore::Mode::kThreadPerConnection,
                                 kScaleClients, kScaleRequests);
    const bool bound_ok =
        ce.stats.peak_threads == 1 + kPoolWorkers &&
        cs.stats.peak_threads <= kShards + kPoolWorkers &&
        cl.stats.peak_threads >= 1 + static_cast<std::size_t>(kScaleClients);

    std::printf("{\n \"bench\": \"server_scale\",\n");
    std::printf(" \"serial\": {\"requests\": %d, "
                "\"virtual_end_event\": %lld, \"virtual_end_legacy\": %lld, "
                "\"virtual_end_sharded\": %lld, "
                "\"virtual_time_identical\": %s},\n",
                kSerialRequests,
                static_cast<long long>(se.trace.empty() ? 0
                                                        : se.trace.back()),
                static_cast<long long>(sl.trace.empty() ? 0
                                                        : sl.trace.back()),
                static_cast<long long>(ss.trace.empty() ? 0
                                                        : ss.trace.back()),
                identical ? "true" : "false");
    std::printf(" \"scale\": {\"clients\": %d, \"requests_per_client\": %d, "
                "\"pool_workers\": %zu,\n",
                kScaleClients, kScaleRequests, kPoolWorkers);
    print_leg("event", ce);
    std::printf(",\n");
    print_leg("sharded", cs);
    std::printf(",\n");
    print_leg("legacy", cl);
    std::printf(",\n  \"thread_bound_ok\": %s}\n}\n",
                bound_ok ? "true" : "false");

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: serial virtual times diverge across modes\n");
        return 1;
    }
    if (!bound_ok) {
        std::fprintf(stderr,
                     "FAIL: thread-count bound violated (event peak %zu, "
                     "sharded peak %zu, legacy peak %zu)\n",
                     ce.stats.peak_threads, cs.stats.peak_threads,
                     cl.stats.peak_threads);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace padico::bench

int main() { return padico::bench::run(); }
