/// \file bench_fig7_bandwidth.cpp
/// Reproduces Fig. 7: "CORBA and MPI bandwidth on top of PadicoTM" —
/// bandwidth vs message size over Myrinet-2000 for MPICH, omniORB 3,
/// omniORB 4, Mico 2.3.7 and ORBacus 4.0.5, plus the TCP/Ethernet-100
/// reference curve. Paper peaks: MPI & omniORB ~240 MB/s (96% of the
/// Myrinet-2000 hardware), ORBacus 63 MB/s, Mico 55 MB/s, TCP ~11 MB/s.

#include "bench/common.hpp"
#include "corba/stub.hpp"
#include "mpi/mpi.hpp"
#include "osal/sync.hpp"
#include "sockets/sockets.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;

namespace {

class SinkServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Sink:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "take") throw RemoteError("BAD_OPERATION");
        (void)in.get_seq_msg<std::uint8_t>();
        corba::skel::ret(out, true);
    }
};

/// One synchronous invocation of `size` bytes; returns MB/s at the client.
double corba_bandwidth(const corba::OrbProfile& profile, std::size_t size) {
    Testbed tb(2);
    double bw = 0;
    osal::Event up, done;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        orb.serve("bw-ep");
        corba::IOR ior = orb.activate(std::make_shared<SinkServant>());
        proc.grid().register_service("bw/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        up.wait();
        corba::IOR ior{"bw-ep", proc.grid().wait_service("bw/key"),
                       "IDL:Sink:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        util::ByteBuf payload(size);
        // warm-up (connection setup)
        corba::call<bool>(ref, "take", std::vector<std::uint8_t>{1});
        const SimTime t0 = proc.now();
        corba::cdr::Encoder e(profile.zero_copy);
        e.put_seq_shared<std::uint8_t>(
            util::Segment(util::make_buf(std::move(payload))), size);
        ref.invoke("take", e.take());
        bw = mb_per_s(size, proc.now() - t0);
        done.set();
    });
    tb.grid.join_all();
    return bw;
}

double mpi_bandwidth(std::size_t size) {
    Testbed tb(2);
    double bw = 0;
    run_spmd(tb.grid, {tb.nodes[0], tb.nodes[1]},
             [&](Process& proc, int rank, int) {
                 ptm::Runtime rt(proc);
                 auto world = mpi::World::create(rt, "bw", {0, 1});
                 mpi::Comm& comm = world->world();
                 char ack = 0;
                 if (rank == 0) {
                     comm.send_bytes(&ack, 1, 1, 9); // warm-up
                     comm.recv_bytes(&ack, 1, 1, 9);
                     const SimTime t0 = proc.now();
                     comm.send_msg(util::to_message(util::ByteBuf(size)), 1,
                                   0);
                     comm.recv_bytes(&ack, 1, 1, 1);
                     bw = mb_per_s(size, proc.now() - t0);
                 } else {
                     comm.recv_bytes(&ack, 1, 0, 9);
                     comm.send_bytes(&ack, 1, 0, 9);
                     comm.recv_msg(0, 0);
                     comm.send_bytes(&ack, 1, 0, 1);
                 }
             });
    tb.grid.join_all();
    return bw;
}

double tcp_bandwidth(std::size_t size) {
    Testbed tb(2, /*with_myrinet=*/false);
    auto& eth = tb.grid.segment("eth0");
    double bw = 0;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        sock::SocketStack stack(proc, eth);
        auto s = stack.listen("tcp-bw").accept();
        (void)s.read_msg(size);
        s.write("k", 1);
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        sock::SocketStack stack(proc, eth);
        auto s = stack.connect("tcp-bw");
        const SimTime t0 = proc.now();
        s.write(util::to_message(util::ByteBuf(size)));
        char ack;
        s.read(&ack, 1);
        bw = mb_per_s(size, proc.now() - t0);
    });
    tb.grid.join_all();
    return bw;
}

} // namespace

int main() {
    print_header("Figure 7",
                 "CORBA and MPI bandwidth on top of PadicoTM (Myrinet-2000) "
                 "+ TCP/Ethernet-100 reference");

    const auto profiles = corba::all_profiles();
    util::Table table({"msg size", "MPICH", "omniORB-3", "omniORB-4",
                       "Mico", "ORBacus", "TCP/Eth-100"});
    double peak_mpi = 0, peak_tcp = 0;
    std::vector<double> peak_orb(profiles.size(), 0.0);

    for (std::size_t size : sweep_sizes()) {
        std::vector<std::string> row;
        row.push_back(size >= (1u << 20)
                          ? util::strfmt("%zu MB", size >> 20)
                          : size >= 1024 ? util::strfmt("%zu KB", size >> 10)
                                         : util::strfmt("%zu B", size));
        const double m = mpi_bandwidth(size);
        peak_mpi = std::max(peak_mpi, m);
        row.push_back(fmt_mb(m));
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            const double b = corba_bandwidth(profiles[p], size);
            peak_orb[p] = std::max(peak_orb[p], b);
            row.push_back(fmt_mb(b));
        }
        const double t = tcp_bandwidth(size);
        peak_tcp = std::max(peak_tcp, t);
        row.push_back(fmt_mb(t));
        table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());

    std::printf("peaks vs paper:\n");
    std::printf("  MPICH/Myrinet      : %s MB/s\n",
                vs_paper(peak_mpi, 240).c_str());
    const double paper_peak[] = {240, 240, 55, 63};
    for (std::size_t p = 0; p < profiles.size(); ++p)
        std::printf("  %-19s: %s MB/s\n", profiles[p].name.c_str(),
                    vs_paper(peak_orb[p], paper_peak[p]).c_str());
    std::printf("  TCP/Ethernet-100   : %s MB/s\n",
                vs_paper(peak_tcp, 11.2).c_str());
    return 0;
}
