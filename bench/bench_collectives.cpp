// bench_collectives: flat vs topology-aware hierarchical collectives on
// zoned grids (MPICH-G2-style multilevel algorithms, DESIGN.md §15). For
// cluster counts 2..8 joined by a WAN backbone, runs each collective in
// both modes across a message-size sweep and reports, per leg,
//
//   * virtual completion time per operation (max rank clock delta),
//   * WAN crossings per operation (sender-side zone-level counters),
//
// reproducing the "WAN messages dominate" crossover: at small sizes the
// hierarchical algorithms win by the crossing ratio (O(clusters) vs
// O(n)/O(log n) * WAN latency); at large sizes the WAN bandwidth term
// dominates and the gap narrows to the byte ratio. The run fails unless
//   * hierarchical WAN crossings equal the closed-form O(clusters) counts
//     exactly and stay strictly below the flat counts on every leg,
//   * the hierarchical bcast/allreduce are >= 2x faster for small
//     messages at the largest cluster count (8 in the full run; the
//     quick sweep reports but does not gate on this),
//   * on a flat (topology-free) grid, auto mode is bit-identical in
//     virtual time to the forced-flat baseline.
//
// Emits BENCH_collectives.json (--out <path>); --quick shrinks the sweep
// for the CTest smoke leg.

#include <atomic>
#include <cstring>
#include <functional>
#include <mutex>
#include <numeric>
#include <thread>

#include "bench/common.hpp"
#include "fabric/topology.hpp"
#include "mpi/mpi.hpp"
#include "util/strings.hpp"

namespace padico::bench {
namespace {

using fabric::Grid;
using fabric::Machine;
using fabric::Process;
using fabric::ProcessId;

/// Zoned grid: `clusters` Myrinet clusters of `per_cluster` nodes joined
/// by a WAN core; every member also attaches to the backbone so any rank
/// pair shares a segment (intra-cluster pairs still pick the LAN).
struct ZonedBed {
    Grid grid;
    std::unique_ptr<fabric::Topology> topo;
    std::vector<Machine*> nodes;

    ZonedBed(int clusters, int per_cluster) {
        topo = std::make_unique<fabric::Topology>(grid);
        auto& core = topo->add_wan("core");
        for (int c = 0; c < clusters; ++c) {
            fabric::ClusterSpec spec;
            spec.size = static_cast<std::size_t>(per_cluster);
            spec.tech = fabric::NetTech::Myrinet2000;
            auto& cz =
                topo->add_cluster("c" + std::to_string(c), spec);
            core.link(cz);
            for (Machine* m : cz.members()) {
                if (m->adapter_on(core.backbone()) == nullptr)
                    grid.attach(*m, core.backbone());
                nodes.push_back(m);
            }
        }
    }

    void run(const std::function<void(mpi::Comm&)>& body) {
        std::vector<ProcessId> members(nodes.size());
        std::iota(members.begin(), members.end(), 0u);
        fabric::run_spmd(grid, nodes, [&, members](Process& proc, int, int) {
            ptm::Runtime rt(proc);
            mpi::install();
            auto mod = std::static_pointer_cast<mpi::MpiModule>(
                rt.modules().load("mpi"));
            auto world = mod->init("bench", members);
            body(world->world());
        });
        grid.join_all();
    }
};

enum class Coll { kBcast, kAllreduce, kBarrier };

const char* coll_name(Coll c) {
    switch (c) {
    case Coll::kBcast: return "bcast";
    case Coll::kAllreduce: return "allreduce";
    case Coll::kBarrier: return "barrier";
    }
    return "?";
}

/// Closed-form WAN crossings per hierarchical operation at C clusters.
std::uint64_t expected_wan(Coll c, std::uint64_t C) {
    switch (c) {
    case Coll::kBcast: return C - 1;
    case Coll::kAllreduce: return 2 * (C - 1);
    case Coll::kBarrier: return 2 * (C - 1);
    }
    return 0;
}

struct Measure {
    double us_per_op = 0;      ///< virtual completion time
    double wan_msgs_per_op = 0; ///< summed over ranks
    double wan_bytes_per_op = 0;
};

/// One (clusters, op, bytes, mode) leg on a fresh grid. All measurement is
/// virtual-time, so one measured iteration after a warmup is exact; the
/// flat-mode fences around the measured window keep its mode traffic out
/// of the counters of the next leg, and the counter snapshots are taken on
/// the measuring rank's own sender-side counters only.
Measure run_leg(int clusters, int per_cluster, Coll op, std::size_t bytes,
                mpi::CollMode mode, int iters) {
    ZonedBed bed(clusters, per_cluster);
    Measure out;
    std::mutex mu;
    std::vector<double> per_rank_us(bed.nodes.size(), 0);
    std::atomic<std::uint64_t> wan_msgs{0}, wan_bytes{0};

    bed.run([&](mpi::Comm& comm) {
        const std::size_t words =
            std::max<std::size_t>(1, bytes / sizeof(std::int64_t));
        std::vector<std::int64_t> in(words, comm.rank() + 1);
        std::vector<std::int64_t> buf(words, 0);
        auto once = [&](mpi::Comm& c) {
            switch (op) {
            case Coll::kBcast:
                c.bcast(std::span<std::int64_t>(buf), 0);
                break;
            case Coll::kAllreduce:
                c.allreduce(std::span<const std::int64_t>(in),
                            std::span<std::int64_t>(buf), mpi::Op::Sum);
                break;
            case Coll::kBarrier:
                c.barrier();
                break;
            }
        };
        ptm::Runtime& rt = comm.runtime();
        comm.set_coll_mode(mode);
        once(comm); // warmup: service registration, first-use costs
        // Aligned virtual epoch: after a barrier the per-rank clocks still
        // spread by up to a WAN latency (dissemination skew), which would
        // smear the per-op critical path. Agree on a common instant safely
        // past every clock -- the alignment allreduce itself advances
        // clocks beyond the sampled max, so the epoch needs slack above it
        // -- then jump every clock exactly there. The allreduce is
        // globally synchronizing, so nothing is in flight at the jump.
        comm.set_coll_mode(mpi::CollMode::kFlat);
        comm.barrier();
        const SimTime now = rt.process().now();
        SimTime maxnow = 0;
        comm.allreduce(std::span<const SimTime>(&now, 1),
                       std::span<SimTime>(&maxnow, 1), mpi::Op::Max);
        const SimTime epoch = maxnow + msec(100.0);
        if (rt.process().now() > epoch) {
            std::fprintf(stderr, "FATAL: epoch slack too small\n");
            std::abort();
        }
        rt.process().clock().merge(epoch);
        const auto s0 = rt.stats().zone_level;
        comm.set_coll_mode(mode);
        for (int i = 0; i < iters; ++i) once(comm);
        const SimTime t1 = rt.process().now();
        const auto s1 = rt.stats().zone_level;
        wan_msgs.fetch_add(s1.wan_messages - s0.wan_messages);
        wan_bytes.fetch_add(s1.wan_bytes - s0.wan_bytes);
        std::lock_guard<std::mutex> lk(mu);
        per_rank_us[static_cast<std::size_t>(comm.rank())] =
            static_cast<double>(t1 - epoch) / 1000.0 / iters;
    });

    for (const double us : per_rank_us)
        out.us_per_op = std::max(out.us_per_op, us);
    out.wan_msgs_per_op =
        static_cast<double>(wan_msgs.load()) / iters;
    out.wan_bytes_per_op =
        static_cast<double>(wan_bytes.load()) / iters;
    return out;
}

/// Flat-grid A/B: the same workload on topology-free grids under auto and
/// forced-flat modes must end on identical per-rank virtual-time
/// signatures — auto mode may not perturb flat deployments.
bool flat_identity(int n) {
    auto signatures = [n](mpi::CollMode mode) {
        Testbed bed(n);
        std::vector<std::uint64_t> sigs(static_cast<std::size_t>(n), 0);
        std::mutex mu;
        std::vector<ProcessId> members(static_cast<std::size_t>(n));
        std::iota(members.begin(), members.end(), 0u);
        fabric::run_spmd(
            bed.grid, bed.nodes, [&, members](Process& proc, int, int) {
                ptm::Runtime rt(proc);
                mpi::install();
                auto mod = std::static_pointer_cast<mpi::MpiModule>(
                    rt.modules().load("mpi"));
                auto world = mod->init("flatid", members);
                mpi::Comm& comm = world->world();
                comm.set_coll_mode(mode);
                std::vector<std::int64_t> b(16, comm.rank());
                comm.bcast(std::span<std::int64_t>(b), 1);
                std::vector<std::int64_t> o(16, 0);
                comm.allreduce(std::span<const std::int64_t>(b),
                               std::span<std::int64_t>(o), mpi::Op::Sum);
                comm.barrier();
                const std::uint64_t sig = rt.virtual_time_signature();
                std::lock_guard<std::mutex> lk(mu);
                sigs[static_cast<std::size_t>(comm.rank())] = sig;
            });
        bed.grid.join_all();
        return sigs;
    };
    return signatures(mpi::CollMode::kAuto) ==
           signatures(mpi::CollMode::kFlat);
}

struct Leg {
    int clusters = 0;
    int ranks = 0;
    Coll op = Coll::kBcast;
    std::size_t bytes = 0;
    Measure flat, hier;
    std::uint64_t wan_expected = 0;
    bool wan_ok = false;
};

int run(bool quick, const std::string& out_path) {
    const std::vector<int> cluster_counts =
        quick ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
    // Non-power-of-two cluster size: with 2^k-sized clusters the flat
    // binomial masks accidentally align with cluster boundaries and
    // cross the WAN only C-1 times themselves; any other size shows the
    // generic O(n)/O(log n)-crossings behavior the figure is about.
    const int per_cluster = quick ? 3 : 5;
    const std::vector<std::size_t> sizes =
        quick ? std::vector<std::size_t>{8, 16384}
              : std::vector<std::size_t>{8, 4096, 262144};
    const int iters = quick ? 1 : 2;

    print_header("BENCH collectives",
                 "flat vs hierarchical collectives on zoned grids");

    std::vector<Leg> legs;
    bool wan_all_ok = true;
    for (const int C : cluster_counts)
        for (const Coll op :
             {Coll::kBcast, Coll::kAllreduce, Coll::kBarrier})
            for (const std::size_t bytes : sizes) {
                if (op == Coll::kBarrier && bytes != sizes.front())
                    continue; // barrier carries no payload
                Leg leg;
                leg.clusters = C;
                leg.ranks = C * per_cluster;
                leg.op = op;
                leg.bytes = op == Coll::kBarrier ? 0 : bytes;
                leg.flat = run_leg(C, per_cluster, op, bytes,
                                   mpi::CollMode::kFlat, iters);
                leg.hier = run_leg(C, per_cluster, op, bytes,
                                   mpi::CollMode::kAuto, iters);
                leg.wan_expected =
                    expected_wan(op, static_cast<std::uint64_t>(C));
                leg.wan_ok =
                    leg.hier.wan_msgs_per_op ==
                        static_cast<double>(leg.wan_expected) &&
                    leg.hier.wan_msgs_per_op < leg.flat.wan_msgs_per_op;
                wan_all_ok = wan_all_ok && leg.wan_ok;
                std::printf(
                    "C=%d n=%2d %-9s %7zu B  flat %10.1f us / %5.0f wan"
                    "  hier %10.1f us / %5.0f wan  speedup %5.2fx %s\n",
                    C, leg.ranks, coll_name(op), leg.bytes,
                    leg.flat.us_per_op, leg.flat.wan_msgs_per_op,
                    leg.hier.us_per_op, leg.hier.wan_msgs_per_op,
                    leg.flat.us_per_op / leg.hier.us_per_op,
                    leg.wan_ok ? "" : "WAN-MISMATCH");
                legs.push_back(leg);
            }

    // Headline: bcast/allreduce at the largest cluster count (>= 4),
    // smallest size -- where the WAN-crossing ratio dominates. The quick
    // sweep stops at 4 clusters, where flat bcast is only ~2 chained WAN
    // latencies and the ratio sits at the boundary, so (as in
    // bench_fabric_scale) the speedup gate applies to the full run only;
    // the WAN-count and identity gates always apply.
    const int cmax = cluster_counts.back();
    double speedup_min = 1e30;
    for (const Leg& l : legs)
        if (l.clusters == cmax && l.bytes == sizes.front() &&
            (l.op == Coll::kBcast || l.op == Coll::kAllreduce))
            speedup_min = std::min(speedup_min,
                                   l.flat.us_per_op / l.hier.us_per_op);
    const bool speedup_ok = quick || speedup_min >= 2.0;
    const bool identity_ok = flat_identity(quick ? 4 : 6);

    std::string j;
    j += util::strfmt(
        "{\n \"bench\": \"collectives\",\n \"quick\": %s,\n"
        " \"cpus\": %u,\n \"per_cluster\": %d,\n \"iters\": %d,\n",
        quick ? "true" : "false", std::thread::hardware_concurrency(),
        per_cluster, iters);
    j += " \"legs\": [\n";
    for (std::size_t i = 0; i < legs.size(); ++i) {
        const Leg& l = legs[i];
        j += util::strfmt(
            "  {\"clusters\": %d, \"ranks\": %d, \"op\": \"%s\", "
            "\"bytes\": %zu, \"flat_us\": %.1f, \"hier_us\": %.1f, "
            "\"speedup\": %.2f, \"flat_wan_msgs\": %.0f, "
            "\"hier_wan_msgs\": %.0f, \"hier_wan_expected\": %llu, "
            "\"hier_wan_bytes\": %.0f, \"flat_wan_bytes\": %.0f, "
            "\"wan_ok\": %s}%s\n",
            l.clusters, l.ranks, coll_name(l.op), l.bytes,
            l.flat.us_per_op, l.hier.us_per_op,
            l.flat.us_per_op / l.hier.us_per_op, l.flat.wan_msgs_per_op,
            l.hier.wan_msgs_per_op,
            static_cast<unsigned long long>(l.wan_expected),
            l.hier.wan_bytes_per_op, l.flat.wan_bytes_per_op,
            l.wan_ok ? "true" : "false",
            i + 1 == legs.size() ? "" : ",");
    }
    j += " ],\n";
    j += util::strfmt(
        " \"cmax\": %d,\n"
        " \"speedup_min_cmax_small\": %.2f,\n \"hier_wan_ok\": %s,\n"
        " \"flat_identity\": %s,\n \"ok\": %s\n}\n",
        cmax, speedup_min, wan_all_ok ? "true" : "false",
        identity_ok ? "true" : "false",
        (wan_all_ok && speedup_ok && identity_ok) ? "true" : "false");
    std::fputs(j.c_str(), stdout);
    if (!out_path.empty()) {
        if (FILE* f = std::fopen(out_path.c_str(), "w")) {
            std::fputs(j.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "WARN: cannot write %s\n",
                         out_path.c_str());
        }
    }

    int rc = 0;
    if (!wan_all_ok) {
        std::fprintf(stderr, "FAIL: hierarchical WAN crossings off the "
                             "closed form or not below flat\n");
        rc = 1;
    }
    if (!speedup_ok) {
        std::fprintf(stderr,
                     "FAIL: min bcast/allreduce speedup at %d clusters "
                     "small messages is %.2fx (< 2x)\n",
                     cmax, speedup_min);
        rc = 1;
    }
    if (!identity_ok) {
        std::fprintf(stderr, "FAIL: flat-grid auto mode diverged from "
                             "forced-flat virtual time\n");
        rc = 1;
    }
    return rc;
}

} // namespace
} // namespace padico::bench

int main(int argc, char** argv) {
    bool quick = false;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }
    return padico::bench::run(quick, out);
}
