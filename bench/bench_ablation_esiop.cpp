/// \file bench_ablation_esiop.cpp
/// Ablation A5 — the paper's §4.4 remark implemented: "This latency could
/// be lowered if we used a specific protocol (called ESIOP) instead of the
/// general GIOP protocol in the CORBA implementation." Compares omniORB
/// over general GIOP vs over ESIOP (compact framing + lean request path)
/// on Myrinet-2000 through PadicoTM.

#include "bench/common.hpp"
#include "corba/stub.hpp"
#include "osal/sync.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;

namespace {

class EchoServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Echo:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op == "echo") {
            corba::skel::ret(out, corba::skel::arg<std::uint32_t>(in));
        } else if (op == "take") {
            (void)in.get_seq_msg<std::uint8_t>();
            corba::skel::ret(out, true);
        } else {
            throw RemoteError("BAD_OPERATION");
        }
    }
};

struct Numbers {
    double latency_us = 0;
    double bandwidth_mb = 0;
};

Numbers measure(const corba::OrbProfile& profile) {
    Testbed tb(2);
    Numbers out;
    osal::Event up, done;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        orb.serve("esiop-ep");
        corba::IOR ior = orb.activate(std::make_shared<EchoServant>());
        proc.grid().register_service("esiop/key",
                                     static_cast<ProcessId>(ior.key));
        up.set();
        done.wait();
        orb.shutdown();
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, profile);
        up.wait();
        corba::IOR ior{"esiop-ep", proc.grid().wait_service("esiop/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef ref = orb.resolve(ior);
        corba::call<std::uint32_t>(ref, "echo", std::uint32_t{0});
        constexpr int kIters = 50;
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i)
            corba::call<std::uint32_t>(ref, "echo", std::uint32_t{4});
        out.latency_us = to_usec(proc.now() - t0) / (2.0 * kIters);

        constexpr std::size_t kLen = 1 << 20;
        const SimTime t1 = proc.now();
        corba::cdr::Encoder e(profile.zero_copy);
        e.put_seq_shared<std::uint8_t>(
            util::Segment(util::make_buf(util::ByteBuf(kLen))), kLen);
        ref.invoke("take", e.take());
        out.bandwidth_mb = mb_per_s(kLen, proc.now() - t1);
        done.set();
    });
    tb.grid.join_all();
    return out;
}

} // namespace

int main() {
    print_header("Ablation A5",
                 "GIOP vs ESIOP framing for omniORB on Myrinet (the §4.4 "
                 "latency suggestion)");
    const Numbers giop = measure(corba::profile_omniorb4());
    const Numbers esiop = measure(corba::profile_omniorb4_esiop());
    util::Table table({"protocol", "latency (us)", "bandwidth (MB/s)"});
    table.add_row({"general GIOP", fmt_us(giop.latency_us),
                   fmt_mb(giop.bandwidth_mb)});
    table.add_row({"ESIOP", fmt_us(esiop.latency_us),
                   fmt_mb(esiop.bandwidth_mb)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("latency gained by the specific protocol: %.1f us (paper "
                "predicts a win below omniORB's 20 us; MPI's 11 us is the "
                "floor)\n",
                giop.latency_us - esiop.latency_us);
    return 0;
}
