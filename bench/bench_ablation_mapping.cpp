/// \file bench_ablation_mapping.cpp
/// Ablation A3 (design choice of §4.3.2): straight vs cross-paradigm
/// mapping of the abstract interfaces. PadicoTM deliberately offers BOTH
/// a parallel (Circuit) and a distributed (VLink) abstract interface, each
/// mappable onto either kind of hardware. This bench measures all four
/// combinations — the "no bottleneck of features" claim: a
/// distributed-oriented stream on Myrinet runs at SAN speed, a parallel
/// circuit still works across a mere LAN.

#include "bench/common.hpp"
#include "osal/sync.hpp"
#include "padicotm/circuit.hpp"
#include "padicotm/vlink.hpp"

using namespace padico;
using namespace padico::bench;
using namespace padico::fabric;
using namespace padico::ptm;

namespace {

struct Numbers {
    double latency_us = 0;
    double bandwidth_mb = 0;
};

Numbers vlink_numbers(bool with_san) {
    Testbed tb(2, with_san);
    Numbers out;
    constexpr std::size_t kLen = 2u << 20;
    tb.grid.spawn(*tb.nodes[0], [&](Process& proc) {
        Runtime rt(proc);
        VLinkListener listener(rt, "map");
        VLink s = listener.accept();
        for (int i = 0; i < 20; ++i) {
            char c;
            s.read(&c, 1);
            s.write(&c, 1);
        }
        (void)s.read_msg(kLen);
        s.write("k", 1);
    });
    tb.grid.spawn(*tb.nodes[1], [&](Process& proc) {
        Runtime rt(proc);
        VLink s = VLink::connect(rt, "map");
        char c = 'x';
        s.write(&c, 1); // warm-up round
        s.read(&c, 1);
        SimTime t0 = proc.now();
        for (int i = 0; i < 19; ++i) {
            s.write(&c, 1);
            s.read(&c, 1);
        }
        out.latency_us = to_usec(proc.now() - t0) / (2.0 * 19);
        t0 = proc.now();
        s.write(util::to_message(util::ByteBuf(kLen)));
        s.read(&c, 1);
        out.bandwidth_mb = mb_per_s(kLen, proc.now() - t0);
    });
    tb.grid.join_all();
    return out;
}

Numbers circuit_numbers(bool with_san) {
    Testbed tb(2, with_san);
    Numbers out;
    constexpr std::size_t kLen = 2u << 20;
    run_spmd(tb.grid, {tb.nodes[0], tb.nodes[1]},
             [&](Process& proc, int rank, int) {
                 Runtime rt(proc);
                 Circuit c(rt, "map", {0, 1});
                 util::ByteBuf one(1);
                 if (rank == 1) {
                     c.send(0, 0, util::to_message(util::ByteBuf(1)));
                     c.recv(0, 0);
                     SimTime t0 = proc.now();
                     for (int i = 0; i < 19; ++i) {
                         c.send(0, 0, util::to_message(util::ByteBuf(1)));
                         c.recv(0, 0);
                     }
                     out.latency_us = to_usec(proc.now() - t0) / (2.0 * 19);
                     t0 = proc.now();
                     c.send(0, 1, util::to_message(util::ByteBuf(kLen)));
                     c.recv(0, 1);
                     out.bandwidth_mb = mb_per_s(kLen, proc.now() - t0);
                 } else {
                     for (int i = 0; i < 20; ++i) {
                         c.recv(1, 0);
                         c.send(1, 0, util::to_message(util::ByteBuf(1)));
                     }
                     c.recv(1, 1);
                     c.send(1, 1, util::to_message(util::ByteBuf(1)));
                 }
             });
    tb.grid.join_all();
    return out;
}

} // namespace

int main() {
    print_header("Ablation A3",
                 "straight vs cross-paradigm mappings of Circuit and VLink "
                 "(§4.3.2)");
    util::Table table({"abstract interface", "network", "mapping",
                       "latency (us)", "bandwidth (MB/s)"});
    const Numbers vs = vlink_numbers(true);
    const Numbers vl = vlink_numbers(false);
    const Numbers cs = circuit_numbers(true);
    const Numbers cl = circuit_numbers(false);
    table.add_row({"VLink (distributed)", "Myrinet-2000", "cross-paradigm",
                   fmt_us(vs.latency_us), fmt_mb(vs.bandwidth_mb)});
    table.add_row({"VLink (distributed)", "Fast-Ethernet", "straight",
                   fmt_us(vl.latency_us), fmt_mb(vl.bandwidth_mb)});
    table.add_row({"Circuit (parallel)", "Myrinet-2000", "straight",
                   fmt_us(cs.latency_us), fmt_mb(cs.bandwidth_mb)});
    table.add_row({"Circuit (parallel)", "Fast-Ethernet", "cross-paradigm",
                   fmt_us(cl.latency_us), fmt_mb(cl.bandwidth_mb)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("the cross-paradigm VLink-on-Myrinet mapping is what lets "
                "unmodified CORBA run at SAN speed (Fig. 7)\n");
    return 0;
}
