// Wall-clock microbenchmark of the hot-path fast lanes (route cache,
// redistribution-plan cache, persistent fan-out pool). Unlike the fig/table
// benches, the metric here is REAL time: the same repeated-invocation
// workloads run with the fast lanes enabled and disabled; the serial
// (scheduling-insensitive) workload must produce bit-identical virtual
// times while the enabled runs finish faster. Prints one JSON object.

#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "osal/sync.hpp"
#include "padicotm/runtime.hpp"
#include "util/cache.hpp"

namespace padico::bench {
namespace {

using namespace padico::fabric;
using namespace padico::gridccm;

constexpr int kClients = 4;
constexpr int kIters = 400;
constexpr std::size_t kGlobalLen = 32768; // elements (int32)

/// Server side: the Fig. 8 op body (a member barrier), but invoked from a
/// mismatched client layout so every call needs a real redistribution plan
/// and a multi-server fan-out.
class HotpathComp : public ParallelComponent {
public:
    HotpathComp() {
        declare_parallel_facet(
            R"(<parallel-interface component="HotpathComp" facet="hot"
                                   distribution="block">
                 <operation name="xfer" argument="block"/>
               </parallel-interface>)",
            {{"xfer", [](const OpContext& ctx, util::Message) {
                  if (ctx.comm != nullptr) ctx.comm->barrier();
                  return util::Message();
              }}});
    }
    std::string type() const override { return "HotpathComp"; }
};

void install_component() {
    static std::once_flag once;
    std::call_once(once, [] {
        ccm::ComponentRegistry::register_type(
            "HotpathComp", [] { return std::make_unique<HotpathComp>(); });
    });
}

struct RunResult {
    double wall_ms = 0;
    SimTime virtual_end = 0;
    ptm::TrafficCounters::RouteCache route;
    PlanCacheStats plans;
};

/// `serial`: one sequential client invoking a one-member component, with
/// the deployer hosted by the client process so exactly two processes ever
/// exchange messages — every virtual-time event is strictly ordered, so
/// the enabled and disabled runs must agree bit-for-bit. Otherwise 4
/// block-cyclic clients onto 3 members: each call fans out to 2-3 servers
/// through the worker pool; contended adapter reservations make its
/// completion time booking-order-sensitive (already true of the
/// thread-per-call baseline), so only wall-clock is compared there.
RunResult run_workload(bool fast_lanes, bool serial) {
    util::set_caches_enabled(fast_lanes);
    reset_plan_cache();
    install_component();
    const int kServers = serial ? 1 : 3;
    const int nClients = serial ? 1 : kClients;

    Testbed tb(kServers + nClients);
    const std::string assembly_xml = util::strfmt(
        R"(<assembly name="hotpath">
             <component id="hot" type="HotpathComp" parallel="%d"/>
           </assembly>)",
        kServers);

    for (int i = 0; i < kServers; ++i)
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(i)],
                      [](Process& proc) {
                          ccm::component_server_main(
                              proc, corba::profile_omniorb4());
                      });

    corba::IOR home;
    std::mutex home_mu;
    osal::Event home_ready;
    RunResult res;
    std::mutex res_mu;

    if (!serial) {
        auto& front = tb.grid.add_machine("front");
        tb.grid.attach(front, tb.grid.segment("eth0"));
        tb.grid.spawn(front, [&](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, corba::profile_omniorb4());
            ccm::Deployer deployer(orb);
            auto dep = deployer.deploy(ccm::Assembly::parse(assembly_xml));
            {
                std::lock_guard<std::mutex> lk(home_mu);
                home = deployer.facet_of(dep, ccm::PortAddr{"hot", "hot"});
            }
            home_ready.set();
            proc.grid().wait_service("hotpath/done");
            deployer.teardown(dep);
            for (int i = 0; i < kServers; ++i)
                ccm::connect_component_server(
                    orb, tb.nodes[static_cast<std::size_t>(i)]->name())
                    .shutdown();
        });
    }

    for (int r = 0; r < nClients; ++r) {
        tb.grid.spawn(*tb.nodes[static_cast<std::size_t>(kServers + r)],
                      [&, r](Process& proc) {
            ptm::Runtime rt(proc);
            corba::Orb orb(rt, corba::profile_omniorb4());
            std::shared_ptr<mpi::World> world;
            mpi::Comm* comm = nullptr;
            std::unique_ptr<ccm::Deployer> deployer;
            std::optional<ccm::Deployment> dep;
            corba::IOR h;
            if (serial) {
                deployer = std::make_unique<ccm::Deployer>(orb);
                dep = deployer->deploy(ccm::Assembly::parse(assembly_xml));
                h = deployer->facet_of(*dep, ccm::PortAddr{"hot", "hot"});
            } else {
                home_ready.wait();
                proc.grid().register_service(
                    "hotpath/client/" + std::to_string(r), proc.id());
                std::vector<ProcessId> members(
                    static_cast<std::size_t>(nClients));
                for (int i = 0; i < nClients; ++i)
                    members[static_cast<std::size_t>(i)] =
                        proc.grid().wait_service("hotpath/client/" +
                                                 std::to_string(i));
                world = mpi::World::create(rt, "hotclients", members);
                comm = &world->world();
                std::lock_guard<std::mutex> lk(home_mu);
                h = home;
            }
            const Distribution cdist =
                serial ? Distribution::block()
                       : Distribution::block_cyclic(4096);
            auto stub = serial
                            ? std::make_unique<ParallelStub>(orb, h)
                            : std::make_unique<ParallelStub>(orb, *comm, h,
                                                             cdist);
            std::vector<std::int32_t> local(
                cdist.local_size(r, nClients, kGlobalLen), 1);

            stub->invoke<std::int32_t>(
                "xfer", std::span<const std::int32_t>(local),
                kGlobalLen); // warm up
            if (comm != nullptr) comm->barrier();
            const auto w0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kIters; ++i)
                stub->invoke<std::int32_t>(
                    "xfer", std::span<const std::int32_t>(local),
                    kGlobalLen);
            if (comm != nullptr) comm->barrier();
            const auto w1 = std::chrono::steady_clock::now();
            if (r == 0) {
                std::lock_guard<std::mutex> lk(res_mu);
                res.wall_ms =
                    std::chrono::duration<double, std::milli>(w1 - w0)
                        .count();
                res.virtual_end = proc.now();
                res.route = rt.stats().route_cache;
            }
            if (comm != nullptr) comm->barrier();
            if (serial) {
                deployer->teardown(*dep);
                ccm::connect_component_server(orb, tb.nodes[0]->name())
                    .shutdown();
            } else if (r == 0) {
                proc.grid().register_service("hotpath/done", proc.id());
            }
        });
    }
    tb.grid.join_all();
    res.plans = plan_cache_stats();
    return res;
}

void print_run(const char* name, const RunResult& r, bool last) {
    std::printf(
        "  \"%s\": {\"wall_ms\": %.2f, \"virtual_us\": %.3f,\n"
        "    \"route_cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"invalidations\": %llu},\n"
        "    \"plan_cache\": {\"hits\": %llu, \"misses\": %llu}}%s\n",
        name, r.wall_ms, to_usec(r.virtual_end),
        static_cast<unsigned long long>(r.route.hits),
        static_cast<unsigned long long>(r.route.misses),
        static_cast<unsigned long long>(r.route.invalidations),
        static_cast<unsigned long long>(r.plans.hits),
        static_cast<unsigned long long>(r.plans.misses), last ? "" : ",");
}

int run() {
    // Baselines (fast lanes off) first so cold-start costs cannot be
    // blamed on the enabled runs.
    const RunResult fan_off = run_workload(false, false);
    const RunResult fan_on = run_workload(true, false);
    const RunResult ser_off = run_workload(false, true);
    const RunResult ser_on = run_workload(true, true);
    const double fan_speedup =
        fan_on.wall_ms > 0 ? fan_off.wall_ms / fan_on.wall_ms : 0.0;
    const double ser_speedup =
        ser_on.wall_ms > 0 ? ser_off.wall_ms / ser_on.wall_ms : 0.0;
    const bool identical = ser_off.virtual_end == ser_on.virtual_end;

    std::printf("{\n  \"bench\": \"hotpath\", \"iters\": %d, "
                "\"clients\": %d, \"global_len\": %zu,\n",
                kIters, kClients, kGlobalLen);
    std::printf(" \"fanout\": {\n");
    print_run("fast_lanes_off", fan_off, false);
    print_run("fast_lanes_on", fan_on, false);
    std::printf("  \"speedup\": %.2f},\n", fan_speedup);
    std::printf(" \"serial\": {\n");
    print_run("fast_lanes_off", ser_off, false);
    print_run("fast_lanes_on", ser_on, false);
    std::printf("  \"speedup\": %.2f,\n"
                "  \"virtual_time_identical\": %s},\n",
                ser_speedup, identical ? "true" : "false");
    std::printf("  \"speedup\": %.2f,\n  \"virtual_time_identical\": %s\n}\n",
                fan_speedup, identical ? "true" : "false");

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: virtual time diverged (off %.3fus vs on %.3fus)\n",
                     to_usec(ser_off.virtual_end),
                     to_usec(ser_on.virtual_end));
        return 1;
    }
    return 0;
}

} // namespace
} // namespace padico::bench

int main() { return padico::bench::run(); }
