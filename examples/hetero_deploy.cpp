/// \file hetero_deploy.cpp
/// The paper's §2 deployment scenarios: the SAME component binaries are
/// deployed on two different grid configurations, and PadicoTM
/// transparently picks the right network for each link:
///
///   (a) two parallel machines connected by a WAN — the inter-component
///       traffic crosses the WAN (and gets encrypted, since the WAN is
///       untrusted), while intra-component traffic uses each cluster's
///       Myrinet;
///   (b) one parallel machine large enough for both codes — everything
///       rides the Myrinet, encryption is skipped (the co-location
///       optimization of §6).
///
/// Machines are selected by *discovery*, not named statically.
///
///   $ ./examples/hetero_deploy

#include <cstdio>

#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "util/strings.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::gridccm;

namespace {

/// A parallel storage service: absorbs a distributed vector, returns it
/// negated (so the client can verify end-to-end integrity).
class Store : public ParallelComponent {
public:
    Store() {
        declare_parallel_facet(
            R"(<parallel-interface component="Store" facet="io"
                                   distribution="block">
                 <operation name="roundtrip" argument="block"
                            result="distributed"/>
               </parallel-interface>)",
            {{"roundtrip", [](const OpContext& ctx, util::Message arg) {
                  std::vector<double> xs(ctx.local_len);
                  arg.copy_out(0, xs.data(), arg.size());
                  for (auto& x : xs) x = -x;
                  util::ByteBuf out(xs.data(), xs.size() * sizeof(double));
                  return util::to_message(std::move(out));
              }}});
    }
    std::string type() const override { return "Store"; }
};

void run_configuration(const char* label, const std::string& topology,
                       const std::string& site_a,
                       const std::string& site_b) {
    Grid grid;
    build_grid_from_xml(grid, topology);

    // Discover worker machines (the features of the machines are not
    // known statically — paper §2 "machine discovery").
    MachineQuery worker;
    worker.min_bandwidth_mb = 100.0; // must sit on a SAN
    auto workers = discover(grid, worker);
    std::printf("[%s] discovery found %zu SAN-attached machines\n", label,
                workers.size());

    for (auto* m : workers)
        grid.spawn(*m, [](Process& proc) {
            ccm::component_server_main(proc, corba::profile_omniorb4());
        });

    auto& front = grid.machine("front");
    grid.spawn(front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        // Identical assembly text for both configurations; only the
        // placement constraints differ, and even those are attribute
        // queries, not machine names.
        const std::string assembly = util::strfmt(R"(
          <assembly name="hetero">
            <component id="producer" type="Store" parallel="2">
              <constraint attr="site" value="%s"/>
            </component>
            <component id="store" type="Store" parallel="2">
              <constraint attr="site" value="%s"/>
            </component>
          </assembly>)",
                                                  site_a.c_str(),
                                                  site_b.c_str());
        auto dep = deployer.deploy(ccm::Assembly::parse(assembly));
        for (const auto& [id, placed] : dep.components)
            for (const auto& m : placed.machines)
                std::printf("[%s]   %s member on %s\n", label, id.c_str(),
                            m.c_str());

        // Exercise the link from the frontend through a sequential stub.
        ParallelStub stub(orb, deployer.facet_of(
                                   dep, ccm::PortAddr{"store", "io"}));
        constexpr std::size_t kLen = 1 << 18; // 2 MB of doubles
        std::vector<double> xs(kLen, 2.5);
        const SimTime t0 = proc.now();
        auto back = stub.invoke<double>("roundtrip",
                                        std::span<const double>(xs), kLen);
        const SimTime dt = proc.now() - t0;
        bool ok = back.size() == kLen;
        for (std::size_t i = 0; ok && i < kLen; i += 1000)
            ok = back[i] == -2.5;
        std::printf("[%s] roundtrip of %zu doubles: %s, %.1f MB/s "
                    "aggregate, data %s\n",
                    label, kLen, format_simtime(dt).c_str(),
                    mb_per_s(kLen * sizeof(double) * 2, dt),
                    ok ? "verified" : "CORRUPT");
        std::printf("[%s] frontend traffic, per segment:\n%s", label,
                    rt.stats().to_string().c_str());

        deployer.teardown(dep);
        for (auto* m : workers)
            ccm::connect_component_server(orb, m->name()).shutdown();
    });
    grid.join_all();
}

} // namespace

int main() {
    ccm::ComponentRegistry::register_type(
        "Store", [] { return std::make_unique<Store>(); });

    // Configuration (a): two 2-node Myrinet clusters joined by a WAN.
    run_configuration("two-sites", R"(<grid>
        <segment name="myriA" tech="myrinet2000"/>
        <segment name="myriB" tech="myrinet2000"/>
        <segment name="wan" tech="wan"/>
        <machine name="a0" site="rennes">
          <attach segment="myriA"/><attach segment="wan"/></machine>
        <machine name="a1" site="rennes">
          <attach segment="myriA"/><attach segment="wan"/></machine>
        <machine name="b0" site="grenoble">
          <attach segment="myriB"/><attach segment="wan"/></machine>
        <machine name="b1" site="grenoble">
          <attach segment="myriB"/><attach segment="wan"/></machine>
        <machine name="front"><attach segment="wan"/></machine>
      </grid>)",
                      "rennes", "grenoble");

    // Configuration (b): one 4-node Myrinet machine hosts both codes.
    run_configuration("one-site", R"(<grid>
        <segment name="myri" tech="myrinet2000"/>
        <segment name="lan" tech="fast-ethernet"/>
        <machine name="n0" site="rennes">
          <attach segment="myri"/><attach segment="lan"/></machine>
        <machine name="n1" site="rennes">
          <attach segment="myri"/><attach segment="lan"/></machine>
        <machine name="n2" site="rennes">
          <attach segment="myri"/><attach segment="lan"/></machine>
        <machine name="n3" site="rennes">
          <attach segment="myri"/><attach segment="lan"/></machine>
        <machine name="front"><attach segment="lan"/></machine>
      </grid>)",
                      "rennes", "rennes");

    std::puts("hetero_deploy done: same binaries, same assembly logic, two "
              "networks — PadicoTM chose the transport each time");
    return 0;
}
