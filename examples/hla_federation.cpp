/// \file hla_federation.cpp
/// The Certi/HLA side of Padico (paper §4.3.4): a small distributed
/// simulation federation. A solver federate publishes a "FieldProbe"
/// object and pushes attribute updates each step; a monitor federate
/// subscribes and renders the values — all over the same PadicoTM runtime
/// (and the same simulated grid) as the CORBA/MPI middleware.
///
///   $ ./examples/hla_federation [steps]

#include <condition_variable>
#include <cstdio>
#include <cstdlib>

#include "hla/hla.hpp"
#include "osal/sync.hpp"
#include "util/strings.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::hla;

namespace {

class MonitorAmbassador : public FederateAmbassador {
public:
    void discover_object(ObjectHandle handle, const std::string& cls,
                         const std::string& owner) override {
        std::printf("monitor: discovered %s #%llu owned by %s\n",
                    cls.c_str(), static_cast<unsigned long long>(handle),
                    owner.c_str());
    }
    void reflect_attribute_values(ObjectHandle handle,
                                  const AttributeMap& attrs) override {
        std::string line;
        for (const auto& [k, v] : attrs) line += k + "=" + v + " ";
        std::printf("monitor: #%llu  %s\n",
                    static_cast<unsigned long long>(handle), line.c_str());
        std::lock_guard<std::mutex> lk(mu_);
        ++updates_;
        cv_.notify_all();
    }
    void wait_updates(int n) {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return updates_ >= n; });
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    int updates_ = 0;
};

class NullAmbassador : public FederateAmbassador {
public:
    void discover_object(ObjectHandle, const std::string&,
                         const std::string&) override {}
    void reflect_attribute_values(ObjectHandle,
                                  const AttributeMap&) override {}
};

} // namespace

int main(int argc, char** argv) {
    const int steps = argc > 1 ? std::atoi(argv[1]) : 5;

    Grid grid;
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    auto& rti_host = grid.add_machine("rti-host");
    auto& solver_host = grid.add_machine("solver");
    auto& monitor_host = grid.add_machine("monitor");
    for (auto* m : {&rti_host, &solver_host, &monitor_host})
        grid.attach(*m, eth);

    osal::Latch resigned(2); // the gateway outlives both federates

    // RTI gateway.
    grid.spawn(rti_host, [&](Process& proc) {
        ptm::Runtime rt(proc);
        hla::install();
        rt.modules().load("certi");
        corba::Orb orb(rt, corba::profile_omniorb4());
        RtiGateway gateway(orb, "heatsim");
        resigned.wait();
        orb.shutdown();
    });

    // Solver federate: publishes probe values each step.
    grid.spawn(solver_host, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        NullAmbassador amb;
        RtiAmbassador rtia(orb, "heatsim", "solver", amb);
        rtia.publish_object_class("FieldProbe");
        const ObjectHandle probe = rtia.register_object("FieldProbe");
        // Updates are only reflected to already-subscribed federates; wait
        // for the monitor before stepping.
        proc.grid().wait_service("monitor-ready");
        double t = 300.0;
        for (int s = 0; s < steps; ++s) {
            proc.compute(msec(2.0)); // the solve itself
            t = 0.97 * t + 0.03 * 275.0;
            rtia.update_attribute_values(
                probe, {{"step", std::to_string(s)},
                        {"temperature", util::strfmt("%.2f", t)}});
        }
        rtia.resign();
        resigned.count_down();
        orb.shutdown();
    });

    // Monitor federate.
    grid.spawn(monitor_host, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        MonitorAmbassador amb;
        RtiAmbassador rtia(orb, "heatsim", "monitor", amb);
        rtia.subscribe_object_class("FieldProbe");
        proc.grid().register_service("monitor-ready", proc.id());
        amb.wait_updates(steps);
        std::printf("monitor: received all %d updates at virtual time %s\n",
                    steps, format_simtime(proc.now()).c_str());
        rtia.resign();
        resigned.count_down();
        orb.shutdown();
    });

    grid.join_all();
    std::puts("hla_federation done");
    return 0;
}
