/// \file multi_middleware.cpp
/// The PadicoTM headline (paper §4.3): several middleware systems — MPI,
/// CORBA and a SOAP stack — loaded as modules in the SAME process, sharing
/// the SAME Myrinet NIC through the arbitration layer, without conflicts.
/// Contrast: without PadicoTM the second raw middleware fails to open the
/// exclusive NIC (shown first).
///
///   $ ./examples/multi_middleware

#include <cstdio>

#include "corba/naming.hpp"
#include "madeleine/madeleine.hpp"
#include "mpi/mpi.hpp"
#include "soap/soap.hpp"

using namespace padico;
using namespace padico::fabric;

int main() {
    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& a = grid.add_machine("node0");
    auto& b = grid.add_machine("node1");
    grid.attach(a, myri);
    grid.attach(b, myri);

    // --- 1. The conflict PadicoTM exists to solve -------------------------
    grid.spawn(a, [&](Process& proc) {
        mad::Endpoint mpi_raw(proc, myri, "mpich/bip");
        try {
            mad::Endpoint corba_raw(proc, myri, "omniorb/raw");
            std::puts("unexpected: raw double-open succeeded");
        } catch (const ResourceConflict& e) {
            std::printf("raw access conflict (as on real BIP): %s\n",
                        e.what());
        }
    });
    grid.join_all();

    // --- 2. Three middleware systems as PadicoTM modules ------------------
    mpi::install();
    corba::install();
    soap::install();

    osal::Event corba_up, soap_up, done;

    grid.spawn(a, [&](Process& proc) {
        ptm::Runtime rt(proc);
        // Load the middleware like the dynamically loadable modules of
        // §4.3.4 — any combination at the same time.
        auto mpi_mod = std::static_pointer_cast<mpi::MpiModule>(
            rt.modules().load("mpi"));
        auto orb = std::static_pointer_cast<corba::Orb>(
            rt.modules().load("corba/omniORB-4.0.0"));
        rt.modules().load("gsoap");
        std::printf("node0 modules loaded:");
        for (const auto& name : rt.modules().loaded())
            std::printf(" [%s]", name.c_str());
        std::printf("\n");

        // Part 1 above consumed pids 0/1; resolve the actual member pids
        // through the bootstrap registry.
        proc.grid().register_service("mm/rank0", proc.id());
        const std::vector<ProcessId> members{
            proc.grid().wait_service("mm/rank0"),
            proc.grid().wait_service("mm/rank1")};
        auto world = mpi_mod->init("shared", members);
        mpi::Comm& comm = world->world();

        // CORBA server + SOAP server on the same process/NIC.
        class EchoServant : public corba::Servant {
        public:
            std::string interface() const override {
                return "IDL:Echo:1.0";
            }
            void dispatch(const std::string& op, corba::cdr::Decoder& in,
                          corba::cdr::Encoder& out) override {
                if (op != "take") throw RemoteError("BAD_OPERATION");
                const auto data = in.get_seq_msg<std::uint8_t>();
                (void)data;
                corba::skel::ret(out, true);
            }
        };
        orb->serve("echo");
        corba::IOR ior = orb->activate(std::make_shared<EchoServant>());
        proc.grid().register_service("mm/echo/key",
                                     static_cast<ProcessId>(ior.key));
        corba_up.set();

        soap::SoapServer soap_server(rt, "mm-soap");
        soap_server.bind("ping", [](const soap::Params& p) {
            return soap::Params{{"pong", p.at("msg")}};
        });
        soap_up.set();

        // MPI traffic concurrently with the servers above.
        constexpr std::size_t kLen = 1 << 20;
        constexpr int kIters = 16;
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i) {
            comm.send_msg(util::to_message(util::ByteBuf(kLen)), 1, 0);
            char ack;
            comm.recv_bytes(&ack, 1, 1, 1);
        }
        const double mpi_bw =
            mb_per_s(static_cast<std::uint64_t>(kIters) * kLen,
                     proc.now() - t0);
        std::printf("node0: MPI streamed %.0f MB/s while CORBA and SOAP "
                    "served on the same Myrinet NIC\n",
                    mpi_bw);
        std::printf("node0 arbitration-layer traffic:\n%s",
                    rt.stats().to_string().c_str());
        done.wait();
        orb->shutdown();
        soap_server.shutdown();
    });

    grid.spawn(b, [&](Process& proc) {
        ptm::Runtime rt(proc);
        auto mpi_mod = std::static_pointer_cast<mpi::MpiModule>(
            rt.modules().load("mpi"));
        auto orb = std::static_pointer_cast<corba::Orb>(
            rt.modules().load("corba/omniORB-4.0.0"));
        proc.grid().register_service("mm/rank1", proc.id());
        const std::vector<ProcessId> members{
            proc.grid().wait_service("mm/rank0"),
            proc.grid().wait_service("mm/rank1")};
        auto world = mpi_mod->init("shared", members);
        mpi::Comm& comm = world->world();

        corba_up.wait();
        soap_up.wait();
        corba::IOR ior{"echo", proc.grid().wait_service("mm/echo/key"),
                       "IDL:Echo:1.0"};
        corba::ObjectRef echo = orb->resolve(ior);
        soap::SoapClient soap_client(rt, "mm-soap");

        // Interleave: answer MPI, fire CORBA requests, fire SOAP calls.
        constexpr std::size_t kLen = 1 << 20;
        constexpr int kIters = 16;
        std::vector<std::uint8_t> payload(64 * 1024);
        const SimTime t0 = proc.now();
        for (int i = 0; i < kIters; ++i) {
            comm.recv_msg(0, 0);
            comm.send_bytes("k", 1, 0, 1);
            corba::call<bool>(echo, "take", payload);
            auto pong = soap_client.call("ping", {{"msg", "hello"}});
            PADICO_CHECK(pong.at("pong") == "hello", "soap mismatch");
        }
        std::printf("node1: interleaved %d rounds of MPI + CORBA + SOAP in "
                    "%s of virtual time\n",
                    kIters, format_simtime(proc.now() - t0).c_str());
        done.set();
    });

    grid.join_all();
    std::puts("multi_middleware done");
    return 0;
}
