/// \file zoned_grid.cpp
/// Hierarchical routing zones (DESIGN.md §13): build a two-site grid from
/// the topology DSL, run gateway relays on the zone borders, and stream a
/// message across sites — cluster LAN, site backbone, far LAN — with the
/// route resolved by the ancestor walk instead of a flat per-pair table.
///
/// The same program then rebuilds the grid from flat XML (compatibility
/// mode, single root zone) and shows the virtual times agree with the
/// zoned run on an intra-cluster exchange.
///
///   $ ./examples/zoned_grid

#include <atomic>
#include <cstdio>
#include <string>

#include "fabric/registry.hpp"
#include "fabric/topology.hpp"
#include "osal/sync.hpp"
#include "util/strings.hpp"

using namespace padico;
using namespace padico::fabric;

namespace {

util::Message text(const std::string& s) {
    util::ByteBuf b;
    b.append(s.data(), s.size());
    return util::to_message(std::move(b));
}

SimTime cross_site_hello() {
    Grid g;
    // Two sites of two clusters each, stitched by a core WAN. Each
    // "cluster" directive makes a LAN zone with its own machines; each
    // "wan" adopts its children and designates their gateways.
    auto topo = build_topology_from_dsl(
        g,
        "# site A\n"
        "cluster name=a0 kind=full size=4\n"
        "cluster name=a1 kind=full size=4\n"
        "wan name=siteA tech=wan link=a0,a1\n"
        "# site B\n"
        "cluster name=b0 kind=full size=4\n"
        "cluster name=b1 kind=star size=4\n"
        "wan name=siteB tech=wan link=b0,b1\n"
        "wan name=core tech=wan link=siteA,siteB\n");

    auto& a0 = static_cast<ClusterZone&>(topo->zone("a0"));
    auto& b1 = static_cast<ClusterZone&>(topo->zone("b1"));
    const ChannelId ch = g.channel_id("hello");

    // The resolved path is printable before any traffic flows.
    const Path p = topo->resolve(*a0.members()[1], *b1.members()[2]);
    std::printf("route %s -> %s (%zu hops):\n", a0.members()[1]->name().c_str(),
                b1.members()[2]->name().c_str(), p.size());
    for (const Hop& h : p)
        std::printf("  via %-14s to %s\n", h.seg->name().c_str(),
                    h.to->name().c_str());

    // Relays run on every machine the path routes through.
    std::atomic<bool> relay_stop{false};
    for (const Hop& h : p)
        if (h.to != b1.members()[2])
            g.spawn(*h.to, [&](Process& proc) {
                relay_loop(*topo, proc, relay_stop);
            });

    osal::Event done;
    SimTime arrived = 0;
    Process& rx = g.spawn(*b1.members()[2], [&](Process& proc) {
        // b1 is star-wired: the member's NIC is its own spoke segment,
        // so address the adapter by position, not by segment name.
        auto port = proc.machine().adapters()[0]->open(proc, "app");
        auto pkt = port->recv();
        if (pkt) {
            proc.clock().merge(pkt->deliver_time);
            arrived = pkt->deliver_time;
            std::string body(pkt->payload.size(), '\0');
            pkt->payload.copy_out(0, body.data(), body.size());
            std::printf("delivered \"%s\" at t=%llu\n", body.c_str(),
                        static_cast<unsigned long long>(pkt->deliver_time));
        }
        done.set();
        relay_stop.store(true, std::memory_order_release);
    });
    g.spawn(*a0.members()[1], [&](Process& proc) {
        auto port = proc.machine().adapters()[0]->open(proc, "app");
        send_routed(*topo, proc, *port, rx.id(), ch,
                    text("hello across sites"));
        done.wait();
    });
    g.join_all();
    return arrived;
}

/// Same two machines, two builds: zone tree vs flat XML. The virtual time
/// of an intra-segment exchange must not depend on which built the grid.
SimTime intra_pair(bool zoned) {
    Grid g;
    NetworkSegment* lan = nullptr;
    Machine* m0 = nullptr;
    Machine* m1 = nullptr;
    if (zoned) {
        auto topo = build_topology_from_dsl(
            g, "cluster name=c kind=full size=2\n");
        auto& c = static_cast<ClusterZone&>(topo->zone("c"));
        lan = c.segments().front();
        m0 = c.members()[0];
        m1 = c.members()[1];
    } else {
        build_grid_from_xml(
            g,
            "<grid>"
            "<segment name=\"c.lan\" tech=\"fast-ethernet\"/>"
            "<machine name=\"c.n0\"><attach segment=\"c.lan\"/></machine>"
            "<machine name=\"c.n1\"><attach segment=\"c.lan\"/></machine>"
            "</grid>");
        lan = g.find_segment("c.lan");
        m0 = g.find_machine("c.n0");
        m1 = g.find_machine("c.n1");
    }
    const ChannelId ch = g.channel_id("ping");
    SimTime t_rx = 0;
    Process& rx = g.spawn(*m1, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*lan)->open(proc, "app");
        auto pkt = port->recv();
        if (pkt) t_rx = pkt->deliver_time;
    });
    g.spawn(*m0, [&](Process& proc) {
        auto port = proc.machine().adapter_on(*lan)->open(proc, "app");
        proc.compute(usec(10.0));
        port->send(rx.id(), ch, text("ping"), proc.now());
    });
    g.join_all();
    return t_rx;
}

} // namespace

int main() {
    const SimTime crossed = cross_site_hello();
    if (crossed == 0) {
        std::fprintf(stderr, "cross-site delivery failed\n");
        return 1;
    }

    const SimTime zoned = intra_pair(true);
    const SimTime flat = intra_pair(false);
    std::printf("intra-cluster ping: zoned t=%llu, flat-xml t=%llu (%s)\n",
                static_cast<unsigned long long>(zoned),
                static_cast<unsigned long long>(flat),
                zoned == flat ? "identical" : "DIFFER");
    return zoned == flat ? 0 : 1;
}
