/// \file code_coupling.cpp
/// The paper's motivating application (§2, Fig. 1): a chemistry code and a
/// transport code coupled through distributed field exchanges.
///
/// Chemistry runs as a 4-member parallel component computing the chemical
/// product's density; Transport runs as a 2-member parallel component
/// simulating the medium's porosity. Each timestep Chemistry pushes its
/// block-distributed density field into Transport (GridCCM redistributes
/// 4 blocks -> 2 blocks) and pulls back the porosity field (2 -> 4).
///
///   $ ./examples/code_coupling [timesteps] [field-size]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ccm/deployer.hpp"
#include "gridccm/component.hpp"
#include "util/strings.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::gridccm;

namespace {

/// Transport: keeps a porosity field; absorbs density, returns porosity.
class Transport : public ParallelComponent {
public:
    Transport() {
        declare_parallel_facet(
            R"(<parallel-interface component="Transport" facet="port"
                                   distribution="block">
                 <operation name="exchange" argument="block"
                            result="distributed" collective="true"/>
               </parallel-interface>)",
            {{"exchange",
              [this](const OpContext& ctx, util::Message density) {
                  return exchange(ctx, std::move(density));
              }}});
    }
    std::string type() const override { return "Transport"; }

private:
    util::Message exchange(const OpContext& ctx, util::Message density_msg) {
        std::vector<double> density(ctx.local_len);
        density_msg.copy_out(0, density.data(), density_msg.size());
        if (porosity_.size() != ctx.local_len)
            porosity_.assign(ctx.local_len, 0.3);
        // Toy physics: porosity relaxes toward a function of density;
        // model the solver cost on the virtual clock.
        for (std::size_t i = 0; i < ctx.local_len; ++i)
            porosity_[i] = 0.9 * porosity_[i] +
                           0.1 / (1.0 + density[i] * density[i]);
        Process::current().compute(usec(0.02) *
                                   static_cast<SimTime>(ctx.local_len));
        if (ctx.comm != nullptr) ctx.comm->barrier(); // halo sync stand-in
        util::ByteBuf out(porosity_.data(),
                          porosity_.size() * sizeof(double));
        return util::to_message(std::move(out));
    }

    std::vector<double> porosity_;
};

/// Chemistry: owns the density field and drives the coupling. Its "run"
/// facet (on member 0) triggers a number of coupled timesteps; members
/// coordinate over their member communicator.
class Chemistry : public ParallelComponent {
public:
    Chemistry() {
        use_receptacle("transport");
        declare_parallel_facet(
            R"(<parallel-interface component="Chemistry" facet="run"
                                   distribution="block">
                 <operation name="steps" argument="block"
                            collective="true"/>
               </parallel-interface>)",
            {{"steps", [this](const OpContext& ctx, util::Message arg) {
                  return steps(ctx, std::move(arg));
              }}});
    }
    std::string type() const override { return "Chemistry"; }

private:
    util::Message steps(const OpContext& ctx, util::Message arg) {
        // The distributed argument carries per-member step counts; all
        // members receive the same value in their slots.
        std::vector<std::int64_t> counts(ctx.local_len);
        arg.copy_out(0, counts.data(), arg.size());
        // The one-element argument lands on member 0; broadcast it.
        int n_steps = counts.empty() ? 0 : static_cast<int>(counts[0]);
        if (member_comm() != nullptr)
            member_comm()->bcast(std::span<int>(&n_steps, 1), 0);
        const std::size_t field =
            static_cast<std::size_t>(util::parse_uint(
                attribute("field-size")));

        auto stub = bind_parallel("transport");
        const Distribution block = Distribution::block();
        const std::size_t local =
            block.local_size(member_rank(), member_size(), field);
        std::vector<double> density(local, 1.0);

        for (int s = 0; s < n_steps; ++s) {
            // Chemistry solve (modeled cost) updates the density.
            for (std::size_t i = 0; i < local; ++i)
                density[i] = std::sqrt(density[i] + 1.0);
            Process::current().compute(usec(0.05) *
                                       static_cast<SimTime>(local));
            // Coupled exchange: density out, porosity back, redistributed
            // between the 4-member chemistry and 2-member transport.
            auto porosity = stub->invoke<double>(
                "exchange", std::span<const double>(density), field);
            for (std::size_t i = 0; i < local; ++i)
                density[i] *= 1.0 + 0.01 * porosity[i];
            if (member_comm() != nullptr) member_comm()->barrier();
            if (member_rank() == 0)
                std::printf("  chemistry step %d/%d done at %s\n", s + 1,
                            n_steps,
                            format_simtime(
                                Process::current().now())
                                .c_str());
        }
        return util::Message();
    }
};

} // namespace

int main(int argc, char** argv) {
    const int steps = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::size_t field =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100000;

    ccm::ComponentRegistry::register_type(
        "Chemistry", [] { return std::make_unique<Chemistry>(); });
    ccm::ComponentRegistry::register_type(
        "Transport", [] { return std::make_unique<Transport>(); });

    // A 6-node Myrinet cluster plus a frontend on the LAN.
    Grid grid;
    auto& myri = grid.add_segment("myri0", NetTech::Myrinet2000);
    auto& eth = grid.add_segment("eth0", NetTech::FastEthernet);
    std::vector<Machine*> nodes;
    for (int i = 0; i < 6; ++i) {
        auto& m = grid.add_machine("node" + std::to_string(i));
        grid.attach(m, myri);
        grid.attach(m, eth);
        nodes.push_back(&m);
        grid.spawn(m, [](Process& proc) {
            ccm::component_server_main(proc, corba::profile_omniorb4());
        });
    }
    auto& front = grid.add_machine("front");
    grid.attach(front, eth);

    grid.spawn(front, [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        ccm::Deployer deployer(orb);
        const std::string descriptor = util::strfmt(R"(
          <assembly name="coupling">
            <component id="chem" type="Chemistry" parallel="4">
              <attribute name="field-size" value="%zu"/>
            </component>
            <component id="trans" type="Transport" parallel="2"/>
            <connection from="chem:transport" to="trans:port"/>
          </assembly>)",
                                                    field);
        auto dep = deployer.deploy(ccm::Assembly::parse(descriptor));
        std::printf("deployed chemistry on 4 nodes, transport on 2 nodes; "
                    "field of %zu doubles\n",
                    field);

        // Kick the coupled run through chemistry's parallel "run" facet.
        ParallelStub run(orb, deployer.facet_of(
                                  dep, ccm::PortAddr{"chem", "run"}));
        std::vector<std::int64_t> arg(1, steps);
        run.invoke<std::int64_t>("steps",
                                 std::span<const std::int64_t>(arg),
                                 1);
        std::printf("coupled run of %d steps finished; deployer virtual "
                    "time %s\n",
                    steps, format_simtime(proc.now()).c_str());

        deployer.teardown(dep);
        for (auto* m : nodes)
            ccm::connect_component_server(orb, m->name()).shutdown();
    });

    grid.join_all();
    std::puts("code_coupling done");
    return 0;
}
