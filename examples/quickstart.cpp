/// \file quickstart.cpp
/// Five-minute tour of Padico: build a simulated grid, start component
/// servers, deploy a two-component assembly from an XML descriptor, wire
/// the ports and invoke across machines.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "ccm/deployer.hpp"

using namespace padico;
using namespace padico::fabric;
using namespace padico::ccm;

namespace {

/// A component providing a "compute" facet.
class AdderServant : public corba::Servant {
public:
    std::string interface() const override { return "IDL:Adder:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "add") throw RemoteError("BAD_OPERATION " + op);
        const auto a = corba::skel::arg<std::int64_t>(in);
        const auto b = corba::skel::arg<std::int64_t>(in);
        corba::skel::ret(out, a + b);
    }
};

class Adder : public Component {
public:
    Adder() { provide_facet("compute", std::make_shared<AdderServant>()); }
    std::string type() const override { return "Adder"; }
};

/// A component that uses an Adder through its receptacle.
class FrontendServant : public corba::Servant {
public:
    using BackendGetter = std::function<corba::ObjectRef&()>;
    explicit FrontendServant(BackendGetter backend)
        : backend_(std::move(backend)) {}
    std::string interface() const override { return "IDL:Frontend:1.0"; }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        if (op != "sum3") throw RemoteError("BAD_OPERATION " + op);
        const auto a = corba::skel::arg<std::int64_t>(in);
        const auto b = corba::skel::arg<std::int64_t>(in);
        const auto c = corba::skel::arg<std::int64_t>(in);
        // Two remote calls through the receptacle.
        auto& backend = backend_();
        const auto ab = corba::call<std::int64_t>(backend, "add", a, b);
        corba::skel::ret(out,
                         corba::call<std::int64_t>(backend, "add", ab, c));
    }

private:
    BackendGetter backend_;
};

class Frontend : public Component {
public:
    Frontend() {
        provide_facet("api",
                      std::make_shared<FrontendServant>(
                          [this]() -> corba::ObjectRef& {
                              return receptacle("backend");
                          }));
        use_receptacle("backend");
    }
    std::string type() const override { return "Frontend"; }
};

} // namespace

int main() {
    // 1. Describe the hardware: two machines on a Fast-Ethernet LAN.
    Grid grid;
    build_grid_from_xml(grid, R"(<grid>
        <segment name="lan0" tech="fast-ethernet"/>
        <machine name="alpha"><attach segment="lan0"/></machine>
        <machine name="beta"><attach segment="lan0"/></machine>
        <machine name="console"><attach segment="lan0"/></machine>
      </grid>)");

    // 2. Install the component implementations ("binary packages").
    ComponentRegistry::register_type(
        "Adder", [] { return std::make_unique<Adder>(); });
    ComponentRegistry::register_type(
        "Frontend", [] { return std::make_unique<Frontend>(); });

    // 3. Start a component server daemon on each worker machine.
    for (const char* name : {"alpha", "beta"}) {
        grid.spawn(grid.machine(name), [](Process& proc) {
            component_server_main(proc, corba::profile_omniorb4());
        });
    }

    // 4. Deploy the assembly and call into it from the console.
    grid.spawn(grid.machine("console"), [&](Process& proc) {
        ptm::Runtime rt(proc);
        corba::Orb orb(rt, corba::profile_omniorb4());
        Deployer deployer(orb);
        Deployment dep = deployer.deploy(Assembly::parse(R"(
          <assembly name="quickstart">
            <component id="front" type="Frontend"/>
            <component id="back" type="Adder"/>
            <connection from="front:backend" to="back:compute"/>
          </assembly>)"));

        for (const auto& [id, placed] : dep.components)
            std::printf("deployed %-8s -> %s\n", id.c_str(),
                        placed.machines[0].c_str());

        corba::ObjectRef api =
            orb.resolve(deployer.facet_of(dep, PortAddr{"front", "api"}));
        const std::int64_t r = corba::call<std::int64_t>(
            api, "sum3", std::int64_t{1}, std::int64_t{2}, std::int64_t{39});
        std::printf("front.sum3(1, 2, 39) = %lld\n",
                    static_cast<long long>(r));
        std::printf("virtual time elapsed: %s\n",
                    format_simtime(proc.now()).c_str());

        deployer.teardown(dep);
        for (const char* name : {"alpha", "beta"})
            connect_component_server(orb, name).shutdown();
    });

    grid.join_all();
    std::puts("quickstart done");
    return 0;
}
