#include "util/xml.hpp"

#include <cctype>
#include <sstream>

#include "util/strings.hpp"

namespace padico::util {

const std::string& XmlNode::attr(const std::string& key) const {
    auto it = attrs_.find(key);
    PADICO_WIRE_CHECK(it != attrs_.end(),
                      "<" + name_ + "> missing attribute '" + key + "'");
    return it->second;
}

std::string XmlNode::attr_or(const std::string& key,
                             const std::string& dflt) const {
    auto it = attrs_.find(key);
    return it == attrs_.end() ? dflt : it->second;
}

std::vector<XmlNodePtr> XmlNode::children_named(const std::string& name) const {
    std::vector<XmlNodePtr> out;
    for (const auto& c : children_)
        if (c->name() == name) out.push_back(c);
    return out;
}

XmlNodePtr XmlNode::child(const std::string& name) const {
    for (const auto& c : children_)
        if (c->name() == name) return c;
    return nullptr;
}

XmlNodePtr XmlNode::require_child(const std::string& name) const {
    auto c = child(name);
    PADICO_WIRE_CHECK(c != nullptr,
                      "<" + name_ + "> missing child <" + name + ">");
    return c;
}

namespace {

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        case '\'': out += "&apos;"; break;
        default: out += c;
        }
    }
    return out;
}

class Parser {
public:
    explicit Parser(const std::string& in) : in_(in) {}

    XmlNodePtr parse_document() {
        skip_misc();
        XmlNodePtr root = parse_element();
        skip_misc();
        PADICO_WIRE_CHECK(pos_ == in_.size(), "trailing content after root");
        return root;
    }

private:
    char peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
    char get() {
        PADICO_WIRE_CHECK(pos_ < in_.size(), "unexpected end of XML");
        return in_[pos_++];
    }
    bool eat(const std::string& tok) {
        if (in_.compare(pos_, tok.size(), tok) == 0) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }
    void skip_ws() {
        while (pos_ < in_.size() &&
               std::isspace(static_cast<unsigned char>(in_[pos_])))
            ++pos_;
    }
    void skip_until(const std::string& tok) {
        const std::size_t p = in_.find(tok, pos_);
        PADICO_WIRE_CHECK(p != std::string::npos, "unterminated '" + tok + "'");
        pos_ = p + tok.size();
    }
    /// Skip whitespace, comments and processing instructions.
    void skip_misc() {
        while (true) {
            skip_ws();
            if (eat("<!--")) {
                skip_until("-->");
            } else if (eat("<?")) {
                skip_until("?>");
            } else {
                return;
            }
        }
    }

    static bool is_name_char(char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '-' || c == '.' || c == ':';
    }

    std::string parse_name() {
        std::string n;
        while (is_name_char(peek())) n += get();
        PADICO_WIRE_CHECK(!n.empty(), "expected XML name");
        return n;
    }

    std::string decode_entities(const std::string& raw) {
        std::string out;
        out.reserve(raw.size());
        for (std::size_t i = 0; i < raw.size();) {
            if (raw[i] != '&') {
                out += raw[i++];
                continue;
            }
            const std::size_t semi = raw.find(';', i);
            PADICO_WIRE_CHECK(semi != std::string::npos, "bad entity");
            const std::string ent = raw.substr(i + 1, semi - i - 1);
            if (ent == "amp") out += '&';
            else if (ent == "lt") out += '<';
            else if (ent == "gt") out += '>';
            else if (ent == "quot") out += '"';
            else if (ent == "apos") out += '\'';
            else PADICO_WIRE_CHECK(false, "unknown entity &" + ent + ";");
            i = semi + 1;
        }
        return out;
    }

    std::string parse_attr_value() {
        const char quote = get();
        PADICO_WIRE_CHECK(quote == '"' || quote == '\'',
                          "attribute value must be quoted");
        std::string raw;
        while (peek() != quote) raw += get();
        ++pos_; // closing quote
        return decode_entities(raw);
    }

    XmlNodePtr parse_element() {
        PADICO_WIRE_CHECK(get() == '<', "expected '<'");
        auto node = std::make_shared<XmlNode>(parse_name());
        // attributes
        while (true) {
            skip_ws();
            if (eat("/>")) return node;
            if (eat(">")) break;
            const std::string key = parse_name();
            skip_ws();
            PADICO_WIRE_CHECK(get() == '=', "expected '=' after attribute");
            skip_ws();
            node->set_attr(key, parse_attr_value());
        }
        // content
        std::string text;
        while (true) {
            if (eat("<!--")) {
                skip_until("-->");
            } else if (in_.compare(pos_, 2, "</") == 0) {
                pos_ += 2;
                const std::string close = parse_name();
                PADICO_WIRE_CHECK(close == node->name(),
                                  "mismatched </" + close + "> for <" +
                                      node->name() + ">");
                skip_ws();
                PADICO_WIRE_CHECK(get() == '>', "expected '>'");
                node->append_text(std::string(trim(decode_entities(text))));
                return node;
            } else if (peek() == '<') {
                node->add_child(parse_element());
            } else {
                text += get();
            }
        }
    }

    const std::string& in_;
    std::size_t pos_ = 0;
};

} // namespace

std::string XmlNode::to_string(int indent) const {
    std::ostringstream os;
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << '<' << name_;
    for (const auto& [k, v] : attrs_) os << ' ' << k << "=\"" << escape(v) << '"';
    if (children_.empty() && text_.empty()) {
        os << "/>\n";
        return os.str();
    }
    os << '>';
    if (!text_.empty()) os << escape(text_);
    if (!children_.empty()) {
        os << '\n';
        for (const auto& c : children_) os << c->to_string(indent + 1);
        os << pad;
    }
    os << "</" << name_ << ">\n";
    return os.str();
}

XmlNodePtr xml_parse(const std::string& input) {
    return Parser(input).parse_document();
}

} // namespace padico::util
