#include "util/error.hpp"

#include <cstring>
#include <sstream>

namespace padico::detail {

[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
    const char* base = std::strrchr(file, '/');
    std::ostringstream os;
    os << (base ? base + 1 : file) << ':' << line << ": " << msg << " ["
       << expr << ']';
    if (std::strcmp(kind, "wire") == 0)
        throw ProtocolError(os.str());
    throw UsageError(os.str());
}

} // namespace padico::detail
