#include "util/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace padico::util {

namespace {

bool initial_state() {
    const char* v = std::getenv("PADICO_DISABLE_CACHES");
    return v == nullptr || *v == '\0' || std::string_view(v) == "0";
}

std::atomic<bool>& flag() {
    static std::atomic<bool> enabled{initial_state()};
    return enabled;
}

} // namespace

bool caches_enabled() noexcept {
    return flag().load(std::memory_order_relaxed);
}

void set_caches_enabled(bool on) noexcept {
    flag().store(on, std::memory_order_relaxed);
}

} // namespace padico::util
