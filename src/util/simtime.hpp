#pragma once
/// \file simtime.hpp
/// Virtual time. All modeled durations and timestamps in the simulated grid
/// are SimTime values, in nanoseconds. Wall-clock time never enters the
/// performance model, which makes every benchmark deterministic and
/// independent of the host machine.

#include <cstdint>
#include <string>

namespace padico {

/// Virtual nanoseconds.
using SimTime = std::int64_t;

constexpr SimTime nsec(std::int64_t n) { return n; }
constexpr SimTime usec(double u) { return static_cast<SimTime>(u * 1e3); }
constexpr SimTime msec(double m) { return static_cast<SimTime>(m * 1e6); }
constexpr SimTime sec(double s) { return static_cast<SimTime>(s * 1e9); }

constexpr double to_usec(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_msec(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Time to move \p bytes at \p mb_per_s (1 MB/s == 1e6 bytes/s).
constexpr SimTime transfer_time(std::uint64_t bytes, double mb_per_s) {
    return mb_per_s <= 0.0
               ? 0
               : static_cast<SimTime>(static_cast<double>(bytes) * 1e3 /
                                      mb_per_s);
}

/// Throughput in MB/s for \p bytes moved in \p t virtual time.
constexpr double mb_per_s(std::uint64_t bytes, SimTime t) {
    return t <= 0 ? 0.0 : static_cast<double>(bytes) * 1e3 / static_cast<double>(t);
}

/// Human-readable rendering, e.g. "12.3 us" / "4.56 ms".
std::string format_simtime(SimTime t);

} // namespace padico
