#include "util/stats.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace padico::util {

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    PADICO_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    PADICO_CHECK(cells.size() == header_.size(),
                 "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(width[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    line(header_);
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << '|' << std::string(width[c] + 2, '-');
    os << "|\n";
    for (const auto& row : rows_) line(row);
    return os.str();
}

std::string versus(double measured, double paper, const char* unit) {
    if (paper <= 0.0) return strfmt("%.1f %s", measured, unit);
    return strfmt("%.1f %s (paper %.1f, ratio %.2f)", measured, unit, paper,
                  measured / paper);
}

} // namespace padico::util
