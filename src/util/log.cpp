// padico-lint: allow(raw-mutex) — util sits below osal in the layering, so
// the logger cannot use osal::CheckedMutex; its single leaf mutex is only
// ever held across one fwrite.
#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace padico::log {

namespace {

Level initial_level() {
    const char* env = std::getenv("PADICO_LOG");
    if (!env) return Level::warn;
    if (std::strcmp(env, "error") == 0) return Level::error;
    if (std::strcmp(env, "warn") == 0) return Level::warn;
    if (std::strcmp(env, "info") == 0) return Level::info;
    if (std::strcmp(env, "debug") == 0) return Level::debug;
    if (std::strcmp(env, "trace") == 0) return Level::trace;
    return Level::warn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* name(Level lv) {
    switch (lv) {
    case Level::error: return "ERROR";
    case Level::warn: return "WARN ";
    case Level::info: return "INFO ";
    case Level::debug: return "DEBUG";
    case Level::trace: return "TRACE";
    }
    return "?";
}

} // namespace

Level level() noexcept { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_level(Level lv) noexcept {
    g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

void emit(Level lv, const std::string& component, const std::string& text) {
    std::lock_guard<std::mutex> lk(g_mutex);
    std::fprintf(stderr, "[padico %s %-9s] %s\n", name(lv), component.c_str(),
                 text.c_str());
}

} // namespace padico::log
