#pragma once
/// \file stats.hpp
/// Statistics accumulators and a fixed-width table printer used by the
/// benchmark harness to render paper-style tables.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace padico::util {

/// Streaming min/max/mean/variance (Welford).
class Accumulator {
public:
    void add(double x) noexcept {
        ++n_;
        const double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }

    std::uint64_t count() const noexcept { return n_; }
    double mean() const noexcept { return mean_; }
    double min() const noexcept { return n_ ? min_ : 0.0; }
    double max() const noexcept { return n_ ? max_ : 0.0; }
    double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    double stddev() const noexcept;

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Renders rows of strings as an aligned ASCII table with a header.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Formatted table, ready for stdout.
    std::string to_string() const;

    std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Paper-vs-measured comparison helper: "measured (paper x.xx, ratio r)".
std::string versus(double measured, double paper, const char* unit);

} // namespace padico::util
