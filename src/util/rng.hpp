#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random numbers (SplitMix64). Used by tests,
/// examples and workload generators; never by the performance model.

#include <cstdint>

namespace padico::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, bound).
    std::uint64_t below(std::uint64_t bound) noexcept {
        return bound == 0 ? 0 : next() % bound;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

private:
    std::uint64_t state_;
};

} // namespace padico::util
