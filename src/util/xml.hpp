#pragma once
/// \file xml.hpp
/// A small XML parser and DOM, sufficient for CCM/GridCCM descriptors
/// (the paper's OSD software descriptors and the GridCCM parallelism
/// description are XML vocabularies). Supports elements, attributes,
/// text content, comments, XML declarations and the five predefined
/// entities. No namespaces, CDATA or DTDs.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace padico::util {

class XmlNode;
using XmlNodePtr = std::shared_ptr<XmlNode>;

/// One XML element.
class XmlNode {
public:
    explicit XmlNode(std::string name) : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }

    /// Concatenated text content directly under this element, trimmed.
    const std::string& text() const noexcept { return text_; }
    void append_text(const std::string& t) { text_ += t; }

    // --- attributes ---------------------------------------------------
    bool has_attr(const std::string& key) const {
        return attrs_.count(key) != 0;
    }
    /// Required attribute; throws ProtocolError if absent.
    const std::string& attr(const std::string& key) const;
    /// Optional attribute with default.
    std::string attr_or(const std::string& key, const std::string& dflt) const;
    void set_attr(const std::string& key, const std::string& value) {
        attrs_[key] = value;
    }
    const std::map<std::string, std::string>& attrs() const noexcept {
        return attrs_;
    }

    // --- children ------------------------------------------------------
    void add_child(XmlNodePtr c) { children_.push_back(std::move(c)); }
    const std::vector<XmlNodePtr>& children() const noexcept {
        return children_;
    }
    /// All direct children with a given element name.
    std::vector<XmlNodePtr> children_named(const std::string& name) const;
    /// First direct child with a given name, or nullptr.
    XmlNodePtr child(const std::string& name) const;
    /// First direct child with a given name; throws ProtocolError if absent.
    XmlNodePtr require_child(const std::string& name) const;

    /// Serialize back to XML text (used by tests and descriptors round-trip).
    std::string to_string(int indent = 0) const;

private:
    std::string name_;
    std::string text_;
    std::map<std::string, std::string> attrs_;
    std::vector<XmlNodePtr> children_;
};

/// Parse a complete document; returns the root element.
/// Throws ProtocolError on malformed input.
XmlNodePtr xml_parse(const std::string& input);

} // namespace padico::util
