#include "util/simtime.hpp"

#include <cmath>
#include <cstdio>

namespace padico {

std::string format_simtime(SimTime t) {
    char buf[64];
    const double ns = static_cast<double>(t);
    if (std::abs(ns) < 1e3)
        std::snprintf(buf, sizeof buf, "%.0f ns", ns);
    else if (std::abs(ns) < 1e6)
        std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
    else if (std::abs(ns) < 1e9)
        std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
    return buf;
}

} // namespace padico
