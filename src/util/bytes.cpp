#include "util/bytes.hpp"

namespace padico::util {

void Message::copy_out(std::size_t off, void* dst, std::size_t n) const {
    PADICO_CHECK(off + n <= total_, "copy_out out of range");
    byte* out = static_cast<byte*>(dst);
    std::size_t pos = 0; // logical offset of current segment start
    for (const auto& s : segments_) {
        if (n == 0) break;
        const std::size_t seg_end = pos + s.size();
        if (off < seg_end) {
            const std::size_t in_seg = off - pos;
            const std::size_t take = std::min(n, s.size() - in_seg);
            std::memcpy(out, s.data() + in_seg, take);
            out += take;
            off += take;
            n -= take;
        }
        pos = seg_end;
    }
    PADICO_CHECK(n == 0, "copy_out ran out of segments");
}

Message Message::slice(std::size_t off, std::size_t n) const {
    PADICO_CHECK(off + n <= total_, "slice out of range");
    Message out;
    std::size_t pos = 0;
    for (const auto& s : segments_) {
        if (n == 0) break;
        const std::size_t seg_end = pos + s.size();
        if (off < seg_end) {
            const std::size_t in_seg = off - pos;
            const std::size_t take = std::min(n, s.size() - in_seg);
            out.append(s.slice(in_seg, take));
            off += take;
            n -= take;
        }
        pos = seg_end;
    }
    PADICO_CHECK(n == 0, "slice ran out of segments");
    return out;
}

} // namespace padico::util
