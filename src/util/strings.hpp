#pragma once
/// \file strings.hpp
/// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace padico::util {

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse a non-negative integer; throws UsageError on garbage.
std::uint64_t parse_uint(std::string_view s);

/// Parse a double; throws UsageError on garbage.
double parse_double(std::string_view s);

} // namespace padico::util
