#pragma once
/// \file bytes.hpp
/// Byte containers used on the data path.
///
/// - ByteBuf: a contiguous, growable byte buffer (the unit of marshalling).
/// - Segment: a reference-counted [offset,len) view into an immutable ByteBuf.
/// - Message: an ordered list of Segments (an iovec). Messages move through
///   the simulated fabric by reference, which is what makes the "zero-copy"
///   marshalling path of omniORB-like profiles literal in this codebase:
///   a large sequence argument travels as a Segment aliasing the caller's
///   encoder buffer, with no intermediate memcpy.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace padico::util {

using byte = std::uint8_t;

/// Contiguous growable byte buffer.
class ByteBuf {
public:
    ByteBuf() = default;
    explicit ByteBuf(std::size_t n) : data_(n) {}
    ByteBuf(const void* p, std::size_t n)
        : data_(static_cast<const byte*>(p), static_cast<const byte*>(p) + n) {}

    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }
    byte* data() noexcept { return data_.data(); }
    const byte* data() const noexcept { return data_.data(); }

    void clear() noexcept { data_.clear(); }
    void reserve(std::size_t n) { data_.reserve(n); }
    void resize(std::size_t n) { data_.resize(n); }

    /// Append raw bytes.
    void append(const void* p, std::size_t n) {
        const byte* b = static_cast<const byte*>(p);
        data_.insert(data_.end(), b, b + n);
    }
    void append(std::span<const byte> s) { append(s.data(), s.size()); }

    /// Append \p n zero bytes (used for CDR alignment padding).
    void pad(std::size_t n) { data_.insert(data_.end(), n, byte{0}); }

    std::span<const byte> view() const noexcept {
        return {data_.data(), data_.size()};
    }
    std::span<byte> view() noexcept { return {data_.data(), data_.size()}; }

    bool operator==(const ByteBuf& other) const = default;

private:
    std::vector<byte> data_;
};

using BufPtr = std::shared_ptr<const ByteBuf>;

/// Make a shared immutable buffer from raw bytes.
inline BufPtr make_buf(const void* p, std::size_t n) {
    return std::make_shared<const ByteBuf>(p, n);
}
inline BufPtr make_buf(ByteBuf&& b) {
    return std::make_shared<const ByteBuf>(std::move(b));
}

/// Reference-counted view into an immutable buffer.
class Segment {
public:
    Segment() = default;
    Segment(BufPtr buf, std::size_t offset, std::size_t len)
        : buf_(std::move(buf)), offset_(offset), len_(len) {
        PADICO_CHECK(buf_ != nullptr, "segment over null buffer");
        PADICO_CHECK(offset_ + len_ <= buf_->size(), "segment out of range");
    }
    explicit Segment(BufPtr buf)
        : Segment(buf, 0, buf ? buf->size() : 0) {}

    std::size_t size() const noexcept { return len_; }
    const byte* data() const noexcept {
        return buf_ ? buf_->data() + offset_ : nullptr;
    }
    std::span<const byte> view() const noexcept { return {data(), len_}; }

    /// Sub-view; [off, off+n) must fit.
    Segment slice(std::size_t off, std::size_t n) const {
        PADICO_CHECK(off + n <= len_, "slice out of range");
        return Segment(buf_, offset_ + off, n);
    }

private:
    BufPtr buf_;
    std::size_t offset_ = 0;
    std::size_t len_ = 0;
};

/// A scatter-gather message: ordered segments, moved by reference.
class Message {
public:
    Message() = default;
    explicit Message(Segment s) { append(std::move(s)); }

    void append(Segment s) {
        total_ += s.size();
        segments_.push_back(std::move(s));
    }
    void append(const Message& m) {
        for (const auto& s : m.segments_) append(s);
    }

    std::size_t size() const noexcept { return total_; }
    bool empty() const noexcept { return total_ == 0; }
    std::size_t segment_count() const noexcept { return segments_.size(); }
    const std::vector<Segment>& segments() const noexcept { return segments_; }

    /// Copy the message into one contiguous buffer.
    ByteBuf gather() const {
        ByteBuf out;
        out.reserve(total_);
        for (const auto& s : segments_) out.append(s.view());
        return out;
    }

    /// Copy [off, off+n) of the logical byte stream into \p dst.
    void copy_out(std::size_t off, void* dst, std::size_t n) const;

    /// Logical sub-range as a new (still zero-copy) message.
    Message slice(std::size_t off, std::size_t n) const;

private:
    std::vector<Segment> segments_;
    std::size_t total_ = 0;
};

/// Convenience: wrap a contiguous buffer as a one-segment message.
inline Message to_message(ByteBuf&& b) {
    return Message(Segment(make_buf(std::move(b))));
}

} // namespace padico::util
