#pragma once
/// \file cache.hpp
/// Process-wide switch for the hot-path fast lanes: the runtime route
/// cache, the gridccm redistribution-plan cache and the persistent fan-out
/// worker pool. The fast lanes are pure wall-clock optimizations — virtual
/// time results are bit-identical either way — so a single global toggle
/// is enough: benches and tests flip it to measure/verify the invariant.
///
/// Defaults to enabled; the environment variable PADICO_DISABLE_CACHES
/// (any value except "0") starts the process with the fast lanes off.

namespace padico::util {

/// True when the hot-path fast lanes are active.
bool caches_enabled() noexcept;

/// Flip the fast lanes at runtime (benches/tests). Callers that cached a
/// decision keep using it until their own invalidation triggers; flip only
/// between workloads, not mid-traffic.
void set_caches_enabled(bool on) noexcept;

} // namespace padico::util
