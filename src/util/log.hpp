#pragma once
/// \file log.hpp
/// Minimal thread-safe leveled logger. Level is taken from the
/// PADICO_LOG environment variable (error|warn|info|debug|trace),
/// default "warn", and can be overridden programmatically.

#include <sstream>
#include <string>

namespace padico::log {

enum class Level : int { error = 0, warn = 1, info = 2, debug = 3, trace = 4 };

/// Current global level.
Level level() noexcept;

/// Override the global level (also used by tests to silence output).
void set_level(Level lv) noexcept;

/// True when a message at \p lv would be emitted.
inline bool enabled(Level lv) noexcept {
    return static_cast<int>(lv) <= static_cast<int>(level());
}

/// Emit one line; prefixing and locking handled internally.
void emit(Level lv, const std::string& component, const std::string& text);

namespace detail {
class LineStream {
public:
    LineStream(Level lv, const char* component) : lv_(lv), comp_(component) {}
    ~LineStream() { emit(lv_, comp_, os_.str()); }
    template <typename T> LineStream& operator<<(const T& v) {
        os_ << v;
        return *this;
    }

private:
    Level lv_;
    const char* comp_;
    std::ostringstream os_;
};
} // namespace detail

} // namespace padico::log

/// Usage: PLOG(info, "fabric") << "link up " << name;
#define PLOG(lvl, component)                                                  \
    if (!::padico::log::enabled(::padico::log::Level::lvl))                   \
        ;                                                                     \
    else                                                                      \
        ::padico::log::detail::LineStream(::padico::log::Level::lvl,          \
                                          component)
