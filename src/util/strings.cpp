#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace padico::util {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::uint64_t parse_uint(std::string_view s) {
    s = trim(s);
    PADICO_CHECK(!s.empty(), "empty integer");
    std::uint64_t v = 0;
    for (char c : s) {
        PADICO_CHECK(c >= '0' && c <= '9',
                     "bad integer '" + std::string(s) + "'");
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

double parse_double(std::string_view s) {
    s = trim(s);
    PADICO_CHECK(!s.empty(), "empty number");
    std::string tmp(s);
    char* end = nullptr;
    const double v = std::strtod(tmp.c_str(), &end);
    PADICO_CHECK(end && *end == '\0', "bad number '" + tmp + "'");
    return v;
}

} // namespace padico::util
