#pragma once
/// \file error.hpp
/// Exception hierarchy and invariant-checking helpers used across Padico.

#include <stdexcept>
#include <string>

namespace padico {

/// Root of all Padico exceptions.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad argument, wrong state).
class UsageError : public Error {
public:
    explicit UsageError(const std::string& what) : Error(what) {}
};

/// A communication endpoint, object or service could not be found.
class LookupError : public Error {
public:
    explicit LookupError(const std::string& what) : Error(what) {}
};

/// Raw hardware resource conflict (e.g. double-open of an exclusive NIC).
class ResourceConflict : public Error {
public:
    explicit ResourceConflict(const std::string& what) : Error(what) {}
};

/// A wire message / descriptor could not be decoded.
class ProtocolError : public Error {
public:
    explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// A remote invocation failed on the server side.
class RemoteError : public Error {
public:
    explicit RemoteError(const std::string& what) : Error(what) {}
};

/// Deployment could not satisfy the assembly's constraints.
class DeploymentError : public Error {
public:
    explicit DeploymentError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg);
} // namespace detail

} // namespace padico

/// Check a runtime condition; throws padico::UsageError when violated.
#define PADICO_CHECK(expr, msg)                                               \
    do {                                                                      \
        if (!(expr))                                                          \
            ::padico::detail::check_failed("check", #expr, __FILE__,          \
                                           __LINE__, (msg));                  \
    } while (0)

/// Check a decode/wire-format condition; throws padico::ProtocolError.
#define PADICO_WIRE_CHECK(expr, msg)                                          \
    do {                                                                      \
        if (!(expr))                                                          \
            ::padico::detail::check_failed("wire", #expr, __FILE__, __LINE__, \
                                           (msg));                            \
    } while (0)
