#include "ccm/deployer.hpp"

#include <thread>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::ccm {

const Placed& Deployment::placed(const std::string& id) const {
    auto it = components.find(id);
    if (it == components.end())
        throw LookupError("deployment has no component '" + id + "'");
    return it->second;
}

ContainerClient& Deployer::server_for(const std::string& machine) {
    auto it = servers_.find(machine);
    if (it == servers_.end()) {
        it = servers_
                 .emplace(machine, connect_component_server(*orb_, machine))
                 .first;
    }
    return it->second;
}

std::vector<fabric::Machine*> Deployer::choose_machines(
    const ComponentDecl& decl) {
    auto& grid = orb_->runtime().grid();
    std::vector<fabric::Machine*> candidates =
        fabric::discover(grid, decl.placement);
    if (static_cast<int>(candidates.size()) < decl.parallel) {
        throw DeploymentError(util::strfmt(
            "component '%s' needs %d machine(s) matching its constraints, "
            "found %zu",
            decl.id.c_str(), decl.parallel, candidates.size()));
    }
    candidates.resize(static_cast<std::size_t>(decl.parallel));
    return candidates;
}

Deployment Deployer::deploy(const Assembly& assembly) {
    Deployment out;
    out.assembly = assembly.name;

    // Pass 1: placement + instantiation + attributes.
    for (const auto& decl : assembly.components) {
        Placed placed;
        placed.decl = decl;
        const auto machines = choose_machines(decl);

        // GridCCM extension: members of a parallel component learn their
        // rank, size and peer process ids through reserved attributes; the
        // gridccm library turns these into a member communicator at
        // configuration_complete time.
        std::string member_pids;
        if (decl.parallel > 1) {
            auto& grid = orb_->runtime().grid();
            for (const auto* m : machines) {
                const fabric::ProcessId pid =
                    grid.wait_service("ccs/" + m->name());
                member_pids += (member_pids.empty() ? "" : ",") +
                               std::to_string(pid);
            }
        }

        for (int rank = 0; rank < decl.parallel; ++rank) {
            const std::string& machine = machines[static_cast<std::size_t>(
                rank)]->name();
            ContainerClient& ccs = server_for(machine);
            const InstanceId id = ccs.create(decl.type);
            for (const auto& [attr, value] : decl.attributes)
                ccs.configure(id, attr, value);
            if (decl.parallel > 1) {
                ccs.configure(id, "gridccm.name",
                              assembly.name + "/" + decl.id);
                ccs.configure(id, "gridccm.rank", std::to_string(rank));
                ccs.configure(id, "gridccm.size",
                              std::to_string(decl.parallel));
                ccs.configure(id, "gridccm.members", member_pids);
            }
            placed.machines.push_back(machine);
            placed.instances.push_back(id);
            PLOG(info, "deploy") << decl.id << "[" << rank << "] -> "
                                 << machine;
        }
        out.components.emplace(decl.id, std::move(placed));
    }

    // Pass 2: lifecycle — parallel components set up their member world and
    // publish their parallel facets during configuration_complete, which
    // must happen before facets are resolved for wiring. Members of one
    // parallel component rendezvous on their communicator inside the call,
    // so all members must be driven concurrently.
    for (const auto& [id, placed] : out.components) {
        // Resolve all container clients up front (server_for mutates state).
        std::vector<ContainerClient*> clients;
        for (const auto& machine : placed.machines)
            clients.push_back(&server_for(machine));
        std::vector<std::thread> threads;
        osal::CheckedMutex err_mu{lockrank::kScratch, "ccm.deploy.err"};
        std::exception_ptr first_error;
        fabric::Process& self = orb_->runtime().process();
        for (std::size_t r = 0; r < placed.instances.size(); ++r) {
            threads.emplace_back(osal::sched::spawn_thread([&, r] {
                fabric::Process::bind_to_thread(&self);
                try {
                    clients[r]->configuration_complete(placed.instances[r]);
                } catch (...) {
                    osal::CheckedLock lk(err_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }, "ccm.deploy"));
        }
        for (auto& t : threads) osal::sched::join(t);
        if (first_error) std::rethrow_exception(first_error);
    }

    // Pass 3: connections (facet lookup on the target, connect on source).
    for (const auto& conn : assembly.connections) {
        const corba::IOR target = facet_of(out, conn.to);
        const Placed& from = out.placed(conn.from.component);
        for (std::size_t r = 0; r < from.instances.size(); ++r) {
            server_for(from.machines[r])
                .connect(from.instances[r], conn.from.port, target);
        }
        PLOG(info, "deploy") << "connected " << conn.from.str() << " -> "
                             << conn.to.str();
    }

    // Pass 4: event subscriptions.
    for (const auto& ev : assembly.events) {
        const Placed& to = out.placed(ev.to.component);
        PADICO_CHECK(to.decl.parallel == 1,
                     "event sinks on parallel components not supported");
        const corba::IOR consumer =
            server_for(to.machines[0]).consumer(to.instances[0], ev.to.port);
        const Placed& from = out.placed(ev.from.component);
        for (std::size_t r = 0; r < from.instances.size(); ++r) {
            server_for(from.machines[r])
                .subscribe(from.instances[r], ev.from.port, consumer);
        }
    }

    return out;
}

corba::IOR Deployer::facet_of(const Deployment& d, const PortAddr& addr) {
    const Placed& placed = d.placed(addr.component);
    ContainerClient& ccs = server_for(placed.machines[0]);
    if (placed.decl.parallel > 1) {
        // Parallel component: external references go to the parallel home
        // published by the GridCCM layer as "<port>.parallel" on member 0.
        return ccs.facet(placed.instances[0], addr.port + ".parallel");
    }
    try {
        return ccs.facet(placed.instances[0], addr.port);
    } catch (const RemoteError&) {
        // A parallel component deployed with a single member still
        // publishes its facets as parallel homes.
        return ccs.facet(placed.instances[0], addr.port + ".parallel");
    }
}

void Deployer::teardown(const Deployment& deployment) {
    for (const auto& [id, placed] : deployment.components) {
        for (std::size_t r = 0; r < placed.instances.size(); ++r) {
            server_for(placed.machines[r]).remove(placed.instances[r]);
        }
    }
}

} // namespace padico::ccm
