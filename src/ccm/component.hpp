#pragma once
/// \file component.hpp
/// The CORBA Component Model subset (paper §3.2): components with the four
/// port kinds of Fig. 2 — facets (provided interfaces), receptacles (used
/// interfaces), event sources and event sinks — plus attributes and the
/// lifecycle hooks of the execution model. Component implementations
/// register a factory in the ComponentRegistry (the installed-binary-
/// package analogue of the CCM deployment model).

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "corba/stub.hpp"

namespace padico::ccm {

class Container;

/// What a component sees of its runtime environment (CCM context object).
struct Context {
    corba::Orb* orb = nullptr;
    Container* container = nullptr;
    ptm::Runtime* runtime = nullptr;
};

/// Event payload: an opaque CDR-encoded message.
using Event = util::Message;
using EventHandler = std::function<void(const Event&)>;

/// Base class of every component implementation.
class Component {
public:
    virtual ~Component() = default;

    /// Component type name (matches the registry / descriptor).
    virtual std::string type() const = 0;

    // --- lifecycle (CCM execution model) ---------------------------------
    /// All connections are wired and attributes configured.
    virtual void configuration_complete() {}
    /// About to be destroyed.
    virtual void ccm_remove() {}

    // --- attributes --------------------------------------------------------
    void set_attribute(const std::string& name, const std::string& value);
    std::string attribute(const std::string& name) const;
    bool has_attribute(const std::string& name) const {
        return attrs_.count(name) != 0;
    }
    /// Hook: react to configuration.
    virtual void on_attribute(const std::string& /*name*/,
                              const std::string& /*value*/) {}

    // --- ports: introspection used by the container ----------------------
    std::shared_ptr<corba::Servant> facet(const std::string& name) const;
    const std::map<std::string, std::shared_ptr<corba::Servant>>& facets()
        const noexcept {
        return facets_;
    }
    bool has_receptacle(const std::string& name) const {
        return receptacles_.count(name) != 0;
    }
    bool has_event_source(const std::string& name) const {
        return sources_.count(name) != 0;
    }
    bool has_event_sink(const std::string& name) const {
        return sinks_.count(name) != 0;
    }

    /// Used by the container when wiring.
    void bind_receptacle(const std::string& name, corba::ObjectRef ref);
    void add_consumer(const std::string& source, const corba::IOR& consumer);
    void deliver_event(const std::string& sink, const Event& ev);

    /// Set once by the container at creation.
    void set_context(Context ctx) { ctx_ = ctx; }

protected:
    // --- port declaration API for subclasses ------------------------------
    void provide_facet(const std::string& name,
                       std::shared_ptr<corba::Servant> servant);
    void use_receptacle(const std::string& name);
    void declare_event_source(const std::string& name);
    void declare_event_sink(const std::string& name, EventHandler handler);

    /// The reference currently connected to a receptacle.
    corba::ObjectRef& receptacle(const std::string& name);
    bool receptacle_connected(const std::string& name) const;

    /// Publish an event on one of this component's sources: a oneway
    /// "push" to every subscribed consumer.
    void emit(const std::string& source, const Event& ev);

    Context& context() { return ctx_; }

private:
    Context ctx_;
    std::map<std::string, std::string> attrs_;
    std::map<std::string, std::shared_ptr<corba::Servant>> facets_;
    std::map<std::string, corba::ObjectRef> receptacles_;
    std::map<std::string, std::vector<corba::IOR>> sources_;
    std::map<std::string, EventHandler> sinks_;
};

/// Grid-wide registry of component implementations ("installed packages").
class ComponentRegistry {
public:
    using Factory = std::function<std::unique_ptr<Component>()>;

    static void register_type(const std::string& type, Factory factory);
    static bool has_type(const std::string& type);
    static std::unique_ptr<Component> create(const std::string& type);
    static std::vector<std::string> types();
};

} // namespace padico::ccm
