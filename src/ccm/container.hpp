#pragma once
/// \file container.hpp
/// CCM execution model: containers host component instances and hide the
/// system services; component servers are the per-machine daemons that
/// deployment talks to. The container exposes a CORBA control interface so
/// the Deployer can create, wire, configure and destroy instances remotely
/// — the moral equivalent of CCM's ComponentServer/Container interfaces.

#include <atomic>

#include "ccm/component.hpp"
#include "corba/naming.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

namespace padico::ccm {

using InstanceId = std::uint64_t;

/// Hosts component instances inside one process.
class Container {
public:
    Container(ptm::Runtime& rt, corba::Orb& orb, std::string name);
    ~Container();
    Container(const Container&) = delete;
    Container& operator=(const Container&) = delete;

    const std::string& name() const noexcept { return name_; }
    corba::Orb& orb() noexcept { return *orb_; }
    ptm::Runtime& runtime() noexcept { return *rt_; }

    // --- instance management ---------------------------------------------
    InstanceId create(const std::string& type);
    Component& instance(InstanceId id);
    void remove(InstanceId id);
    std::vector<InstanceId> instances() const;

    /// IOR of a facet (activating its servant on first use).
    corba::IOR facet_ior(InstanceId id, const std::string& facet);
    /// IOR of an event sink's consumer object.
    corba::IOR consumer_ior(InstanceId id, const std::string& sink);

    /// Wire a receptacle of a hosted instance to a remote object.
    void connect(InstanceId id, const std::string& receptacle,
                 const corba::IOR& target);
    /// Subscribe a remote consumer to an event source.
    void subscribe(InstanceId id, const std::string& source,
                   const corba::IOR& consumer);
    void configure(InstanceId id, const std::string& attr,
                   const std::string& value);
    void configuration_complete(InstanceId id);

private:
    struct Entry {
        std::unique_ptr<Component> component;
        std::map<std::string, corba::IOR> facet_iors;
        std::map<std::string, corba::IOR> consumer_iors;
    };

    Entry& entry(InstanceId id);

    ptm::Runtime* rt_;
    corba::Orb* orb_;
    std::string name_;
    mutable osal::CheckedMutex mu_{lockrank::kCcmContainer,
                                   "ccm.container"};
    std::map<InstanceId, Entry> instances_;
    std::atomic<InstanceId> next_id_{1};
};

/// The control servant the Deployer drives (IDL:padico/ComponentServer).
/// Operations: create, facet, consumer, connect, subscribe, configure,
/// complete, remove, shutdown.
class ContainerControl : public corba::Servant {
public:
    ContainerControl(Container& c, osal::Event& shutdown)
        : container_(&c), shutdown_(&shutdown) {}

    std::string interface() const override {
        return "IDL:padico/ComponentServer:1.0";
    }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override;

private:
    Container* container_;
    osal::Event* shutdown_;
};

/// Main body of a component-server daemon process: starts a Runtime, an
/// ORB (with \p profile), a Container, publishes its control object as
/// "ccs/<machine>" in the grid naming, then serves until shut down.
/// Spawn one per machine before deployment.
void component_server_main(fabric::Process& proc,
                           const corba::OrbProfile& profile);

/// Typed client wrapper over the control interface, used by the Deployer.
class ContainerClient {
public:
    ContainerClient() = default;
    ContainerClient(corba::Orb& orb, const corba::IOR& control)
        : ref_(orb.resolve(control)) {}

    InstanceId create(const std::string& type);
    corba::IOR facet(InstanceId id, const std::string& name);
    corba::IOR consumer(InstanceId id, const std::string& sink);
    void connect(InstanceId id, const std::string& receptacle,
                 const corba::IOR& target);
    void subscribe(InstanceId id, const std::string& source,
                   const corba::IOR& consumer);
    void configure(InstanceId id, const std::string& attr,
                   const std::string& value);
    void configuration_complete(InstanceId id);
    void remove(InstanceId id);
    void shutdown();

private:
    corba::ObjectRef ref_;
};

/// Open a client to the component server daemon of \p machine (blocks
/// until that daemon has published itself).
ContainerClient connect_component_server(corba::Orb& orb,
                                         const std::string& machine);

/// Event consumer servant bridging CORBA "push" to a component sink.
class EventConsumerServant : public corba::Servant {
public:
    EventConsumerServant(Component& comp, std::string sink)
        : comp_(&comp), sink_(std::move(sink)) {}
    std::string interface() const override {
        return "IDL:padico/EventConsumer:1.0";
    }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override;

private:
    Component* comp_;
    std::string sink_;
};

} // namespace padico::ccm
