#pragma once
/// \file assembly.hpp
/// CCM deployment model: assembly descriptors. The paper's deployment
/// model uses software packages with XML (OSD) descriptors; this is the
/// assembly-level vocabulary — which components to instantiate, with what
/// placement constraints, how to wire their ports, and how to configure
/// them. Parsed from XML:
///
///   <assembly name="coupling">
///     <component id="chem" type="Chemistry" parallel="4">
///       <constraint attr="owner" value="companyX"/>
///       <constraint network="myrinet2000"/>
///       <attribute name="dt" value="0.1"/>
///     </component>
///     <component id="trans" type="Transport"/>
///     <connection from="chem:transport" to="trans:main"/>
///     <event from="chem:stepDone" to="trans:onStep"/>
///   </assembly>

#include <string>
#include <vector>

#include "fabric/registry.hpp"

namespace padico::ccm {

/// A port address "component_id:port_name".
struct PortAddr {
    std::string component;
    std::string port;

    static PortAddr parse(const std::string& s);
    std::string str() const { return component + ":" + port; }
};

struct ComponentDecl {
    std::string id;
    std::string type;
    int parallel = 1; ///< GridCCM extension: number of member nodes
    fabric::MachineQuery placement;
    std::vector<std::pair<std::string, std::string>> attributes;
};

struct ConnectionDecl {
    PortAddr from; ///< receptacle side
    PortAddr to;   ///< facet side
};

struct EventDecl {
    PortAddr from; ///< event source
    PortAddr to;   ///< event sink
};

struct Assembly {
    std::string name;
    std::vector<ComponentDecl> components;
    std::vector<ConnectionDecl> connections;
    std::vector<EventDecl> events;

    const ComponentDecl& component(const std::string& id) const;

    /// Parse from XML text; throws ProtocolError/UsageError on bad input.
    static Assembly parse(const std::string& xml_text);
};

} // namespace padico::ccm
