#pragma once
/// \file deployer.hpp
/// The deployment engine: takes an assembly descriptor, discovers machines
/// satisfying each component's placement constraints through the grid
/// information service, instantiates component instances in the component
/// servers of the chosen machines, wires connections and event
/// subscriptions, configures attributes, and drives the lifecycle — all
/// through the CORBA control interfaces, from a single deployer process
/// (paper §2's deployment scenarios: communication flexibility, machine
/// discovery, localization constraints).

#include "ccm/assembly.hpp"
#include "ccm/container.hpp"

namespace padico::ccm {

/// Where one component landed.
struct Placed {
    ComponentDecl decl;
    std::vector<std::string> machines;  ///< one per member (size == parallel)
    std::vector<InstanceId> instances;  ///< parallel to machines
};

/// Result of a deployment; also the handle for teardown.
struct Deployment {
    std::string assembly;
    std::map<std::string, Placed> components; ///< by component id

    const Placed& placed(const std::string& id) const;
};

class Deployer {
public:
    /// \p orb is the deployer's client-side ORB.
    explicit Deployer(corba::Orb& orb) : orb_(&orb) {}

    /// Deploy an assembly. Machines are chosen by discovery against
    /// \p grid's registry; every component of the assembly must be
    /// satisfiable or DeploymentError is thrown (nothing is rolled back —
    /// call teardown on the partial deployment state you hold).
    Deployment deploy(const Assembly& assembly);

    /// Remove all instances created by \p deployment.
    void teardown(const Deployment& deployment);

    /// Resolve the facet IOR behind a port address of a deployment
    /// (member 0 for parallel components; see facet naming below).
    corba::IOR facet_of(const Deployment& d, const PortAddr& addr);

private:
    ContainerClient& server_for(const std::string& machine);
    std::vector<fabric::Machine*> choose_machines(const ComponentDecl& decl);

    corba::Orb* orb_;
    std::map<std::string, ContainerClient> servers_;
};

} // namespace padico::ccm
