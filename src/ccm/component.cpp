#include "ccm/component.hpp"

#include <mutex>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

namespace padico::ccm {

// ---------------------------------------------------------------------------
// Component

void Component::set_attribute(const std::string& name,
                              const std::string& value) {
    attrs_[name] = value;
    on_attribute(name, value);
}

std::string Component::attribute(const std::string& name) const {
    auto it = attrs_.find(name);
    if (it == attrs_.end())
        throw LookupError("component " + type() + " has no attribute '" +
                          name + "'");
    return it->second;
}

std::shared_ptr<corba::Servant> Component::facet(
    const std::string& name) const {
    auto it = facets_.find(name);
    if (it == facets_.end())
        throw LookupError("component " + type() + " has no facet '" + name +
                          "'");
    return it->second;
}

void Component::provide_facet(const std::string& name,
                              std::shared_ptr<corba::Servant> servant) {
    PADICO_CHECK(servant != nullptr, "facet servant must not be null");
    PADICO_CHECK(facets_.emplace(name, std::move(servant)).second,
                 "duplicate facet '" + name + "'");
}

void Component::use_receptacle(const std::string& name) {
    PADICO_CHECK(receptacles_.emplace(name, corba::ObjectRef()).second,
                 "duplicate receptacle '" + name + "'");
}

void Component::declare_event_source(const std::string& name) {
    PADICO_CHECK(sources_.emplace(name, std::vector<corba::IOR>()).second,
                 "duplicate event source '" + name + "'");
}

void Component::declare_event_sink(const std::string& name,
                                   EventHandler handler) {
    PADICO_CHECK(handler != nullptr, "event sink needs a handler");
    PADICO_CHECK(sinks_.emplace(name, std::move(handler)).second,
                 "duplicate event sink '" + name + "'");
}

corba::ObjectRef& Component::receptacle(const std::string& name) {
    auto it = receptacles_.find(name);
    if (it == receptacles_.end())
        throw LookupError("component " + type() + " has no receptacle '" +
                          name + "'");
    PADICO_CHECK(it->second.valid(),
                 "receptacle '" + name + "' is not connected");
    return it->second;
}

bool Component::receptacle_connected(const std::string& name) const {
    auto it = receptacles_.find(name);
    return it != receptacles_.end() && it->second.valid();
}

void Component::bind_receptacle(const std::string& name,
                                corba::ObjectRef ref) {
    auto it = receptacles_.find(name);
    if (it == receptacles_.end())
        throw LookupError("component " + type() + " has no receptacle '" +
                          name + "'");
    it->second = std::move(ref);
}

void Component::add_consumer(const std::string& source,
                             const corba::IOR& consumer) {
    auto it = sources_.find(source);
    if (it == sources_.end())
        throw LookupError("component " + type() + " has no event source '" +
                          source + "'");
    it->second.push_back(consumer);
}

void Component::deliver_event(const std::string& sink, const Event& ev) {
    auto it = sinks_.find(sink);
    if (it == sinks_.end())
        throw LookupError("component " + type() + " has no event sink '" +
                          sink + "'");
    it->second(ev);
}

void Component::emit(const std::string& source, const Event& ev) {
    auto it = sources_.find(source);
    PADICO_CHECK(it != sources_.end(),
                 "undeclared event source '" + source + "'");
    PADICO_CHECK(ctx_.orb != nullptr, "component has no context yet");
    for (const corba::IOR& consumer : it->second) {
        corba::ObjectRef ref = ctx_.orb->resolve(consumer);
        corba::cdr::Encoder e(ctx_.orb->profile().zero_copy);
        e.put_message(ev);
        ref.oneway("push", e.take());
    }
}

// ---------------------------------------------------------------------------
// ComponentRegistry

namespace {
osal::CheckedMutex g_reg_mu{lockrank::kCcmRegistry, "ccm.registry"};
std::map<std::string, ComponentRegistry::Factory>& registry() {
    static std::map<std::string, ComponentRegistry::Factory> r;
    return r;
}
} // namespace

void ComponentRegistry::register_type(const std::string& type,
                                      Factory factory) {
    osal::CheckedLock lk(g_reg_mu);
    registry()[type] = std::move(factory);
}

bool ComponentRegistry::has_type(const std::string& type) {
    osal::CheckedLock lk(g_reg_mu);
    return registry().count(type) != 0;
}

std::unique_ptr<Component> ComponentRegistry::create(const std::string& type) {
    Factory factory;
    {
        osal::CheckedLock lk(g_reg_mu);
        auto it = registry().find(type);
        if (it == registry().end())
            throw DeploymentError("no component implementation installed for "
                                  "type '" +
                                  type + "'");
        factory = it->second;
    }
    auto comp = factory();
    PADICO_CHECK(comp != nullptr, "component factory returned null");
    PADICO_CHECK(comp->type() == type,
                 "factory for '" + type + "' built a '" + comp->type() + "'");
    return comp;
}

std::vector<std::string> ComponentRegistry::types() {
    osal::CheckedLock lk(g_reg_mu);
    std::vector<std::string> out;
    for (const auto& [t, f] : registry()) out.push_back(t);
    return out;
}

} // namespace padico::ccm
