#include "ccm/container.hpp"

#include "util/log.hpp"

namespace padico::ccm {

// ---------------------------------------------------------------------------
// Container

Container::Container(ptm::Runtime& rt, corba::Orb& orb, std::string name)
    : rt_(&rt), orb_(&orb), name_(std::move(name)) {}

Container::~Container() {
    osal::CheckedLock lk(mu_);
    for (auto& [id, e] : instances_) e.component->ccm_remove();
    instances_.clear();
}

InstanceId Container::create(const std::string& type) {
    auto comp = ComponentRegistry::create(type);
    comp->set_context(Context{orb_, this, rt_});
    const InstanceId id = next_id_.fetch_add(1);
    osal::CheckedLock lk(mu_);
    instances_[id].component = std::move(comp);
    PLOG(info, "ccm") << name_ << ": created " << type << " as instance "
                      << id;
    return id;
}

Container::Entry& Container::entry(InstanceId id) {
    auto it = instances_.find(id);
    if (it == instances_.end())
        throw LookupError("container " + name_ + " has no instance " +
                          std::to_string(id));
    return it->second;
}

Component& Container::instance(InstanceId id) {
    osal::CheckedLock lk(mu_);
    return *entry(id).component;
}

void Container::remove(InstanceId id) {
    osal::CheckedLock lk(mu_);
    Entry& e = entry(id);
    e.component->ccm_remove();
    for (auto& [facet, ior] : e.facet_iors) orb_->deactivate(ior);
    for (auto& [sink, ior] : e.consumer_iors) orb_->deactivate(ior);
    instances_.erase(id);
}

std::vector<InstanceId> Container::instances() const {
    osal::CheckedLock lk(mu_);
    std::vector<InstanceId> out;
    for (const auto& [id, e] : instances_) out.push_back(id);
    return out;
}

corba::IOR Container::facet_ior(InstanceId id, const std::string& facet) {
    osal::CheckedLock lk(mu_);
    Entry& e = entry(id);
    auto it = e.facet_iors.find(facet);
    if (it != e.facet_iors.end()) return it->second;
    corba::IOR ior = orb_->activate(e.component->facet(facet));
    e.facet_iors[facet] = ior;
    return ior;
}

corba::IOR Container::consumer_ior(InstanceId id, const std::string& sink) {
    osal::CheckedLock lk(mu_);
    Entry& e = entry(id);
    auto it = e.consumer_iors.find(sink);
    if (it != e.consumer_iors.end()) return it->second;
    PADICO_CHECK(e.component->has_event_sink(sink),
                 "instance has no event sink '" + sink + "'");
    corba::IOR ior = orb_->activate(
        std::make_shared<EventConsumerServant>(*e.component, sink));
    e.consumer_iors[sink] = ior;
    return ior;
}

void Container::connect(InstanceId id, const std::string& receptacle,
                        const corba::IOR& target) {
    osal::CheckedLock lk(mu_);
    entry(id).component->bind_receptacle(receptacle, orb_->resolve(target));
}

void Container::subscribe(InstanceId id, const std::string& source,
                          const corba::IOR& consumer) {
    osal::CheckedLock lk(mu_);
    entry(id).component->add_consumer(source, consumer);
}

void Container::configure(InstanceId id, const std::string& attr,
                          const std::string& value) {
    osal::CheckedLock lk(mu_);
    entry(id).component->set_attribute(attr, value);
}

void Container::configuration_complete(InstanceId id) {
    osal::CheckedLock lk(mu_);
    entry(id).component->configuration_complete();
}

// ---------------------------------------------------------------------------
// EventConsumerServant

void EventConsumerServant::dispatch(const std::string& op,
                                    corba::cdr::Decoder& in,
                                    corba::cdr::Encoder& out) {
    (void)out;
    if (op != "push") throw RemoteError("BAD_OPERATION " + op);
    comp_->deliver_event(sink_, in.get_bytes_msg(in.remaining()));
}

// ---------------------------------------------------------------------------
// ContainerControl

void ContainerControl::dispatch(const std::string& op,
                                corba::cdr::Decoder& in,
                                corba::cdr::Encoder& out) {
    namespace skel = corba::skel;
    PLOG(debug, "ccm") << container_->name() << ": control op '" << op
                       << "'";
    if (op == "create") {
        skel::ret(out, container_->create(skel::arg<std::string>(in)));
    } else if (op == "facet") {
        const auto id = skel::arg<InstanceId>(in);
        const auto name = skel::arg<std::string>(in);
        skel::ret(out, container_->facet_ior(id, name));
    } else if (op == "consumer") {
        const auto id = skel::arg<InstanceId>(in);
        const auto sink = skel::arg<std::string>(in);
        skel::ret(out, container_->consumer_ior(id, sink));
    } else if (op == "connect") {
        const auto id = skel::arg<InstanceId>(in);
        const auto receptacle = skel::arg<std::string>(in);
        const auto target = skel::arg<corba::IOR>(in);
        container_->connect(id, receptacle, target);
        skel::ret(out, true);
    } else if (op == "subscribe") {
        const auto id = skel::arg<InstanceId>(in);
        const auto source = skel::arg<std::string>(in);
        const auto consumer = skel::arg<corba::IOR>(in);
        container_->subscribe(id, source, consumer);
        skel::ret(out, true);
    } else if (op == "configure") {
        const auto id = skel::arg<InstanceId>(in);
        const auto attr = skel::arg<std::string>(in);
        const auto value = skel::arg<std::string>(in);
        container_->configure(id, attr, value);
        skel::ret(out, true);
    } else if (op == "complete") {
        container_->configuration_complete(skel::arg<InstanceId>(in));
        skel::ret(out, true);
    } else if (op == "remove") {
        container_->remove(skel::arg<InstanceId>(in));
        skel::ret(out, true);
    } else if (op == "shutdown") {
        skel::ret(out, true);
        shutdown_->set();
    } else {
        throw RemoteError("BAD_OPERATION " + op);
    }
}

// ---------------------------------------------------------------------------
// Component server daemon

void component_server_main(fabric::Process& proc,
                           const corba::OrbProfile& profile) {
    ptm::Runtime rt(proc);
    corba::Orb orb(rt, profile);
    const std::string machine = proc.machine().name();
    const std::string endpoint = "ccs-ep/" + machine;
    orb.serve(endpoint);
    Container container(rt, orb, "container@" + machine);
    osal::Event shutdown;
    corba::IOR control =
        orb.activate(std::make_shared<ContainerControl>(container, shutdown));
    // Publish the control IOR through the grid bootstrap registry (the
    // real system registers with a grid information service).
    proc.grid().register_service("ccs/" + machine + "/key",
                                 static_cast<fabric::ProcessId>(control.key));
    proc.grid().register_service("ccs/" + machine, proc.id());
    PLOG(info, "ccm") << "component server up on " << machine;
    shutdown.wait();
    orb.shutdown();
}

/// Resolve the control IOR of the component server on \p machine.
static corba::IOR ccs_control_ior(fabric::Grid& grid,
                                  const std::string& machine) {
    corba::IOR ior;
    ior.endpoint = "ccs-ep/" + machine;
    ior.key = grid.wait_service("ccs/" + machine + "/key");
    ior.type = "IDL:padico/ComponentServer:1.0";
    return ior;
}

// ---------------------------------------------------------------------------
// ContainerClient

InstanceId ContainerClient::create(const std::string& type) {
    return corba::call<InstanceId>(ref_, "create", type);
}
corba::IOR ContainerClient::facet(InstanceId id, const std::string& name) {
    return corba::call<corba::IOR>(ref_, "facet", id, name);
}
corba::IOR ContainerClient::consumer(InstanceId id, const std::string& sink) {
    return corba::call<corba::IOR>(ref_, "consumer", id, sink);
}
void ContainerClient::connect(InstanceId id, const std::string& receptacle,
                              const corba::IOR& target) {
    corba::call<bool>(ref_, "connect", id, receptacle, target);
}
void ContainerClient::subscribe(InstanceId id, const std::string& source,
                                const corba::IOR& consumer) {
    corba::call<bool>(ref_, "subscribe", id, source, consumer);
}
void ContainerClient::configure(InstanceId id, const std::string& attr,
                                const std::string& value) {
    corba::call<bool>(ref_, "configure", id, attr, value);
}
void ContainerClient::configuration_complete(InstanceId id) {
    corba::call<bool>(ref_, "complete", id);
}
void ContainerClient::remove(InstanceId id) {
    corba::call<bool>(ref_, "remove", id);
}
void ContainerClient::shutdown() {
    corba::call<bool>(ref_, "shutdown");
}

/// Open a client to the component server of \p machine (used by Deployer).
ContainerClient connect_component_server(corba::Orb& orb,
                                         const std::string& machine) {
    return ContainerClient(orb,
                           ccs_control_ior(orb.runtime().grid(), machine));
}

} // namespace padico::ccm
