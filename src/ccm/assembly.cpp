#include "ccm/assembly.hpp"

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace padico::ccm {

PortAddr PortAddr::parse(const std::string& s) {
    const auto parts = util::split(s, ':');
    PADICO_WIRE_CHECK(parts.size() == 2 && !parts[0].empty() &&
                          !parts[1].empty(),
                      "port address must be 'component:port', got '" + s +
                          "'");
    return PortAddr{parts[0], parts[1]};
}

const ComponentDecl& Assembly::component(const std::string& id) const {
    for (const auto& c : components)
        if (c.id == id) return c;
    throw LookupError("assembly '" + name + "' has no component '" + id +
                      "'");
}

Assembly Assembly::parse(const std::string& xml_text) {
    const auto root = util::xml_parse(xml_text);
    PADICO_WIRE_CHECK(root->name() == "assembly",
                      "descriptor root must be <assembly>");
    Assembly a;
    a.name = root->attr("name");

    for (const auto& cx : root->children_named("component")) {
        ComponentDecl c;
        c.id = cx->attr("id");
        c.type = cx->attr("type");
        c.parallel =
            static_cast<int>(util::parse_uint(cx->attr_or("parallel", "1")));
        PADICO_WIRE_CHECK(c.parallel >= 1, "parallel must be >= 1");
        for (const auto& k : cx->children_named("constraint")) {
            if (k->has_attr("attr")) {
                c.placement.attrs.emplace_back(k->attr("attr"),
                                               k->attr("value"));
            } else if (k->has_attr("network")) {
                c.placement.network = fabric::parse_tech(k->attr("network"));
            } else if (k->has_attr("min-bandwidth")) {
                c.placement.min_bandwidth_mb =
                    util::parse_double(k->attr("min-bandwidth"));
            } else if (k->has_attr("min-cpus")) {
                c.placement.min_cpus = static_cast<int>(
                    util::parse_uint(k->attr("min-cpus")));
            } else {
                throw ProtocolError("unknown <constraint> in component '" +
                                    c.id + "'");
            }
        }
        for (const auto& at : cx->children_named("attribute"))
            c.attributes.emplace_back(at->attr("name"), at->attr("value"));
        for (const auto& existing : a.components)
            PADICO_WIRE_CHECK(existing.id != c.id,
                              "duplicate component id '" + c.id + "'");
        a.components.push_back(std::move(c));
    }

    for (const auto& kx : root->children_named("connection")) {
        ConnectionDecl d{PortAddr::parse(kx->attr("from")),
                         PortAddr::parse(kx->attr("to"))};
        a.component(d.from.component); // validate ids
        a.component(d.to.component);
        a.connections.push_back(std::move(d));
    }
    for (const auto& ex : root->children_named("event")) {
        EventDecl d{PortAddr::parse(ex->attr("from")),
                    PortAddr::parse(ex->attr("to"))};
        a.component(d.from.component);
        a.component(d.to.component);
        a.events.push_back(std::move(d));
    }
    return a;
}

} // namespace padico::ccm
