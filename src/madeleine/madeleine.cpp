#include "madeleine/madeleine.hpp"

#include "util/log.hpp"

namespace padico::mad {

Endpoint::Endpoint(fabric::Process& proc, fabric::NetworkSegment& segment,
                   const std::string& owner_tag, const MadCosts& costs)
    : proc_(&proc), segment_(&segment), costs_(costs) {
    fabric::Adapter* nic = proc.machine().adapter_on(segment);
    if (nic == nullptr)
        throw LookupError("machine " + proc.machine().name() +
                          " has no adapter on " + segment.name());
    port_ = nic->open(proc, owner_tag);
}

void Endpoint::send(fabric::ProcessId dst, fabric::ChannelId channel,
                    util::Message msg) {
    auto& clk = proc_->clock();
    clk.advance(costs_.per_msg_send);
    if (msg.size() > costs_.rendezvous_threshold) {
        // Rendezvous: RTS/CTS round-trip before the payload moves. We charge
        // the modeled round-trip to the sender; the grant is answered by the
        // receiver-side progression engine, so it does not synchronize with
        // the receiving application thread.
        clk.advance(2 * segment_->params().latency + costs_.rendezvous_cpu);
    }
    const SimTime tx_done = port_->send(dst, channel, std::move(msg), clk.now());
    clk.set(tx_done);
}

util::Message Endpoint::finish_recv(fabric::Packet&& pkt) {
    auto& clk = proc_->clock();
    clk.merge(pkt.deliver_time);
    clk.advance(costs_.per_msg_recv);
    return std::move(pkt.payload);
}

util::Message Endpoint::recv(fabric::ProcessId src,
                             fabric::ChannelId channel) {
    auto pkt = port_->recv_from(src, channel); // FIFO per (src, channel)
    PADICO_CHECK(pkt.has_value(), "endpoint closed while receiving");
    return finish_recv(std::move(*pkt));
}

util::Message Endpoint::recv_any(fabric::ChannelId channel,
                                 fabric::ProcessId* src) {
    auto pkt = port_->recv_on(channel);
    PADICO_CHECK(pkt.has_value(), "endpoint closed while receiving");
    if (src != nullptr) *src = pkt->src;
    return finish_recv(std::move(*pkt));
}

std::optional<util::Message> Endpoint::try_recv(fabric::ProcessId src,
                                                fabric::ChannelId channel) {
    auto pkt = port_->try_recv_from(src, channel);
    if (!pkt) return std::nullopt;
    return finish_recv(std::move(*pkt));
}

} // namespace padico::mad
