#pragma once
/// \file madeleine.hpp
/// Substitute for the Madeleine II parallel communication library
/// (Aumage et al., the paper's foundation for parallel-oriented networks).
/// Message-based, connection-less within a fixed world, ordered per
/// (source, channel). Uses an eager protocol below a rendezvous threshold
/// and models the rendezvous round-trip above it, as MPICH/Madeleine does.
///
/// This is a *raw* library: constructing an Endpoint opens the NIC with its
/// own owner tag, so two different raw users of an exclusive SAN adapter
/// conflict — which is precisely the situation PadicoTM's arbitration layer
/// exists to prevent (paper §4.3.1). PadicoTM opens the adapter once and
/// multiplexes; see padicotm/.

#include <optional>
#include <string>

#include "fabric/grid.hpp"

namespace padico::mad {

/// Software cost parameters of the Madeleine layer. Calibrated so that
/// MPI-on-Madeleine reaches the paper's 11 us latency / 240 MB/s on
/// Myrinet-2000 (see fabric/netmodel.hpp).
struct MadCosts {
    SimTime per_msg_send = usec(1.2);
    SimTime per_msg_recv = usec(1.2);
    std::size_t rendezvous_threshold = 32 * 1024;
    SimTime rendezvous_cpu = usec(0.5);
};

/// One Madeleine instance on one NIC of one process.
class Endpoint {
public:
    /// Opens the adapter of \p proc's machine on \p segment.
    /// \throws ResourceConflict if the NIC is exclusively owned already.
    Endpoint(fabric::Process& proc, fabric::NetworkSegment& segment,
             const std::string& owner_tag = "madeleine",
             const MadCosts& costs = {});

    fabric::Process& process() noexcept { return *proc_; }
    fabric::NetworkSegment& segment() noexcept { return *segment_; }
    const MadCosts& costs() const noexcept { return costs_; }

    /// Send a message to \p dst on logical channel \p channel. Blocking
    /// (in virtual time); above the rendezvous threshold the modeled
    /// round-trip of the RTS/CTS handshake is charged to the sender.
    void send(fabric::ProcessId dst, fabric::ChannelId channel,
              util::Message msg);

    /// Receive the next message from \p src on \p channel (blocking).
    /// The receiver's clock merges the modeled delivery time.
    util::Message recv(fabric::ProcessId src, fabric::ChannelId channel);

    /// Receive from any source on \p channel; reports the source.
    util::Message recv_any(fabric::ChannelId channel, fabric::ProcessId* src);

    /// Non-blocking receive from \p src on \p channel.
    std::optional<util::Message> try_recv(fabric::ProcessId src,
                                          fabric::ChannelId channel);

private:
    util::Message finish_recv(fabric::Packet&& pkt);

    fabric::Process* proc_;
    fabric::NetworkSegment* segment_;
    MadCosts costs_;
    fabric::PortRef port_;
};

} // namespace padico::mad
