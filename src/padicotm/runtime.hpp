#pragma once
/// \file runtime.hpp
/// The per-process PadicoTM runtime. Ties together the arbitration layer
/// (NetEngine), the automatic network selection of the abstraction layer,
/// the security personality, and the module manager.

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "padicotm/engine.hpp"
#include "padicotm/module.hpp"

namespace padico::ptm {

/// Wire-level software costs by paradigm; the abstraction layer charges
/// these per message (parallel networks) or per chunk (TCP-like networks).
struct WireCosts {
    SimTime per_msg_send = 0;
    SimTime per_msg_recv = 0;
    std::size_t chunk = 0;              ///< 0: message-based (no chunking)
    std::size_t rendezvous_threshold = 0; ///< 0: eager only
    SimTime rendezvous_cpu = 0;
};

/// Wire costs of the driver used on \p seg: Madeleine numbers on parallel
/// networks, TCP numbers on distributed ones.
WireCosts wire_costs_for(const fabric::NetworkSegment& seg);

struct RuntimeOptions {
    /// Encrypt traffic that crosses insecure segments (paper §2 security
    /// scenario). The CORBA security service analogue.
    bool enable_security = true;
    /// Paranoid mode for the security ablation: encrypt on every segment,
    /// even private SANs (what the paper's §6 says is "too coarse-grained").
    bool encrypt_always = false;
    /// Engine demultiplexing cost per message.
    SimTime demux_cost = nsec(300);
    /// Software encryption throughput (era symmetric cipher on a PIII).
    double crypto_mb = 40.0;
};

/// Traffic accounting of one runtime, per network segment (what the
/// arbitration layer actually multiplexed where).
struct TrafficCounters {
    struct PerSegment {
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        std::uint64_t encrypted_messages = 0;
    };
    std::map<std::string, PerSegment> by_segment;

    /// Route-cache effectiveness (the destination→segment fast lane): a
    /// hit skips the per-message common_segments derivation entirely; an
    /// invalidation is a cached entry dropped because the grid route
    /// generation moved (port opened/released somewhere).
    struct RouteCache {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
    };
    RouteCache route_cache;

    /// Fabric data-plane counters of this process's NIC on each engine
    /// segment: packets/bytes per direction, BusyList span high-water mark
    /// and watermark-pruned spans, plus the segment's lock-free route
    /// lookup fast-path hits/misses. The route counters are segment-wide
    /// (shared by every process on the segment), the rest are per NIC.
    struct FabricShard {
        std::uint64_t tx_packets = 0;
        std::uint64_t tx_bytes = 0;
        std::uint64_t rx_packets = 0;
        std::uint64_t rx_bytes = 0;
        std::uint64_t tx_span_high_water = 0;
        std::uint64_t rx_span_high_water = 0;
        std::uint64_t tx_pruned_spans = 0;
        std::uint64_t rx_pruned_spans = 0;
        std::uint64_t route_fast_hits = 0;
        std::uint64_t route_fast_misses = 0;
        /// Superseded lock-free route tables freed at a quiescent point
        /// (segment-wide, like the route counters).
        std::uint64_t route_tables_retired = 0;
        /// Routing zone of the segment ("" until a Topology tags it).
        std::string zone;
    };
    std::map<std::string, FabricShard> fabric_by_segment;

    /// Outbound traffic split by zone level: a message posted to a segment
    /// a WAN zone owns (or, on hand-built grids, a NetTech::Wan segment —
    /// see NetworkSegment::is_wan) counts as a wide-area crossing, the
    /// rest as cluster-local. The hierarchical collectives and GridCCM
    /// redistribution are judged by exactly this split: benches and tests
    /// assert WAN-crossing counts directly instead of inferring them from
    /// virtual time.
    struct ZoneLevel {
        std::uint64_t local_messages = 0;
        std::uint64_t local_bytes = 0;
        std::uint64_t wan_messages = 0;
        std::uint64_t wan_bytes = 0;
    };
    ZoneLevel zone_level;

    /// Server-side fan-in counters, one bucket per ingress protocol
    /// ("corba", "soap", "hla", ...). Populated by the svc::ServerCore
    /// instances registered on this runtime (see Runtime::register_ingress):
    /// the runtime layer cannot name svc types, so cores hand it snapshot
    /// callbacks instead. Multiple cores serving the same protocol merge
    /// into one bucket.
    struct Ingress {
        std::uint64_t accepted = 0;          ///< connections accepted
        std::uint64_t closed = 0;            ///< connections fully retired
        std::uint64_t idle_reaped = 0;       ///< closed by the idle sweep
        std::uint64_t frames = 0;            ///< request frames extracted
        std::uint64_t accept_batches = 0;    ///< listener-readiness drains
        std::uint64_t accept_batch_max = 0;  ///< largest single drain
        std::uint64_t stale_events = 0;      ///< readiness events dropped by
                                             ///< the slab generation check
        std::uint64_t ready_queue_high_water = 0; ///< deepest shard queue
        std::uint64_t live_connections = 0;
        std::uint64_t peak_threads = 0;

        void merge(const Ingress& o) {
            accepted += o.accepted;
            closed += o.closed;
            idle_reaped += o.idle_reaped;
            frames += o.frames;
            accept_batches += o.accept_batches;
            accept_batch_max = std::max(accept_batch_max, o.accept_batch_max);
            stale_events += o.stale_events;
            ready_queue_high_water =
                std::max(ready_queue_high_water, o.ready_queue_high_water);
            live_connections += o.live_connections;
            peak_threads += o.peak_threads;
        }
    };
    std::map<std::string, Ingress> ingress_by_protocol;

    std::uint64_t total_bytes() const {
        std::uint64_t t = 0;
        for (const auto& [name, c] : by_segment) t += c.bytes;
        return t;
    }
    /// "segname: N msgs, M bytes (E encrypted)" lines.
    std::string to_string() const;
};

/// Per-process PadicoTM instance.
class Runtime {
public:
    explicit Runtime(fabric::Process& proc, RuntimeOptions opts = {});
    ~Runtime() = default;
    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    fabric::Process& process() noexcept { return *proc_; }
    fabric::Grid& grid() noexcept { return proc_->grid(); }
    const RuntimeOptions& options() const noexcept { return opts_; }
    NetEngine& engine() noexcept { return engine_; }
    ModuleManager& modules() noexcept { return modules_; }

    // --- abstraction-layer services -------------------------------------

    /// Mailbox of a channel (subscribing if needed).
    MailboxPtr subscribe(fabric::ChannelId ch) {
        return engine_.demux().subscribe(ch);
    }
    void unsubscribe(fabric::ChannelId ch) {
        engine_.demux().unsubscribe(ch);
    }

    /// A grid-unique channel id (dynamic connections).
    fabric::ChannelId fresh_channel(const std::string& prefix);

    /// Best usable segment toward \p dst: highest attainable bandwidth among
    /// the segments this engine controls on which \p dst currently has a
    /// port. Returns nullptr when unreachable.
    ///
    /// Fast lane: the result is cached per destination, stamped with the
    /// peer machine's zone-scoped route stamp (Grid::machine_route_stamp);
    /// while no port opens or closes on a segment the peer is attached to,
    /// the cached segment is returned without touching the topology. Port
    /// churn in unrelated zones leaves the entry valid; a stamp mismatch
    /// drops it and re-derives (ports may have appeared, vanished, or
    /// moved to a better segment). Flat grids keep every segment in zone
    /// 0, where the stamp moves with the global generation as before.
    fabric::NetworkSegment* select_segment(fabric::ProcessId dst);

    /// Peek at the route-cache entry toward \p dst without filling or
    /// validating it (tests/diagnostics). cached == false when no entry
    /// exists; seg may be nullptr (a cached "unreachable" verdict).
    struct CachedRoute {
        fabric::NetworkSegment* seg = nullptr;
        std::uint64_t generation = 0; ///< peer-machine route stamp
        bool cached = false;
    };
    CachedRoute cached_route(fabric::ProcessId dst) const;

    /// Send \p msg to (dst, ch) over the automatically selected network,
    /// charging paradigm-appropriate software costs and applying the
    /// security personality when the segment is insecure. Returns the
    /// segment used.
    fabric::NetworkSegment* post(fabric::ProcessId dst, fabric::ChannelId ch,
                                 util::Message msg);

    /// Decode a delivery without touching the clock: decrypts if needed and
    /// reports the receive-side processing cost (per-chunk software cost +
    /// decryption time). Matching layers (e.g. MPI's unexpected-message
    /// queue) peel on arrival, then charge via consume() only when the
    /// message is actually matched.
    struct Peeled {
        util::Message payload;
        SimTime cost = 0;
    };
    Peeled peel(const Delivery& d);

    /// Account a peeled delivery that is being consumed now: merge the
    /// delivery timestamp, then charge the processing cost.
    void consume(SimTime deliver_time, SimTime cost) {
        proc_->clock().merge(deliver_time);
        proc_->clock().advance(cost);
    }

    /// Consume a delivery in one step: merge, charge, return the payload.
    util::Message finish(Delivery&& d);

    /// True when traffic to \p seg would be encrypted under the current
    /// security options.
    bool would_encrypt(const fabric::NetworkSegment& seg) const;

    /// Snapshot of the outbound traffic this runtime multiplexed, per
    /// segment.
    TrafficCounters stats() const;

    /// Deterministic digest of this runtime's virtual state: process id,
    /// virtual clock, and per-segment traffic/adapter counters, FNV-1a
    /// folded in fixed segment order. Identical schedules (and schedules a
    /// DPOR sleep set proves equivalent) must yield identical signatures —
    /// this is the per-schedule virtual-time-identity assertion of the
    /// explore_* suites and the replay tests (DESIGN.md §14).
    std::uint64_t virtual_time_signature() const;

    // --- ingress-counter registry ---------------------------------------

    /// Snapshot callback a server core registers for its protocol bucket.
    using IngressSnapshot = std::function<TrafficCounters::Ingress()>;

    /// Register an ingress source; its snapshot is merged into
    /// stats().ingress_by_protocol[\p protocol]. Returns a token for
    /// unregister_ingress(). The callback must stay valid until then —
    /// svc::ServerCore registers in its constructor and unregisters in
    /// shutdown().
    std::uint64_t register_ingress(std::string protocol, IngressSnapshot fn);
    void unregister_ingress(std::uint64_t token);

private:
    /// Lock-free traffic accounting: one slot per engine segment (the set
    /// is fixed at engine construction), so post() only touches atomics on
    /// the per-message path instead of a shared mutex + map.
    struct SegSlot {
        std::atomic<std::uint64_t> messages{0};
        std::atomic<std::uint64_t> bytes{0};
        std::atomic<std::uint64_t> encrypted{0};
    };

    struct RouteEntry {
        fabric::NetworkSegment* seg = nullptr;
        const fabric::Machine* peer = nullptr;
        std::uint64_t stamp = 0; ///< machine_route_stamp at derivation
    };

    fabric::Process* proc_;
    RuntimeOptions opts_;
    NetEngine engine_;
    ModuleManager modules_;
    std::atomic<std::uint64_t> next_dyn_{0};
    std::vector<SegSlot> seg_stats_; ///< parallel to engine_.segments()
    mutable osal::CheckedMutex route_cache_mu_{lockrank::kRouteCache,
                                               "ptm.route_cache"};
    std::map<fabric::ProcessId, RouteEntry> route_cache_;
    std::atomic<std::uint64_t> route_hits_{0};
    std::atomic<std::uint64_t> route_misses_{0};
    std::atomic<std::uint64_t> route_invalidations_{0};

    struct IngressSource {
        std::uint64_t token = 0;
        std::string protocol;
        IngressSnapshot snapshot;
    };
    mutable osal::CheckedMutex ingress_mu_{lockrank::kIngressRegistry,
                                           "ptm.ingress_registry"};
    std::vector<IngressSource> ingress_sources_;
    std::uint64_t next_ingress_token_ = 1;
};

/// XOR-scramble "encryption" used by the security personality. Real data
/// transformation (so tests catch missing decryption) with modeled cost
/// charged by the caller.
util::Message crypt(const util::Message& m);

} // namespace padico::ptm
