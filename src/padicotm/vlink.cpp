#include "padicotm/vlink.hpp"

#include "util/log.hpp"

namespace padico::ptm {

namespace {

/// Handshake payloads. A zero-length data message is the EOF marker (writes
/// of zero bytes are suppressed, so the encoding is unambiguous); the ACK
/// therefore carries one byte.
struct SynBody {
    fabric::ChannelId c2s;
    fabric::ChannelId s2c;
};

util::Message encode_syn(const SynBody& b) {
    util::ByteBuf buf;
    buf.append(&b, sizeof b);
    return util::to_message(std::move(buf));
}

SynBody decode_syn(const util::Message& m) {
    PADICO_WIRE_CHECK(m.size() == sizeof(SynBody), "bad VLink SYN");
    SynBody b;
    m.copy_out(0, &b, sizeof b);
    return b;
}

util::Message ack_msg() {
    util::ByteBuf one;
    one.append("A", 1);
    return util::to_message(std::move(one));
}

} // namespace

// ---------------------------------------------------------------------------
// VLinkListener

VLinkListener::VLinkListener(Runtime& rt, const std::string& service)
    : rt_(&rt), service_(service) {
    listen_ch_ = rt.grid().channel_id("vlink/listen/" + service);
    inbox_ = rt.subscribe(listen_ch_);
    rt.grid().register_service("vlink/" + service, rt.process().id());
}

VLinkListener::~VLinkListener() { rt_->unsubscribe(listen_ch_); }

VLink VLinkListener::accept() {
    auto d = inbox_->pop();
    if (!d.has_value()) return VLink(); // shut down
    const fabric::ProcessId peer = d->src;
    const SynBody body = decode_syn(rt_->finish(std::move(*d)));
    auto inbox = rt_->subscribe(body.c2s);
    VLink link(*rt_, peer, body.s2c, body.c2s, std::move(inbox));
    // ACK completes the handshake.
    rt_->post(peer, body.s2c, ack_msg());
    return link;
}

std::optional<VLink> VLinkListener::try_accept() {
    auto d = inbox_->try_pop();
    if (!d.has_value()) return std::nullopt; // nothing queued (or shut down)
    const fabric::ProcessId peer = d->src;
    const SynBody body = decode_syn(rt_->finish(std::move(*d)));
    auto inbox = rt_->subscribe(body.c2s);
    VLink link(*rt_, peer, body.s2c, body.c2s, std::move(inbox));
    rt_->post(peer, body.s2c, ack_msg());
    return link;
}

void VLinkListener::shutdown() {
    inbox_->close();
}

// ---------------------------------------------------------------------------
// VLink

VLink VLink::connect(Runtime& rt, const std::string& service) {
    auto& grid = rt.grid();
    const fabric::ProcessId dst = grid.wait_service("vlink/" + service);
    const fabric::ChannelId listen_ch =
        grid.channel_id("vlink/listen/" + service);
    SynBody body;
    body.c2s = rt.fresh_channel("vlink/c2s");
    body.s2c = rt.fresh_channel("vlink/s2c");
    auto inbox = rt.subscribe(body.s2c); // before SYN: no ACK race
    rt.post(dst, listen_ch, encode_syn(body));
    auto ack = inbox->pop();
    PADICO_CHECK(ack.has_value(), "VLink closed during connect");
    PADICO_WIRE_CHECK(rt.finish(std::move(*ack)).size() == 1,
                      "bad VLink ACK");
    return VLink(rt, dst, body.c2s, body.s2c, std::move(inbox));
}

void VLink::release() {
    if (rt_ != nullptr) rt_->unsubscribe(rx_);
    rt_ = nullptr;
}

fabric::NetworkSegment* VLink::mapped_segment() const {
    PADICO_CHECK(valid(), "mapped_segment on invalid VLink");
    return rt_->select_segment(peer_);
}

void VLink::write(util::Message msg) {
    PADICO_CHECK(valid(), "write on invalid VLink");
    PADICO_CHECK(!fin_sent_, "write after close");
    if (msg.empty()) return;
    rt_->post(peer_, tx_, std::move(msg));
}

void VLink::write(const void* data, std::size_t n) {
    write(util::to_message(util::ByteBuf(data, n)));
}

bool VLink::fill(std::size_t need, bool blocking) {
    while (!eof_ && buffered_.size() - buf_off_ < need) {
        auto d = blocking ? inbox_->pop() : inbox_->try_pop();
        if (!d.has_value()) {
            // Blocking pop only returns empty on close. A failed try_pop
            // may just mean "nothing arrived yet" — only a closed mailbox
            // is end-of-stream.
            if (blocking || inbox_->closed()) eof_ = true;
            break;
        }
        util::Message chunk = rt_->finish(std::move(*d));
        if (chunk.empty()) { // FIN marker
            eof_ = true;
            break;
        }
        buffered_.append(chunk);
    }
    return buffered_.size() - buf_off_ >= need;
}

util::Message VLink::take_buffered(std::size_t n) {
    util::Message out = buffered_.slice(buf_off_, n);
    buf_off_ += n;
    if (buf_off_ == buffered_.size()) {
        buffered_ = util::Message();
        buf_off_ = 0;
    } else if (buf_off_ > (1u << 20)) {
        buffered_ = buffered_.slice(buf_off_, buffered_.size() - buf_off_);
        buf_off_ = 0;
    }
    return out;
}

std::optional<util::Message> VLink::read_msg_opt(std::size_t n) {
    PADICO_CHECK(valid(), "read on invalid VLink");
    if (!fill(n, /*blocking=*/true)) return std::nullopt;
    return take_buffered(n);
}

std::optional<util::Message> VLink::try_read_msg(std::size_t n) {
    PADICO_CHECK(valid(), "read on invalid VLink");
    if (!fill(n, /*blocking=*/false)) return std::nullopt;
    return take_buffered(n);
}

Mailbox& VLink::rx_mailbox() {
    PADICO_CHECK(valid(), "rx_mailbox on invalid VLink");
    return *inbox_;
}

util::Message VLink::read_msg(std::size_t n) {
    auto m = read_msg_opt(n);
    if (!m.has_value())
        throw ProtocolError("VLink closed while expecting " +
                            std::to_string(n) + " bytes");
    return std::move(*m);
}

void VLink::read(void* dst, std::size_t n) {
    read_msg(n).copy_out(0, dst, n);
}

void VLink::abort() {
    if (!valid()) return;
    // Closing the mailbox wakes a blocked pop(); the reader then observes
    // end-of-stream. The Demux keeps the mailbox entry until unsubscribe.
    inbox_->close();
}

void VLink::close() {
    if (!valid() || fin_sent_) return;
    fin_sent_ = true;
    // Zero-length message = FIN. post() is bypassed for the empty payload
    // suppression in write(); send directly. Best-effort: the peer may
    // already have shut down its runtime, in which case there is nobody
    // left to notify.
    try {
        rt_->post(peer_, tx_, util::Message());
    } catch (const LookupError&) {
    }
    rt_->unsubscribe(rx_);
    eof_ = true;
}

} // namespace padico::ptm
