#pragma once
/// \file vlink.hpp
/// VLink: PadicoTM's distributed-oriented abstract interface (paper §4.3.2).
/// Dynamic, connection-oriented, reliable byte streams — socket semantics —
/// transparently mapped onto whatever network connects the two peers:
/// straight onto the TCP-like driver on LAN/WAN, or cross-paradigm onto the
/// Madeleine driver when the peers share a SAN. This cross-paradigm mapping
/// is what lets an unmodified CORBA implementation run at Myrinet speed
/// (the headline of Fig. 7).

#include <optional>
#include <string>

#include "padicotm/runtime.hpp"

namespace padico::ptm {

class VLink;

/// Accepts incoming VLink connections on a published service name.
class VLinkListener {
public:
    VLinkListener(Runtime& rt, const std::string& service);
    ~VLinkListener();
    VLinkListener(const VLinkListener&) = delete;
    VLinkListener& operator=(const VLinkListener&) = delete;

    /// Block until a peer connects; completes the handshake.
    /// Returns an unconnected VLink after shutdown().
    VLink accept();

    /// Non-blocking accept: completes the handshake of one pending
    /// connection request, or returns nullopt when none is queued (also
    /// after shutdown — check closed() to tell the two apart). A readiness
    /// dispatcher registers mailbox() on a WaitSet and calls this when the
    /// listener key reports ready.
    std::optional<VLink> try_accept();

    /// Unblock pending accept() calls (used for server shutdown).
    void shutdown();

    /// True once shutdown() ran: no further connections will arrive.
    bool closed() const { return inbox_->closed(); }

    /// The mailbox connection requests arrive on, for WaitSet readiness
    /// registration. The listener must outlive the registration.
    Mailbox& mailbox() noexcept { return *inbox_; }

    const std::string& service() const noexcept { return service_; }

private:
    Runtime* rt_;
    std::string service_;
    fabric::ChannelId listen_ch_;
    MailboxPtr inbox_;
};

/// A connected stream.
class VLink {
public:
    VLink() = default;
    // Move must clear the source: the destructor unsubscribes rx_.
    VLink(VLink&& o) noexcept { swap(o); }
    VLink& operator=(VLink&& o) noexcept {
        if (this != &o) {
            release();
            swap(o);
        }
        return *this;
    }
    VLink(const VLink&) = delete;
    VLink& operator=(const VLink&) = delete;
    ~VLink() { release(); }

    /// Open a stream to a published service (blocks for handshake).
    static VLink connect(Runtime& rt, const std::string& service);

    bool valid() const noexcept { return rt_ != nullptr; }
    fabric::ProcessId peer() const noexcept { return peer_; }

    /// The segment the runtime currently maps this stream onto.
    fabric::NetworkSegment* mapped_segment() const;

    /// Write the whole message to the stream.
    void write(util::Message msg);
    void write(const void* data, std::size_t n);

    /// Read exactly \p n bytes (zero-copy message view); nullopt on EOF or
    /// shutdown.
    std::optional<util::Message> read_msg_opt(std::size_t n);
    /// Read exactly \p n bytes; throws ProtocolError on EOF.
    util::Message read_msg(std::size_t n);
    void read(void* dst, std::size_t n);

    /// Non-blocking read: drains whatever the receive mailbox holds into
    /// the reassembly buffer and returns \p n bytes iff that many are now
    /// available; nullopt otherwise (not enough yet, or EOF — check
    /// at_eof()). Partial data stays buffered across calls, so a
    /// dispatcher can reassemble frames incrementally as chunks arrive.
    std::optional<util::Message> try_read_msg(std::size_t n);

    /// True once the stream ended (peer FIN or local abort): after a
    /// nullopt from try_read_msg this distinguishes "wait for more" from
    /// "no more will ever come".
    bool at_eof() const noexcept { return eof_; }

    /// Bytes currently sitting in the reassembly buffer.
    std::size_t buffered_bytes() const noexcept {
        return buffered_.size() - buf_off_;
    }

    /// The receive mailbox, for WaitSet readiness registration. The VLink
    /// must outlive the registration; mailbox readiness means "a chunk (or
    /// EOF) is consumable", not "a full frame is ready" — pair it with
    /// try_read_msg loops.
    Mailbox& rx_mailbox();

    /// Half-close: signals EOF to the peer's reads and stops local reads.
    void close();

    /// Force-unblock a reader from another thread (server shutdown): closes
    /// the receive mailbox so a blocked read observes EOF. Does not notify
    /// the peer. Safe to call while another thread is blocked in read.
    void abort();

private:
    friend class VLinkListener;
    VLink(Runtime& rt, fabric::ProcessId peer, fabric::ChannelId tx,
          fabric::ChannelId rx, MailboxPtr inbox)
        : rt_(&rt), peer_(peer), tx_(tx), rx_(rx), inbox_(std::move(inbox)) {}

    void swap(VLink& o) noexcept {
        std::swap(rt_, o.rt_);
        std::swap(peer_, o.peer_);
        std::swap(tx_, o.tx_);
        std::swap(rx_, o.rx_);
        std::swap(inbox_, o.inbox_);
        std::swap(buffered_, o.buffered_);
        std::swap(buf_off_, o.buf_off_);
        std::swap(eof_, o.eof_);
        std::swap(fin_sent_, o.fin_sent_);
    }
    void release();
    bool fill(std::size_t need, bool blocking);
    util::Message take_buffered(std::size_t n);

    Runtime* rt_ = nullptr;
    fabric::ProcessId peer_ = fabric::kNoProcess;
    fabric::ChannelId tx_ = 0;
    fabric::ChannelId rx_ = 0;
    MailboxPtr inbox_;
    util::Message buffered_;
    std::size_t buf_off_ = 0;
    bool eof_ = false;
    bool fin_sent_ = false;
};

} // namespace padico::ptm
