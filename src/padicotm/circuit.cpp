#include "padicotm/circuit.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::ptm {

namespace {

/// Wire envelope prepended to every circuit message.
struct Envelope {
    std::int32_t src_rank;
    std::int32_t tag;
};

util::Segment make_envelope(int src_rank, int tag) {
    Envelope e{static_cast<std::int32_t>(src_rank),
               static_cast<std::int32_t>(tag)};
    return util::Segment(util::make_buf(&e, sizeof e));
}

} // namespace

Circuit::Circuit(Runtime& rt, const std::string& name,
                 std::vector<fabric::ProcessId> members)
    : rt_(&rt), name_(name), members_(std::move(members)) {
    PADICO_CHECK(!members_.empty(), "circuit needs at least one member");
    auto& grid = rt.grid();
    const fabric::ProcessId self = rt.process().id();
    for (std::size_t r = 0; r < members_.size(); ++r) {
        member_channels_.push_back(grid.channel_id(
            util::strfmt("circuit/%s/%zu", name.c_str(), r)));
        if (members_[r] == self) rank_ = static_cast<int>(r);
    }
    PADICO_CHECK(rank_ >= 0, "calling process is not a member of circuit '" +
                                 name + "'");
    inbox_ = rt.subscribe(member_channels_[static_cast<std::size_t>(rank_)]);

    // Collective rendezvous: publish readiness, wait for the whole group.
    grid.register_service(
        util::strfmt("circuit/%s/ready/%d", name.c_str(), rank_), self);
    for (std::size_t r = 0; r < members_.size(); ++r) {
        const fabric::ProcessId pid = grid.wait_service(
            util::strfmt("circuit/%s/ready/%zu", name.c_str(), r));
        PADICO_CHECK(pid == members_[r],
                     "circuit member list disagrees across processes");
    }
}

Circuit::~Circuit() {
    rt_->unsubscribe(member_channels_[static_cast<std::size_t>(rank_)]);
}

void Circuit::send(int dst_rank, int tag, util::Message payload) {
    PADICO_CHECK(dst_rank >= 0 && dst_rank < size(), "bad destination rank");
    PADICO_CHECK(tag >= 0, "tags must be non-negative");
    util::Message framed(make_envelope(rank_, tag));
    framed.append(payload);
    rt_->post(members_[static_cast<std::size_t>(dst_rank)],
              member_channels_[static_cast<std::size_t>(dst_rank)],
              std::move(framed));
}

Circuit::Pending Circuit::parse(Delivery&& d) {
    auto peeled = rt_->peel(d);
    util::Message& body = peeled.payload;
    PADICO_WIRE_CHECK(body.size() >= sizeof(Envelope),
                      "short circuit message");
    Envelope e;
    body.copy_out(0, &e, sizeof e);
    return Pending{static_cast<int>(e.src_rank), static_cast<int>(e.tag),
                   d.deliver_time, peeled.cost,
                   body.slice(sizeof e, body.size() - sizeof e)};
}

std::optional<util::Message> Circuit::match_pending(int src_rank, int tag,
                                                    int* out_src,
                                                    int* out_tag) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        const bool src_ok = (src_rank == kAnyRank || it->src_rank == src_rank);
        const bool tag_ok = (tag == kAnyTag || it->tag == tag);
        if (src_ok && tag_ok) {
            if (out_src) *out_src = it->src_rank;
            if (out_tag) *out_tag = it->tag;
            rt_->consume(it->deliver_time, it->cost);
            util::Message payload = std::move(it->payload);
            pending_.erase(it);
            return payload;
        }
    }
    return std::nullopt;
}

util::Message Circuit::recv(int src_rank, int tag, int* out_src,
                            int* out_tag) {
    osal::CheckedLock lk(mu_);
    while (true) {
        if (auto hit = match_pending(src_rank, tag, out_src, out_tag))
            return std::move(*hit);
        PLOG(trace, "padicotm")
            << "circuit " << name_ << " rank " << rank_ << " recv("
            << src_rank << "," << tag << ") waiting";
        auto d = inbox_->pop();
        PADICO_CHECK(d.has_value(), "circuit '" + name_ +
                                        "' closed while receiving");
        Pending p = parse(std::move(*d));
        PLOG(trace, "padicotm")
            << "circuit " << name_ << " rank " << rank_ << " got msg from "
            << p.src_rank << " tag " << p.tag;
        pending_.push_back(std::move(p));
    }
}

std::optional<util::Message> Circuit::try_recv(int src_rank, int tag,
                                               int* out_src, int* out_tag) {
    osal::CheckedLock lk(mu_);
    while (true) {
        if (auto hit = match_pending(src_rank, tag, out_src, out_tag))
            return hit;
        auto d = inbox_->try_pop();
        if (!d.has_value()) return std::nullopt;
        pending_.push_back(parse(std::move(*d)));
    }
}

} // namespace padico::ptm
