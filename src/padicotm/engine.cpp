#include "padicotm/engine.hpp"

#include "util/log.hpp"

namespace padico::ptm {

MailboxPtr Demux::subscribe(fabric::ChannelId ch) {
    osal::CheckedLock lk(mu_);
    PLOG(trace, "padicotm") << "subscribe ch " << ch;
    auto it = boxes_.find(ch);
    if (it != boxes_.end()) return it->second;
    auto box = std::make_shared<Mailbox>();
    auto pend = pending_.find(ch);
    if (pend != pending_.end()) {
        for (auto& d : pend->second) box->push(std::move(d));
        pending_.erase(pend);
    }
    boxes_.emplace(ch, box);
    return box;
}

void Demux::unsubscribe(fabric::ChannelId ch) {
    osal::CheckedLock lk(mu_);
    auto pend = pending_.find(ch);
    if (pend != pending_.end()) {
        // Buffered for a subscriber that never came (or came and left).
        dropped_pending_.fetch_add(pend->second.size(),
                                   std::memory_order_relaxed);
        PLOG(debug, "padicotm")
            << "unsubscribe ch " << ch << " drops " << pend->second.size()
            << " pending deliveries";
        pending_.erase(pend);
    }
    auto it = boxes_.find(ch);
    if (it == boxes_.end()) return;
    it->second->close();
    boxes_.erase(it);
}

void Demux::route(fabric::Packet&& pkt, SimTime demux_cost) {
    Delivery d;
    d.src = pkt.src;
    d.deliver_time = pkt.deliver_time + demux_cost;
    d.flags = pkt.flags;
    d.via = pkt.via;
    d.payload = std::move(pkt.payload);

    osal::CheckedLock lk(mu_);
    auto it = boxes_.find(pkt.channel);
    PLOG(trace, "padicotm") << "route ch " << pkt.channel << " from "
                            << pkt.src << " (" << d.payload.size()
                            << " B) -> "
                            << (it != boxes_.end() ? "mailbox" : "pending");
    if (it != boxes_.end()) {
        it->second->push(std::move(d));
    } else {
        pending_[pkt.channel].push_back(std::move(d));
    }
}

void Demux::close_all() {
    osal::CheckedLock lk(mu_);
    std::uint64_t orphaned = 0;
    for (const auto& [ch, buf] : pending_) orphaned += buf.size();
    if (orphaned != 0) {
        dropped_pending_.fetch_add(orphaned, std::memory_order_relaxed);
        PLOG(debug, "padicotm")
            << "close_all drops " << orphaned
            << " pending deliveries across " << pending_.size()
            << " never-subscribed channels";
    }
    pending_.clear();
    for (auto& [ch, box] : boxes_) box->close();
}

NetEngine::NetEngine(fabric::Process& proc, SimTime demux_cost)
    : proc_(&proc), demux_cost_(demux_cost) {
    for (fabric::Adapter* nic : proc.machine().adapters()) {
        fabric::PortRef port;
        try {
            port = nic->open(proc, "padicotm");
        } catch (const ResourceConflict& e) {
            PLOG(warn, "padicotm")
                << proc.name() << ": cannot arbitrate "
                << nic->segment().name() << " (" << e.what()
                << "); degrading to remaining networks";
            continue;
        }
        segments_.push_back(&nic->segment());
        fabric::Port* raw = port.get();
        ports_.push_back(std::move(port));
        progression_.spawn([this, raw] {
            fabric::Process::bind_to_thread(proc_);
            while (auto pkt = raw->recv())
                demux_.route(std::move(*pkt), demux_cost_);
        });
    }
}

NetEngine::~NetEngine() {
    // Ordered shutdown: stop delivery, join progression, then release NICs.
    for (auto& p : ports_) p->close_rx();
    progression_.join_all();
    demux_.close_all();
    ports_.clear();
}

fabric::Port* NetEngine::port_on(const fabric::NetworkSegment& seg) {
    for (auto& p : ports_)
        if (&p->adapter().segment() == &seg) return p.get();
    return nullptr;
}

} // namespace padico::ptm
