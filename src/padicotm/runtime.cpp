#include "padicotm/runtime.hpp"

#include <array>
#include <cstring>

#include "madeleine/madeleine.hpp"
#include "sockets/sockets.hpp"
#include "util/cache.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::ptm {

// ---------------------------------------------------------------------------
// ModuleManager

namespace {
osal::CheckedMutex g_factory_mu{lockrank::kModuleFactory, "ptm.module_factory"};
std::map<std::string, ModuleManager::Factory>& factories() {
    static std::map<std::string, ModuleManager::Factory> f;
    return f;
}
} // namespace

void ModuleManager::register_type(const std::string& name, Factory factory) {
    osal::CheckedLock lk(g_factory_mu);
    factories()[name] = std::move(factory);
}

bool ModuleManager::has_type(const std::string& name) {
    osal::CheckedLock lk(g_factory_mu);
    return factories().count(name) != 0;
}

std::shared_ptr<Module> ModuleManager::load(const std::string& name) {
    {
        osal::CheckedLock lk(mu_);
        auto it = loaded_.find(name);
        if (it != loaded_.end()) return it->second;
    }
    Factory factory;
    {
        osal::CheckedLock lk(g_factory_mu);
        auto it = factories().find(name);
        if (it == factories().end())
            throw LookupError("no module type registered as '" + name + "'");
        factory = it->second;
    }
    auto mod = factory(*rt_);
    // Two threads may have raced past the first check and both run the
    // factory; re-check under the lock and keep the winner's instance so
    // every caller observes ONE module per name (the loser's construct is
    // discarded, matching dlopen's once-per-name semantics).
    osal::CheckedLock lk(mu_);
    auto [it, inserted] = loaded_.try_emplace(name, std::move(mod));
    return it->second;
}

void ModuleManager::unload(const std::string& name) {
    osal::CheckedLock lk(mu_);
    if (loaded_.erase(name) == 0)
        throw LookupError("module '" + name + "' is not loaded");
}

std::shared_ptr<Module> ModuleManager::find(const std::string& name) const {
    osal::CheckedLock lk(mu_);
    auto it = loaded_.find(name);
    return it == loaded_.end() ? nullptr : it->second;
}

std::vector<std::string> ModuleManager::loaded() const {
    osal::CheckedLock lk(mu_);
    std::vector<std::string> out;
    for (const auto& [name, mod] : loaded_) out.push_back(name);
    return out;
}

// ---------------------------------------------------------------------------
// Wire costs

WireCosts wire_costs_for(const fabric::NetworkSegment& seg) {
    WireCosts w;
    if (seg.params().paradigm == fabric::Paradigm::Parallel) {
        const mad::MadCosts mc;
        w.per_msg_send = mc.per_msg_send;
        w.per_msg_recv = mc.per_msg_recv;
        w.chunk = 0;
        w.rendezvous_threshold = mc.rendezvous_threshold;
        w.rendezvous_cpu = mc.rendezvous_cpu;
    } else {
        const sock::TcpCosts tc;
        w.per_msg_send = tc.per_msg_send;
        w.per_msg_recv = tc.per_msg_recv;
        w.chunk = tc.chunk_size;
        w.rendezvous_threshold = 0;
        w.rendezvous_cpu = 0;
    }
    return w;
}

// ---------------------------------------------------------------------------
// Security personality

namespace {

constexpr std::uint32_t kCryptMul = 1664525u;
constexpr std::uint32_t kCryptAdd = 1013904223u;

/// Affine composition of k LCG steps: key_{n+k} = mul * key_n + add.
struct LcgJump {
    std::uint32_t mul = 1;
    std::uint32_t add = 0;
};

constexpr LcgJump lcg_jump(int k) {
    LcgJump j;
    for (int i = 0; i < k; ++i) {
        j.mul *= kCryptMul;
        j.add = j.add * kCryptMul + kCryptAdd;
    }
    return j;
}

constexpr std::array<LcgJump, 9> kCryptJumps = [] {
    std::array<LcgJump, 9> a{};
    for (int k = 0; k < 9; ++k) a[static_cast<std::size_t>(k)] = lcg_jump(k);
    return a;
}();

} // namespace

util::Message crypt(const util::Message& m) {
    // XOR with the top byte of an LCG keystream, 8 bytes per iteration:
    // the eight keystream words of a block are derived independently from
    // the block's entry key via precomputed k-step jumps, so the multiplies
    // pipeline instead of forming one serial dependency chain per byte.
    // Byte-exact match with the byte-serial reference is asserted by
    // Security.CryptMatchesByteSerialReference (wire compatibility).
    util::ByteBuf flat = m.gather();
    util::byte* p = flat.data();
    const std::size_t n = flat.size();
    std::uint32_t key = 0x9d2c5680u;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        util::byte ks[8];
        for (int j = 0; j < 8; ++j) {
            const LcgJump& jmp = kCryptJumps[static_cast<std::size_t>(j + 1)];
            ks[j] = static_cast<util::byte>((jmp.mul * key + jmp.add) >> 24);
        }
        std::uint64_t w, k64;
        std::memcpy(&w, p + i, 8);
        std::memcpy(&k64, ks, 8);
        w ^= k64;
        std::memcpy(p + i, &w, 8);
        key = kCryptJumps[8].mul * key + kCryptJumps[8].add;
    }
    for (; i < n; ++i) {
        key = key * kCryptMul + kCryptAdd;
        p[i] ^= static_cast<util::byte>(key >> 24);
    }
    return util::to_message(std::move(flat));
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(fabric::Process& proc, RuntimeOptions opts)
    : proc_(&proc), opts_(opts), engine_(proc, opts.demux_cost),
      modules_(*this), seg_stats_(engine_.segments().size()) {}

fabric::ChannelId Runtime::fresh_channel(const std::string& prefix) {
    const std::uint64_t n = next_dyn_.fetch_add(1);
    return grid().channel_id(util::strfmt(
        "%s/%u/%llu", prefix.c_str(), proc_->id(),
        static_cast<unsigned long long>(n)));
}

fabric::NetworkSegment* Runtime::select_segment(fabric::ProcessId dst) {
    const bool fast = util::caches_enabled();
    if (fast) {
        osal::CheckedLock lk(route_cache_mu_);
        auto it = route_cache_.find(dst);
        if (it != route_cache_.end()) {
            // Zone-scoped revalidation: the stamp sums the zone route
            // generations of the peer machine's segments, so it moves
            // exactly when a port opens or closes where the peer could
            // hold one — churn in unrelated zones keeps the entry valid.
            if (it->second.stamp ==
                grid().machine_route_stamp(*it->second.peer)) {
                route_hits_.fetch_add(1, std::memory_order_relaxed);
                return it->second.seg;
            }
            route_invalidations_.fetch_add(1, std::memory_order_relaxed);
            route_cache_.erase(it);
        }
    }
    route_misses_.fetch_add(1, std::memory_order_relaxed);
    fabric::Machine& peer = grid().wait_process(dst).machine();
    // Stamp captured BEFORE the derivation: if a relevant port opens or
    // closes while we compute, the stored entry is already stale and the
    // next lookup revalidates — never the reverse.
    const std::uint64_t stamp = grid().machine_route_stamp(peer);
    fabric::NetworkSegment* found = nullptr;
    for (fabric::NetworkSegment* seg :
         grid().common_segments(proc_->machine(), peer)) {
        if (engine_.port_on(*seg) == nullptr) continue; // not arbitrated here
        if (seg->port_for(dst) == nullptr) continue;    // peer engine not up
        found = seg;
        break;
    }
    if (fast) {
        osal::CheckedLock lk(route_cache_mu_);
        route_cache_[dst] = RouteEntry{found, &peer, stamp};
    }
    return found;
}

Runtime::CachedRoute Runtime::cached_route(fabric::ProcessId dst) const {
    osal::CheckedLock lk(route_cache_mu_);
    auto it = route_cache_.find(dst);
    if (it == route_cache_.end()) return CachedRoute{};
    return CachedRoute{it->second.seg, it->second.stamp, true};
}

bool Runtime::would_encrypt(const fabric::NetworkSegment& seg) const {
    if (opts_.encrypt_always) return true;
    // The colocation optimization the paper proposes in §6: traffic that
    // stays on a physically secure network skips encryption.
    return opts_.enable_security && !seg.params().secure;
}

fabric::NetworkSegment* Runtime::post(fabric::ProcessId dst,
                                      fabric::ChannelId ch,
                                      util::Message msg) {
    fabric::NetworkSegment* seg = select_segment(dst);
    if (seg == nullptr)
        throw LookupError(proc_->name() + ": no usable network toward pid " +
                          std::to_string(dst));
    auto& clk = proc_->clock();
    const WireCosts w = wire_costs_for(*seg);
    const std::size_t bytes = msg.size();

    std::uint32_t flags = 0;
    if (would_encrypt(*seg)) {
        clk.advance(transfer_time(bytes, opts_.crypto_mb));
        msg = crypt(msg);
        flags |= fabric::kFlagEncrypted;
    }

    const std::size_t chunks =
        w.chunk == 0 ? 1 : std::max<std::size_t>(1, (bytes + w.chunk - 1) / w.chunk);
    clk.advance(static_cast<SimTime>(chunks) * w.per_msg_send);
    if (w.rendezvous_threshold != 0 && bytes > w.rendezvous_threshold)
        clk.advance(2 * seg->params().latency + w.rendezvous_cpu);

    fabric::Port* port = engine_.port_on(*seg);
    clk.set(port->send(dst, ch, std::move(msg), clk.now(), flags));
    // Per-segment accounting on atomics: the slot index is the segment's
    // position in the engine's (fixed) segment list, so the per-message
    // path never takes a stats lock.
    const auto& segs = engine_.segments();
    for (std::size_t slot = 0; slot < segs.size(); ++slot) {
        if (segs[slot] != seg) continue;
        SegSlot& c = seg_stats_[slot];
        c.messages.fetch_add(1, std::memory_order_relaxed);
        c.bytes.fetch_add(bytes, std::memory_order_relaxed);
        if (flags & fabric::kFlagEncrypted)
            c.encrypted.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return seg;
}

TrafficCounters Runtime::stats() const {
    TrafficCounters out;
    const auto& segs = engine_.segments();
    for (std::size_t slot = 0; slot < segs.size(); ++slot) {
        const SegSlot& c = seg_stats_[slot];
        const std::uint64_t msgs = c.messages.load(std::memory_order_relaxed);
        if (msgs == 0) continue;
        auto& per = out.by_segment[segs[slot]->name()];
        per.messages = msgs;
        per.bytes = c.bytes.load(std::memory_order_relaxed);
        per.encrypted_messages = c.encrypted.load(std::memory_order_relaxed);
        if (segs[slot]->is_wan()) {
            out.zone_level.wan_messages += per.messages;
            out.zone_level.wan_bytes += per.bytes;
        } else {
            out.zone_level.local_messages += per.messages;
            out.zone_level.local_bytes += per.bytes;
        }
    }
    out.route_cache.hits = route_hits_.load(std::memory_order_relaxed);
    out.route_cache.misses = route_misses_.load(std::memory_order_relaxed);
    out.route_cache.invalidations =
        route_invalidations_.load(std::memory_order_relaxed);
    for (fabric::NetworkSegment* seg : segs) {
        const fabric::Adapter* nic = proc_->machine().adapter_on(*seg);
        if (nic == nullptr) continue;
        const fabric::AdapterCounters c = nic->counters();
        if (c.tx_packets + c.rx_packets == 0 &&
            seg->route_fast_hits() + seg->route_fast_misses() == 0)
            continue;
        auto& f = out.fabric_by_segment[seg->name()];
        f.tx_packets = c.tx_packets;
        f.tx_bytes = c.tx_bytes;
        f.rx_packets = c.rx_packets;
        f.rx_bytes = c.rx_bytes;
        f.tx_span_high_water = c.tx_span_high_water;
        f.rx_span_high_water = c.rx_span_high_water;
        f.tx_pruned_spans = c.tx_pruned_spans;
        f.rx_pruned_spans = c.rx_pruned_spans;
        f.route_fast_hits = seg->route_fast_hits();
        f.route_fast_misses = seg->route_fast_misses();
        f.route_tables_retired = seg->route_tables_retired();
        f.zone = seg->zone_name();
    }
    // Snapshot callbacks reach back up into svc (whose locks rank BELOW the
    // registry lock), so copy the source list out first and invoke with the
    // registry lock released.
    std::vector<IngressSource> sources;
    {
        osal::CheckedLock lk(ingress_mu_);
        sources = ingress_sources_;
    }
    for (const auto& src : sources)
        out.ingress_by_protocol[src.protocol].merge(src.snapshot());
    return out;
}

std::uint64_t Runtime::virtual_time_signature() const {
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(static_cast<std::uint64_t>(proc_->id()));
    mix(static_cast<std::uint64_t>(proc_->clock().now()));
    const auto& segs = engine_.segments();
    for (std::size_t slot = 0; slot < segs.size(); ++slot) {
        const SegSlot& c = seg_stats_[slot];
        mix(c.messages.load(std::memory_order_relaxed));
        mix(c.bytes.load(std::memory_order_relaxed));
    }
    for (fabric::NetworkSegment* seg : segs) {
        const fabric::Adapter* nic = proc_->machine().adapter_on(*seg);
        if (nic == nullptr) continue;
        const fabric::AdapterCounters c = nic->counters();
        mix(c.tx_packets);
        mix(c.tx_bytes);
        mix(c.rx_packets);
        mix(c.rx_bytes);
    }
    return h;
}

std::uint64_t Runtime::register_ingress(std::string protocol,
                                        IngressSnapshot fn) {
    osal::CheckedLock lk(ingress_mu_);
    const std::uint64_t token = next_ingress_token_++;
    ingress_sources_.push_back(
        IngressSource{token, std::move(protocol), std::move(fn)});
    return token;
}

void Runtime::unregister_ingress(std::uint64_t token) {
    osal::CheckedLock lk(ingress_mu_);
    std::erase_if(ingress_sources_,
                  [token](const IngressSource& s) { return s.token == token; });
}

std::string TrafficCounters::to_string() const {
    std::string out;
    for (const auto& [name, c] : by_segment) {
        out += util::strfmt("%s: %llu msgs, %llu bytes (%llu encrypted)\n",
                            name.c_str(),
                            static_cast<unsigned long long>(c.messages),
                            static_cast<unsigned long long>(c.bytes),
                            static_cast<unsigned long long>(
                                c.encrypted_messages));
    }
    if (route_cache.hits + route_cache.misses != 0) {
        out += util::strfmt(
            "route-cache: %llu hits, %llu misses, %llu invalidations\n",
            static_cast<unsigned long long>(route_cache.hits),
            static_cast<unsigned long long>(route_cache.misses),
            static_cast<unsigned long long>(route_cache.invalidations));
    }
    for (const auto& [name, f] : fabric_by_segment) {
        out += util::strfmt(
            "fabric %s: tx %llu pkts/%llu B, rx %llu pkts/%llu B, "
            "spans hw %llu/%llu, pruned %llu/%llu, "
            "route-fast %llu hits/%llu misses\n",
            name.c_str(), static_cast<unsigned long long>(f.tx_packets),
            static_cast<unsigned long long>(f.tx_bytes),
            static_cast<unsigned long long>(f.rx_packets),
            static_cast<unsigned long long>(f.rx_bytes),
            static_cast<unsigned long long>(f.tx_span_high_water),
            static_cast<unsigned long long>(f.rx_span_high_water),
            static_cast<unsigned long long>(f.tx_pruned_spans),
            static_cast<unsigned long long>(f.rx_pruned_spans),
            static_cast<unsigned long long>(f.route_fast_hits),
            static_cast<unsigned long long>(f.route_fast_misses));
    }
    return out;
}

Runtime::Peeled Runtime::peel(const Delivery& d) {
    Peeled out;
    if (d.via != nullptr) {
        const WireCosts w = wire_costs_for(*d.via);
        const std::size_t bytes = d.payload.size();
        const std::size_t chunks =
            w.chunk == 0 ? 1
                         : std::max<std::size_t>(1, (bytes + w.chunk - 1) / w.chunk);
        out.cost += static_cast<SimTime>(chunks) * w.per_msg_recv;
    }
    if (d.flags & fabric::kFlagEncrypted) {
        out.cost += transfer_time(d.payload.size(), opts_.crypto_mb);
        out.payload = crypt(d.payload); // the XOR keystream is its own inverse
    } else {
        out.payload = d.payload;
    }
    return out;
}

util::Message Runtime::finish(Delivery&& d) {
    Peeled p = peel(d);
    consume(d.deliver_time, p.cost);
    return std::move(p.payload);
}

} // namespace padico::ptm
