#include "padicotm/runtime.hpp"

#include "madeleine/madeleine.hpp"
#include "sockets/sockets.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::ptm {

// ---------------------------------------------------------------------------
// ModuleManager

namespace {
std::mutex g_factory_mu;
std::map<std::string, ModuleManager::Factory>& factories() {
    static std::map<std::string, ModuleManager::Factory> f;
    return f;
}
} // namespace

void ModuleManager::register_type(const std::string& name, Factory factory) {
    std::lock_guard<std::mutex> lk(g_factory_mu);
    factories()[name] = std::move(factory);
}

bool ModuleManager::has_type(const std::string& name) {
    std::lock_guard<std::mutex> lk(g_factory_mu);
    return factories().count(name) != 0;
}

std::shared_ptr<Module> ModuleManager::load(const std::string& name) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = loaded_.find(name);
        if (it != loaded_.end()) return it->second;
    }
    Factory factory;
    {
        std::lock_guard<std::mutex> lk(g_factory_mu);
        auto it = factories().find(name);
        if (it == factories().end())
            throw LookupError("no module type registered as '" + name + "'");
        factory = it->second;
    }
    auto mod = factory(*rt_);
    std::lock_guard<std::mutex> lk(mu_);
    loaded_[name] = mod;
    return mod;
}

void ModuleManager::unload(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    if (loaded_.erase(name) == 0)
        throw LookupError("module '" + name + "' is not loaded");
}

std::shared_ptr<Module> ModuleManager::find(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = loaded_.find(name);
    return it == loaded_.end() ? nullptr : it->second;
}

std::vector<std::string> ModuleManager::loaded() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    for (const auto& [name, mod] : loaded_) out.push_back(name);
    return out;
}

// ---------------------------------------------------------------------------
// Wire costs

WireCosts wire_costs_for(const fabric::NetworkSegment& seg) {
    WireCosts w;
    if (seg.params().paradigm == fabric::Paradigm::Parallel) {
        const mad::MadCosts mc;
        w.per_msg_send = mc.per_msg_send;
        w.per_msg_recv = mc.per_msg_recv;
        w.chunk = 0;
        w.rendezvous_threshold = mc.rendezvous_threshold;
        w.rendezvous_cpu = mc.rendezvous_cpu;
    } else {
        const sock::TcpCosts tc;
        w.per_msg_send = tc.per_msg_send;
        w.per_msg_recv = tc.per_msg_recv;
        w.chunk = tc.chunk_size;
        w.rendezvous_threshold = 0;
        w.rendezvous_cpu = 0;
    }
    return w;
}

// ---------------------------------------------------------------------------
// Security personality

util::Message crypt(const util::Message& m) {
    util::ByteBuf flat = m.gather();
    std::uint32_t key = 0x9d2c5680u;
    for (std::size_t i = 0; i < flat.size(); ++i) {
        key = key * 1664525u + 1013904223u;
        flat.data()[i] ^= static_cast<util::byte>(key >> 24);
    }
    return util::to_message(std::move(flat));
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(fabric::Process& proc, RuntimeOptions opts)
    : proc_(&proc), opts_(opts), engine_(proc, opts.demux_cost),
      modules_(*this) {}

fabric::ChannelId Runtime::fresh_channel(const std::string& prefix) {
    const std::uint64_t n = next_dyn_.fetch_add(1);
    return grid().channel_id(util::strfmt(
        "%s/%u/%llu", prefix.c_str(), proc_->id(),
        static_cast<unsigned long long>(n)));
}

fabric::NetworkSegment* Runtime::select_segment(fabric::ProcessId dst) {
    fabric::Machine& peer = grid().wait_process(dst).machine();
    for (fabric::NetworkSegment* seg :
         grid().common_segments(proc_->machine(), peer)) {
        if (engine_.port_on(*seg) == nullptr) continue; // not arbitrated here
        if (seg->port_for(dst) == nullptr) continue;    // peer engine not up
        return seg;
    }
    return nullptr;
}

bool Runtime::would_encrypt(const fabric::NetworkSegment& seg) const {
    if (opts_.encrypt_always) return true;
    // The colocation optimization the paper proposes in §6: traffic that
    // stays on a physically secure network skips encryption.
    return opts_.enable_security && !seg.params().secure;
}

fabric::NetworkSegment* Runtime::post(fabric::ProcessId dst,
                                      fabric::ChannelId ch,
                                      util::Message msg) {
    fabric::NetworkSegment* seg = select_segment(dst);
    if (seg == nullptr)
        throw LookupError(proc_->name() + ": no usable network toward pid " +
                          std::to_string(dst));
    auto& clk = proc_->clock();
    const WireCosts w = wire_costs_for(*seg);
    const std::size_t bytes = msg.size();

    std::uint32_t flags = 0;
    if (would_encrypt(*seg)) {
        clk.advance(transfer_time(bytes, opts_.crypto_mb));
        msg = crypt(msg);
        flags |= fabric::kFlagEncrypted;
    }

    const std::size_t chunks =
        w.chunk == 0 ? 1 : std::max<std::size_t>(1, (bytes + w.chunk - 1) / w.chunk);
    clk.advance(static_cast<SimTime>(chunks) * w.per_msg_send);
    if (w.rendezvous_threshold != 0 && bytes > w.rendezvous_threshold)
        clk.advance(2 * seg->params().latency + w.rendezvous_cpu);

    fabric::Port* port = engine_.port_on(*seg);
    clk.set(port->send(dst, ch, std::move(msg), clk.now(), flags));
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        auto& c = stats_.by_segment[seg->name()];
        ++c.messages;
        c.bytes += bytes;
        if (flags & fabric::kFlagEncrypted) ++c.encrypted_messages;
    }
    return seg;
}

TrafficCounters Runtime::stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
}

std::string TrafficCounters::to_string() const {
    std::string out;
    for (const auto& [name, c] : by_segment) {
        out += util::strfmt("%s: %llu msgs, %llu bytes (%llu encrypted)\n",
                            name.c_str(),
                            static_cast<unsigned long long>(c.messages),
                            static_cast<unsigned long long>(c.bytes),
                            static_cast<unsigned long long>(
                                c.encrypted_messages));
    }
    return out;
}

Runtime::Peeled Runtime::peel(const Delivery& d) {
    Peeled out;
    if (d.via != nullptr) {
        const WireCosts w = wire_costs_for(*d.via);
        const std::size_t bytes = d.payload.size();
        const std::size_t chunks =
            w.chunk == 0 ? 1
                         : std::max<std::size_t>(1, (bytes + w.chunk - 1) / w.chunk);
        out.cost += static_cast<SimTime>(chunks) * w.per_msg_recv;
    }
    if (d.flags & fabric::kFlagEncrypted) {
        out.cost += transfer_time(d.payload.size(), opts_.crypto_mb);
        out.payload = crypt(d.payload); // the XOR keystream is its own inverse
    } else {
        out.payload = d.payload;
    }
    return out;
}

util::Message Runtime::finish(Delivery&& d) {
    Peeled p = peel(d);
    consume(d.deliver_time, p.cost);
    return std::move(p.payload);
}

} // namespace padico::ptm
