#pragma once
/// \file engine.hpp
/// The PadicoTM arbitration core (paper §4.3.1): a single multiplexed,
/// cooperative access point to every NIC of the machine.
///
/// One NetEngine per process opens each adapter exactly once (owner tag
/// "padicotm") and runs one progression thread per port — the paper's
/// "core which handles the interleaving between the different paradigms ...
/// and enforces a coherent multithreading policy among the concurrent
/// polling loops". Incoming packets are demultiplexed by channel id into
/// mailboxes; middleware above (Circuit, VLink and everything built on
/// them) only ever touches mailboxes, never raw ports.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fabric/grid.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "osal/queue.hpp"
#include "osal/sync.hpp"

namespace padico::ptm {

/// What the demux hands to a channel consumer.
struct Delivery {
    fabric::ProcessId src = fabric::kNoProcess;
    SimTime deliver_time = 0;
    std::uint32_t flags = 0;
    fabric::NetworkSegment* via = nullptr;
    util::Message payload;
};

using Mailbox = osal::BlockingQueue<Delivery>;
using MailboxPtr = std::shared_ptr<Mailbox>;

/// Channel-id based demultiplexer. Packets for channels without a mailbox
/// yet are buffered and replayed on subscribe (a peer may legitimately send
/// before this side has finished joining a circuit). Mailboxes are plain
/// BlockingQueues, so readiness registration (osal::WaitSet) works on them
/// directly — that is the hook the event-driven server core multiplexes on.
class Demux {
public:
    /// Create (or return) the mailbox of a channel.
    MailboxPtr subscribe(fabric::ChannelId ch);

    /// Drop a channel; its mailbox is closed. Deliveries buffered for the
    /// channel (sent before any subscribe) are discarded and counted.
    void unsubscribe(fabric::ChannelId ch);

    /// Route one packet; \p demux_cost is added to the delivery timestamp
    /// (the engine's per-message software cost).
    void route(fabric::Packet&& pkt, SimTime demux_cost);

    /// Close every mailbox (engine shutdown); remaining pending_ buffers —
    /// messages sent to channels nobody ever subscribed — are counted as
    /// dropped.
    void close_all();

    /// Deliveries that were buffered for a channel and thrown away before
    /// any consumer saw them (lost-before-subscribe traffic). Monotone;
    /// nonzero values are logged at debug when the drop happens.
    std::uint64_t dropped_pending() const {
        return dropped_pending_.load(std::memory_order_relaxed);
    }

private:
    osal::CheckedMutex mu_{lockrank::kDemux, "ptm.demux"};
    std::map<fabric::ChannelId, MailboxPtr> boxes_;
    std::map<fabric::ChannelId, std::vector<Delivery>> pending_;
    std::atomic<std::uint64_t> dropped_pending_{0};
};

/// Opens the machine's adapters and runs the progression loops.
class NetEngine {
public:
    /// Opens every adapter of the process's machine. Adapters already
    /// exclusively owned by raw middleware are skipped with a warning —
    /// the process then degrades to whatever networks remain (this is the
    /// "competitive access" failure mode measured by the arbitration
    /// ablation benchmark).
    NetEngine(fabric::Process& proc, SimTime demux_cost);
    ~NetEngine();
    NetEngine(const NetEngine&) = delete;
    NetEngine& operator=(const NetEngine&) = delete;

    Demux& demux() noexcept { return demux_; }

    /// The engine's port on \p seg, or nullptr when unavailable.
    fabric::Port* port_on(const fabric::NetworkSegment& seg);

    /// Segments this engine actually controls.
    const std::vector<fabric::NetworkSegment*>& segments() const noexcept {
        return segments_;
    }

private:
    fabric::Process* proc_;
    SimTime demux_cost_;
    Demux demux_;
    std::vector<fabric::PortRef> ports_;
    std::vector<fabric::NetworkSegment*> segments_;
    osal::ThreadGroup progression_;
};

} // namespace padico::ptm
