#pragma once
/// \file module.hpp
/// Dynamically loadable middleware modules (paper §4.3.4: "the middleware
/// systems, like any other PadicoTM module, are dynamically loadable; any
/// combination of them may be used at the same time and can be dynamically
/// changed"). In the real system these are dlopen'ed shared objects; here
/// a module is a named, factory-constructed object owned by the Runtime,
/// with the same load/unload/list life cycle.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "util/error.hpp"

namespace padico::ptm {

class Runtime;

/// Base class of every loadable middleware module.
class Module {
public:
    virtual ~Module() = default;
    virtual std::string name() const = 0;
};

/// Per-runtime module table plus a process-global factory registry.
class ModuleManager {
public:
    using Factory = std::function<std::shared_ptr<Module>(Runtime&)>;

    explicit ModuleManager(Runtime& rt) : rt_(&rt) {}

    /// Register a module type (grid-wide, done once by each middleware
    /// library via its install() function).
    static void register_type(const std::string& name, Factory factory);
    static bool has_type(const std::string& name);

    /// Instantiate a registered module in this runtime (idempotent).
    std::shared_ptr<Module> load(const std::string& name);

    /// Drop a loaded module; its resources are released when the last
    /// user lets go of the shared_ptr.
    void unload(const std::string& name);

    std::shared_ptr<Module> find(const std::string& name) const;
    bool is_loaded(const std::string& name) const {
        return find(name) != nullptr;
    }
    std::vector<std::string> loaded() const;

private:
    Runtime* rt_;
    mutable osal::CheckedMutex mu_{lockrank::kModules, "ptm.modules"};
    std::map<std::string, std::shared_ptr<Module>> loaded_;
};

} // namespace padico::ptm
