#pragma once
/// \file circuit.hpp
/// Circuit: PadicoTM's parallel-oriented abstract interface (paper §4.3.2).
/// A circuit is a fixed group of processes with logical ranks exchanging
/// tagged messages. The same API works whatever the underlying hardware is:
/// the runtime maps each (sender, receiver) pair onto the best network the
/// pair shares — straight mapping on a SAN via the Madeleine driver,
/// cross-paradigm mapping over TCP-like links when members live on
/// different clusters.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "padicotm/runtime.hpp"

namespace padico::ptm {

/// Wildcards for Circuit::recv.
inline constexpr int kAnyRank = -1;
inline constexpr int kAnyTag = -1;

class Circuit {
public:
    /// Collective creation: every process in \p members calls this with the
    /// same \p name and member list. Blocks until the whole group is up.
    Circuit(Runtime& rt, const std::string& name,
            std::vector<fabric::ProcessId> members);
    ~Circuit();
    Circuit(const Circuit&) = delete;
    Circuit& operator=(const Circuit&) = delete;

    Runtime& runtime() noexcept { return *rt_; }
    const std::string& name() const noexcept { return name_; }
    int rank() const noexcept { return rank_; }
    int size() const noexcept { return static_cast<int>(members_.size()); }
    const std::vector<fabric::ProcessId>& members() const noexcept {
        return members_;
    }

    /// Send \p payload to member \p dst_rank with \p tag.
    void send(int dst_rank, int tag, util::Message payload);

    /// Receive the next message matching (src_rank, tag); wildcards
    /// kAnyRank / kAnyTag allowed. Matching messages are delivered in
    /// arrival order per (source, tag).
    util::Message recv(int src_rank, int tag, int* out_src = nullptr,
                       int* out_tag = nullptr);

    /// Non-blocking probe-and-receive.
    std::optional<util::Message> try_recv(int src_rank, int tag,
                                          int* out_src = nullptr,
                                          int* out_tag = nullptr);

private:
    struct Pending {
        int src_rank;
        int tag;
        SimTime deliver_time;
        SimTime cost; ///< receive-side processing, charged at consume
        util::Message payload;
    };

    Pending parse(Delivery&& d);
    std::optional<util::Message> match_pending(int src_rank, int tag,
                                               int* out_src, int* out_tag);

    Runtime* rt_;
    std::string name_;
    std::vector<fabric::ProcessId> members_;
    std::vector<fabric::ChannelId> member_channels_;
    int rank_ = -1;
    MailboxPtr inbox_;

    osal::CheckedMutex mu_{
        lockrank::kCircuit,
        "ptm.circuit"}; ///< guards pending_ (recv may be called by 2+ threads)
    std::deque<Pending> pending_;
};

} // namespace padico::ptm
