#pragma once
/// \file personality.hpp
/// The PadicoTM personality layer (paper §4.3.3): "thin adapters which
/// adapt a generic API to make it look like another close API. They do not
/// do protocol adaptation nor paradigm translation; they only adapt the
/// syntax."
///
/// Implemented personalities, mirroring the paper's list:
///  - BsdSocketApi : VLink  -> BSD socket syntax (fd table, send/recv)
///  - AioApi       : VLink  -> Posix.2 asynchronous I/O syntax
///  - MadApi       : Circuit-> Madeleine pack/unpack syntax
///  - FmApi        : Circuit-> FastMessages send/extract syntax

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "padicotm/circuit.hpp"
#include "padicotm/vlink.hpp"

namespace padico::ptm {

// ---------------------------------------------------------------------------
// BSD socket personality on VLink

/// File-descriptor flavored facade over VLink, for porting socket code
/// without source changes (the paper ports omniORB & friends this way,
/// "thanks to wrappers used at link stage").
class BsdSocketApi {
public:
    explicit BsdSocketApi(Runtime& rt) : rt_(&rt) {}

    /// socket()+bind()+listen() in one: returns a listening fd.
    int pad_listen(const std::string& service);
    /// accept(2): blocking; returns a connected fd.
    int pad_accept(int listen_fd);
    /// connect(2): returns a connected fd.
    int pad_connect(const std::string& service);
    /// send(2): always sends the full buffer (no short writes).
    std::int64_t pad_send(int fd, const void* buf, std::size_t n);
    /// recv(2): reads exactly \p n bytes; returns 0 at EOF, n otherwise.
    std::int64_t pad_recv(int fd, void* buf, std::size_t n);
    /// close(2).
    void pad_close(int fd);

private:
    struct Entry {
        std::unique_ptr<VLinkListener> listener;
        std::unique_ptr<VLink> stream;
    };
    Entry& entry(int fd);

    Runtime* rt_;
    osal::CheckedMutex mu_{lockrank::kSocketApi, "ptm.socket_api"};
    std::map<int, Entry> fds_;
    int next_fd_ = 3; // 0/1/2 are taken, like home
};

// ---------------------------------------------------------------------------
// Posix AIO personality on VLink

/// Minimal aio_read/aio_write/aio_suspend lookalike over VLink.
class AioApi {
public:
    struct Control {
        bool done = false;
        std::int64_t result = -1;
    };
    using ControlPtr = std::shared_ptr<Control>;

    explicit AioApi(Runtime& rt) : rt_(&rt) {}
    ~AioApi();

    /// Begin an asynchronous write of the whole buffer.
    ControlPtr aio_write(VLink& link, const void* buf, std::size_t n);
    /// Begin an asynchronous read of exactly \p n bytes.
    ControlPtr aio_read(VLink& link, void* buf, std::size_t n);
    /// Block until the operation completes; returns its result.
    std::int64_t aio_suspend(const ControlPtr& cb);
    /// Poll without blocking (aio_error analogue: 0 done, EINPROGRESS else).
    bool aio_done(const ControlPtr& cb);

private:
    Runtime* rt_;
    osal::CheckedMutex mu_{lockrank::kAioApi, "ptm.aio_api"};
    osal::CheckedCondVar cv_;
    std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// Madeleine personality on Circuit

/// Madeleine's incremental pack/unpack message construction syntax.
class MadApi {
public:
    explicit MadApi(Circuit& c) : circuit_(&c) {}

    class PackingConnection {
    public:
        void pack(const void* data, std::size_t n);
        void end_packing();

    private:
        friend class MadApi;
        PackingConnection(Circuit& c, int dst) : circuit_(&c), dst_(dst) {}
        Circuit* circuit_;
        int dst_;
        util::ByteBuf staged_;
    };

    class UnpackingConnection {
    public:
        void unpack(void* data, std::size_t n);
        void end_unpacking();

    private:
        friend class MadApi;
        UnpackingConnection(util::Message msg) : msg_(std::move(msg)) {}
        util::Message msg_;
        std::size_t off_ = 0;
    };

    PackingConnection begin_packing(int dst_rank) {
        return PackingConnection(*circuit_, dst_rank);
    }
    UnpackingConnection begin_unpacking(int src_rank) {
        return UnpackingConnection(circuit_->recv(src_rank, kMadTag));
    }

    static constexpr int kMadTag = 0x7ad;

private:
    Circuit* circuit_;
};

// ---------------------------------------------------------------------------
// FastMessages personality on Circuit

/// Illinois Fast Messages style: handler-number addressed sends.
class FmApi {
public:
    explicit FmApi(Circuit& c) : circuit_(&c) {}

    void fm_send(int dst_rank, int handler, const void* data, std::size_t n);
    /// Blocks for the next message to \p handler; returns payload bytes.
    std::size_t fm_extract(int handler, void* data, std::size_t cap,
                           int* src_rank = nullptr);

private:
    Circuit* circuit_;
};

} // namespace padico::ptm
