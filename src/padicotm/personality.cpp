#include "padicotm/personality.hpp"

namespace padico::ptm {

// ---------------------------------------------------------------------------
// BsdSocketApi

BsdSocketApi::Entry& BsdSocketApi::entry(int fd) {
    auto it = fds_.find(fd);
    PADICO_CHECK(it != fds_.end(), "bad padico fd " + std::to_string(fd));
    return it->second;
}

int BsdSocketApi::pad_listen(const std::string& service) {
    osal::CheckedLock lk(mu_);
    const int fd = next_fd_++;
    fds_[fd].listener = std::make_unique<VLinkListener>(*rt_, service);
    return fd;
}

int BsdSocketApi::pad_accept(int listen_fd) {
    VLinkListener* listener;
    {
        osal::CheckedLock lk(mu_);
        Entry& e = entry(listen_fd);
        PADICO_CHECK(e.listener != nullptr, "fd is not listening");
        listener = e.listener.get();
    }
    VLink link = listener->accept();
    PADICO_CHECK(link.valid(), "listener shut down");
    osal::CheckedLock lk(mu_);
    const int fd = next_fd_++;
    fds_[fd].stream = std::make_unique<VLink>(std::move(link));
    return fd;
}

int BsdSocketApi::pad_connect(const std::string& service) {
    VLink link = VLink::connect(*rt_, service);
    osal::CheckedLock lk(mu_);
    const int fd = next_fd_++;
    fds_[fd].stream = std::make_unique<VLink>(std::move(link));
    return fd;
}

std::int64_t BsdSocketApi::pad_send(int fd, const void* buf, std::size_t n) {
    VLink* s;
    {
        osal::CheckedLock lk(mu_);
        Entry& e = entry(fd);
        PADICO_CHECK(e.stream != nullptr, "fd is not a stream");
        s = e.stream.get();
    }
    s->write(buf, n);
    return static_cast<std::int64_t>(n);
}

std::int64_t BsdSocketApi::pad_recv(int fd, void* buf, std::size_t n) {
    VLink* s;
    {
        osal::CheckedLock lk(mu_);
        Entry& e = entry(fd);
        PADICO_CHECK(e.stream != nullptr, "fd is not a stream");
        s = e.stream.get();
    }
    auto m = s->read_msg_opt(n);
    if (!m.has_value()) return 0; // EOF
    m->copy_out(0, buf, n);
    return static_cast<std::int64_t>(n);
}

void BsdSocketApi::pad_close(int fd) {
    osal::CheckedLock lk(mu_);
    Entry& e = entry(fd);
    if (e.stream) e.stream->close();
    fds_.erase(fd);
}

// ---------------------------------------------------------------------------
// AioApi

AioApi::~AioApi() {
    for (auto& t : workers_)
        if (t.joinable()) osal::sched::join(t);
}

AioApi::ControlPtr AioApi::aio_write(VLink& link, const void* buf,
                                     std::size_t n) {
    auto cb = std::make_shared<Control>();
    // Writes never block in the simulated stack: complete inline, like an
    // AIO implementation with a large kernel buffer.
    link.write(buf, n);
    osal::CheckedLock lk(mu_);
    cb->done = true;
    cb->result = static_cast<std::int64_t>(n);
    return cb;
}

AioApi::ControlPtr AioApi::aio_read(VLink& link, void* buf, std::size_t n) {
    auto cb = std::make_shared<Control>();
    workers_.emplace_back(osal::sched::spawn_thread([this, cb, &link, buf,
                                                     n] {
        std::int64_t result = 0;
        auto m = link.read_msg_opt(n);
        if (m.has_value()) {
            m->copy_out(0, buf, n);
            result = static_cast<std::int64_t>(n);
        }
        {
            osal::CheckedLock lk(mu_);
            cb->result = result;
            cb->done = true;
        }
        cv_.notify_all();
    }, "ptm.aio"));
    return cb;
}

std::int64_t AioApi::aio_suspend(const ControlPtr& cb) {
    osal::CheckedUniqueLock lk(mu_);
    cv_.wait(lk, [&] { return cb->done; });
    return cb->result;
}

bool AioApi::aio_done(const ControlPtr& cb) {
    osal::CheckedLock lk(mu_);
    return cb->done;
}

// ---------------------------------------------------------------------------
// MadApi

void MadApi::PackingConnection::pack(const void* data, std::size_t n) {
    staged_.append(data, n);
}

void MadApi::PackingConnection::end_packing() {
    circuit_->send(dst_, MadApi::kMadTag,
                   util::to_message(std::move(staged_)));
    staged_.clear();
}

void MadApi::UnpackingConnection::unpack(void* data, std::size_t n) {
    PADICO_WIRE_CHECK(off_ + n <= msg_.size(), "unpack past end of message");
    msg_.copy_out(off_, data, n);
    off_ += n;
}

void MadApi::UnpackingConnection::end_unpacking() {
    PADICO_WIRE_CHECK(off_ == msg_.size(),
                      "end_unpacking with bytes left over");
}

// ---------------------------------------------------------------------------
// FmApi

void FmApi::fm_send(int dst_rank, int handler, const void* data,
                    std::size_t n) {
    PADICO_CHECK(handler >= 0, "handler numbers are non-negative");
    circuit_->send(dst_rank, handler, util::to_message(util::ByteBuf(data, n)));
}

std::size_t FmApi::fm_extract(int handler, void* data, std::size_t cap,
                              int* src_rank) {
    util::Message m = circuit_->recv(kAnyRank, handler, src_rank);
    PADICO_CHECK(m.size() <= cap, "fm_extract buffer too small");
    m.copy_out(0, data, m.size());
    return m.size();
}

} // namespace padico::ptm
