#include "hla/hla.hpp"

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

#include "util/log.hpp"

namespace padico::hla {

void cdr_put(corba::cdr::Encoder& e, const AttributeMap& v) {
    e.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [key, value] : v) {
        e.put_string(key);
        e.put_string(value);
    }
}

void cdr_get(corba::cdr::Decoder& d, AttributeMap& v) {
    v.clear();
    const std::uint32_t n = d.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string key = d.get_string();
        v[key] = d.get_string();
    }
}

// ---------------------------------------------------------------------------
// Gateway servant

class RtiGateway::Servant : public corba::Servant {
public:
    explicit Servant(corba::Orb& orb) : orb_(&orb) {}

    std::string interface() const override { return "IDL:padico/RTI:1.0"; }

    std::size_t federates() const {
        osal::CheckedLock lk(mu_);
        return members_.size();
    }

    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        namespace skel = corba::skel;
        if (op == "join") {
            const auto name = skel::arg<std::string>(in);
            corba::IOR callback;
            corba::cdr_get(in, callback);
            osal::CheckedLock lk(mu_);
            PADICO_CHECK(members_.count(name) == 0,
                         "federate '" + name + "' already joined");
            members_[name] = Member{callback, {}, {}};
            skel::ret(out, true);
        } else if (op == "resign") {
            const auto name = skel::arg<std::string>(in);
            osal::CheckedLock lk(mu_);
            members_.erase(name);
            skel::ret(out, true);
        } else if (op == "publish") {
            const auto name = skel::arg<std::string>(in);
            const auto cls = skel::arg<std::string>(in);
            osal::CheckedLock lk(mu_);
            member(name).publishes.insert(cls);
            skel::ret(out, true);
        } else if (op == "subscribe") {
            const auto name = skel::arg<std::string>(in);
            const auto cls = skel::arg<std::string>(in);
            osal::CheckedLock lk(mu_);
            member(name).subscribes.insert(cls);
            // Late subscribers discover existing instances and receive the
            // current attribute values.
            for (const auto& [handle, obj] : objects_) {
                if (obj.object_class != cls || obj.owner == name) continue;
                discover(member(name), handle, obj);
                if (!obj.values.empty())
                    reflect(member(name), handle, obj.values);
            }
            skel::ret(out, true);
        } else if (op == "register_object") {
            const auto name = skel::arg<std::string>(in);
            const auto cls = skel::arg<std::string>(in);
            osal::CheckedLock lk(mu_);
            PADICO_CHECK(member(name).publishes.count(cls) != 0,
                         "federate '" + name + "' does not publish '" + cls +
                             "'");
            const ObjectHandle handle = next_handle_++;
            objects_[handle] = Object{cls, name};
            for (auto& [mname, m] : members_) {
                if (mname != name && m.subscribes.count(cls) != 0)
                    discover(m, handle, objects_[handle]);
            }
            skel::ret(out, handle);
        } else if (op == "update") {
            const auto name = skel::arg<std::string>(in);
            const auto handle = skel::arg<ObjectHandle>(in);
            AttributeMap attrs;
            cdr_get(in, attrs);
            osal::CheckedLock lk(mu_);
            auto it = objects_.find(handle);
            PADICO_CHECK(it != objects_.end(), "unknown object handle");
            PADICO_CHECK(it->second.owner == name,
                         "only the owner may update an object");
            for (const auto& [k, v] : attrs) it->second.values[k] = v;
            for (auto& [mname, m] : members_) {
                if (mname == name ||
                    m.subscribes.count(it->second.object_class) == 0)
                    continue;
                reflect(m, handle, attrs);
            }
            skel::ret(out, true);
        } else {
            throw RemoteError("BAD_OPERATION " + op);
        }
    }

private:
    struct Member {
        corba::IOR callback;
        std::set<std::string> publishes;
        std::set<std::string> subscribes;
    };
    struct Object {
        std::string object_class;
        std::string owner;
        AttributeMap values; ///< last known values, replayed to late subscribers
    };

    Member& member(const std::string& name) {
        auto it = members_.find(name);
        PADICO_CHECK(it != members_.end(),
                     "federate '" + name + "' has not joined");
        return it->second;
    }

    void discover(Member& m, ObjectHandle handle, const Object& obj) {
        corba::cdr::Encoder ev(orb_->profile().zero_copy);
        ev.put_u64(handle);
        ev.put_string(obj.object_class);
        ev.put_string(obj.owner);
        orb_->resolve(m.callback).oneway("discover", ev.take());
    }

    void reflect(Member& m, ObjectHandle handle, const AttributeMap& attrs) {
        corba::cdr::Encoder ev(orb_->profile().zero_copy);
        ev.put_u64(handle);
        cdr_put(ev, attrs);
        orb_->resolve(m.callback).oneway("reflect", ev.take());
    }

    corba::Orb* orb_;
    mutable osal::CheckedMutex mu_{lockrank::kHlaGateway, "hla.gateway"};
    std::map<std::string, Member> members_;
    std::map<ObjectHandle, Object> objects_;
    ObjectHandle next_handle_ = 1;
};

RtiGateway::RtiGateway(corba::Orb& orb, const std::string& federation,
                       svc::ServerCore::Options server_opts)
    : orb_(&orb), federation_(federation) {
    servant_ = std::make_shared<Servant>(orb);
    if (server_opts.protocol == "svc") server_opts.protocol = "hla";
    orb.serve("rti-ep/" + federation, std::move(server_opts));
    ior_ = orb.activate(servant_);
    auto& grid = orb.runtime().grid();
    grid.register_service("rti/" + federation + "/key",
                          static_cast<fabric::ProcessId>(ior_.key));
    grid.register_service("rti/" + federation,
                          orb.runtime().process().id());
    PLOG(info, "hla") << "federation '" << federation << "' up";
}

RtiGateway::~RtiGateway() { orb_->deactivate(ior_); }

std::size_t RtiGateway::federates() const { return servant_->federates(); }

// ---------------------------------------------------------------------------
// Federate side

class RtiAmbassador::CallbackServant : public corba::Servant {
public:
    explicit CallbackServant(FederateAmbassador& amb) : amb_(&amb) {}
    std::string interface() const override {
        return "IDL:padico/FederateCallbacks:1.0";
    }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override {
        (void)out;
        if (op == "discover") {
            const ObjectHandle handle = in.get_u64();
            const std::string cls = in.get_string();
            const std::string owner = in.get_string();
            amb_->discover_object(handle, cls, owner);
        } else if (op == "reflect") {
            const ObjectHandle handle = in.get_u64();
            AttributeMap attrs;
            cdr_get(in, attrs);
            amb_->reflect_attribute_values(handle, attrs);
        } else {
            throw RemoteError("BAD_OPERATION " + op);
        }
    }

private:
    FederateAmbassador* amb_;
};

RtiAmbassador::RtiAmbassador(corba::Orb& orb, const std::string& federation,
                             const std::string& federate_name,
                             FederateAmbassador& ambassador)
    : orb_(&orb), federate_(federate_name) {
    auto& grid = orb.runtime().grid();
    corba::IOR rti_ior;
    rti_ior.endpoint = "rti-ep/" + federation;
    rti_ior.key = grid.wait_service("rti/" + federation + "/key");
    rti_ior.type = "IDL:padico/RTI:1.0";
    rti_ = orb.resolve(rti_ior);

    // The federate must itself serve callback invocations. Reuse an
    // already-serving ORB endpoint when there is one.
    callbacks_ = std::make_shared<CallbackServant>(ambassador);
    callback_ior_ = orb.activate(callbacks_);
    if (callback_ior_.endpoint.empty()) {
        const std::string ep =
            "hla-fed/" + federation + "/" + federate_name;
        orb.serve(ep);
        orb.deactivate(callback_ior_);
        callback_ior_ = orb.activate(callbacks_);
    }
    corba::call<bool>(rti_, "join", federate_, callback_ior_);
}

RtiAmbassador::~RtiAmbassador() {
    try {
        resign();
    } catch (const std::exception& e) {
        PLOG(warn, "hla") << "resign failed: " << e.what();
    }
}

void RtiAmbassador::resign() {
    if (resigned_) return;
    resigned_ = true;
    corba::call<bool>(rti_, "resign", federate_);
    orb_->deactivate(callback_ior_);
}

void RtiAmbassador::publish_object_class(const std::string& object_class) {
    corba::call<bool>(rti_, "publish", federate_, object_class);
}

void RtiAmbassador::subscribe_object_class(const std::string& object_class) {
    corba::call<bool>(rti_, "subscribe", federate_, object_class);
}

ObjectHandle RtiAmbassador::register_object(const std::string& object_class) {
    return corba::call<ObjectHandle>(rti_, "register_object", federate_,
                                     object_class);
}

void RtiAmbassador::update_attribute_values(ObjectHandle handle,
                                            const AttributeMap& attrs) {
    corba::cdr::Encoder e(orb_->profile().zero_copy);
    e.put_string(federate_);
    e.put_u64(handle);
    cdr_put(e, attrs);
    rti_.invoke("update", e.take());
}

void install() {
    if (!ptm::ModuleManager::has_type("certi"))
        ptm::ModuleManager::register_type(
            "certi", [](ptm::Runtime& rt) -> std::shared_ptr<ptm::Module> {
                return std::make_shared<CertiModule>(rt);
            });
}

} // namespace padico::hla
