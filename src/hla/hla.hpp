#pragma once
/// \file hla.hpp
/// Substitute for the Certi HLA runtime infrastructure (paper §4.3.4:
/// "we have ported Certi 3.0 (HLA implementation) on PadicoTM"). A compact
/// High Level Architecture subset for distributed simulation federations:
///
///  - an RTI gateway process hosts a federation,
///  - federates join with a FederateAmbassador callback object,
///  - publish/subscribe on object classes,
///  - registered object instances are discovered by subscribers,
///  - attribute updates are reflected to every subscriber.
///
/// Built on the CORBA middleware (itself on PadicoTM's VLink) — one more
/// middleware system cohabiting in the same process, which is the point
/// the paper's list makes.

#include <set>

#include "corba/stub.hpp"
#include "padicotm/module.hpp"

namespace padico::hla {

using ObjectHandle = std::uint64_t;
using AttributeMap = std::map<std::string, std::string>;

/// Callback interface a federate implements (HLA naming).
class FederateAmbassador {
public:
    virtual ~FederateAmbassador() = default;
    /// A subscriber learns about a new instance of a subscribed class.
    virtual void discover_object(ObjectHandle handle,
                                 const std::string& object_class,
                                 const std::string& owner) = 0;
    /// Attribute values of a discovered instance changed.
    virtual void reflect_attribute_values(ObjectHandle handle,
                                          const AttributeMap& attrs) = 0;
};

/// Hosts one federation: run inside the RTI gateway process. Registers the
/// endpoint "rti/<federation>" grid-wide.
class RtiGateway {
public:
    /// \p server_opts tunes the underlying svc::ServerCore (ingress mode,
    /// shard/worker counts, idle timeout); the ingress-counter protocol
    /// label defaults to "hla".
    RtiGateway(corba::Orb& orb, const std::string& federation,
               svc::ServerCore::Options server_opts = {});
    ~RtiGateway();
    RtiGateway(const RtiGateway&) = delete;
    RtiGateway& operator=(const RtiGateway&) = delete;

    const std::string& federation() const noexcept { return federation_; }

    /// Number of joined federates (for tests/monitoring).
    std::size_t federates() const;

private:
    class Servant;
    corba::Orb* orb_;
    std::string federation_;
    std::shared_ptr<Servant> servant_;
    corba::IOR ior_;
};

/// Federate-side API (the RTIambassador of the HLA spec).
class RtiAmbassador {
public:
    /// Joins \p federation (blocking until the gateway is up), wiring
    /// \p ambassador for callbacks.
    RtiAmbassador(corba::Orb& orb, const std::string& federation,
                  const std::string& federate_name,
                  FederateAmbassador& ambassador);
    ~RtiAmbassador();
    RtiAmbassador(const RtiAmbassador&) = delete;
    RtiAmbassador& operator=(const RtiAmbassador&) = delete;

    void publish_object_class(const std::string& object_class);
    void subscribe_object_class(const std::string& object_class);

    /// Create an instance of a published class; subscribers get
    /// discover_object callbacks.
    ObjectHandle register_object(const std::string& object_class);

    /// Push new attribute values; subscribers get reflect callbacks.
    void update_attribute_values(ObjectHandle handle,
                                 const AttributeMap& attrs);

    /// Leave the federation (also done by the destructor).
    void resign();

private:
    class CallbackServant;
    corba::Orb* orb_;
    std::string federate_;
    corba::ObjectRef rti_;
    std::shared_ptr<CallbackServant> callbacks_;
    corba::IOR callback_ior_;
    bool resigned_ = false;
};

/// The loadable PadicoTM module wrapper ("certi").
class CertiModule : public ptm::Module {
public:
    explicit CertiModule(ptm::Runtime& rt) : rt_(&rt) {}
    std::string name() const override { return "certi"; }

private:
    ptm::Runtime* rt_;
};

void install();

// CDR helpers for attribute maps.
void cdr_put(corba::cdr::Encoder& e, const AttributeMap& v);
void cdr_get(corba::cdr::Decoder& d, AttributeMap& v);

} // namespace padico::hla
