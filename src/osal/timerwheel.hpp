#pragma once
/// \file timerwheel.hpp
/// Hierarchical timer wheel: O(1) schedule/cancel, O(expired + elapsed
/// ticks) advance. Used by svc::ServerCore for the idle-connection sweep
/// so reaping 100k connections costs what actually expires, not a scan of
/// every live connection.
///
/// The wheel is the classic Varghese/Lauck hierarchy: kLevels levels of
/// kSlots buckets each. Level 0 resolves single ticks; level l resolves
/// kSlots^l ticks. A timer is parked in the coarsest level that still
/// distinguishes its deadline from "now"; whenever a level-0 lap completes
/// the next level cascades one bucket down, re-sorting its timers into
/// finer levels. Ticks are caller-defined (ServerCore feeds milliseconds,
/// tests feed virtual time) — the wheel never reads a clock, so firing
/// order is a pure function of the schedule/advance call sequence and is
/// deterministic under virtual time.
///
/// Determinism contract: advance() delivers expired timers ordered by
/// deadline tick; within one tick the order is the (deterministic) order
/// in which entries reached the level-0 bucket, which for timers parked at
/// the same level is their schedule order. Two identical call sequences
/// produce identical delivery sequences.
///
/// Thread safety: all operations lock the internal mutex; expired values
/// are returned from advance() and handed to the caller outside the lock.
/// Rank the mutex via the constructor (lockrank::kServerWheel in svc);
/// the default-constructed wheel is unranked for tests.

#include <cstdint>
#include <utility>
#include <vector>

#include "osal/checked.hpp"

namespace padico::osal {

template <typename T> class TimerWheel {
public:
    using Tick = std::uint64_t;
    using TimerId = std::uint64_t;

    TimerWheel() = default;
    explicit TimerWheel(int lock_rank, const char* name = "osal.timerwheel")
        : mu_(lock_rank, name) {}

    /// Park \p value until \p deadline. Deadlines at or before the current
    /// tick are clamped to now+1: a wheel slot can only fire when time
    /// advances past it, so "immediately" means the next advance() step.
    TimerId schedule(Tick deadline, T value) {
        CheckedLock lk(mu_);
        if (deadline <= now_) deadline = now_ + 1;
        // A deadline beyond the wheel horizon still cascades correctly:
        // place() parks it in the top level and every top-level lap
        // re-places it until the real deadline becomes representable.
        const TimerId id = next_id_++;
        place(Entry{id, deadline, std::move(value)});
        ++pending_;
        return id;
    }

    /// Returns true iff the timer was still pending (it will never fire);
    /// false if it already fired or was already cancelled — the
    /// cancel-vs-fire race resolves to exactly one of the two outcomes.
    bool cancel(TimerId id) {
        CheckedLock lk(mu_);
        if (id >= next_id_) return false;
        for (auto& level : levels_)
            for (auto& slot : level)
                for (std::size_t i = 0; i < slot.size(); ++i)
                    if (slot[i].id == id) {
                        slot.erase(slot.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                        --pending_;
                        return true;
                    }
        return false;
    }

    /// Advance the wheel to tick \p to (no-op if time would move backward)
    /// and collect every timer whose deadline is <= \p to, in deterministic
    /// deadline-then-schedule order.
    std::vector<T> advance(Tick to) {
        std::vector<T> fired;
        CheckedLock lk(mu_);
        while (now_ < to) {
            ++now_;
            const std::size_t idx0 = index(now_, 0);
            if (idx0 == 0) cascade(1);
            auto& slot = levels_[0][idx0];
            for (auto& e : slot) {
                fired.push_back(std::move(e.value));
                --pending_;
            }
            slot.clear();
        }
        return fired;
    }

    Tick now() const {
        CheckedLock lk(mu_);
        return now_;
    }
    std::size_t pending() const {
        CheckedLock lk(mu_);
        return pending_;
    }

private:
    static constexpr std::size_t kLevelBits = 6;
    static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;
    static constexpr std::size_t kMask = kSlots - 1;
    static constexpr std::size_t kLevels = 8; // 64^8 ticks ≈ 2.8e14 horizon

    struct Entry {
        TimerId id;
        Tick deadline;
        T value;
    };

    static std::size_t index(Tick tick, std::size_t level) {
        return static_cast<std::size_t>(tick >> (kLevelBits * level)) & kMask;
    }

    /// Pick the coarsest level whose resolution still separates the entry
    /// from now_, clamping far deadlines into the top level (they re-place
    /// on each top-level cascade until representable).
    void place(Entry e) {
        Tick delta = e.deadline - now_;
        std::size_t level = 0;
        while (level + 1 < kLevels &&
               (delta >> (kLevelBits * (level + 1))) != 0)
            ++level;
        Tick eff = e.deadline;
        const Tick span = Tick{1} << (kLevelBits * kLevels);
        if (delta >= span) eff = now_ + span - 1;
        levels_[level][index(eff, level)].push_back(std::move(e));
    }

    /// One bucket of level \p level re-sorts into finer levels; recurses
    /// upward when this level itself just completed a lap.
    void cascade(std::size_t level) {
        if (level >= kLevels) return;
        const std::size_t idx = index(now_, level);
        if (idx == 0) cascade(level + 1);
        auto entries = std::move(levels_[level][idx]);
        levels_[level][idx].clear();
        for (auto& e : entries) place(std::move(e));
    }

    mutable CheckedMutex mu_;
    Tick now_ = 0;
    TimerId next_id_ = 1;
    std::size_t pending_ = 0;
    std::vector<Entry> levels_[kLevels][kSlots] = {};
};

} // namespace padico::osal
