#pragma once
/// \file checked.hpp
/// padico::check — the zero-cost-when-off lock-order and invariant
/// analysis layer (DESIGN.md §11).
///
/// Compile with PADICO_CHECK=ON (cmake option; defines
/// PADICO_CHECK_ENABLED) and every osal::CheckedMutex acquisition
///  * maintains a per-thread held-lock stack,
///  * enforces the process-wide rank discipline of lockrank.hpp (a thread
///    may only acquire a ranked mutex whose rank is strictly greater than
///    every ranked mutex it already holds),
///  * feeds a global lock-order graph and reports any cycle — a potential
///    ABBA deadlock — online, with both acquisition sites in the witness.
/// The same flag arms the invariant audits (PADICO_AUDIT) sprinkled through
/// BusyList, Port::send/recv and the WaitSet/queue waiter protocol.
///
/// Violations are recorded (check::violations()) and logged to stderr; the
/// first report arms an atexit hook that terminates the process with a
/// nonzero status if violations are still unconsumed at exit, so "the
/// suite is green under PADICO_CHECK=ON" really means zero violations.
/// Tests that deliberately seed a violation assert on it and then call
/// check::clear_violations().
///
/// With the flag off, CheckedMutex/CheckedLock/CheckedUniqueLock/
/// CheckedCondVar are the plain std types (CheckedMutex adds only no-op
/// annotation constructors): no extra state, no extra locking, unchanged
/// hot-path code.

#include <condition_variable>
#include <mutex>

#include "osal/sched.hpp"

#ifdef PADICO_CHECK_ENABLED

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <source_location>
#include <string>
#include <utility>
#include <vector>

namespace padico::osal {

namespace check {

constexpr int kUnranked = -1;

enum class Kind {
    kRankInversion, ///< acquired a rank <= one already held
    kOrderCycle,    ///< new lock-order edge closes a cycle (potential ABBA)
    kInvariant,     ///< a PADICO_AUDIT data-structure invariant failed
    kProtocol,      ///< a locking/waiter usage protocol was violated
};

inline const char* kind_name(Kind k) {
    switch (k) {
    case Kind::kRankInversion: return "rank-inversion";
    case Kind::kOrderCycle: return "order-cycle";
    case Kind::kInvariant: return "invariant";
    case Kind::kProtocol: return "protocol";
    }
    return "?";
}

struct Violation {
    Kind kind;
    std::string message;
};

/// Graph node: ranked mutexes collapse onto their rank (every instance of
/// a class shares one discipline); unranked mutexes are tracked per
/// instance.
using NodeKey = std::uint64_t;

/// Process-wide checker state. Guarded by a raw std::mutex deliberately
/// outside the instrumented world (the checker does not check itself);
/// it is only ever held for bookkeeping, never across user code.
/// Leaked on purpose so the atexit enforcement hook can always read it.
struct State {
    std::mutex mu;
    std::vector<Violation> violations;
    std::map<int, const char*> rank_names;
    struct Edge {
        std::string from_label, to_label;
        std::string from_site, to_site;
    };
    std::map<NodeKey, std::map<NodeKey, Edge>> edges;
    bool exit_hook_armed = false;
};

inline State& state() {
    static State* s = new State; // leaked: must outlive static destruction
    return *s;
}

inline std::string site_str(const std::source_location& l) {
    return std::string(l.file_name()) + ":" + std::to_string(l.line());
}

inline void register_rank(int rank, const char* name) {
    if (rank == kUnranked || name == nullptr) return;
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.rank_names.emplace(rank, name);
}

inline std::string label_for(int rank, const char* name) {
    std::string out = name != nullptr ? name : "<unnamed>";
    if (rank != kUnranked) out += " (rank " + std::to_string(rank) + ")";
    return out;
}

inline void arm_exit_hook_locked(State& s) {
    if (s.exit_hook_armed) return;
    s.exit_hook_armed = true;
    std::atexit(+[] {
        State& st = state();
        std::lock_guard<std::mutex> lk(st.mu);
        if (st.violations.empty()) return;
        std::fprintf(stderr,
                     "padico::check: %zu unconsumed violation(s) at exit\n",
                     st.violations.size());
        std::_Exit(82);
    });
}

/// Record a violation and log it. Also the entry point for the invariant
/// audits outside osal (BusyList, Port::send).
inline void report(Kind kind, std::string message) {
    State& s = state();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        arm_exit_hook_locked(s);
        s.violations.push_back({kind, message});
    }
    std::fprintf(stderr, "padico::check[%s]: %s\n", kind_name(kind),
                 message.c_str());
}

inline std::vector<Violation> violations() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.violations;
}

inline std::size_t violation_count() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.violations.size();
}

inline void clear_violations() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.violations.clear();
}

/// Forget all recorded lock-order edges. Test isolation only: the graph
/// keys unranked mutexes by address, so a test creating short-lived
/// mutexes on the stack could otherwise inherit edges from a previous
/// test whose (destroyed) mutexes occupied the same addresses.
inline void clear_order_graph() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.edges.clear();
}

/// One entry of the per-thread held-lock stack.
struct Held {
    const void* mutex;
    int rank;
    const char* name;
    std::source_location site;
};

inline thread_local std::vector<Held> t_held;

inline NodeKey node_key(const void* mutex, int rank) {
    if (rank != kUnranked)
        return (std::uint64_t{1} << 63) | static_cast<std::uint32_t>(rank);
    return reinterpret_cast<std::uintptr_t>(mutex);
}

/// Insert the order-graph edge held->next; if it is new and closes a
/// cycle, build the witness (every edge on the cycle with the acquisition
/// sites that first established it).
inline void note_order_edge(const Held& held, const void* next_mutex,
                            int next_rank, const char* next_name,
                            const std::source_location& next_site) {
    const NodeKey from = node_key(held.mutex, held.rank);
    const NodeKey to = node_key(next_mutex, next_rank);
    if (from == to) return; // same class: the rank check covers this
    std::string cycle_msg;
    State& s = state();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        auto& out = s.edges[from];
        if (out.count(to) != 0) return; // edge already known
        out.emplace(to, State::Edge{label_for(held.rank, held.name),
                                    label_for(next_rank, next_name),
                                    site_str(held.site),
                                    site_str(next_site)});
        // DFS from `to`: a path back to `from` means the new edge closed a
        // cycle. Record parents so the witness can list the whole loop.
        std::map<NodeKey, NodeKey> parent;
        std::vector<NodeKey> stack{to};
        parent[to] = to;
        bool found = false;
        while (!stack.empty() && !found) {
            const NodeKey u = stack.back();
            stack.pop_back();
            auto it = s.edges.find(u);
            if (it == s.edges.end()) continue;
            for (const auto& [v, e] : it->second) {
                if (parent.count(v) != 0) continue;
                parent[v] = u;
                if (v == from) {
                    found = true;
                    break;
                }
                stack.push_back(v);
            }
        }
        if (found) {
            // Path to -> ... -> from, plus the new edge from -> to.
            std::vector<NodeKey> path;
            for (NodeKey v = from; v != to; v = parent[v]) path.push_back(v);
            path.push_back(to);
            // path is [from, ..., to] reversed; walk to->...->from.
            cycle_msg = "lock-order cycle (potential ABBA deadlock):";
            for (std::size_t i = path.size(); i-- > 1;) {
                const State::Edge& e = s.edges[path[i]].at(path[i - 1]);
                cycle_msg += "\n  " + e.from_label + " acquired at " +
                             e.from_site + ", then " + e.to_label + " at " +
                             e.to_site;
            }
            const State::Edge& closing = s.edges[from].at(to);
            cycle_msg += "\n  closing edge: " + closing.from_label +
                         " acquired at " + closing.from_site + ", then " +
                         closing.to_label + " at " + closing.to_site;
        }
    }
    if (!cycle_msg.empty()) report(Kind::kOrderCycle, std::move(cycle_msg));
}

/// Bookkeeping for an acquisition (called before blocking on the real
/// mutex, so an impending deadlock is reported rather than hung on).
inline void on_lock(const void* mutex, int rank, const char* name,
                    const std::source_location& site) {
    // Rank discipline: strictly increasing over the ranked locks held.
    if (rank != kUnranked) {
        for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
            if (it->rank == kUnranked) continue;
            if (it->rank >= rank) {
                report(Kind::kRankInversion,
                       "rank inversion: acquiring " +
                           label_for(rank, name) + " at " + site_str(site) +
                           " while holding " +
                           label_for(it->rank, it->name) + " acquired at " +
                           site_str(it->site));
            }
            break; // ranked holds are increasing, checking the top suffices
        }
    }
    if (!t_held.empty())
        note_order_edge(t_held.back(), mutex, rank, name, site);
    t_held.push_back(Held{mutex, rank, name, site});
}

/// Bookkeeping for a successful try_lock: records the hold (so later
/// acquisitions see it) without feeding the order graph — a non-blocking
/// acquisition cannot deadlock.
inline void on_try_lock(const void* mutex, int rank, const char* name,
                        const std::source_location& site) {
    t_held.push_back(Held{mutex, rank, name, site});
}

inline void on_unlock(const void* mutex, int rank, const char* name) {
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
        if (it->mutex != mutex) continue;
        t_held.erase(std::next(it).base());
        return;
    }
    report(Kind::kProtocol,
           "unlock of " + label_for(rank, name) +
               " which this thread does not hold (cross-thread unlock or "
               "double unlock)");
}

/// Depth of the calling thread's held-lock stack (tests/diagnostics).
inline std::size_t held_count() { return t_held.size(); }

} // namespace check

/// Drop-in std::mutex replacement carrying a lock rank and a name. The
/// rank is either fixed at construction or assigned later via set_rank()
/// (for ranks only known at runtime, e.g. the per-NIC shard order).
class CheckedMutex {
public:
    CheckedMutex() = default;
    explicit CheckedMutex(int rank, const char* name = nullptr)
        : rank_(rank), name_(name) {
        check::register_rank(rank, name);
    }
    ~CheckedMutex() { sched::forget_object(this); }
    CheckedMutex(const CheckedMutex&) = delete;
    CheckedMutex& operator=(const CheckedMutex&) = delete;

    void set_rank(int rank, const char* name = nullptr) {
        rank_.store(rank, std::memory_order_relaxed);
        if (name != nullptr) name_.store(name, std::memory_order_relaxed);
        check::register_rank(rank, name);
    }

    int rank() const noexcept {
        return rank_.load(std::memory_order_relaxed);
    }
    const char* name() const noexcept {
        return name_.load(std::memory_order_relaxed);
    }

    void lock(std::source_location site = std::source_location::current()) {
        check::on_lock(this, rank(), name(), site);
#ifdef PADICO_SCHED_ENABLED
        // Under the scheduler the controller grants the acquisition only
        // once its modeled owner slot is free, so the real lock below can
        // never block a managed thread (DESIGN.md §14).
        sched::Controller::acquire(this, name());
#endif
        mu_.lock();
    }

    bool try_lock(
        std::source_location site = std::source_location::current()) {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            if (!sched::Controller::try_acquire(this, name())) return false;
            mu_.lock(); // model granted exclusivity: cannot contend
            check::on_try_lock(this, rank(), name(), site);
            return true;
        }
#endif
        if (!mu_.try_lock()) return false;
        check::on_try_lock(this, rank(), name(), site);
        return true;
    }

    void unlock() {
        check::on_unlock(this, rank(), name());
        mu_.unlock();
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::release(this);
#endif
    }

private:
    std::mutex mu_;
    std::atomic<int> rank_{check::kUnranked};
    std::atomic<const char*> name_{nullptr};
};

/// lock_guard counterpart capturing the acquisition site.
class CheckedLock {
public:
    explicit CheckedLock(
        CheckedMutex& m,
        std::source_location site = std::source_location::current())
        : m_(&m) {
        m_->lock(site);
    }
    ~CheckedLock() { m_->unlock(); }
    CheckedLock(const CheckedLock&) = delete;
    CheckedLock& operator=(const CheckedLock&) = delete;

private:
    CheckedMutex* m_;
};

/// unique_lock counterpart (BasicLockable, so CheckedCondVar waits on it).
class CheckedUniqueLock {
public:
    CheckedUniqueLock() = default;
    explicit CheckedUniqueLock(
        CheckedMutex& m,
        std::source_location site = std::source_location::current())
        : m_(&m), site_(site) {
        m_->lock(site_);
        owns_ = true;
    }
    ~CheckedUniqueLock() {
        if (owns_) m_->unlock();
    }
    CheckedUniqueLock(CheckedUniqueLock&& o) noexcept
        : m_(o.m_), site_(o.site_), owns_(o.owns_) {
        o.m_ = nullptr;
        o.owns_ = false;
    }
    CheckedUniqueLock& operator=(CheckedUniqueLock&& o) noexcept {
        if (this != &o) {
            if (owns_) m_->unlock();
            m_ = o.m_;
            site_ = o.site_;
            owns_ = o.owns_;
            o.m_ = nullptr;
            o.owns_ = false;
        }
        return *this;
    }
    CheckedUniqueLock(const CheckedUniqueLock&) = delete;
    CheckedUniqueLock& operator=(const CheckedUniqueLock&) = delete;

    /// Reacquisitions (manual or from a condition wait) reuse the
    /// construction site as the witness location.
    void lock() {
        m_->lock(site_);
        owns_ = true;
    }
    void unlock() {
        m_->unlock();
        owns_ = false;
    }
    bool owns_lock() const noexcept { return owns_; }

private:
    CheckedMutex* m_ = nullptr;
    std::source_location site_{};
    bool owns_ = false;
};

#ifdef PADICO_SCHED_ENABLED

/// Under the scheduler, condition waits and notifies are controller
/// decisions: a wait parks the thread as blocked-on-this-condvar (lock
/// dropped), a notify marks every such waiter runnable. Wakeups for
/// managed threads are always "spurious" in the sense that the waiter
/// re-evaluates its predicate after relocking — exactly the std contract.
/// Unmanaged threads (and managed notify) still drive the real condvar so
/// mixed setup/teardown phases work unchanged.
class CheckedCondVar {
public:
    ~CheckedCondVar() { sched::forget_object(this); }

    template <typename Lock> void wait(Lock& lk) {
        if (sched::Controller::managed()) {
            lk.unlock();
            sched::Controller::block_on(this, sched::OpKind::kCvWait,
                                        "condvar");
            lk.lock();
            return;
        }
        cv_.wait(lk);
    }

    template <typename Lock, typename Pred> void wait(Lock& lk, Pred pred) {
        if (sched::Controller::managed()) {
            while (!pred()) {
                lk.unlock();
                sched::Controller::block_on(this, sched::OpKind::kCvWait,
                                            "condvar");
                lk.lock();
            }
            return;
        }
        cv_.wait(lk, std::move(pred));
    }

    void notify_one() { notify(); }
    void notify_all() { notify(); }

private:
    void notify() {
        if (sched::Controller::managed()) {
            sched::Controller::point(sched::OpKind::kCvNotify, this,
                                     "condvar");
            sched::Controller::signal(this);
        }
        cv_.notify_all();
    }

    std::condition_variable_any cv_;
};

#else // !PADICO_SCHED_ENABLED

/// condition_variable_any works with any BasicLockable, so waits keep the
/// full acquisition bookkeeping through the unlock/relock inside wait().
using CheckedCondVar = std::condition_variable_any;

#endif // PADICO_SCHED_ENABLED

} // namespace padico::osal

/// Invariant audit: record (not throw) when \p cond is false, so an audit
/// deep in the data plane cannot change control flow. \p msg is any
/// expression convertible to std::string, evaluated only on failure.
#define PADICO_AUDIT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::padico::osal::check::report(                                  \
                ::padico::osal::check::Kind::kInvariant,                    \
                std::string(__FILE__ ":") + std::to_string(__LINE__) +      \
                    ": audit failed: " #cond " — " + (msg));                \
    } while (0)

#else // !PADICO_CHECK_ENABLED

namespace padico::osal {

/// Checking disabled: literally a std::mutex plus no-op annotation hooks.
/// Being a derived class (with no members) rather than an alias keeps the
/// rank-annotation constructors compilable while std::unique_lock,
/// std::lock_guard and std::condition_variable all bind to the base.
class CheckedMutex : public std::mutex {
public:
    CheckedMutex() = default;
    explicit CheckedMutex(int /*rank*/, const char* /*name*/ = nullptr) {}
    void set_rank(int /*rank*/, const char* /*name*/ = nullptr) noexcept {}
};

using CheckedLock = std::lock_guard<std::mutex>;
using CheckedUniqueLock = std::unique_lock<std::mutex>;
using CheckedCondVar = std::condition_variable;

} // namespace padico::osal

#define PADICO_AUDIT(cond, msg)                                             \
    do {                                                                    \
    } while (0)

#endif // PADICO_CHECK_ENABLED
