#pragma once
/// \file queue.hpp
/// Blocking multi-producer/multi-consumer queue. This is the delivery
/// primitive under every simulated network adapter and channel mailbox.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "osal/checked.hpp"

namespace padico::osal {

/// Lightweight wake-up hook a queue notifies on push/close. Shared (via
/// shared_ptr) between one or more queues and whoever multiplexes over
/// them (WaitSet): the queue fires it after releasing its own lock, so the
/// hook can never deadlock against queue operations, and the shared_ptr
/// keeps it alive even if the waiter detaches concurrently with a push.
///
/// The protocol is a sequence number, not a readiness flag: a consumer
/// snapshots sequence(), polls actual queue state, and only then blocks in
/// wait_changed(snapshot) — any notify() between the snapshot and the wait
/// makes the wait return immediately, so wake-ups cannot be lost.
class Waiter {
public:
    virtual ~Waiter() = default;

    /// Fired by attached queues whenever their readiness may have changed.
    /// Virtual so edge-triggered consumers (e.g. the sharded-readiness
    /// ingress in svc) can reroute wake-ups into their own queues; the
    /// default implementation keeps the level-triggered sequence protocol
    /// that WaitSet builds on. Queues call this AFTER releasing their own
    /// lock, so overrides may take locks of their own.
    virtual void notify() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++seq_;
        }
        cv_.notify_all();
    }

    std::uint64_t sequence() const {
        std::lock_guard<std::mutex> lk(mu_);
        return seq_;
    }

    /// Block until notify() has been called after \p seen was observed.
    void wait_changed(std::uint64_t seen) {
        std::unique_lock<std::mutex> lk(mu_);
#ifdef PADICO_CHECK_ENABLED
        // A snapshot ahead of the live sequence was not taken from THIS
        // waiter (or the waiter was replaced under the consumer): the
        // lost-wake-up guarantee no longer holds for it.
        if (seen > seq_)
            check::report(check::Kind::kProtocol,
                          "Waiter::wait_changed with snapshot " +
                              std::to_string(seen) +
                              " ahead of live sequence " +
                              std::to_string(seq_) +
                              " (snapshot from a different Waiter?)");
#endif
        cv_.wait(lk, [&] { return seq_ != seen; });
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t seq_ = 0;
};

template <typename T> class BlockingQueue {
public:
    /// Enqueue; never blocks (queues are unbounded — flow control is the
    /// business of the protocols above, as in the real stacks).
    /// notify_all: consumers may wait with different match predicates.
    /// The broadcast happens under the lock: a woken consumer must then
    /// reacquire mu_ before returning, so it cannot destroy the queue while
    /// the producer is still inside the condvar (destroy/broadcast race).
    void push(T v) {
        std::shared_ptr<Waiter> w;
        {
            std::lock_guard<std::mutex> lk(mu_);
            items_.push_back(std::move(v));
            w = waiter_;
            cv_.notify_all();
        }
        if (w) w->notify();
    }

    /// Dequeue, blocking until an item is available or close() is called.
    /// Returns nullopt only after close() with an empty queue.
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop() {
        std::lock_guard<std::mutex> lk(mu_);
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    /// Dequeue the first element matching \p pred, blocking until one
    /// appears or the queue is closed (tag matching à la MPI).
    template <typename Pred> std::optional<T> pop_matching(Pred pred) {
        std::unique_lock<std::mutex> lk(mu_);
        while (true) {
            for (auto it = items_.begin(); it != items_.end(); ++it) {
                if (pred(*it)) {
                    T v = std::move(*it);
                    items_.erase(it);
                    return v;
                }
            }
            if (closed_) return std::nullopt;
            cv_.wait(lk);
        }
    }

    /// Non-blocking variant of pop_matching.
    template <typename Pred> std::optional<T> try_pop_matching(Pred pred) {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (pred(*it)) {
                T v = std::move(*it);
                items_.erase(it);
                return v;
            }
        }
        return std::nullopt;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }
    bool empty() const { return size() == 0; }

    /// Wake all blocked consumers; subsequent pops drain then return nullopt.
    /// Broadcast under the lock for the same destroy-race reason as push().
    void close() {
        std::shared_ptr<Waiter> w;
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
            w = waiter_;
            cv_.notify_all();
        }
        if (w) w->notify();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

    /// Readiness as a WaitSet sees it: a pop (or a close verdict) would not
    /// block. Level-triggered — a closed queue stays ready forever.
    bool ready() const {
        std::lock_guard<std::mutex> lk(mu_);
        return !items_.empty() || closed_;
    }

    /// Attach the readiness hook (one per queue; WaitSet enforces single
    /// ownership). Fires immediately if the queue is already ready, so a
    /// waiter attached late still observes buffered items.
    void set_waiter(std::shared_ptr<Waiter> w) {
        std::shared_ptr<Waiter> fire;
        {
            std::lock_guard<std::mutex> lk(mu_);
#ifdef PADICO_CHECK_ENABLED
            // Single-ownership protocol: a second multiplexer silently
            // stealing the hook would starve the first one's wait loop.
            if (w && waiter_ && waiter_ != w)
                check::report(
                    check::Kind::kProtocol,
                    "BlockingQueue::set_waiter replacing a live waiter "
                    "(two WaitSets multiplexing one queue?)");
#endif
            waiter_ = std::move(w);
            if (waiter_ && (!items_.empty() || closed_)) fire = waiter_;
        }
        if (fire) fire->notify();
    }

    void clear_waiter() {
        std::lock_guard<std::mutex> lk(mu_);
        waiter_.reset();
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
    std::shared_ptr<Waiter> waiter_;
    bool closed_ = false;
};

} // namespace padico::osal
