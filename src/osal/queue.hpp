#pragma once
/// \file queue.hpp
/// Blocking multi-producer/multi-consumer queue. This is the delivery
/// primitive under every simulated network adapter and channel mailbox.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "osal/checked.hpp"

namespace padico::osal {

/// Lightweight wake-up hook a queue notifies on push/close. Shared (via
/// shared_ptr) between one or more queues and whoever multiplexes over
/// them (WaitSet): the queue fires it after releasing its own lock, so the
/// hook can never deadlock against queue operations, and the shared_ptr
/// keeps it alive even if the waiter detaches concurrently with a push.
///
/// The protocol is a sequence number, not a readiness flag: a consumer
/// snapshots sequence(), polls actual queue state, and only then blocks in
/// wait_changed(snapshot) — any notify() between the snapshot and the wait
/// makes the wait return immediately, so wake-ups cannot be lost.
class Waiter {
public:
    // Retire this address with the scheduler: heap reuse must not hand a
    // future object a dead waiter's identity (replay/DPOR determinism).
    virtual ~Waiter() { sched::forget_object(this); }

    /// Fired by attached queues whenever their readiness may have changed.
    /// Virtual so edge-triggered consumers (e.g. the sharded-readiness
    /// ingress in svc) can reroute wake-ups into their own queues; the
    /// default implementation keeps the level-triggered sequence protocol
    /// that WaitSet builds on. Queues call this AFTER releasing their own
    /// lock, so overrides may take locks of their own.
    virtual void notify() {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kNotify, this, "waiter");
#endif
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++seq_;
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::signal(this);
#endif
        cv_.notify_all();
    }

    std::uint64_t sequence() const {
        std::lock_guard<std::mutex> lk(mu_);
        return seq_;
    }

    /// Block until notify() has been called after \p seen was observed.
    void wait_changed(std::uint64_t seen) {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            for (;;) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    if (seen > seq_)
                        check::report(
                            check::Kind::kProtocol,
                            "Waiter::wait_changed with snapshot " +
                                std::to_string(seen) +
                                " ahead of live sequence " +
                                std::to_string(seq_) +
                                " (snapshot from a different Waiter?)");
                    if (seq_ != seen) return;
                }
                sched::Controller::block_on(this, sched::OpKind::kWait,
                                            "waiter");
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
#ifdef PADICO_CHECK_ENABLED
        // A snapshot ahead of the live sequence was not taken from THIS
        // waiter (or the waiter was replaced under the consumer): the
        // lost-wake-up guarantee no longer holds for it.
        if (seen > seq_)
            check::report(check::Kind::kProtocol,
                          "Waiter::wait_changed with snapshot " +
                              std::to_string(seen) +
                              " ahead of live sequence " +
                              std::to_string(seq_) +
                              " (snapshot from a different Waiter?)");
#endif
        cv_.wait(lk, [&] { return seq_ != seen; });
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t seq_ = 0;
};

template <typename T> class BlockingQueue {
public:
    BlockingQueue() = default;
    ~BlockingQueue() { sched::forget_object(this); }
    BlockingQueue(const BlockingQueue&) = delete;
    BlockingQueue& operator=(const BlockingQueue&) = delete;

    /// Enqueue; never blocks (queues are unbounded — flow control is the
    /// business of the protocols above, as in the real stacks).
    /// notify_all: consumers may wait with different match predicates.
    /// The broadcast happens under the lock: a woken consumer must then
    /// reacquire mu_ before returning, so it cannot destroy the queue while
    /// the producer is still inside the condvar (destroy/broadcast race).
    void push(T v) {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kQueuePush, this, "queue");
#endif
        std::shared_ptr<Waiter> w;
        {
            std::lock_guard<std::mutex> lk(mu_);
            items_.push_back(std::move(v));
#ifdef PADICO_SCHED_ENABLED
            tags_.push_back(++next_tag_);
            sched::Controller::annotate(next_tag_);
#endif
            w = waiter_;
            cv_.notify_all();
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::signal(this);
#endif
        if (w) w->notify();
    }

    /// Dequeue, blocking until an item is available or close() is called.
    /// Returns nullopt only after close() with an empty queue.
    std::optional<T> pop() {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            // Blocking on an empty queue is forced, not a scheduling
            // decision: no op is recorded for an attempt that would block
            // (the eventual wake grant is the step, and it carries its
            // enabling edge). Recording the attempt itself would split
            // every producer→consumer handoff into two observationally
            // identical schedule classes — attempt-then-block-then-push
            // vs push-then-pop — doubling the explored space per handoff.
            for (;;) {
                bool ready;
                {
                    std::unique_lock<std::mutex> lk(mu_);
                    ready = !items_.empty() || closed_;
                }
                if (!ready) {
                    sched::Controller::block_on(
                        this, sched::OpKind::kQueuePop, "queue");
                    continue;
                }
                sched::Controller::point(sched::OpKind::kQueuePop, this,
                                         "queue");
                std::unique_lock<std::mutex> lk(mu_);
                if (!items_.empty()) {
                    T v = std::move(items_.front());
                    items_.pop_front();
                    sched::Controller::annotate(tags_.front());
                    tags_.pop_front();
                    return v;
                }
                if (closed_) {
                    sched::Controller::annotate(sched::kAuxBoundary);
                    return std::nullopt;
                }
                // Lost a race with another consumer between the grant and
                // the take: wait again.
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
#ifdef PADICO_SCHED_ENABLED
        tags_.pop_front();
#endif
        return v;
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop() {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kQueuePop, this, "queue");
#endif
        std::lock_guard<std::mutex> lk(mu_);
        if (items_.empty()) {
#ifdef PADICO_SCHED_ENABLED
            sched::Controller::annotate(sched::kAuxBoundary);
#endif
            return std::nullopt;
        }
        T v = std::move(items_.front());
        items_.pop_front();
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::annotate(tags_.front());
        tags_.pop_front();
#endif
        return v;
    }

    /// Dequeue the first element matching \p pred, blocking until one
    /// appears or the queue is closed (tag matching à la MPI).
    template <typename Pred> std::optional<T> pop_matching(Pred pred) {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            // Same blocking-is-not-a-decision structure as pop().
            for (;;) {
                bool ready;
                {
                    std::unique_lock<std::mutex> lk(mu_);
                    ready = closed_;
                    for (const T& item : items_)
                        if (pred(item)) {
                            ready = true;
                            break;
                        }
                }
                if (!ready) {
                    sched::Controller::block_on(
                        this, sched::OpKind::kQueuePop, "queue");
                    continue;
                }
                sched::Controller::point(sched::OpKind::kQueuePop, this,
                                         "queue");
                std::unique_lock<std::mutex> lk(mu_);
                for (std::size_t i = 0; i < items_.size(); ++i) {
                    if (pred(items_[i])) {
                        T v = std::move(items_[i]);
                        items_.erase(items_.begin() +
                                     static_cast<std::ptrdiff_t>(i));
                        sched::Controller::annotate(tags_[i]);
                        tags_.erase(tags_.begin() +
                                    static_cast<std::ptrdiff_t>(i));
                        return v;
                    }
                }
                if (closed_) {
                    sched::Controller::annotate(sched::kAuxBoundary);
                    return std::nullopt;
                }
                // Lost a race with another consumer: wait again.
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
        while (true) {
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (pred(items_[i])) {
                    T v = std::move(items_[i]);
                    items_.erase(items_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
#ifdef PADICO_SCHED_ENABLED
                    tags_.erase(tags_.begin() +
                                static_cast<std::ptrdiff_t>(i));
#endif
                    return v;
                }
            }
            if (closed_) return std::nullopt;
            cv_.wait(lk);
        }
    }

    /// Non-blocking variant of pop_matching.
    template <typename Pred> std::optional<T> try_pop_matching(Pred pred) {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kQueuePop, this, "queue");
#endif
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (pred(items_[i])) {
                T v = std::move(items_[i]);
                items_.erase(items_.begin() +
                             static_cast<std::ptrdiff_t>(i));
#ifdef PADICO_SCHED_ENABLED
                sched::Controller::annotate(tags_[i]);
                tags_.erase(tags_.begin() + static_cast<std::ptrdiff_t>(i));
#endif
                return v;
            }
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::annotate(sched::kAuxBoundary);
#endif
        return std::nullopt;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }
    bool empty() const { return size() == 0; }

    /// Wake all blocked consumers; subsequent pops drain then return nullopt.
    /// Broadcast under the lock for the same destroy-race reason as push().
    void close() {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kQueueClose, this, "queue");
#endif
        std::shared_ptr<Waiter> w;
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
            w = waiter_;
            cv_.notify_all();
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::signal(this);
#endif
        if (w) w->notify();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

    /// Readiness as a WaitSet sees it: a pop (or a close verdict) would not
    /// block. Level-triggered — a closed queue stays ready forever.
    bool ready() const {
        std::lock_guard<std::mutex> lk(mu_);
        return !items_.empty() || closed_;
    }

    /// Attach the readiness hook (one per queue; WaitSet enforces single
    /// ownership). Fires immediately if the queue is already ready, so a
    /// waiter attached late still observes buffered items.
    void set_waiter(std::shared_ptr<Waiter> w) {
        std::shared_ptr<Waiter> fire;
        {
            std::lock_guard<std::mutex> lk(mu_);
#ifdef PADICO_CHECK_ENABLED
            // Single-ownership protocol: a second multiplexer silently
            // stealing the hook would starve the first one's wait loop.
            if (w && waiter_ && waiter_ != w)
                check::report(
                    check::Kind::kProtocol,
                    "BlockingQueue::set_waiter replacing a live waiter "
                    "(two WaitSets multiplexing one queue?)");
#endif
            waiter_ = std::move(w);
            if (waiter_ && (!items_.empty() || closed_)) fire = waiter_;
        }
        if (fire) fire->notify();
    }

    void clear_waiter() {
        std::lock_guard<std::mutex> lk(mu_);
        waiter_.reset();
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
#ifdef PADICO_SCHED_ENABLED
    /// Per-element tickets parallel to items_, reported to the explorer
    /// via Controller::annotate: its conditional-dependence relation
    /// lets a push and a pop of *different* elements commute, which is
    /// what keeps pipelined producer/consumer chains exhaustible.
    std::deque<std::uint64_t> tags_;
    std::uint64_t next_tag_ = 0;
#endif
    std::shared_ptr<Waiter> waiter_;
    bool closed_ = false;
};

} // namespace padico::osal
