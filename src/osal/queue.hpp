#pragma once
/// \file queue.hpp
/// Blocking multi-producer/multi-consumer queue. This is the delivery
/// primitive under every simulated network adapter and channel mailbox.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace padico::osal {

template <typename T> class BlockingQueue {
public:
    /// Enqueue; never blocks (queues are unbounded — flow control is the
    /// business of the protocols above, as in the real stacks).
    /// notify_all: consumers may wait with different match predicates.
    void push(T v) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            items_.push_back(std::move(v));
        }
        cv_.notify_all();
    }

    /// Dequeue, blocking until an item is available or close() is called.
    /// Returns nullopt only after close() with an empty queue.
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop() {
        std::lock_guard<std::mutex> lk(mu_);
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    /// Dequeue the first element matching \p pred, blocking until one
    /// appears or the queue is closed (tag matching à la MPI).
    template <typename Pred> std::optional<T> pop_matching(Pred pred) {
        std::unique_lock<std::mutex> lk(mu_);
        while (true) {
            for (auto it = items_.begin(); it != items_.end(); ++it) {
                if (pred(*it)) {
                    T v = std::move(*it);
                    items_.erase(it);
                    return v;
                }
            }
            if (closed_) return std::nullopt;
            cv_.wait(lk);
        }
    }

    /// Non-blocking variant of pop_matching.
    template <typename Pred> std::optional<T> try_pop_matching(Pred pred) {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (pred(*it)) {
                T v = std::move(*it);
                items_.erase(it);
                return v;
            }
        }
        return std::nullopt;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }
    bool empty() const { return size() == 0; }

    /// Wake all blocked consumers; subsequent pops drain then return nullopt.
    void close() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace padico::osal
