#pragma once
/// \file blocking.hpp
/// Cooperative blocking-region hints for pooled worker threads.
///
/// An event-driven server runs request handlers on a small fixed pool, so
/// a handler that blocks waiting for progress made by ANOTHER request
/// (e.g. a parallel-invocation rendezvous gathering contacts from several
/// connections) can starve the very requests it is waiting for. The
/// classic cure — Java ForkJoinPool's ManagedBlocker, omniORB's growable
/// server pool — is cooperative: the handler declares "I am about to
/// block on external progress", and the pool temporarily adds a spare
/// thread so queued work keeps flowing, retiring it once the wait ends.
///
/// BlockingHint is the layering-neutral half of that contract: the pool
/// installs per-thread enter/exit hooks (Scope), and any code that may
/// block on cross-request progress brackets the wait with a Region.
/// On threads without hooks (dedicated per-connection threads, tests,
/// clients) a Region is a no-op, so marking a wait is always safe.

#include <functional>
#include <utility>

namespace padico::osal {

class BlockingHint {
public:
    struct Hooks {
        std::function<void()> enter; ///< thread is about to block
        std::function<void()> exit;  ///< the blocking wait is over
    };

    /// Installs \p hooks for the calling thread; restores the previous
    /// hooks on destruction (pool worker loops hold one for their
    /// lifetime).
    class Scope {
    public:
        explicit Scope(Hooks hooks) : prev_(std::move(tl_hooks())) {
            tl_hooks() = std::move(hooks);
        }
        ~Scope() { tl_hooks() = std::move(prev_); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Hooks prev_;
    };

    /// Brackets a wait whose completion depends on other requests being
    /// served. Construct immediately before blocking, destroy right after.
    class Region {
    public:
        Region() {
            if (tl_hooks().enter) {
                active_ = true;
                tl_hooks().enter();
            }
        }
        ~Region() {
            if (active_ && tl_hooks().exit) tl_hooks().exit();
        }
        Region(const Region&) = delete;
        Region& operator=(const Region&) = delete;

    private:
        bool active_ = false;
    };

private:
    static Hooks& tl_hooks() {
        thread_local Hooks hooks;
        return hooks;
    }
};

} // namespace padico::osal
