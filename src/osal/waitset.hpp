#pragma once
/// \file waitset.hpp
/// WaitSet: block on readiness of many BlockingQueues at once — the
/// select()/poll() analogue for the mailbox world. One dispatcher thread
/// waits on N queues instead of N threads each blocking on one queue; this
/// is what lets a server core keep its thread count O(pool) while serving
/// O(connections) streams (paper §4.3.1's "coherent multithreading policy"
/// extended above the arbitration layer).
///
/// Semantics are level-triggered: wait() returns the keys of every
/// registered queue on which a pop would not block (items buffered, or the
/// queue closed). A closed queue stays ready until the caller removes it —
/// callers must treat "ready + closed + empty" as end-of-stream and
/// deregister, or wait() will keep returning that key.
///
/// Locking: the WaitSet registration lock and each queue's internal lock
/// are only ever taken in the order registration -> queue (during polls);
/// queues fire the shared Waiter hook after releasing their own lock, and
/// the Waiter's lock is a leaf. add()/remove() touch the queue outside the
/// registration lock. No cycle exists, and missed wake-ups are prevented
/// by the Waiter sequence protocol (snapshot, poll, wait-for-change).
///
/// Lifetime: a queue must stay alive until it is remove()d (or the WaitSet
/// is destroyed, which detaches every remaining queue). A queue belongs to
/// at most one WaitSet at a time.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "osal/queue.hpp"
#include "util/error.hpp"

namespace padico::osal {

class WaitSet {
public:
    using Key = std::uint64_t;

    WaitSet() : waiter_(std::make_shared<Waiter>()) {}
    WaitSet(const WaitSet&) = delete;
    WaitSet& operator=(const WaitSet&) = delete;

    ~WaitSet() {
        std::map<Key, Entry> leftover;
        {
            std::lock_guard<std::mutex> lk(mu_);
            leftover.swap(entries_);
        }
        for (auto& [key, e] : leftover) e.detach();
    }

    /// Register \p q under \p key. The queue's current readiness counts:
    /// items pushed (or a close) before add() still wake the next wait().
    template <typename T> void add(BlockingQueue<T>& q, Key key) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            PADICO_CHECK(entries_.count(key) == 0,
                         "WaitSet key registered twice");
            entries_.emplace(key, Entry{[&q] { return q.ready(); },
                                        [&q] { q.clear_waiter(); }});
        }
        q.set_waiter(waiter_);
    }

    /// Deregister a key, detaching the queue's waiter hook. The queue may
    /// be destroyed once remove() returns. Unknown keys are ignored (a
    /// dispatcher may race a prune against a late readiness report).
    void remove(Key key) {
        Entry e;
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = entries_.find(key);
            if (it == entries_.end()) return;
            e = std::move(it->second);
            entries_.erase(it);
        }
        e.detach();
    }

    /// Keys ready right now (non-blocking, possibly empty).
    std::vector<Key> poll() const {
        std::lock_guard<std::mutex> lk(mu_);
        std::vector<Key> ready;
        for (const auto& [key, e] : entries_)
            if (e.ready()) ready.push_back(key);
        return ready;
    }

    /// Block until at least one registered queue is ready; returns the
    /// ready keys. Returns an empty vector only after interrupt().
    std::vector<Key> wait() {
        for (;;) {
            const std::uint64_t seen = waiter_->sequence();
            std::vector<Key> ready = poll();
            if (!ready.empty()) return ready;
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (interrupted_) {
                    interrupted_ = false;
                    return {};
                }
            }
            waiter_->wait_changed(seen);
        }
    }

    /// Wake one pending (or the next) wait() with an empty result — the
    /// shutdown path of a dispatcher loop.
    void interrupt() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            interrupted_ = true;
        }
        waiter_->notify();
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lk(mu_);
        return entries_.size();
    }

private:
    struct Entry {
        std::function<bool()> ready;
        std::function<void()> detach;
    };

    std::shared_ptr<Waiter> waiter_;
    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
    bool interrupted_ = false;
};

} // namespace padico::osal
