#pragma once
/// \file lockrank.hpp
/// The process-wide lock-rank registry of padico::check. Every long-lived
/// mutex in the tree is annotated with one of these ranks; under
/// PADICO_CHECK=ON, osal::CheckedMutex enforces that a thread only ever
/// acquires mutexes in strictly increasing rank order (see checked.hpp).
///
/// Ranks increase as control descends the stack: a layer may call into the
/// layers below it while holding its own locks, never the reverse. The
/// bands mirror the include-layering order that tools/padico_lint enforces
/// (ccm < gridccm < hla/soap < corba < svc < padicotm < fabric), with gaps
/// left inside each band so new mutexes slot in without renumbering.
///
/// To annotate a new mutex:
///   1. add a `constexpr int kMyLock = ...;` here, in the band of the layer
///      that owns it, strictly between the ranks it is acquired inside of
///      and the ranks acquired while it is held;
///   2. construct it as `osal::CheckedMutex mu_{lockrank::kMyLock, "name"};`
///      (or call set_rank() for ranks only known at runtime);
///   3. run the suite with -DPADICO_CHECK=ON — inversions and order-graph
///      cycles are reported with both acquisition sites.
/// tools/padico_lint rejects `lockrank::` identifiers that are not declared
/// in this file, so the registry stays the single source of truth.

#include <cstdint>

namespace padico::lockrank {

// --- ccm: containers hold their lock while talking to corba --------------
constexpr int kCcmRegistry = 1000;    ///< ccm/component.cpp g_reg_mu
constexpr int kCcmContainer = 1010;   ///< ccm::Container::mu_

// --- gridccm --------------------------------------------------------------
constexpr int kGridccmMembers = 1100;  ///< gridccm::ParallelStub members_mu_
constexpr int kGridccmSkeleton = 1110; ///< gridccm::ParallelSkeleton::mu_
constexpr int kGridccmPlanCache = 1130; ///< distribution.cpp g_plan_mu
                                        ///< (taken under the skeleton lock)

// --- hla: the gateway servant calls back out through corba ---------------
constexpr int kHlaGateway = 1200; ///< hla RtiGateway servant mu_

// --- soap -----------------------------------------------------------------
constexpr int kSoapServer = 1300; ///< soap::SoapServer::mu_
constexpr int kSoapClient = 1310; ///< soap::SoapClient::mu_

// --- corba ----------------------------------------------------------------
constexpr int kOrb = 1400;     ///< corba::Orb::mu_ (object adapter table)
constexpr int kNaming = 1410;  ///< corba::NamingServant::mu_
constexpr int kOrbConn = 1420; ///< corba::ObjectRef conn_mu_ (held across
                               ///< connect/invoke, i.e. into padicotm)

// --- svc ------------------------------------------------------------------
constexpr int kServerShutdown = 1500; ///< svc::ServerCore::shutdown_mu_
constexpr int kServerConns = 1510;    ///< svc::ServerCore::mu_
constexpr int kServerPool = 1520;     ///< svc::ServerCore::pool_mu_

/// Per-shard connection-state locks of the sharded-readiness ingress mode.
/// Taken under nothing from svc (a shard thread or worker grabs exactly its
/// connection's shard lock), and ordered before the slab and wheel locks
/// which are acquired while a shard lock is held. Shard count is capped so
/// the band stays below kServerSlab.
constexpr int kServerConnShardBase = 1530; ///< svc::ServerCore per-shard mu
constexpr int kServerConnShardMax = 32;    ///< shard count cap (rank space)
constexpr int server_shard_rank(std::uint64_t shard) {
    return kServerConnShardBase + static_cast<int>(shard);
}
constexpr int kServerSlab = 1570;  ///< svc::Slab alloc/free free-list mu
constexpr int kServerWheel = 1580; ///< svc idle-sweep osal::TimerWheel mu

// --- padicotm -------------------------------------------------------------
constexpr int kSocketApi = 1600;     ///< ptm::BsdSocketApi::mu_
constexpr int kAioApi = 1605;        ///< ptm::AioApi::mu_
constexpr int kCircuit = 1610;       ///< ptm::Circuit::mu_
constexpr int kModules = 1620;       ///< ptm::ModuleManager::mu_
constexpr int kModuleFactory = 1625; ///< runtime.cpp g_factory_mu
constexpr int kIngressRegistry = 1630; ///< ptm::Runtime::ingress_mu_
constexpr int kRouteCache = 1640;    ///< ptm::Runtime::route_cache_mu_
constexpr int kDemux = 1650;         ///< ptm::Demux::mu_

// --- fabric: topology / routing zones -------------------------------------
/// The zone layer sits between padicotm and the fabric data plane: resolve
/// walks the zone tree (topology lock, then zone locks top-down) and never
/// touches route/time locks, while builders call down into Grid::attach.
constexpr int kFabricTopology = 1660; ///< fabric::Topology::mu_ (zone tree)
/// Per-zone lazy-state locks, ranked by tree depth: the ancestor walk may
/// hold a parent zone's lock while consulting a child (containment maps),
/// so parent-before-child is the enforced order. Depth is capped so the
/// band stays below the static fabric ranks.
constexpr int kFabricZoneBase = 1665;
constexpr int kFabricZoneMaxDepth = 32;
constexpr int zone_rank(int depth) { return kFabricZoneBase + depth; }

// --- fabric (static) ------------------------------------------------------
constexpr int kFabricAdapter = 1700; ///< fabric::Adapter::mu_ (port table)
constexpr int kFabricRoute = 1710;   ///< fabric::NetworkSegment::route_mu_
constexpr int kFabricTime = 1720;    ///< fabric::NetworkSegment::time_mu_
constexpr int kFabricProcs = 1730;   ///< fabric::Grid::proc_mu_
constexpr int kFabricNames = 1740;   ///< fabric::Grid::name_mu_

// --- fabric (dynamic): per-NIC-direction timing shards --------------------
/// The shard band sits above every static rank: shard locks are innermost
/// on the data path (taken under time_mu_ in legacy mode, last in sharded
/// mode). The per-adapter order assigned by Grid::attach becomes the rank —
/// tx even, rx odd — turning grid.hpp's historically comment-only
/// discipline into an enforced one.
constexpr int kFabricShardBase = 10000;
constexpr int shard_rank(std::uint64_t adapter_order, bool rx) {
    return kFabricShardBase + static_cast<int>(adapter_order) * 2 +
           (rx ? 1 : 0);
}

// --- leaf: short-lived local mutexes --------------------------------------
/// For block-scoped mutexes (parallel-loop error collectors) that are
/// always innermost and never nest with each other.
constexpr int kScratch = 1 << 20;

} // namespace padico::lockrank
