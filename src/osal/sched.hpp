#pragma once
/// \file sched.hpp
/// padico::sched — deterministic schedule exploration (DESIGN.md §14).
///
/// A scheduler-serialization harness: a test creates a sched::Controller,
/// spawns its threads through it (everything the tree creates via
/// osal::sched::spawn_thread — ThreadGroup, TaskPool, Grid::spawn,
/// svc::ServerCore — inherits management automatically), and calls run().
/// From then on exactly ONE managed thread executes at a time; every
/// visible synchronization operation — CheckedMutex acquire, CheckedCondVar
/// wait/notify, BlockingQueue push/pop/close, Waiter notify/wait,
/// Event/Latch/Barrier, thread start/exit/join — parks the thread and hands
/// the decision of who runs next to a pluggable Picker. On top of that one
/// mechanism:
///
///  * RECORDING — every decision is appended to a Trace (thread id, op
///    kind, object id); save_trace()/load_trace() round-trip it through a
///    compact text file.
///  * REPLAY — replay_picker(trace) re-executes a recorded schedule
///    decision for decision, verifying op kinds as it goes. Because all
///    nondeterminism is in the schedule, a replay reproduces bit-identical
///    virtual times, counters and failures.
///  * EXPLORATION — sched::Explorer drives repeated runs of the same
///    configuration through a DFS over schedules with DPOR-lite pruning:
///    sleep sets (a thread not chosen at a branch sleeps until an op
///    dependent with its pending op executes) plus last-access pruning (an
///    alternative is only worth branching to if some later op of another
///    thread conflicted with its pending op). Two ops are dependent iff
///    they touch the same object — conservative, hence sound.
///
/// Granularity: interleavings are explored at synchronization-operation
/// level. Code between two parks runs atomically (only one thread runs at
/// a time), so plain/atomic loads and stores are ordered by the schedule
/// but are not themselves branch points. That is exactly the granularity
/// the virtual-time-identity claims are made at: clocks are atomics whose
/// updates commute, and everything else is behind the instrumented seams.
///
/// Deadlock: when no managed thread is runnable (every pending mutex held,
/// every waiter unsignaled), the run reports kDeadlock with a per-thread
/// wait witness and aborts: parked threads unwind with sched::Aborted,
/// releasing their locks via RAII. A planted ABBA inversion is found as an
/// actual deadlocked state, not just a lock-order heuristic.
///
/// Protocol contract: while run() is in flight, only managed threads may
/// touch instrumented objects (the coordinating thread builds the
/// configuration before run() and tears it down after). Compile-gated by
/// PADICO_SCHED_ENABLED, which requires PADICO_CHECK_ENABLED — the explore
/// binaries recompile their whole dependency cone with both flags, the
/// same pattern as the stress_fabric_* targets. With the flag off this
/// header only provides the trace types, the spawn/join passthroughs and
/// sched::Aborted (so shared code compiles unchanged at zero cost).

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace padico::osal::sched {

// ---------------------------------------------------------------------------
// Trace model — available in every build (tools/sched_trace links this
// without the sched flag).

enum class OpKind : std::uint8_t {
    kThreadStart, ///< first schedulable point of a managed thread
    kThreadExit,  ///< thread body returned (recorded as it leaves)
    kMutexLock,   ///< blocking CheckedMutex acquisition
    kMutexTryLock,///< non-blocking acquisition attempt (always enabled)
    kCvNotify,    ///< CheckedCondVar notify_one/notify_all
    kCvWait,      ///< resumption of a CheckedCondVar wait
    kQueuePush,   ///< BlockingQueue push
    kQueuePop,    ///< BlockingQueue pop / try_pop / pop_matching attempt
    kQueueClose,  ///< BlockingQueue close
    kNotify,      ///< generic signal: Waiter::notify, Event::set, Latch
                  ///< count_down, Barrier arrival
    kWait,        ///< resumption of a generic wait (Waiter/Event/Latch/
                  ///< Barrier)
    kJoin,        ///< resumption of a thread join
    kYield,       ///< explicit yield point
};

inline const char* op_name(OpKind k) {
    switch (k) {
    case OpKind::kThreadStart: return "thread-start";
    case OpKind::kThreadExit: return "thread-exit";
    case OpKind::kMutexLock: return "mutex-lock";
    case OpKind::kMutexTryLock: return "mutex-trylock";
    case OpKind::kCvNotify: return "cv-notify";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kQueuePush: return "queue-push";
    case OpKind::kQueuePop: return "queue-pop";
    case OpKind::kQueueClose: return "queue-close";
    case OpKind::kNotify: return "notify";
    case OpKind::kWait: return "wait";
    case OpKind::kJoin: return "join";
    case OpKind::kYield: return "yield";
    }
    return "?";
}

inline std::optional<OpKind> op_from_name(const std::string& s) {
    for (int i = 0; i <= static_cast<int>(OpKind::kYield); ++i)
        if (s == op_name(static_cast<OpKind>(i)))
            return static_cast<OpKind>(i);
    return std::nullopt;
}

/// Annotation value for a queue pop that observed the empty/closed
/// boundary instead of taking an element (see Controller::annotate).
inline constexpr std::uint64_t kAuxBoundary = ~0ull;

/// One scheduling decision: thread \p tid performed \p kind on object
/// \p obj (a small id assigned per run in first-use order — deterministic
/// for a deterministic schedule).
struct TraceStep {
    std::uint32_t tid = 0;
    OpKind kind = OpKind::kYield;
    std::uint32_t obj = 0;
    std::string label; ///< best-effort object name for humans
    /// 1 + index of the step whose signal woke this thread out of a
    /// blocked wait; 0 when the thread parked here by its own choice.
    /// In-memory only (not serialized): the explorer uses it to tell
    /// enabling edges from races — a blocked thread was not co-enabled
    /// with anything that ran at or before its waker.
    std::size_t enabled_at = 0;
    /// Op-specific annotation set via Controller::annotate after the
    /// grant: queue pushes and element-taking pops carry the element's
    /// ticket, boundary-observing pops carry kAuxBoundary, 0 means
    /// unannotated. In-memory only (not serialized): the explorer's
    /// conditional-dependence relation uses it to recognize commuting
    /// queue operations (a push and a pop of different elements).
    std::uint64_t aux = 0;
};

/// A recorded schedule plus enough metadata to sanity-check a replay.
struct Trace {
    std::string config;  ///< free-form configuration name
    std::string status;  ///< completed | deadlock | step-limit
    std::uint32_t threads = 0;
    std::vector<TraceStep> steps;
};

/// Compact text format, one decision per line:
///   # padico-sched-trace v1
///   config <name> / threads <n> / status <s> / steps <m>
///   <tid> <op-kind> <obj-id> <label to end of line>
inline bool save_trace(const Trace& t, const std::string& path) {
    std::ofstream out(path);
    if (!out) return false;
    out << "# padico-sched-trace v1\n";
    out << "config " << (t.config.empty() ? "-" : t.config) << "\n";
    out << "threads " << t.threads << "\n";
    out << "status " << (t.status.empty() ? "-" : t.status) << "\n";
    out << "steps " << t.steps.size() << "\n";
    for (const TraceStep& s : t.steps)
        out << s.tid << " " << op_name(s.kind) << " " << s.obj << " "
            << s.label << "\n";
    return static_cast<bool>(out);
}

inline std::optional<Trace> load_trace(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::string line;
    if (!std::getline(in, line) || line != "# padico-sched-trace v1")
        return std::nullopt;
    Trace t;
    std::size_t steps = 0;
    for (int i = 0; i < 4; ++i) {
        if (!std::getline(in, line)) return std::nullopt;
        std::istringstream ls(line);
        std::string key, value;
        ls >> key >> value;
        if (key == "config") t.config = value == "-" ? "" : value;
        else if (key == "threads") t.threads = std::stoul(value);
        else if (key == "status") t.status = value == "-" ? "" : value;
        else if (key == "steps") steps = std::stoul(value);
        else return std::nullopt;
    }
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        TraceStep s;
        std::string kind;
        if (!(ls >> s.tid >> kind >> s.obj)) return std::nullopt;
        const auto k = op_from_name(kind);
        if (!k) return std::nullopt;
        s.kind = *k;
        std::getline(ls, s.label);
        if (!s.label.empty() && s.label[0] == ' ') s.label.erase(0, 1);
        t.steps.push_back(std::move(s));
    }
    if (t.steps.size() != steps) return std::nullopt;
    return t;
}

/// Thrown through a managed thread to unwind it when a run aborts
/// (deadlock found, step budget exhausted). Defined in every build so
/// shared code (fabric::Grid process bodies) can mention it.
struct Aborted {};

#ifndef PADICO_SCHED_ENABLED

// ---------------------------------------------------------------------------
// Flag off: zero-cost passthroughs for the shared thread-creation seams.

inline std::thread spawn_thread(std::function<void()> fn,
                                std::string /*label*/ = {}) {
    return std::thread(std::move(fn));
}

inline void join(std::thread& t) { t.join(); }

/// Object-identity retirement hook (no-op with the flag off).
inline void forget_object(const void* /*obj*/) {}

#else // PADICO_SCHED_ENABLED

#ifndef PADICO_CHECK_ENABLED
#error "PADICO_SCHED_ENABLED requires PADICO_CHECK_ENABLED (the scheduler \
hooks live on the CheckedMutex/CheckedCondVar instrumentation)"
#endif

// ---------------------------------------------------------------------------
// The serialization controller.

/// Operation descriptor at a park point. obj is the controller-assigned id.
struct Op {
    OpKind kind = OpKind::kYield;
    std::uint32_t obj = 0;
    const char* label = nullptr;
};

/// Two ops are dependent iff they touch the same object (conservative:
/// reorderings of same-object ops may matter, different-object ops
/// provably commute at this granularity).
inline bool dependent(const Op& a, const Op& b) { return a.obj == b.obj; }
inline bool dependent(const Op& a, const TraceStep& s) {
    return a.obj == s.obj;
}

/// A schedulable thread at a decision: its id and the op it will perform
/// when granted.
struct Candidate {
    std::uint32_t tid = 0;
    Op op;
};

class Controller {
public:
    struct Result {
        enum class Status { kCompleted, kDeadlock, kStepLimit };
        Status status = Status::kCompleted;
        Trace trace;
        std::string detail; ///< deadlock witness, step-limit info
        bool aborted = false;

        const char* status_name() const {
            switch (status) {
            case Status::kCompleted: return "completed";
            case Status::kDeadlock: return "deadlock";
            case Status::kStepLimit: return "step-limit";
            }
            return "?";
        }
    };

    /// Picks the index of the candidate to run next. Called for EVERY
    /// decision, including forced ones (single candidate), so pickers can
    /// maintain per-step state. Out-of-range returns clamp to 0.
    using Picker =
        std::function<int(const std::vector<Candidate>&, std::size_t step)>;

    explicit Controller(Picker picker, std::uint64_t max_steps = 1u << 20,
                        std::string config_name = {})
        : picker_(std::move(picker)), max_steps_(max_steps) {
        trace_.config = std::move(config_name);
        Controller*& slot = active_slot();
        if (slot != nullptr)
            std::abort(); // one controller at a time, by contract
        slot = this;
    }

    ~Controller() {
        if (active_slot() == this) active_slot() = nullptr;
    }
    Controller(const Controller&) = delete;
    Controller& operator=(const Controller&) = delete;

    static Controller* active() { return active_slot(); }
    static bool managed() { return tl_self() != nullptr; }

    /// Create a managed thread. Callable before run() (configuration
    /// setup) or from a managed thread during the run (middleware pools).
    /// Thread ids are assigned in creation order — deterministic for a
    /// deterministic schedule.
    std::thread spawn(std::function<void()> fn, std::string label = {}) {
        ThreadRec* rec = nullptr;
        {
            std::lock_guard<std::mutex> lk(mu_);
            recs_.push_back(std::make_unique<ThreadRec>());
            rec = recs_.back().get();
            rec->tid = static_cast<std::uint32_t>(recs_.size() - 1);
            rec->label = std::move(label);
            rec->obj = obj_id_locked(rec, rec->label.empty()
                                              ? "thread"
                                              : rec->label.c_str());
        }
        std::thread t([this, rec, f = std::move(fn)]() mutable {
            thread_main(rec, std::move(f));
        });
        {
            std::lock_guard<std::mutex> lk(mu_);
            rec->os_id = t.get_id();
            os_ids_[t.get_id()] = rec->tid;
        }
        return t;
    }

    /// Coordinator loop: schedules managed threads decision by decision
    /// until all have exited (or the run aborts). Must be called from an
    /// UNmanaged thread (the test body).
    Result run() {
        std::unique_lock<std::mutex> lk(mu_);
        running_ = true;
        for (;;) {
            main_cv_.wait(lk, [&] {
                return abort_ ? all_exited_locked() : quiescent_locked();
            });
            if (all_exited_locked()) break;
            const std::vector<Candidate> cands = candidates_locked();
            if (cands.empty()) {
                result_.status = Result::Status::kDeadlock;
                result_.detail = deadlock_detail_locked();
                start_abort_locked();
                continue;
            }
            if (trace_.steps.size() >= max_steps_) {
                result_.status = Result::Status::kStepLimit;
                result_.detail = "step budget (" +
                                 std::to_string(max_steps_) + ") exhausted";
                start_abort_locked();
                continue;
            }
            int idx = picker_(cands, trace_.steps.size());
            if (idx < 0 || static_cast<std::size_t>(idx) >= cands.size())
                idx = 0;
            grant_locked(cands[static_cast<std::size_t>(idx)]);
        }
        running_ = false;
        trace_.threads = static_cast<std::uint32_t>(recs_.size());
        trace_.status = result_.status_name();
        result_.trace = trace_;
        Controller*& slot = active_slot();
        if (slot == this) slot = nullptr;
        return result_;
    }

    // --- instrumentation entry points (no-ops on unmanaged threads) -------

    /// Non-blocking choice point: park, run when granted.
    static void point(OpKind k, const void* obj, const char* label = nullptr) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        c->park_choice(*self, k, obj, label, /*may_throw=*/true);
    }

    /// Blocking mutex acquisition: enabled only while the modeled owner
    /// slot is free; the grant records ownership, so the real lock that
    /// follows can never block.
    static void acquire(const void* mtx, const char* label = nullptr) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        c->park_choice(*self, OpKind::kMutexLock, mtx, label,
                       /*may_throw=*/true);
    }

    /// Non-blocking acquisition attempt against the model. Returns whether
    /// the caller may proceed to take the real lock (true on unmanaged
    /// threads: the real try_lock decides there).
    static bool try_acquire(const void* mtx, const char* label = nullptr) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return true;
        c->park_choice(*self, OpKind::kMutexTryLock, mtx, label,
                       /*may_throw=*/true);
        std::lock_guard<std::mutex> lk(c->mu_);
        if (c->abort_) return true;
        const std::uint32_t obj = c->obj_id_locked(mtx, label);
        if (c->mutex_owner_.count(obj) != 0) return false;
        c->mutex_owner_[obj] = self->tid;
        return true;
    }

    /// Release a modeled mutex (no park: an unlock cannot deadlock, and
    /// keeping it out of the branch space roughly halves trace length).
    static void release(const void* mtx) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        std::lock_guard<std::mutex> lk(c->mu_);
        auto it = c->objs_.find(mtx);
        if (it != c->objs_.end()) c->mutex_owner_.erase(it->second);
    }

    /// Park disabled until signal(obj). The caller re-checks its predicate
    /// on return (wakeups may be spurious for the specific waiter).
    static void block_on(const void* obj, OpKind k,
                         const char* label = nullptr) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        c->park_blocked(*self, k, obj, label);
    }

    /// Mark every thread blocked on \p obj runnable (they stay candidates
    /// until granted). No park of its own.
    static void signal(const void* obj) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        std::lock_guard<std::mutex> lk(c->mu_);
        auto it = c->objs_.find(obj);
        if (it == c->objs_.end()) return;
        for (auto& r : c->recs_)
            if (r->st == St::kBlocked && r->pending.obj == it->second &&
                !r->woken) {
                r->woken = true;
                r->enabled_at = c->trace_.steps.size(); // waker idx + 1
            }
    }

    /// Attach an op-specific value to the calling thread's most recent
    /// trace step (see TraceStep::aux). Safe between the step's grant and
    /// the thread's next park: the token protocol guarantees no other
    /// thread appends steps in that window.
    static void annotate(std::uint64_t aux) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        std::lock_guard<std::mutex> lk(c->mu_);
        if (!c->trace_.steps.empty() &&
            c->trace_.steps.back().tid == self->tid)
            c->trace_.steps.back().aux = aux;
    }

    /// Retire an object's identity when it is destroyed. Heap reuse would
    /// otherwise hand a NEW object a dead one's id (the map is keyed by
    /// address), making object identity — and with it replay and the
    /// DPOR dependence relation — a function of malloc layout.
    static void forget(const void* obj) {
        Controller* c = active_slot();
        if (c == nullptr) return;
        std::lock_guard<std::mutex> lk(c->mu_);
        auto it = c->objs_.find(obj);
        if (it == c->objs_.end()) return;
        c->mutex_owner_.erase(it->second);
        c->objs_.erase(it);
    }

    /// Serialize a join: parks until the managed target exits, then the
    /// caller performs the real (now non-blocking) std::thread::join.
    /// Never throws Aborted — joins run inside destructors.
    static void before_join(std::thread::id id) {
        ThreadRec* self = tl_self();
        Controller* c = active_slot();
        if (self == nullptr || c == nullptr) return;
        for (;;) {
            const void* key = nullptr;
            {
                std::lock_guard<std::mutex> lk(c->mu_);
                if (c->abort_) return; // target unwinds on its own
                auto it = c->os_ids_.find(id);
                if (it == c->os_ids_.end()) return; // unmanaged thread
                ThreadRec& target = *c->recs_[it->second];
                if (target.st == St::kExited) return;
                key = &target;
            }
            c->park_blocked(*self, OpKind::kJoin, key, "thread",
                            /*may_throw=*/false);
        }
    }

private:
    enum class St { kNew, kRunning, kParked, kBlocked, kExited };

    struct ThreadRec {
        std::uint32_t tid = 0;
        std::uint32_t obj = 0; ///< object id for join/exit dependence
        std::string label;
        std::thread::id os_id;
        St st = St::kNew;
        Op pending;
        bool woken = false;
        std::size_t enabled_at = 0; ///< 1 + step index of the first waker
        bool granted = false;
        std::condition_variable cv;
    };

    static Controller*& active_slot() {
        static Controller* c = nullptr;
        return c;
    }
    static ThreadRec*& tl_self() {
        thread_local ThreadRec* r = nullptr;
        return r;
    }

    void thread_main(ThreadRec* rec, std::function<void()> fn) {
        tl_self() = rec;
        bool run_body = true;
        {
            // First park: the start of a thread is itself a scheduled
            // decision. If the run is already aborting, the body never
            // runs at all.
            std::unique_lock<std::mutex> lk(mu_);
            if (abort_) {
                run_body = false;
            } else {
                rec->pending =
                    Op{OpKind::kThreadStart, rec->obj,
                       rec->label.empty() ? "thread" : rec->label.c_str()};
                rec->st = St::kParked;
                main_cv_.notify_all();
                rec->cv.wait(lk, [&] { return rec->granted || abort_; });
                if (!rec->granted) run_body = false; // aborted before start
                rec->granted = false;
                rec->st = St::kRunning;
            }
        }
        if (run_body) {
            try {
                fn();
            } catch (const Aborted&) {
                // Unwound by a run abort: fall through to the exit
                // bookkeeping; locks were released by RAII on the way up.
            }
        }
        std::lock_guard<std::mutex> lk(mu_);
        rec->st = St::kExited;
        for (auto& r : recs_) // wake joiners
            if (r->st == St::kBlocked && r->pending.obj == rec->obj &&
                !r->woken) {
                r->woken = true;
                r->enabled_at = trace_.steps.size();
            }
        main_cv_.notify_all();
    }

    /// Park at a choice point; returns once granted. On abort, throws
    /// Aborted (unless \p may_throw is false or the thread is already
    /// unwinding — throwing into an active unwind would terminate).
    void park_choice(ThreadRec& r, OpKind k, const void* obj,
                     const char* label, bool may_throw) {
        std::unique_lock<std::mutex> lk(mu_);
        if (abort_) return; // free-running teardown
        r.pending = Op{k, obj_id_locked(obj, label), label};
        r.st = St::kParked;
        r.granted = false;
        main_cv_.notify_all();
        r.cv.wait(lk, [&] { return r.granted || abort_; });
        const bool got = r.granted;
        r.granted = false;
        r.st = St::kRunning;
        if (!got && may_throw && std::uncaught_exceptions() == 0) {
            lk.unlock();
            throw Aborted{};
        }
    }

    void park_blocked(ThreadRec& r, OpKind k, const void* obj,
                      const char* label, bool may_throw = true) {
        std::unique_lock<std::mutex> lk(mu_);
        if (abort_) return; // spurious wake; caller re-checks its predicate
        r.pending = Op{k, obj_id_locked(obj, label), label};
        r.st = St::kBlocked;
        r.woken = false;
        r.granted = false;
        main_cv_.notify_all();
        r.cv.wait(lk, [&] { return r.granted || abort_; });
        const bool got = r.granted;
        r.granted = false;
        r.st = St::kRunning;
        if (!got && may_throw && std::uncaught_exceptions() == 0) {
            lk.unlock();
            throw Aborted{};
        }
    }

    std::uint32_t obj_id_locked(const void* obj, const char* label) {
        auto it = objs_.find(obj);
        if (it != objs_.end()) return it->second;
        // Monotonic counter, NOT objs_.size(): forget() erases entries, so
        // size-derived ids would collide with live objects.
        const std::uint32_t id = next_obj_id_++;
        objs_.emplace(obj, id);
        obj_labels_.emplace(id, label != nullptr ? label : "");
        return id;
    }

    bool quiescent_locked() const {
        for (const auto& r : recs_)
            if (r->st == St::kNew || r->st == St::kRunning) return false;
        return true;
    }

    bool all_exited_locked() const {
        for (const auto& r : recs_)
            if (r->st != St::kExited) return false;
        return true;
    }

    std::vector<Candidate> candidates_locked() const {
        std::vector<Candidate> out;
        for (const auto& r : recs_) {
            if (r->st == St::kParked) {
                if (r->pending.kind == OpKind::kMutexLock &&
                    mutex_owner_.count(r->pending.obj) != 0)
                    continue; // lock held: disabled
                out.push_back(Candidate{r->tid, r->pending});
            } else if (r->st == St::kBlocked && r->woken) {
                out.push_back(Candidate{r->tid, r->pending});
            }
        }
        return out;
    }

    std::string deadlock_detail_locked() const {
        std::string out = "no runnable thread:";
        for (const auto& r : recs_) {
            if (r->st == St::kExited) continue;
            out += "\n  t" + std::to_string(r->tid);
            if (!r->label.empty()) out += " (" + r->label + ")";
            out += ": " + std::string(op_name(r->pending.kind)) + " obj#" +
                   std::to_string(r->pending.obj);
            auto lit = obj_labels_.find(r->pending.obj);
            if (lit != obj_labels_.end() && !lit->second.empty())
                out += " '" + lit->second + "'";
            if (r->pending.kind == OpKind::kMutexLock) {
                auto oit = mutex_owner_.find(r->pending.obj);
                if (oit != mutex_owner_.end())
                    out += " held by t" + std::to_string(oit->second);
            }
        }
        return out;
    }

    void grant_locked(const Candidate& c) {
        ThreadRec& r = *recs_[c.tid];
        TraceStep s;
        s.tid = c.tid;
        s.kind = c.op.kind;
        s.obj = c.op.obj;
        if (r.st == St::kBlocked) s.enabled_at = r.enabled_at;
        auto lit = obj_labels_.find(c.op.obj);
        if (lit != obj_labels_.end()) s.label = lit->second;
        trace_.steps.push_back(std::move(s));
        if (c.op.kind == OpKind::kMutexLock) mutex_owner_[c.op.obj] = c.tid;
        r.granted = true;
        r.woken = false;
        // Mark running here, under the lock: if the coordinator observed
        // the thread still kParked while it wakes, quiescent_locked would
        // hold and the same candidate would be granted again.
        r.st = St::kRunning;
        r.cv.notify_one();
    }

    void start_abort_locked() {
        result_.aborted = true;
        abort_ = true;
        for (auto& r : recs_)
            if (r->st == St::kParked || r->st == St::kBlocked)
                r->cv.notify_one();
    }

    Picker picker_;
    std::uint64_t max_steps_;
    // The controller's own lock deliberately sits outside the instrumented
    // world (raw std types; osal/ is exempt from the raw-mutex lint, same
    // as the checker state in checked.hpp).
    mutable std::mutex mu_;
    std::condition_variable main_cv_;
    std::vector<std::unique_ptr<ThreadRec>> recs_;
    std::map<std::thread::id, std::uint32_t> os_ids_;
    std::map<const void*, std::uint32_t> objs_;
    std::map<std::uint32_t, std::string> obj_labels_;
    std::map<std::uint32_t, std::uint32_t> mutex_owner_;
    std::uint32_t next_obj_id_ = 1;
    Trace trace_;
    Result result_;
    bool running_ = false;
    bool abort_ = false;
};

/// Managed-thread creation seam: all thread creation in the tree funnels
/// through here. With no active controller this is a plain std::thread.
inline std::thread spawn_thread(std::function<void()> fn,
                                std::string label = {}) {
    if (Controller* c = Controller::active())
        return c->spawn(std::move(fn), std::move(label));
    return std::thread(std::move(fn));
}

/// Managed join seam: serializes the wait for a managed target, then
/// performs the real join.
inline void join(std::thread& t) {
    if (Controller::active() != nullptr && Controller::managed())
        Controller::before_join(t.get_id());
    t.join();
}

/// Called from the osal wrappers' destructors: retire the dying object's
/// identity so a later allocation at the same address gets a fresh id.
inline void forget_object(const void* obj) { Controller::forget(obj); }

// ---------------------------------------------------------------------------
// Pickers.

/// Deterministic baseline: always the lowest thread id.
inline Controller::Picker default_picker() {
    return [](const std::vector<Candidate>&, std::size_t) { return 0; };
}

/// Replays a recorded schedule decision by decision, verifying the op kind
/// and object id at each step. Divergence (trace thread not a candidate,
/// op mismatch, trace exhausted) is recorded into \p error and the picker
/// degrades to lowest-tid so the run still terminates.
inline Controller::Picker
replay_picker(Trace trace, std::shared_ptr<std::string> error = nullptr) {
    auto tr = std::make_shared<Trace>(std::move(trace));
    auto pos = std::make_shared<std::size_t>(0);
    return [tr, pos, error](const std::vector<Candidate>& cands,
                            std::size_t step) -> int {
        auto diverge = [&](const std::string& why) -> int {
            if (error && error->empty())
                *error = "replay diverged at step " + std::to_string(step) +
                         ": " + why;
            return 0;
        };
        if (*pos >= tr->steps.size())
            return diverge("trace exhausted but run still has decisions");
        const TraceStep& want = tr->steps[(*pos)++];
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (cands[i].tid != want.tid) continue;
            if (cands[i].op.kind != want.kind)
                return diverge("t" + std::to_string(want.tid) +
                               " pending op " + op_name(cands[i].op.kind) +
                               " != recorded " + op_name(want.kind));
            if (cands[i].op.obj != want.obj)
                return diverge("t" + std::to_string(want.tid) + " object #" +
                               std::to_string(cands[i].op.obj) +
                               " != recorded #" + std::to_string(want.obj));
            return static_cast<int>(i);
        }
        return diverge("recorded thread t" + std::to_string(want.tid) +
                       " is not runnable");
    };
}

// ---------------------------------------------------------------------------
// DPOR-lite explorer: DFS over schedules with sleep sets and last-access
// pruning, via stateless re-execution.

class Explorer {
public:
    struct Options {
        std::uint64_t max_runs = 200000; ///< schedule budget (safety net)
        std::uint64_t max_steps = 1u << 20; ///< per-run step budget
        bool last_access = true; ///< prune alternatives nothing conflicts with
        /// Branch on mutex-acquire order. On, lock-order bugs (ABBA) are
        /// in scope but the space grows factorially with every contended
        /// lock. Off, critical sections are treated as atomic blocks that
        /// commute — exploration covers queue/waiter/message interleavings
        /// only, the right granularity for configuration-level suites
        /// (whose virtual-time-identity assertion then validates the
        /// commutation empirically). See DESIGN.md §14.
        bool branch_mutexes = true;
        bool stop_on_failure = true;
        std::string config_name;
    };

    struct Stats {
        std::uint64_t runs = 0;      ///< schedules executed
        std::uint64_t completed = 0; ///< ran to completion, non-redundant
        std::uint64_t redundant = 0; ///< sleep-set-blocked (provably
                                     ///< equivalent to an explored one)
        std::uint64_t max_depth = 0; ///< deepest branch stack
        bool exhausted = false;      ///< frontier emptied: coverage is total
    };

    Explorer() = default;
    explicit Explorer(Options opts) : opts_(std::move(opts)) {}

    /// True while another run should execute. Prepares the prescribed
    /// prefix for it.
    bool next() {
        if (done_) return false;
        if (stats_.runs >= opts_.max_runs) {
            done_ = true;
            return false;
        }
        if (stats_.runs > 0) {
            while (!stack_.empty()) {
                Node& n = stack_.back();
                const std::uint32_t alt = next_alternative(n);
                if (alt != kNoTid) {
                    n.tried.insert(alt);
                    n.chosen = alt;
                    break;
                }
                stack_.pop_back();
            }
            if (stack_.empty()) {
                stats_.exhausted = true;
                done_ = true;
                return false;
            }
        }
        decision_idx_ = 0;
        cur_sleep_.clear();
        redundant_ = false;
        return true;
    }

    /// Fresh controller for the upcoming run.
    Controller make_controller() {
        return Controller(picker(), opts_.max_steps, opts_.config_name);
    }

    Controller::Picker picker() {
        return [this](const std::vector<Candidate>& cands,
                      std::size_t step) { return pick(cands, step); };
    }

    /// Digest one finished run. \p invariants_ok is the test's per-run
    /// verdict (virtual-time identity, padico::check cleanliness, ...).
    void finish(const Controller::Result& r, bool invariants_ok) {
        ++stats_.runs;
        if (redundant_) ++stats_.redundant;
        else ++stats_.completed;
        if (stats_.max_depth < stack_.size()) stats_.max_depth = stack_.size();
        const bool failed =
            r.status != Controller::Result::Status::kCompleted ||
            !invariants_ok;
        if (failed && !failure_) {
            failure_ = true;
            failure_trace_ = r.trace;
            failure_run_ = stats_.runs;
            failure_reason_ =
                r.status != Controller::Result::Status::kCompleted
                    ? std::string(r.status_name()) +
                          (r.detail.empty() ? "" : ": " + r.detail)
                    : "invariant violation";
            if (opts_.stop_on_failure) {
                done_ = true;
                return;
            }
        }
        // DPOR marking (skipped after a divergence: stale nodes).
        if (diverged_) return;
        if (!opts_.last_access) {
            // Pruning off: every non-sleeping candidate is a branch.
            for (Node& n : stack_)
                for (const Candidate& c : n.cands)
                    if (n.sleep_entry.count(c.tid) == 0 &&
                        (opts_.branch_mutexes || !mutex_kind(c.op.kind)))
                        n.worthwhile.insert(c.tid);
            return;
        }
        // Happens-before race marking. HB over one execution is the
        // transitive closure of program order plus same-object access
        // order. A pair (s_i, s_j) needs reversing iff dependent,
        // different threads, and s_i is an *immediate* HB predecessor of
        // s_j — no intermediate s_k with s_i HB s_k HB s_j. Reversing only
        // immediate races still reaches every Mazurkiewicz class (composed
        // adjacent reversals), while marking a pair already ordered by
        // intervening synchronization re-branches on reorderings the
        // configuration cannot in fact produce. Spawn edges are not
        // recorded as ops, so a spawnee looks concurrent with its
        // spawner's history — that only detects extra races (sound,
        // conservatively weaker pruning).
        using VClock = std::map<std::uint32_t, std::uint32_t>;
        struct Access {
            std::size_t step;          ///< trace index
            std::uint32_t tid;
            VClock post;               ///< thread clock after the access
        };
        std::map<std::size_t, Node*> node_at;
        for (Node& n : stack_) node_at[n.step_index] = &n;
        const auto join = [](VClock& into, const VClock& from) {
            for (const auto& [t, s] : from) {
                auto& v = into[t];
                if (v < s) v = s;
            }
        };
        const auto mark = [&](std::size_t i, std::uint32_t tid) {
            const auto it = node_at.find(i);
            if (it == node_at.end()) return; // forced step: no choice there
            Node& n = *it->second;
            bool is_cand = false;
            for (const Candidate& c : n.cands)
                if (c.tid == tid) is_cand = true;
            if (is_cand) {
                if (n.sleep_entry.count(tid) == 0) n.worthwhile.insert(tid);
            } else {
                // Classic fallback: the racing thread was not yet runnable
                // at the node, so every non-sleeping candidate branches.
                for (const Candidate& c : n.cands)
                    if (n.sleep_entry.count(c.tid) == 0)
                        n.worthwhile.insert(c.tid);
            }
        };
        std::map<std::uint32_t, VClock> thread_clk;
        std::map<std::uint64_t, std::vector<Access>> hist;
        for (std::size_t j = 0; j < r.trace.steps.size(); ++j) {
            const TraceStep& sj = r.trace.steps[j];
            VClock& ct = thread_clk[sj.tid];
            const bool sync = opts_.branch_mutexes || !mutex_kind(sj.kind);
            if (sync) {
                // Walk earlier same-object accesses newest-first;
                // `covered` accumulates everything HB-before s_j via
                // already-considered intermediates, so only immediate
                // predecessors mark. Conditionally independent pairs
                // (dependent_steps false) contribute neither an HB edge
                // nor a race: they commute, so neither order constrains
                // the other and reversing them cannot reach a new class.
                VClock covered = ct;
                const auto& h = hist[sj.obj];
                for (auto it = h.rbegin(); it != h.rend(); ++it) {
                    const Access& a = *it;
                    if (!dependent_steps(r.trace.steps[a.step], sj))
                        continue;
                    // s_j's thread was blocked until its waker ran
                    // (enabled_at = waker index + 1): anything at or
                    // before the waker was never co-enabled with s_j —
                    // an enabling edge, not a race.
                    if (a.tid != sj.tid && a.step + 1 > sj.enabled_at) {
                        const auto cv = covered.find(a.tid);
                        const std::uint32_t aseq = a.post.at(a.tid);
                        if (cv == covered.end() || cv->second < aseq)
                            mark(a.step, sj.tid);
                    }
                    join(covered, a.post);
                }
                ct = std::move(covered);
            }
            ++ct[sj.tid];
            if (sync) hist[sj.obj].push_back(Access{j, sj.tid, ct});
        }
    }

    /// Conditional dependence between two same-object steps of one
    /// execution — the same-object relation refined by what each
    /// primitive's semantics actually make order-sensitive:
    ///
    ///  * Event set / Latch count_down / Waiter seq bump are monotone
    ///    (an extra earlier signal can only re-enable, never disable),
    ///    their waits are pure observations that re-check state on every
    ///    wake, and a wait only records a step after genuinely blocking
    ///    (its waker is an enabling edge, not a race) — so generic
    ///    signal/wait pairs commute. Barriers are the exception: the
    ///    n-th arrival flips the generation and does not wait, so
    ///    arrival order is observable.
    ///  * CheckedCondVar notify is modeled as a broadcast and every
    ///    managed wait re-checks its predicate after waking, so lost
    ///    wakeups cannot occur: notify<->notify and notify<->wait
    ///    commute. wait<->wait stays dependent — grant order decides
    ///    which waiter consumes predicate state.
    ///  * Queue ops carry element tickets (TraceStep::aux). A push and
    ///    a pop of different elements touch opposite ends of the deque
    ///    and commute; an element-taking pop commutes with close (pops
    ///    drain before honoring the flag); push commutes with close
    ///    (push appends regardless, close sets a flag push never
    ///    reads); close is idempotent. push<->push and pop<->pop stay
    ///    dependent: their order is the FIFO element assignment. A
    ///    boundary-observing pop (aux = kAuxBoundary) or an
    ///    unannotated op (aux = 0) stays dependent on everything.
    bool dependent_steps(const TraceStep& a, const TraceStep& b) const {
        const OpKind k1 = a.kind, k2 = b.kind;
        if (mutex_kind(k1) || mutex_kind(k2)) return true;
        if (a.label == "barrier" || b.label == "barrier") return true;
        const auto generic = [](OpKind k) {
            return k == OpKind::kNotify || k == OpKind::kWait;
        };
        if (generic(k1) && generic(k2)) return false;
        if ((k1 == OpKind::kCvNotify || k1 == OpKind::kCvWait) &&
            (k2 == OpKind::kCvNotify || k2 == OpKind::kCvWait))
            return k1 == OpKind::kCvWait && k2 == OpKind::kCvWait;
        const auto is_pop = [](OpKind k) { return k == OpKind::kQueuePop; };
        if ((k1 == OpKind::kQueuePush && is_pop(k2)) ||
            (is_pop(k1) && k2 == OpKind::kQueuePush)) {
            const TraceStep& pop = is_pop(k1) ? a : b;
            const TraceStep& push = is_pop(k1) ? b : a;
            return pop.aux == 0 || push.aux == 0 ||
                   pop.aux == kAuxBoundary || pop.aux == push.aux;
        }
        if ((is_pop(k1) && k2 == OpKind::kQueueClose) ||
            (k1 == OpKind::kQueueClose && is_pop(k2))) {
            const TraceStep& pop = is_pop(k1) ? a : b;
            return pop.aux == 0 || pop.aux == kAuxBoundary;
        }
        if ((k1 == OpKind::kQueuePush && k2 == OpKind::kQueueClose) ||
            (k1 == OpKind::kQueueClose && k2 == OpKind::kQueuePush))
            return false;
        if (k1 == OpKind::kQueueClose && k2 == OpKind::kQueueClose)
            return false;
        return true;
    }

    bool failure_found() const { return failure_; }
    const Trace& failure_trace() const { return failure_trace_; }
    const std::string& failure_reason() const { return failure_reason_; }
    std::uint64_t failure_run() const { return failure_run_; }
    bool diverged() const { return diverged_; }
    const Stats& stats() const { return stats_; }

private:
    static constexpr std::uint32_t kNoTid = 0xffffffffu;

    struct Node {
        std::size_t step_index = 0; ///< index of this decision in the trace
        std::vector<Candidate> cands;
        std::set<std::uint32_t> sleep_entry; ///< asleep on arrival
        std::set<std::uint32_t> tried;
        std::set<std::uint32_t> worthwhile; ///< conflict-justified branches
        std::uint32_t chosen = 0;
    };

    std::uint32_t next_alternative(const Node& n) const {
        for (const Candidate& c : n.cands) {
            if (n.tried.count(c.tid) != 0) continue;
            if (n.sleep_entry.count(c.tid) != 0) continue;
            if (n.worthwhile.count(c.tid) == 0) continue;
            return c.tid;
        }
        return kNoTid;
    }

    int pick(const std::vector<Candidate>& cands, std::size_t step) {
        // After a sleep-block or divergence the rest of the run just
        // executes deterministically; nothing more is recorded.
        if (redundant_ || diverged_) return 0;
        if (cands.size() == 1) {
            wake_dependent(cands[0].op);
            return 0;
        }
        const std::size_t ni = decision_idx_++;
        if (ni < stack_.size()) {
            // Prescribed prefix: follow the stored choice; threads tried
            // in sibling branches enter this branch asleep.
            Node& n = stack_[ni];
            int idx = -1;
            for (std::size_t i = 0; i < cands.size(); ++i)
                if (cands[i].tid == n.chosen) idx = static_cast<int>(i);
            if (idx < 0) {
                diverged_ = true; // nondeterministic configuration
                return 0;
            }
            n.step_index = step;
            n.cands = cands; // refresh pending ops for this execution
            for (const Candidate& c : cands)
                if (c.tid != n.chosen && n.tried.count(c.tid) != 0)
                    cur_sleep_[c.tid] = c.op;
            wake_dependent(cands[static_cast<std::size_t>(idx)].op);
            return idx;
        }
        // Fresh node: lowest awake candidate; all-asleep means this whole
        // suffix is equivalent to an already-explored one.
        Node n;
        n.step_index = step;
        n.cands = cands;
        for (const Candidate& c : cands)
            if (cur_sleep_.count(c.tid) != 0) n.sleep_entry.insert(c.tid);
        int idx = -1;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (cur_sleep_.count(cands[i].tid) == 0) {
                idx = static_cast<int>(i);
                break;
            }
        }
        if (idx < 0) {
            redundant_ = true;
            return 0;
        }
        n.chosen = cands[static_cast<std::size_t>(idx)].tid;
        n.tried.insert(n.chosen);
        stack_.push_back(std::move(n));
        wake_dependent(cands[static_cast<std::size_t>(idx)].op);
        return idx;
    }

    static bool mutex_kind(OpKind k) {
        return k == OpKind::kMutexLock || k == OpKind::kMutexTryLock;
    }

    /// The explorer's dependence relation: same object, and — when mutex
    /// branching is off — neither side a mutex acquire (critical sections
    /// then commute by assumption).
    bool dep(const Op& a, const Op& b) const {
        if (!opts_.branch_mutexes &&
            (mutex_kind(a.kind) || mutex_kind(b.kind)))
            return false;
        return dependent(a, b);
    }

    /// Sleep-set maintenance: executing \p op wakes every sleeper whose
    /// pending op depends on it (their reordering now matters).
    void wake_dependent(const Op& op) {
        for (auto it = cur_sleep_.begin(); it != cur_sleep_.end();) {
            if (dep(it->second, op)) it = cur_sleep_.erase(it);
            else ++it;
        }
    }

    Options opts_;
    Stats stats_;
    std::vector<Node> stack_;
    std::map<std::uint32_t, Op> cur_sleep_; ///< sleeping tid -> pending op
    std::size_t decision_idx_ = 0;
    bool redundant_ = false;
    bool diverged_ = false;
    bool done_ = false;
    bool failure_ = false;
    Trace failure_trace_;
    std::string failure_reason_;
    std::uint64_t failure_run_ = 0;
};

#endif // PADICO_SCHED_ENABLED

} // namespace padico::osal::sched
