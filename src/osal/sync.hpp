#pragma once
/// \file sync.hpp
/// Events, latches and a join-on-destruction thread group. These stand in
/// for the Marcel thread library the paper builds on: the point the paper
/// makes (§4.3.1) is that all middleware must share ONE coherent threading
/// policy, which in this codebase means everything above the fabric uses
/// these primitives and the single NetEngine progression loop.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "osal/sched.hpp"

namespace padico::osal {

/// Manual-reset event.
class Event {
public:
    ~Event() { sched::forget_object(this); }

    void set() {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kNotify, this, "event");
#endif
        {
            std::lock_guard<std::mutex> lk(mu_);
            set_ = true;
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::signal(this);
#endif
        cv_.notify_all();
    }
    void wait() {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            for (;;) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    if (set_) return;
                }
                sched::Controller::block_on(this, sched::OpKind::kWait,
                                            "event");
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return set_; });
    }
    bool is_set() const {
        std::lock_guard<std::mutex> lk(mu_);
        return set_;
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool set_ = false;
};

/// Count-down latch (std::latch lacks wait-and-reuse; we keep our own).
class Latch {
public:
    explicit Latch(std::size_t count) : count_(count) {}
    ~Latch() { sched::forget_object(this); }
    void count_down() {
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::point(sched::OpKind::kNotify, this, "latch");
#endif
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (count_ > 0 && --count_ == 0) cv_.notify_all();
        }
#ifdef PADICO_SCHED_ENABLED
        sched::Controller::signal(this);
#endif
    }
    void wait() {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            for (;;) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    if (count_ == 0) return;
                }
                sched::Controller::block_on(this, sched::OpKind::kWait,
                                            "latch");
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return count_ == 0; });
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t count_;
};

/// Reusable barrier for N participants.
class Barrier {
public:
    explicit Barrier(std::size_t n) : n_(n) {}
    ~Barrier() { sched::forget_object(this); }
    void arrive_and_wait() {
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            sched::Controller::point(sched::OpKind::kNotify, this, "barrier");
            std::size_t gen = 0;
            bool last = false;
            {
                std::lock_guard<std::mutex> lk(mu_);
                gen = generation_;
                if (++arrived_ == n_) {
                    arrived_ = 0;
                    ++generation_;
                    last = true;
                    cv_.notify_all();
                }
            }
            if (last) {
                sched::Controller::signal(this);
                return;
            }
            for (;;) {
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    if (generation_ != gen) return;
                }
                sched::Controller::block_on(this, sched::OpKind::kWait,
                                            "barrier");
            }
        }
#endif
        std::unique_lock<std::mutex> lk(mu_);
        const std::size_t gen = generation_;
        if (++arrived_ == n_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lk, [&] { return generation_ != gen; });
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t n_;
    std::size_t arrived_ = 0;
    std::size_t generation_ = 0;
};

/// Persistent worker pool for repeated fan-out batches: spawn threads
/// once, reuse them for every batch instead of a spawn/join per call (the
/// GridCCM stub's per-invocation fan-out is the motivating hot path).
///
/// run() grows the pool to the batch size — tasks may block on replies, so
/// full batch concurrency is preserved exactly as with one fresh thread
/// per task — dispatches the batch, blocks until every task finished, and
/// rethrows the first exception any task threw. Workers run \p thread_init
/// once at startup (middleware threads bind to their owning fabric
/// process there). One batch at a time: run() is not reentrant.
class TaskPool {
public:
    explicit TaskPool(std::function<void()> thread_init = {})
        : thread_init_(std::move(thread_init)) {}
    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    ~TaskPool() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
#ifdef PADICO_SCHED_ENABLED
        // signal only (no park): a destructor must never unwind with
        // sched::Aborted, and a signal is not a scheduling decision.
        sched::Controller::signal(&work_cv_);
#endif
        work_cv_.notify_all();
        for (auto& t : threads_) sched::join(t);
        sched::forget_object(&work_cv_);
        sched::forget_object(&done_cv_);
    }

    void run(std::vector<std::function<void()>> tasks) {
        if (tasks.empty()) return;
        std::unique_lock<std::mutex> lk(mu_);
        while (threads_.size() < tasks.size())
            threads_.emplace_back(sched::spawn_thread([this] { worker(); },
                                                      "taskpool.worker"));
        first_error_ = nullptr;
        inflight_ = tasks.size();
        for (auto& t : tasks) queue_.push_back(std::move(t));
        work_cv_.notify_all();
#ifdef PADICO_SCHED_ENABLED
        if (sched::Controller::managed()) {
            // Never park while holding the pool's raw mutex: a granted
            // worker would real-block on it and stall the whole schedule.
            lk.unlock();
            sched::Controller::signal(&work_cv_);
            for (;;) {
                {
                    std::lock_guard<std::mutex> g(mu_);
                    if (inflight_ == 0) break;
                }
                sched::Controller::block_on(&done_cv_,
                                            sched::OpKind::kCvWait,
                                            "taskpool.done");
            }
            lk.lock();
        } else {
            done_cv_.wait(lk, [&] { return inflight_ == 0; });
        }
#else
        done_cv_.wait(lk, [&] { return inflight_ == 0; });
#endif
        if (first_error_) {
            std::exception_ptr e = first_error_;
            first_error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lk(mu_);
        return threads_.size();
    }

private:
    void worker() {
        if (thread_init_) thread_init_();
        std::unique_lock<std::mutex> lk(mu_);
        while (true) {
#ifdef PADICO_SCHED_ENABLED
            if (sched::Controller::managed()) {
                while (!(stop_ || !queue_.empty())) {
                    lk.unlock();
                    sched::Controller::block_on(&work_cv_,
                                                sched::OpKind::kCvWait,
                                                "taskpool.work");
                    lk.lock();
                }
            } else {
                work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
            }
#else
            work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
#endif
            if (queue_.empty()) {
                if (stop_) return;
                continue;
            }
            auto task = std::move(queue_.front());
            queue_.pop_front();
            lk.unlock();
            std::exception_ptr err;
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
            lk.lock();
            if (err && !first_error_) first_error_ = err;
            if (--inflight_ == 0) {
#ifdef PADICO_SCHED_ENABLED
                sched::Controller::signal(&done_cv_);
#endif
                done_cv_.notify_all();
            }
        }
    }

    std::function<void()> thread_init_;
    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::deque<std::function<void()>> queue_;
    std::size_t inflight_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/// Owns a set of threads; joins them on destruction (RAII).
class ThreadGroup {
public:
    ThreadGroup() = default;
    ThreadGroup(const ThreadGroup&) = delete;
    ThreadGroup& operator=(const ThreadGroup&) = delete;
    ~ThreadGroup() { join_all(); }

    void spawn(std::function<void()> fn) {
        threads_.emplace_back(sched::spawn_thread(std::move(fn)));
    }

    void join_all() {
        for (auto& t : threads_)
            if (t.joinable()) sched::join(t);
        threads_.clear();
    }

    std::size_t size() const noexcept { return threads_.size(); }

private:
    std::vector<std::thread> threads_;
};

} // namespace padico::osal
