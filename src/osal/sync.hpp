#pragma once
/// \file sync.hpp
/// Events, latches and a join-on-destruction thread group. These stand in
/// for the Marcel thread library the paper builds on: the point the paper
/// makes (§4.3.1) is that all middleware must share ONE coherent threading
/// policy, which in this codebase means everything above the fabric uses
/// these primitives and the single NetEngine progression loop.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace padico::osal {

/// Manual-reset event.
class Event {
public:
    void set() {
        {
            std::lock_guard<std::mutex> lk(mu_);
            set_ = true;
        }
        cv_.notify_all();
    }
    void wait() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return set_; });
    }
    bool is_set() const {
        std::lock_guard<std::mutex> lk(mu_);
        return set_;
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool set_ = false;
};

/// Count-down latch (std::latch lacks wait-and-reuse; we keep our own).
class Latch {
public:
    explicit Latch(std::size_t count) : count_(count) {}
    void count_down() {
        std::lock_guard<std::mutex> lk(mu_);
        if (count_ > 0 && --count_ == 0) cv_.notify_all();
    }
    void wait() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return count_ == 0; });
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t count_;
};

/// Reusable barrier for N participants.
class Barrier {
public:
    explicit Barrier(std::size_t n) : n_(n) {}
    void arrive_and_wait() {
        std::unique_lock<std::mutex> lk(mu_);
        const std::size_t gen = generation_;
        if (++arrived_ == n_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lk, [&] { return generation_ != gen; });
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t n_;
    std::size_t arrived_ = 0;
    std::size_t generation_ = 0;
};

/// Owns a set of threads; joins them on destruction (RAII).
class ThreadGroup {
public:
    ThreadGroup() = default;
    ThreadGroup(const ThreadGroup&) = delete;
    ThreadGroup& operator=(const ThreadGroup&) = delete;
    ~ThreadGroup() { join_all(); }

    void spawn(std::function<void()> fn) {
        threads_.emplace_back(std::move(fn));
    }

    void join_all() {
        for (auto& t : threads_)
            if (t.joinable()) t.join();
        threads_.clear();
    }

    std::size_t size() const noexcept { return threads_.size(); }

private:
    std::vector<std::thread> threads_;
};

} // namespace padico::osal
