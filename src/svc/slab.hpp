#pragma once
/// \file slab.hpp
/// Generation-tagged connection slab for the ingress path. Replaces the
/// per-connection heap map in svc::ServerCore: connections live in
/// fixed-size slots recycled through a free list, and are referred to by
/// 64-bit handles packing (generation << 32 | slot index). A handle from a
/// previous tenancy of the slot carries a stale generation, so a stale
/// readiness event is rejected by a single lock-free atomic compare — no
/// lookup lock on the hot path, and no way to misdeliver an event to the
/// slot's new tenant.
///
/// Storage is chunked (kChunkSlots slots per chunk) behind an array of
/// atomic chunk pointers: slots never move, so a T* obtained from get()
/// stays valid until that slot's generation is bumped by free(). Chunks are
/// allocated on demand and only freed at slab destruction.
///
/// Concurrency contract:
///  - get() is lock-free and safe from any thread; it returns nullptr for
///    stale, freed, or never-allocated handles.
///  - alloc()/free() serialize on the internal mutex (rank it via the
///    constructor; ServerCore uses lockrank::kServerSlab).
///  - The caller must guarantee a slot is not free()d while another thread
///    still dereferences a T* for it (ServerCore does this with its
///    per-shard state locks and the Conn::freeing tombstone).
///  - free() destroys the T OUTSIDE the slab mutex, so T destructors may
///    take lower-layer locks (VLink teardown reaches the channel layer).

#include <array>
#include <atomic>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "osal/checked.hpp"
#include "util/error.hpp"

namespace padico::svc {

template <typename T> class Slab {
public:
    using Handle = std::uint64_t;
    static constexpr Handle kNullHandle = 0;

    Slab() = default;
    explicit Slab(int lock_rank, const char* name = "svc.slab")
        : mu_(lock_rank, name) {}
    Slab(const Slab&) = delete;
    Slab& operator=(const Slab&) = delete;

    ~Slab() {
        for (std::uint32_t idx = 0; idx < used_; ++idx) {
            Slot& s = *slot_ptr(idx);
            if (s.gen.load(std::memory_order_relaxed) & 1u)
                std::launder(reinterpret_cast<T*>(s.storage))->~T();
        }
        for (auto& c : chunks_) delete c.load(std::memory_order_relaxed);
    }

    /// Construct a T in a recycled (or fresh) slot; returns its handle.
    /// The slot only becomes visible to get() once construction finished.
    template <typename... Args> Handle alloc(Args&&... args) {
        osal::CheckedLock lk(mu_);
        std::uint32_t idx;
        if (!free_.empty()) {
            idx = free_.back();
            free_.pop_back();
        } else {
            idx = used_;
            if ((idx >> kChunkBits) >= kMaxChunks)
                throw Error("svc::Slab capacity exhausted");
            if (chunks_[idx >> kChunkBits].load(
                    std::memory_order_relaxed) == nullptr)
                chunks_[idx >> kChunkBits].store(
                    new Chunk, std::memory_order_release);
            ++used_;
        }
        Slot& s = *slot_ptr(idx);
        const std::uint32_t gen =
            s.gen.load(std::memory_order_relaxed) + 1; // even -> odd: live
        ::new (static_cast<void*>(s.storage)) T(std::forward<Args>(args)...);
        s.gen.store(gen, std::memory_order_release);
        ++live_;
        return (Handle{gen} << 32) | idx;
    }

    /// Lock-free handle resolution: nullptr unless \p h names the slot's
    /// current tenancy.
    T* get(Handle h) const {
        const std::uint32_t idx = index_of(h);
        const std::uint32_t gen = generation_of(h);
        if ((gen & 1u) == 0 || (idx >> kChunkBits) >= kMaxChunks)
            return nullptr;
        Chunk* chunk =
            chunks_[idx >> kChunkBits].load(std::memory_order_acquire);
        if (chunk == nullptr) return nullptr;
        Slot& s = chunk->slots[idx & kChunkMask];
        if (s.gen.load(std::memory_order_acquire) != gen) return nullptr;
        return std::launder(
            reinterpret_cast<T*>(const_cast<unsigned char*>(s.storage)));
    }

    /// Retire the slot named by \p h. Returns false if the handle is stale
    /// (already freed). The generation is bumped (odd -> even) under the
    /// slab mutex — get() on the old handle fails from that point — but the
    /// T is destroyed after the mutex is released, and only then does the
    /// slot re-enter the free list.
    bool free(Handle h) {
        const std::uint32_t idx = index_of(h);
        const std::uint32_t gen = generation_of(h);
        T* dead = nullptr;
        {
            osal::CheckedLock lk(mu_);
            if ((gen & 1u) == 0 || idx >= used_) return false;
            Slot& s = *slot_ptr(idx);
            if (s.gen.load(std::memory_order_relaxed) != gen) return false;
            s.gen.store(gen + 1, std::memory_order_release);
            --live_;
            dead = std::launder(reinterpret_cast<T*>(s.storage));
        }
        dead->~T();
        {
            osal::CheckedLock lk(mu_);
            free_.push_back(idx);
        }
        return true;
    }

    std::size_t live() const {
        osal::CheckedLock lk(mu_);
        return live_;
    }
    /// Slot high-water mark (capacity actually touched).
    std::size_t used_slots() const {
        osal::CheckedLock lk(mu_);
        return used_;
    }

    /// Snapshot of every live handle (shutdown sweep; O(used slots)).
    std::vector<Handle> live_handles() const {
        osal::CheckedLock lk(mu_);
        std::vector<Handle> out;
        out.reserve(live_);
        for (std::uint32_t idx = 0; idx < used_; ++idx) {
            const std::uint32_t gen =
                slot_ptr(idx)->gen.load(std::memory_order_relaxed);
            if (gen & 1u) out.push_back((Handle{gen} << 32) | idx);
        }
        return out;
    }

    static std::uint32_t index_of(Handle h) {
        return static_cast<std::uint32_t>(h & 0xffffffffu);
    }
    static std::uint32_t generation_of(Handle h) {
        return static_cast<std::uint32_t>(h >> 32);
    }

private:
    static constexpr std::size_t kChunkBits = 12; // 4096 slots per chunk
    static constexpr std::size_t kChunkMask = (1u << kChunkBits) - 1;
    static constexpr std::size_t kMaxChunks = 1u << 12; // 16.7M handles

    struct Slot {
        std::atomic<std::uint32_t> gen{0}; // odd = live, even = free
        alignas(alignof(T)) unsigned char storage[sizeof(T)];
    };
    struct Chunk {
        Slot slots[std::size_t{1} << kChunkBits];
    };

    Slot* slot_ptr(std::uint32_t idx) const {
        return &chunks_[idx >> kChunkBits]
                    .load(std::memory_order_relaxed)
                    ->slots[idx & kChunkMask];
    }

    mutable osal::CheckedMutex mu_;
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
    std::vector<std::uint32_t> free_;
    std::uint32_t used_ = 0;
    std::size_t live_ = 0;
};

} // namespace padico::svc
