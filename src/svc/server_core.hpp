#pragma once
/// \file server_core.hpp
/// ServerCore: the shared server engine every VLink-based middleware
/// server (CORBA ORB, SOAP server, and HLA through CORBA) runs on. Thread
/// count is O(pool), not O(connections) — the property the paper's
/// arbitration layer (§4.3.1) provides below the abstraction layer,
/// extended here to the server loops above it (MPICH-G2 makes the same
/// single-progression-engine argument).
///
/// Three ingress modes share one connection plumbing (see DESIGN.md §12):
///
///  - kEventDriven: one dispatcher thread owns an osal::WaitSet over the
///    listener mailbox plus every live connection's receive mailbox; a
///    small elastic worker pool executes protocol handlers. WaitSet::wait
///    is O(live connections) per wake — fine to a few thousand conns.
///  - kShardedReadiness: the 100k-conn shape. Connection mailboxes carry
///    edge-triggered waiters that push the connection's slab handle into a
///    per-shard readiness queue; each shard thread drains its own queue and
///    drives only its own connections, so a wake costs O(1) regardless of
///    connection count. Accepts are batched per listener wake. Stale
///    handles (slot recycled between event and drain) are rejected by the
///    slab's generation check — counted, never misdelivered.
///  - kThreadPerConnection: the historical shape (blocked acceptor + one
///    thread per link), kept as the baseline the benches compare against.
///
/// Connections live in a generation-tagged Slab (slab.hpp) instead of a
/// heap map, and the idle sweep runs on a hierarchical osal::TimerWheel —
/// O(expired), not O(conns) — shared by ALL modes, which fixes the legacy
/// mode's historical never-reap-idle-connections bug.
///
/// bench_server_scale / bench_ingress run the modes side by side and check
/// that serialized workloads produce bit-identical virtual end times: the
/// ingress machinery is real-time plumbing only and never touches the
/// virtual clocks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "osal/blocking.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "osal/queue.hpp"
#include "osal/sync.hpp"
#include "osal/timerwheel.hpp"
#include "osal/waitset.hpp"
#include "padicotm/runtime.hpp"
#include "padicotm/vlink.hpp"
#include "svc/slab.hpp"

namespace padico::svc {

/// Per-connection protocol driver: owns the framing state machine of one
/// accepted stream. Implementations are created by the factory once per
/// connection and destroyed when the connection is pruned.
class Protocol {
public:
    virtual ~Protocol() = default;

    enum class Extract {
        kFrame,    ///< one complete request frame was cut into \p frame
        kNeedMore, ///< not enough buffered bytes yet — wait for readiness
        kClosed,   ///< stream ended; no further frames will come
    };

    /// Non-blocking: try to cut one complete request frame out of the
    /// link's reassembly buffer (dispatcher/shard thread). Partial framing
    /// state (e.g. a parsed header whose body has not arrived) lives in the
    /// implementation between calls. Throwing drops the connection.
    virtual Extract try_extract(ptm::VLink& link, util::Message& frame) = 0;

    /// Handle one complete frame: decode, dispatch, write any reply to
    /// \p link (worker thread, bound to the server's process). Frames of
    /// one connection arrive here strictly in order. Throwing drops the
    /// connection.
    virtual void on_frame(ptm::VLink& link, util::Message frame) = 0;
};

using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

class ServerCore {
public:
    enum class Mode {
        kEventDriven,         ///< dispatcher + fixed pool (the default)
        kShardedReadiness,    ///< per-shard edge-triggered queues (fan-in)
        kThreadPerConnection, ///< legacy shape: acceptor + thread per link
    };

    struct Options {
        /// Resident pool size (event/sharded modes). The pool grows past
        /// this only while handlers sit in osal::BlockingHint::Region
        /// waits (cross-request rendezvous, member collectives) — one
        /// spare thread is kept runnable so queued frames never starve —
        /// and shrinks back once the waits end.
        std::size_t workers = 2;
        Mode mode = Mode::kEventDriven;
        /// Readiness shard count (kShardedReadiness only); clamped to
        /// [1, lockrank::kServerConnShardMax].
        std::size_t readiness_shards = 2;
        /// Close connections with no traffic for this long (real time).
        /// 0 disables the sweep (and its sweeper thread) entirely.
        std::uint64_t idle_timeout_ms = 0;
        /// Protocol label for Runtime::stats() ingress counters.
        std::string protocol = "svc";
    };

    struct Stats {
        std::uint64_t accepted = 0; ///< connections accepted
        std::uint64_t pruned = 0;   ///< dead connections released
        std::uint64_t frames = 0;   ///< complete request frames dispatched
        std::uint64_t idle_reaped = 0;   ///< closed by the idle sweep
        std::uint64_t accept_batches = 0; ///< listener-readiness drains
        std::uint64_t accept_batch_max = 0; ///< largest single drain
        std::uint64_t stale_events = 0; ///< readiness events dropped stale
        std::uint64_t ready_queue_high_water = 0; ///< deepest shard queue
        std::size_t live_connections = 0;
        std::size_t threads = 0;      ///< server threads alive right now
        std::size_t peak_threads = 0; ///< high-water mark of `threads`
    };

    /// Publishes \p endpoint and starts serving immediately.
    ServerCore(ptm::Runtime& rt, const std::string& endpoint,
               ProtocolFactory factory, Options opts);
    ServerCore(ptm::Runtime& rt, const std::string& endpoint,
               ProtocolFactory factory)
        : ServerCore(rt, endpoint, std::move(factory), Options{}) {}
    ~ServerCore();
    ServerCore(const ServerCore&) = delete;
    ServerCore& operator=(const ServerCore&) = delete;

    /// Stop accepting, abort live connections, join every server thread.
    /// Idempotent; safe to call concurrently with traffic.
    void shutdown();

    const std::string& endpoint() const noexcept { return endpoint_; }
    Stats stats() const;

private:
    /// Slab handle of a connection: (generation << 32 | slot index).
    /// Matches Slab<Conn>::Handle (spelled out — Conn is incomplete here).
    using Handle = std::uint64_t;

    struct Conn {
        std::shared_ptr<ptm::VLink> link;
        std::unique_ptr<Protocol> proto;
        std::deque<util::Message> frames; ///< extracted, not yet handled
        bool busy = false;    ///< a worker is draining `frames`
        bool closed = false;  ///< extractor saw end-of-stream
        bool freeing = false; ///< a thread claimed the slot release
        /// Wheel tick (ms since core start) of the last extracted frame;
        /// read by the sweeper without the state lock (lazy reschedule).
        std::atomic<std::uint64_t> last_activity_ms{0};
    };

    struct Shard {
        osal::CheckedMutex mu; ///< state lock of this shard's connections
        osal::BlockingQueue<Handle> ready; ///< edge-triggered handle queue
        std::thread thread;
        std::atomic<std::uint64_t> ready_high_water{0};
    };

    void dispatch_loop();
    void shard_loop(std::size_t shard);
    bool accept_batch();
    void drive_conn(Handle h);
    void worker_loop();
    void legacy_accept_loop();
    void blocking_conn_loop(Handle h);
    void sweep_loop();
    void handle_idle_deadline(Handle h, std::uint64_t now);

    Handle adopt(ptm::VLink&& link);
    Shard& shard_of(Handle h) {
        return *shards_[Slab<Conn>::index_of(h) % shards_.size()];
    }
    /// The mutex guarding this connection's mutable state: the global
    /// conns lock in event/legacy modes, the connection's shard lock in
    /// sharded mode (a connection maps to exactly one shard for life, so
    /// two threads touching one connection always contend the same lock).
    osal::CheckedMutex& state_mu(Handle h) {
        return shards_.empty() ? mu_ : shard_of(h).mu;
    }
    /// Under state_mu: true iff the caller just became responsible for
    /// releasing the slot (exactly one thread ever wins).
    bool claim_free_locked(Conn& conn, bool force = false);
    /// NOT under state_mu: release a claimed slot (destroys the VLink).
    void free_conn(Handle h);
    std::uint64_t now_ms() const;

    // Elastic-pool accounting (BlockingHint hooks; see worker_loop).
    void pool_spawn_locked();
    void worker_entered_blocking();
    void worker_exited_blocking();
    void join_pool();

    /// RAII thread-count accounting (live + peak) for every server thread.
    struct ThreadTicket {
        explicit ThreadTicket(ServerCore& c) : core(c) {
            const std::size_t live = core.threads_live_.fetch_add(1) + 1;
            std::size_t peak = core.threads_peak_.load();
            while (live > peak &&
                   !core.threads_peak_.compare_exchange_weak(peak, live)) {
            }
        }
        ~ThreadTicket() { core.threads_live_.fetch_sub(1); }
        ServerCore& core;
    };

    ptm::Runtime* rt_;
    std::string endpoint_;
    ProtocolFactory factory_;
    Options opts_;
    std::chrono::steady_clock::time_point start_;

    std::unique_ptr<ptm::VLinkListener> listener_;
    osal::WaitSet waitset_;
    osal::BlockingQueue<Handle> work_;
    std::thread dispatcher_; ///< acceptor thread in legacy mode
    std::thread sweeper_;    ///< idle sweep (only when idle_timeout_ms > 0)
    osal::ThreadGroup workers_; ///< legacy-mode per-connection threads
    std::vector<std::unique_ptr<Shard>> shards_; ///< sharded mode only

    /// Event-mode pool. ThreadGroup is not safe against concurrent
    /// spawn/join, and the BlockingHint enter hook spawns from worker
    /// threads — so the pool keeps its own mutex-guarded bookkeeping.
    osal::CheckedMutex pool_mu_{lockrank::kServerPool, "svc.server.pool"};
    std::vector<std::thread> pool_;
    std::size_t pool_threads_ = 0; ///< workers not yet retired
    std::size_t pool_blocked_ = 0; ///< workers inside a blocking Region

    /// Global connection-state lock (event/legacy modes; see state_mu).
    mutable osal::CheckedMutex mu_{lockrank::kServerConns,
                                   "svc.server.conns"};
    Slab<Conn> slab_{lockrank::kServerSlab, "svc.server.slab"};
    osal::TimerWheel<Handle> wheel_{lockrank::kServerWheel,
                                    "svc.server.wheel"};
    osal::CheckedMutex shutdown_mu_{
        lockrank::kServerShutdown,
        "svc.server.shutdown"}; ///< serializes shutdown() callers
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::uint64_t ingress_token_ = 0; ///< Runtime::register_ingress token

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> pruned_{0};
    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> idle_reaped_{0};
    std::atomic<std::uint64_t> accept_batches_{0};
    std::atomic<std::uint64_t> accept_batch_max_{0};
    std::atomic<std::uint64_t> stale_events_{0};
    std::atomic<std::size_t> threads_live_{0};
    std::atomic<std::size_t> threads_peak_{0};
};

} // namespace padico::svc
