#pragma once
/// \file server_core.hpp
/// ServerCore: the shared event-driven server engine every VLink-based
/// middleware server (CORBA ORB, SOAP server, and HLA through CORBA) runs
/// on. One dispatcher thread owns an osal::WaitSet over the listener
/// mailbox plus every live connection's receive mailbox; a small fixed
/// worker pool executes protocol handlers. Thread count is O(pool), not
/// O(connections) — the property the paper's arbitration layer (§4.3.1)
/// provides below the abstraction layer, extended here to the server loops
/// above it (MPICH-G2 makes the same single-progression-engine argument).
///
/// The dispatcher accepts new links, drives per-connection incremental
/// frame reassembly (VLink::try_read_msg), hands complete request frames
/// to the pool (frames of one connection are handled strictly in order,
/// one at a time), and prunes dead connections — releasing the VLink, and
/// with it the channel subscription, as soon as the stream ends, so a
/// long-running server no longer accumulates dead connections.
///
/// A thread-per-connection mode preserves the historical server shape
/// (blocked acceptor + one worker per accepted link) behind the same
/// interface: bench_server_scale runs both and checks that serialized
/// workloads produce bit-identical virtual end times while the event mode
/// keeps the thread count flat.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "osal/blocking.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "osal/queue.hpp"
#include "osal/sync.hpp"
#include "osal/waitset.hpp"
#include "padicotm/vlink.hpp"

namespace padico::svc {

/// Per-connection protocol driver: owns the framing state machine of one
/// accepted stream. Implementations are created by the factory once per
/// connection and destroyed when the connection is pruned.
class Protocol {
public:
    virtual ~Protocol() = default;

    enum class Extract {
        kFrame,    ///< one complete request frame was cut into \p frame
        kNeedMore, ///< not enough buffered bytes yet — wait for readiness
        kClosed,   ///< stream ended; no further frames will come
    };

    /// Non-blocking: try to cut one complete request frame out of the
    /// link's reassembly buffer (dispatcher thread). Partial framing state
    /// (e.g. a parsed header whose body has not arrived) lives in the
    /// implementation between calls. Throwing drops the connection.
    virtual Extract try_extract(ptm::VLink& link, util::Message& frame) = 0;

    /// Handle one complete frame: decode, dispatch, write any reply to
    /// \p link (worker thread, bound to the server's process). Frames of
    /// one connection arrive here strictly in order. Throwing drops the
    /// connection.
    virtual void on_frame(ptm::VLink& link, util::Message frame) = 0;
};

using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

class ServerCore {
public:
    enum class Mode {
        kEventDriven,         ///< dispatcher + fixed pool (the default)
        kThreadPerConnection, ///< legacy shape: acceptor + thread per link
    };

    struct Options {
        /// Resident pool size (event-driven mode). The pool grows past
        /// this only while handlers sit in osal::BlockingHint::Region
        /// waits (cross-request rendezvous, member collectives) — one
        /// spare thread is kept runnable so queued frames never starve —
        /// and shrinks back once the waits end.
        std::size_t workers = 2;
        Mode mode = Mode::kEventDriven;
    };

    struct Stats {
        std::uint64_t accepted = 0; ///< connections accepted
        std::uint64_t pruned = 0;   ///< dead connections released
        std::uint64_t frames = 0;   ///< complete request frames dispatched
        std::size_t live_connections = 0;
        std::size_t threads = 0;      ///< server threads alive right now
        std::size_t peak_threads = 0; ///< high-water mark of `threads`
    };

    /// Publishes \p endpoint and starts serving immediately.
    ServerCore(ptm::Runtime& rt, const std::string& endpoint,
               ProtocolFactory factory, Options opts);
    ServerCore(ptm::Runtime& rt, const std::string& endpoint,
               ProtocolFactory factory)
        : ServerCore(rt, endpoint, std::move(factory), Options{}) {}
    ~ServerCore();
    ServerCore(const ServerCore&) = delete;
    ServerCore& operator=(const ServerCore&) = delete;

    /// Stop accepting, abort live connections, join every server thread.
    /// Idempotent; safe to call concurrently with traffic.
    void shutdown();

    const std::string& endpoint() const noexcept { return endpoint_; }
    Stats stats() const;

private:
    struct Conn {
        explicit Conn(osal::WaitSet::Key k) : key(k) {}
        const osal::WaitSet::Key key;
        std::shared_ptr<ptm::VLink> link;
        std::unique_ptr<Protocol> proto;
        std::deque<util::Message> frames; ///< extracted, not yet handled
        bool busy = false;   ///< a worker is draining `frames`
        bool closed = false; ///< extractor saw end-of-stream
    };
    using ConnPtr = std::shared_ptr<Conn>;

    void dispatch_loop();
    bool accept_ready();
    void drive_conn(osal::WaitSet::Key key);
    void worker_loop();
    void legacy_accept_loop();
    void blocking_conn_loop(ConnPtr conn);
    ConnPtr adopt(ptm::VLink&& link);
    void maybe_prune_locked(const ConnPtr& conn);

    // Elastic-pool accounting (BlockingHint hooks; see worker_loop).
    void pool_spawn_locked();
    void worker_entered_blocking();
    void worker_exited_blocking();
    void join_pool();

    /// RAII thread-count accounting (live + peak) for every server thread.
    struct ThreadTicket {
        explicit ThreadTicket(ServerCore& c) : core(c) {
            const std::size_t live = core.threads_live_.fetch_add(1) + 1;
            std::size_t peak = core.threads_peak_.load();
            while (live > peak &&
                   !core.threads_peak_.compare_exchange_weak(peak, live)) {
            }
        }
        ~ThreadTicket() { core.threads_live_.fetch_sub(1); }
        ServerCore& core;
    };

    ptm::Runtime* rt_;
    std::string endpoint_;
    ProtocolFactory factory_;
    Options opts_;

    std::unique_ptr<ptm::VLinkListener> listener_;
    osal::WaitSet waitset_;
    osal::BlockingQueue<ConnPtr> work_;
    std::thread dispatcher_; ///< acceptor thread in legacy mode
    osal::ThreadGroup workers_; ///< legacy-mode per-connection threads

    /// Event-mode pool. ThreadGroup is not safe against concurrent
    /// spawn/join, and the BlockingHint enter hook spawns from worker
    /// threads — so the pool keeps its own mutex-guarded bookkeeping.
    osal::CheckedMutex pool_mu_{lockrank::kServerPool, "svc.server.pool"};
    std::vector<std::thread> pool_;
    std::size_t pool_threads_ = 0; ///< workers not yet retired
    std::size_t pool_blocked_ = 0; ///< workers inside a blocking Region

    mutable osal::CheckedMutex mu_{lockrank::kServerConns,
                                   "svc.server.conns"};
    std::map<osal::WaitSet::Key, ConnPtr> conns_;
    osal::WaitSet::Key next_key_ = 1; ///< 0 is the listener
    osal::CheckedMutex shutdown_mu_{
        lockrank::kServerShutdown,
        "svc.server.shutdown"}; ///< serializes shutdown() callers
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> pruned_{0};
    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::size_t> threads_live_{0};
    std::atomic<std::size_t> threads_peak_{0};
};

} // namespace padico::svc
