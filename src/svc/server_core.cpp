#include "svc/server_core.hpp"

#include "util/log.hpp"

namespace padico::svc {

namespace {
constexpr osal::WaitSet::Key kListenerKey = 0;
} // namespace

ServerCore::ServerCore(ptm::Runtime& rt, const std::string& endpoint,
                       ProtocolFactory factory, Options opts)
    : rt_(&rt), endpoint_(endpoint), factory_(std::move(factory)),
      opts_(opts) {
    PADICO_CHECK(factory_ != nullptr, "ServerCore needs a protocol factory");
    PADICO_CHECK(opts_.workers > 0, "ServerCore needs at least one worker");
    listener_ = std::make_unique<ptm::VLinkListener>(rt, endpoint);
    if (opts_.mode == Mode::kEventDriven) {
        waitset_.add(listener_->mailbox(), kListenerKey);
        dispatcher_ = std::thread([this] { dispatch_loop(); });
        osal::CheckedLock lk(pool_mu_);
        for (std::size_t i = 0; i < opts_.workers; ++i) pool_spawn_locked();
    } else {
        dispatcher_ = std::thread([this] { legacy_accept_loop(); });
    }
}

ServerCore::~ServerCore() { shutdown(); }

void ServerCore::shutdown() {
    stopping_.store(true);
    osal::CheckedLock slk(shutdown_mu_);
    if (stopped_.load()) return;
    listener_->shutdown();
    waitset_.interrupt();
    if (dispatcher_.joinable()) dispatcher_.join();
    {
        // Unblock anything still reading from clients that will never
        // close their end (legacy conn loops; nothing in event mode —
        // the dispatcher is already gone).
        osal::CheckedLock lk(mu_);
        for (auto& [key, conn] : conns_) conn->link->abort();
    }
    work_.close();
    workers_.join_all();
    join_pool();
    {
        // Detach every remaining readiness registration before the
        // connections (and their mailboxes) are released. The connections
        // themselves are destroyed AFTER mu_ is dropped: ~Conn tears down
        // its VLink, which posts FIN and unsubscribes from the Demux —
        // channel-layer work that must not run under the conns lock.
        std::map<osal::WaitSet::Key, ConnPtr> doomed;
        {
            osal::CheckedLock lk(mu_);
            waitset_.remove(kListenerKey);
            for (auto& [key, conn] : conns_) waitset_.remove(key);
            doomed.swap(conns_);
        }
    }
    stopped_.store(true);
}

ServerCore::Stats ServerCore::stats() const {
    Stats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.pruned = pruned_.load(std::memory_order_relaxed);
    s.frames = frames_.load(std::memory_order_relaxed);
    s.threads = threads_live_.load(std::memory_order_relaxed);
    s.peak_threads = threads_peak_.load(std::memory_order_relaxed);
    osal::CheckedLock lk(mu_);
    s.live_connections = conns_.size();
    return s;
}

// ---------------------------------------------------------------------------
// Shared plumbing

ServerCore::ConnPtr ServerCore::adopt(ptm::VLink&& link) {
    osal::CheckedLock lk(mu_);
    auto conn = std::make_shared<Conn>(next_key_++);
    conn->link = std::make_shared<ptm::VLink>(std::move(link));
    conn->proto = factory_();
    conns_.emplace(conn->key, conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return conn;
}

void ServerCore::maybe_prune_locked(const ConnPtr& conn) {
    if (!conn->closed || conn->busy || !conn->frames.empty()) return;
    if (conns_.erase(conn->key) != 0)
        pruned_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Event-driven mode

void ServerCore::dispatch_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    bool accepting = true;
    while (!stopping_.load()) {
        const auto ready = waitset_.wait();
        if (stopping_.load()) break;
        for (const auto key : ready) {
            if (key == kListenerKey) {
                if (accepting) accepting = accept_ready();
            } else {
                drive_conn(key);
            }
        }
    }
}

bool ServerCore::accept_ready() {
    // Drain every queued connection request, then check whether the
    // listener itself closed: a closed mailbox stays level-triggered
    // ready, so it must leave the wait set or the dispatcher would spin.
    for (;;) {
        auto link = listener_->try_accept();
        if (!link.has_value()) break;
        ConnPtr conn = adopt(std::move(*link));
        waitset_.add(conn->link->rx_mailbox(), conn->key);
    }
    if (listener_->closed()) {
        waitset_.remove(kListenerKey);
        return false;
    }
    return true;
}

void ServerCore::drive_conn(osal::WaitSet::Key key) {
    ConnPtr conn;
    {
        osal::CheckedLock lk(mu_);
        auto it = conns_.find(key);
        if (it == conns_.end()) return; // pruned before this readiness
        conn = it->second;
    }
    for (;;) {
        util::Message frame;
        Protocol::Extract st;
        try {
            st = conn->proto->try_extract(*conn->link, frame);
        } catch (const std::exception& e) {
            PLOG(warn, "svc") << endpoint_
                              << ": connection dropped: " << e.what();
            conn->link->abort();
            st = Protocol::Extract::kClosed;
        }
        if (st == Protocol::Extract::kFrame) {
            frames_.fetch_add(1, std::memory_order_relaxed);
            osal::CheckedLock lk(mu_);
            conn->frames.push_back(std::move(frame));
            if (!conn->busy) {
                conn->busy = true;
                work_.push(conn);
            }
            continue;
        }
        if (st == Protocol::Extract::kNeedMore) break;
        // Closed: no further frames will ever be extracted. Deregister
        // first (so the closed mailbox stops reporting ready), then prune
        // unless a worker still holds queued frames.
        waitset_.remove(key);
        osal::CheckedLock lk(mu_);
        conn->closed = true;
        maybe_prune_locked(conn);
        break;
    }
}

// Pool elasticity: a handler that waits on progress made by OTHER
// requests (parallel-invocation rendezvous, member collectives) would
// deadlock a fixed pool once such waits occupy every worker. Handlers
// bracket those waits with osal::BlockingHint::Region; the enter hook
// spawns a spare worker whenever the last runnable one is about to
// block, and surplus workers retire once the waits are over. Protocols
// that never block (plain request/reply) keep the pool at exactly
// Options::workers.

void ServerCore::pool_spawn_locked() {
    pool_.emplace_back([this] { worker_loop(); });
    ++pool_threads_;
}

void ServerCore::worker_entered_blocking() {
    osal::CheckedLock lk(pool_mu_);
    ++pool_blocked_;
    if (pool_threads_ == pool_blocked_ && !stopping_.load())
        pool_spawn_locked();
}

void ServerCore::worker_exited_blocking() {
    osal::CheckedLock lk(pool_mu_);
    --pool_blocked_;
}

void ServerCore::join_pool() {
    // Workers spawn peers (enter hook), so drain in rounds; stopping_ is
    // already set, which stops further growth.
    for (;;) {
        std::vector<std::thread> batch;
        {
            osal::CheckedLock lk(pool_mu_);
            batch.swap(pool_);
        }
        if (batch.empty()) return;
        for (auto& t : batch) t.join();
    }
}

void ServerCore::worker_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    osal::BlockingHint::Scope hint({[this] { worker_entered_blocking(); },
                                    [this] { worker_exited_blocking(); }});
    for (;;) {
        {
            osal::CheckedLock lk(pool_mu_);
            if (pool_threads_ > opts_.workers + pool_blocked_) {
                --pool_threads_; // surplus spare: retire
                return;
            }
        }
        auto item = work_.pop();
        if (!item.has_value()) break;
        ConnPtr conn = std::move(*item);
        for (;;) {
            util::Message frame;
            {
                osal::CheckedLock lk(mu_);
                if (conn->frames.empty()) {
                    conn->busy = false;
                    maybe_prune_locked(conn);
                    break;
                }
                frame = std::move(conn->frames.front());
                conn->frames.pop_front();
            }
            try {
                conn->proto->on_frame(*conn->link, std::move(frame));
            } catch (const std::exception& e) {
                PLOG(warn, "svc") << endpoint_
                                  << ": request handler failed: "
                                  << e.what();
                // Drop the connection: discard its queued frames and mark
                // the stream dead so the dispatcher deregisters + prunes.
                conn->link->abort();
                osal::CheckedLock lk(mu_);
                conn->frames.clear();
            }
        }
    }
    osal::CheckedLock lk(pool_mu_); // work_ closed: shutting down
    --pool_threads_;
}

// ---------------------------------------------------------------------------
// Thread-per-connection mode (the historical server shape, kept as the
// baseline bench_server_scale compares against)

void ServerCore::legacy_accept_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    while (!stopping_.load()) {
        ptm::VLink link = listener_->accept();
        if (!link.valid()) return; // shut down
        ConnPtr conn = adopt(std::move(link));
        workers_.spawn([this, conn] { blocking_conn_loop(conn); });
    }
}

void ServerCore::blocking_conn_loop(ConnPtr conn) {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    osal::WaitSet ws;
    ws.add(conn->link->rx_mailbox(), 1);
    for (;;) {
        util::Message frame;
        Protocol::Extract st;
        try {
            st = conn->proto->try_extract(*conn->link, frame);
        } catch (const std::exception& e) {
            PLOG(warn, "svc") << endpoint_
                              << ": connection dropped: " << e.what();
            st = Protocol::Extract::kClosed;
        }
        if (st == Protocol::Extract::kFrame) {
            frames_.fetch_add(1, std::memory_order_relaxed);
            try {
                conn->proto->on_frame(*conn->link, std::move(frame));
            } catch (const std::exception& e) {
                PLOG(warn, "svc") << endpoint_
                                  << ": request handler failed: "
                                  << e.what();
                break;
            }
            continue;
        }
        if (st == Protocol::Extract::kClosed) break;
        ws.wait(); // kNeedMore: block until a chunk (or EOF) arrives
    }
    ws.remove(1);
    osal::CheckedLock lk(mu_);
    if (conns_.erase(conn->key) != 0)
        pruned_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace padico::svc
